"""Exception hierarchy for :mod:`repro`.

A single root type, :class:`ReproError`, lets callers catch everything the
library raises deliberately, while subclasses keep failure modes
distinguishable in tests and user code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A simulation/model was configured inconsistently (bad shapes, CFL, ...)."""


class StabilityError(ReproError):
    """A numerical stability condition was violated (e.g. CFL limit)."""


class DecompositionError(ReproError):
    """Domain decomposition could not be constructed as requested."""


class CommunicationError(ReproError):
    """The simulated communicator was used incorrectly."""


class DiagnosticError(ReproError):
    """A diagnostic was asked for data that does not exist."""


class ProtocolError(CommunicationError):
    """The post-hoc communication-protocol checker found violations.

    Raised by :mod:`repro.analysis.commcheck` when a finished run left
    unreceived messages, mismatched tags, or diverging collective counts.
    """


class SanitizerError(ReproError):
    """A runtime invariant sanitizer tripped (non-finite field,
    out-of-domain particle, corrupted guard cells).

    Carries enough context (step, field/species name) to localize the
    failure; see :mod:`repro.analysis.sanitize`.
    """


class AnalysisError(ReproError):
    """The static-analysis driver itself was misused (bad path, bad rule id)."""


class PrecisionError(ReproError):
    """A mixed-precision kernel exceeded its documented error budget.

    Raised by :func:`repro.particles.kernels.validate_kernel_set` when a
    float32 kernel variant deviates from the float64 reference by more
    than :data:`repro.particles.kernels.FLOAT32_ERROR_BUDGET` allows —
    the contract that lets a run opt into single-precision fields
    without silently changing physics.
    """


class ObservabilityError(ReproError):
    """The tracing/metrics subsystem was misused or fed a malformed trace.

    Raised by :mod:`repro.observability` for metric type conflicts,
    unparsable trace files and invalid CLI arguments — never for
    instrumentation overhead concerns (a disabled tracer is silent).
    """


class ResilienceError(ReproError):
    """A fault could not be recovered.

    Raised by the resilience layer (:mod:`repro.resilience`) when an
    injected or detected fault — lost/corrupted message, failed rank —
    cannot be repaired under the active recovery policy: the run must
    stop with a typed error rather than continue to a silent wrong
    answer.
    """
