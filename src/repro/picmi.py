"""PICMI-flavored high-level input layer.

The Particle-In-Cell Modeling Interface (PICMI) is the community-standard
Python input layer WarpX ships; this module provides the same vocabulary
— grids, distributions, species, lasers, solver, simulation — mapped onto
the :mod:`repro.core` engine, so a WarpX-style input deck translates
nearly line-for-line:

    import repro.picmi as picmi

    grid = picmi.Cartesian2DGrid(
        number_of_cells=[256, 128],
        lower_bound=[0, -20e-6], upper_bound=[80e-6, 20e-6],
        boundary_conditions=["damped", "damped"],
    )
    solver = picmi.ElectromagneticSolver(grid=grid, cfl=0.95)
    plasma = picmi.Species(
        particle_type="electron", name="electrons",
        initial_distribution=picmi.UniformDistribution(density=1e24),
    )
    sim = picmi.Simulation(solver=solver)
    sim.add_species(plasma, layout=picmi.GriddedLayout(n_macroparticles_per_cell=[2, 2]))
    sim.step(100)
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.constants import m_e, m_p, q_e
from repro.core.moving_window import MovingWindow
from repro.core.mr_simulation import MRSimulation
from repro.core.simulation import Simulation as _CoreSimulation
from repro.exceptions import ConfigurationError
from repro.grid.yee import YeeGrid
from repro.laser.antenna import LaserAntenna as _CoreAntenna
from repro.laser.profiles import GaussianLaser as _CoreLaser
from repro.particles.injection import (
    DensityProfile,
    GasJetProfile,
    SlabProfile,
    UniformProfile,
)
from repro.particles.species import Species as _CoreSpecies

#: particle types understood by :class:`Species`
PARTICLE_TYPES = {
    "electron": (-q_e, m_e),
    "positron": (+q_e, m_e),
    "proton": (+q_e, m_p),
}


class _CartesianGrid:
    """Shared base of the 1/2/3D grid descriptions."""

    ndim = 0

    def __init__(
        self,
        number_of_cells: Sequence[int],
        lower_bound: Sequence[float],
        upper_bound: Sequence[float],
        boundary_conditions="periodic",
        guards: int = 4,
    ) -> None:
        if len(number_of_cells) != self.ndim:
            raise ConfigurationError(
                f"{type(self).__name__} needs {self.ndim} cell counts"
            )
        self.number_of_cells = tuple(int(n) for n in number_of_cells)
        self.lower_bound = tuple(float(v) for v in lower_bound)
        self.upper_bound = tuple(float(v) for v in upper_bound)
        if isinstance(boundary_conditions, str):
            boundary_conditions = (boundary_conditions,) * self.ndim
        self.boundary_conditions = tuple(boundary_conditions)
        self.guards = int(guards)

    def build(self) -> YeeGrid:
        return YeeGrid(
            self.number_of_cells, self.lower_bound, self.upper_bound, self.guards
        )


class Cartesian1DGrid(_CartesianGrid):
    ndim = 1


class Cartesian2DGrid(_CartesianGrid):
    ndim = 2


class Cartesian3DGrid(_CartesianGrid):
    ndim = 3


class ElectromagneticSolver:
    """The Maxwell solver description: ``method="Yee"`` (explicit FDTD) or
    ``method="PSATD"`` (spectral, periodic boundaries only)."""

    def __init__(self, grid: _CartesianGrid, cfl: float = 0.95, method: str = "Yee") -> None:
        if method not in ("Yee", "PSATD"):
            raise ConfigurationError(f"unknown Maxwell method {method!r}")
        self.grid = grid
        self.cfl = float(cfl)
        self.method = method


class UniformDistribution:
    """Constant density with optional thermal/drift momentum."""

    def __init__(
        self,
        density: float,
        rms_velocity_uth: float = 0.0,
        directed_velocity_u=None,
    ) -> None:
        self.profile = UniformProfile(density)
        self.rms_velocity_uth = rms_velocity_uth
        self.directed_velocity_u = directed_velocity_u


class AnalyticDistribution:
    """Density from an arbitrary :class:`DensityProfile` (slab, gas jet, ...)."""

    def __init__(
        self,
        profile: DensityProfile,
        rms_velocity_uth: float = 0.0,
        directed_velocity_u=None,
    ) -> None:
        self.profile = profile
        self.rms_velocity_uth = rms_velocity_uth
        self.directed_velocity_u = directed_velocity_u


class GriddedLayout:
    """Regular particles-per-cell placement."""

    def __init__(self, n_macroparticles_per_cell) -> None:
        self.ppc = n_macroparticles_per_cell


class Species:
    """A particle species description (PICMI naming)."""

    def __init__(
        self,
        name: str,
        particle_type: Optional[str] = None,
        charge: Optional[float] = None,
        mass: Optional[float] = None,
        initial_distribution=None,
    ) -> None:
        if particle_type is not None:
            if particle_type not in PARTICLE_TYPES:
                raise ConfigurationError(
                    f"unknown particle type {particle_type!r}"
                )
            charge, mass = PARTICLE_TYPES[particle_type]
        if charge is None or mass is None:
            raise ConfigurationError(
                "give either particle_type or explicit charge and mass"
            )
        self.name = name
        self.charge = float(charge)
        self.mass = float(mass)
        self.initial_distribution = initial_distribution
        #: populated by Simulation.add_species
        self.core: Optional[_CoreSpecies] = None


class GaussianLaser:
    """PICMI-style Gaussian laser description."""

    def __init__(
        self,
        wavelength: float,
        waist: float,
        duration: float,
        a0: float,
        focal_position=None,
        centroid_position=None,
        propagation_direction=None,
        polarization_direction="y",
        incidence_angle: float = 0.0,
        t_peak: Optional[float] = None,
    ) -> None:
        self.core = _CoreLaser(
            wavelength=wavelength,
            a0=a0,
            waist=waist,
            duration=duration,
            polarization=polarization_direction,
            incidence_angle=incidence_angle,
            t_peak=t_peak,
        )


class LaserAntenna:
    """Injection plane for a laser."""

    def __init__(self, position: float, transverse_center=0.0) -> None:
        self.position = float(position)
        self.transverse_center = transverse_center


class Simulation:
    """The PICMI simulation container."""

    def __init__(
        self,
        solver: ElectromagneticSolver,
        max_steps: Optional[int] = None,
        particle_shape: int = 2,
        verbose: bool = False,
        mesh_refinement: bool = False,
    ) -> None:
        self.solver = solver
        self.max_steps = max_steps
        grid = solver.grid.build()
        cls = MRSimulation if mesh_refinement else _CoreSimulation
        self.core = cls(
            grid,
            cfl=solver.cfl,
            shape_order=particle_shape,
            boundaries=solver.grid.boundary_conditions,
            maxwell_solver="psatd" if solver.method == "PSATD" else "yee",
        )
        self.verbose = verbose
        self._steps_taken = 0

    def add_species(self, species: Species, layout: GriddedLayout) -> None:
        core_sp = _CoreSpecies(
            species.name, species.charge, species.mass, self.solver.grid.ndim
        )
        dist = species.initial_distribution
        self.core.add_species(
            core_sp,
            profile=dist.profile if dist is not None else None,
            ppc=tuple(layout.ppc) if dist is not None else None,
            temperature_uth=dist.rms_velocity_uth if dist else 0.0,
        )
        if dist is not None and dist.directed_velocity_u is not None and core_sp.n:
            core_sp.momenta += np.asarray(dist.directed_velocity_u)[None, :]
        species.core = core_sp

    def add_laser(self, laser: GaussianLaser, injection_method: LaserAntenna) -> None:
        self.core.add_laser(
            _CoreAntenna(
                laser.core,
                position=injection_method.position,
                center=injection_method.transverse_center,
            )
        )

    def add_moving_window(self, window: MovingWindow) -> None:
        self.core.set_moving_window(window)

    def add_mesh_refinement_patch(self, lo, hi, ratio=2, **kwargs):
        if not isinstance(self.core, MRSimulation):
            raise ConfigurationError(
                "construct the Simulation with mesh_refinement=True first"
            )
        return self.core.add_patch(lo, hi, ratio=ratio, **kwargs)

    def step(self, nsteps: int = 1) -> None:
        if self.max_steps is not None:
            nsteps = min(nsteps, self.max_steps - self._steps_taken)
        self.core.step(max(nsteps, 0))
        self._steps_taken += max(nsteps, 0)
        if self.verbose:  # pragma: no cover - cosmetic
            print(f"step {self.core.step_count}, t = {self.core.time:.3e} s")

    @property
    def time(self) -> float:
        return self.core.time
