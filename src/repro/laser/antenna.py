"""Current-sheet laser antenna.

A laser is injected by driving a surface current on a grid plane: a sheet
current ``K = -2 eps0 c E0(t, r)`` radiates a wave of amplitude ``E0``
symmetrically to both sides of the plane (the backward half is absorbed by
the boundary behind the antenna).  This is the same soft-source mechanism
WarpX uses, and unlike hard sources it leaves the plane transparent to
other waves crossing it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.constants import c, eps0
from repro.exceptions import ConfigurationError
from repro.grid.yee import STAGGER, YeeGrid
from repro.laser.profiles import GaussianLaser


class LaserAntenna:
    """Injects a :class:`GaussianLaser` from a plane of constant x.

    Parameters
    ----------
    laser:
        The pulse to emit.
    position:
        x coordinate of the emission plane [m].
    center:
        Transverse coordinate(s) of the beam axis [m]; scalar in 2D,
        pair in 3D, ignored in 1D.
    """

    def __init__(self, laser: GaussianLaser, position: float, center=0.0) -> None:
        self.laser = laser
        self.position = float(position)
        self.center = center

    def _transverse_distance(self, grid: YeeGrid, component: str):
        """Distance from the beam axis for every transverse sample point."""
        if grid.ndim == 1:
            return np.zeros(1, dtype=np.float64)
        if grid.ndim == 2:
            y = (
                np.arange(grid.shape[1], dtype=np.float64)
                - grid.guards
                + 0.5 * STAGGER[component][1]
            ) * grid.dx[1] + grid.lo[1]
            return y - float(self.center)
        y = (
            np.arange(grid.shape[1], dtype=np.float64)
            - grid.guards
            + 0.5 * STAGGER[component][1]
        ) * grid.dx[1] + grid.lo[1]
        z = (
            np.arange(grid.shape[2], dtype=np.float64)
            - grid.guards
            + 0.5 * STAGGER[component][2]
        ) * grid.dx[2] + grid.lo[2]
        cy, cz = self.center if np.ndim(self.center) else (self.center, 0.0)
        return np.hypot(y[:, None] - cy, z[None, :] - cz)

    def add_current(self, grid: YeeGrid, t: float) -> None:
        """Add the antenna's sheet current to the grid's J at time ``t``.

        Skips silently once the pulse has been fully emitted, and when the
        emission plane has left the (moving-window) domain.
        """
        if t > self.laser.total_emission_time():
            return
        if not (grid.lo[0] <= self.position < grid.hi[0]):
            return
        if grid.ndim == 3 and self.laser.incidence_angle != 0.0:
            raise ConfigurationError(
                "oblique incidence is implemented for 1D/2D antennas; "
                "3D injection must be at normal incidence"
            )
        comp = "Jy" if self.laser.polarization == "y" else "Jz"
        # plane index on the J component's x lattice (nearest sample)
        stag_x = STAGGER[comp][0]
        xi = (self.position - grid.lo[0]) / grid.dx[0] + grid.guards - 0.5 * stag_x
        i_plane = int(round(xi))
        i_plane = min(max(i_plane, 0), grid.shape[0] - 1)
        r = self._transverse_distance(grid, comp)
        e_profile = self.laser.field_at_plane(t, r)
        sheet = -2.0 * eps0 * c * e_profile / grid.dx[0]
        arr = grid.fields[comp]
        if grid.ndim == 1:
            arr[i_plane] += sheet[0]
        elif grid.ndim == 2:
            arr[i_plane, :] += sheet
        else:
            arr[i_plane, :, :] += sheet
