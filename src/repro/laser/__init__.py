"""Laser substrate: Gaussian pulse profiles and the current-sheet antenna
used to inject them into the simulation (including oblique incidence, as in
the paper's 45-degree science case)."""

from repro.laser.profiles import GaussianLaser
from repro.laser.antenna import LaserAntenna

__all__ = ["GaussianLaser", "LaserAntenna"]
