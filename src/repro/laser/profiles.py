"""Analytic laser pulse profiles.

The science case of the paper uses a PW-class femtosecond pulse (lambda =
0.8 um, waist 19.5 um, duration 30.8 fs) impinging at 45 degrees on the
solid target.  :class:`GaussianLaser` models such a pulse: a Gaussian
temporal envelope, a Gaussian transverse envelope, and an optional
propagation tilt implemented as a transverse phase ramp plus an envelope
delay (exact for the plane-wave carrier, paraxial for the envelope).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.constants import a0_to_field, c
from repro.exceptions import ConfigurationError


class GaussianLaser:
    """A linearly polarized Gaussian laser pulse.

    Parameters
    ----------
    wavelength:
        Carrier wavelength [m].
    a0:
        Peak normalized vector potential.
    waist:
        1/e^2 intensity radius at focus [m].
    duration:
        Field-envelope duration tau [s]; envelope ``exp(-(t/tau)^2)``
        (the paper quotes 30.8 fs).
    polarization:
        ``"y"`` or ``"z"`` — the E-field direction at normal incidence.
    incidence_angle:
        Angle [rad] between the propagation direction and +x, tilting the
        wavefronts in the x-y plane (45 degrees in the science case).
    t_peak:
        Time at which the envelope peak crosses the injection plane [s].
    focal_distance:
        Distance [m] from the injection plane to the focal plane
        (downstream positive).  When set, the injected wavefronts carry
        the converging curvature and amplitude of a real focused Gaussian
        beam, so the pulse reaches its ``waist`` (and its ``a0``) at the
        focus — the way the paper's PW pulse is "focused onto" the target.
        Mutually exclusive with ``incidence_angle``.
    """

    def __init__(
        self,
        wavelength: float,
        a0: float,
        waist: float,
        duration: float,
        polarization: str = "y",
        incidence_angle: float = 0.0,
        t_peak: Optional[float] = None,
        cep_phase: float = 0.0,
        focal_distance: Optional[float] = None,
    ) -> None:
        if polarization not in ("y", "z"):
            raise ConfigurationError("polarization must be 'y' or 'z'")
        if wavelength <= 0 or waist <= 0 or duration <= 0:
            raise ConfigurationError("wavelength, waist and duration must be positive")
        if focal_distance is not None and incidence_angle != 0.0:
            raise ConfigurationError(
                "focusing and oblique incidence cannot be combined"
            )
        self.wavelength = float(wavelength)
        self.a0 = float(a0)
        self.waist = float(waist)
        self.duration = float(duration)
        self.polarization = polarization
        self.incidence_angle = float(incidence_angle)
        self.omega = 2.0 * math.pi * c / self.wavelength
        self.k = self.omega / c
        self.e_peak = a0_to_field(self.a0, self.wavelength)
        self.t_peak = float(t_peak) if t_peak is not None else 3.0 * self.duration
        self.cep_phase = float(cep_phase)
        self.focal_distance = (
            float(focal_distance) if focal_distance is not None else None
        )
        #: Rayleigh length of the focused beam [m].
        self.rayleigh = math.pi * self.waist**2 / self.wavelength

    def envelope(self, t: np.ndarray) -> np.ndarray:
        """Temporal field envelope, peak 1 at ``t = t_peak``."""
        return np.exp(-(((t - self.t_peak) / self.duration) ** 2))

    def field_at_plane(self, t: float, transverse: np.ndarray) -> np.ndarray:
        """E field [V/m] on the injection plane at time ``t``.

        ``transverse`` are the in-plane coordinates (relative to the beam
        axis) of the antenna samples [m].  The tilt of an oblique pulse
        appears as a transverse phase ramp ``k sin(theta) r`` and a
        matching envelope delay ``r sin(theta) / c``; a focused pulse
        carries the Gaussian-beam curvature, width and Gouy phase of the
        plane at ``-focal_distance`` from the waist.
        """
        transverse = np.asarray(transverse, dtype=np.float64)
        if self.focal_distance is not None:
            # Gaussian-beam parameters at z = -focal_distance from focus
            z = -self.focal_distance
            zr = self.rayleigh
            w_z = self.waist * math.sqrt(1.0 + (z / zr) ** 2)
            inv_r = z / (z**2 + zr**2)  # 1/R(z), signed: converging for z<0
            gouy = 0.5 * math.atan2(z, zr)  # 2D (one transverse dimension)
            env_t = self.envelope(t - transverse**2 * inv_r / (2.0 * c))
            env_r = np.exp(-((transverse / w_z) ** 2))
            amp = self.e_peak * math.sqrt(self.waist / w_z)
            phase = (
                self.omega * t
                - self.k * transverse**2 * inv_r / 2.0
                + gouy
                + self.cep_phase
            )
            return amp * env_t * env_r * np.sin(phase)
        sin_t = math.sin(self.incidence_angle)
        cos_t = math.cos(self.incidence_angle)
        t_local = t - transverse * sin_t / c
        env_t = self.envelope(t_local)
        # transverse envelope: projected waist on the injection plane
        w_eff = self.waist / max(cos_t, 1.0e-6)
        env_r = np.exp(-((transverse / w_eff) ** 2))
        phase = self.omega * t - self.k * sin_t * transverse + self.cep_phase
        return self.e_peak * env_t * env_r * np.sin(phase)

    def duration_fwhm_intensity(self) -> float:
        """Intensity FWHM [s] corresponding to the field envelope tau."""
        return self.duration * math.sqrt(2.0 * math.log(2.0))

    def total_emission_time(self) -> float:
        """Time after which the antenna has emitted essentially all energy."""
        return self.t_peak + 4.0 * self.duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GaussianLaser(lambda={self.wavelength:.2e}, a0={self.a0}, "
            f"waist={self.waist:.2e}, tau={self.duration:.2e}, "
            f"theta={self.incidence_angle:.3f})"
        )
