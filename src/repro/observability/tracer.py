"""Structured tracing: hierarchical spans over the PIC step.

The paper's evaluation (Figs. 5-7) is built on per-kernel instrumentation
of the kind AMReX's TinyProfiler gives WarpX; this module is our
equivalent.  A :class:`Tracer` records **spans** — named, nested wall-clock
intervals (step → phase → kernel) carrying per-rank / per-box / per-level
attributes — and exports them either as Chrome ``trace_event`` JSON
(loadable in ``chrome://tracing`` / Perfetto) or as a compact JSONL stream
that :mod:`repro.observability.cli` summarizes post hoc.

Overhead discipline: a disabled tracer (:data:`NULL_TRACER`, the default
wired into the simulations) costs one attribute check or one no-op method
call per instrumentation point — no allocation, no clock read — so the
instrumentation can stay permanently in the step code.

All timestamps come from :func:`repro.diagnostics.timers.now` so spans and
:class:`~repro.diagnostics.timers.Timers` accumulations live on the same
clock axis (lint rule PIC004).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.diagnostics.timers import Timers, now
from repro.exceptions import ObservabilityError


class SpanRecord:
    """One finished span: an interval on the shared clock plus context.

    ``sid``/``parent`` encode the hierarchy (``parent`` is ``-1`` for a
    root span); ``rank`` is the simulated MPI rank the work belongs to
    (``None`` for rank-agnostic spans); ``attrs`` carries free-form
    context such as ``step``, ``box`` or ``level``.
    """

    __slots__ = ("sid", "parent", "name", "cat", "start", "end", "rank", "attrs")

    def __init__(
        self,
        sid: int,
        parent: int,
        name: str,
        cat: str,
        start: float = 0.0,
        end: float = 0.0,
        rank: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.sid = sid
        self.parent = parent
        self.name = name
        self.cat = cat
        self.start = start
        self.end = end
        self.rank = rank
        self.attrs = attrs if attrs is not None else {}

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "kind": "span",
            "sid": self.sid,
            "parent": self.parent,
            "name": self.name,
            "cat": self.cat,
            "ts": self.start,
            "dur": self.duration,
        }
        if self.rank is not None:
            d["rank"] = self.rank
        if self.attrs:
            d["attrs"] = self.attrs
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "SpanRecord":
        try:
            rec = cls(
                sid=int(d["sid"]),
                parent=int(d["parent"]),
                name=str(d["name"]),
                cat=str(d.get("cat", "phase")),
                start=float(d["ts"]),
                rank=d.get("rank"),
                attrs=dict(d.get("attrs", {})),
            )
            rec.end = rec.start + float(d["dur"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ObservabilityError(f"malformed span record {d!r}: {exc}") from exc
        return rec

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanRecord({self.name!r}, cat={self.cat!r}, "
            f"dur={self.duration:.3e}s, sid={self.sid}, parent={self.parent})"
        )


class _NullSpan:
    """The reusable no-op context manager a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that opens a span on enter and records it on exit."""

    __slots__ = ("_tracer", "_rec")

    def __init__(self, tracer: "Tracer", rec: SpanRecord) -> None:
        self._tracer = tracer
        self._rec = rec

    def __enter__(self) -> SpanRecord:
        rec = self._rec
        tracer = self._tracer
        rec.parent = tracer._stack[-1] if tracer._stack else -1
        tracer._stack.append(rec.sid)
        rec.start = now()
        return rec

    def __exit__(self, *exc) -> bool:
        rec = self._rec
        rec.end = now()
        tracer = self._tracer
        tracer._stack.pop()
        tracer.records.append(rec)
        return False


class NullTracer:
    """A tracer that records nothing; every method is a cheap no-op.

    This is what the simulations hold by default, so the span calls in
    the step code are one dispatch away from free when tracing is off.
    """

    enabled = False
    records: List[SpanRecord] = []

    def span(self, name: str, cat: str = "phase", rank=None, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, rank=None, **attrs) -> None:
        return None

    def add_metrics_snapshot(self, snapshot, step=None) -> None:
        return None


#: the shared disabled tracer (identity-compared nowhere; safe to share)
NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """Records hierarchical spans with near-zero cost when disabled.

    Parameters
    ----------
    enabled:
        When ``False`` the tracer behaves exactly like
        :data:`NULL_TRACER` (shared no-op span, nothing recorded) but can
        be re-enabled later.
    rank:
        Default rank stamped on spans that do not pass one explicitly.
    """

    def __init__(self, enabled: bool = True, rank: Optional[int] = None) -> None:
        self.enabled = bool(enabled)
        self.rank = rank
        self.records: List[SpanRecord] = []
        #: metrics snapshots interleaved with the spans (step-stamped)
        self.metric_records: List[Dict[str, Any]] = []
        self._stack: List[int] = []
        self._next_sid = 0

    # -- recording ---------------------------------------------------------
    def span(self, name: str, cat: str = "phase", rank=None, **attrs):
        """Open a span; use as ``with tracer.span("gather", box=3): ...``."""
        if not self.enabled:
            return _NULL_SPAN
        sid = self._next_sid
        self._next_sid += 1
        rec = SpanRecord(
            sid, -1, name, cat,
            rank=rank if rank is not None else self.rank,
            attrs=attrs or None,
        )
        return _SpanContext(self, rec)

    def instant(self, name: str, rank=None, **attrs) -> None:
        """Record a zero-duration marker (e.g. a load-balance event)."""
        if not self.enabled:
            return
        sid = self._next_sid
        self._next_sid += 1
        t = now()
        rec = SpanRecord(
            sid,
            self._stack[-1] if self._stack else -1,
            name,
            "instant",
            start=t,
            end=t,
            rank=rank if rank is not None else self.rank,
            attrs=attrs or None,
        )
        self.records.append(rec)

    def add_metrics_snapshot(self, snapshot: Dict[str, Any], step=None) -> None:
        """Attach a metrics snapshot to the trace stream (step-stamped)."""
        if not self.enabled:
            return
        self.metric_records.append(
            {"kind": "metrics", "step": step, "ts": now(), "data": dict(snapshot)}
        )

    def clear(self) -> None:
        self.records.clear()
        self.metric_records.clear()
        self._stack.clear()

    # -- export ------------------------------------------------------------
    def to_chrome(self, path: str) -> None:
        """Write the Chrome ``trace_event`` JSON (``chrome://tracing``).

        Spans become ``"ph": "X"`` complete events; the rank maps to the
        ``pid`` lane so a multi-rank trace renders one track per rank.
        """
        events = []
        for rec in self.records:
            pid = rec.rank if rec.rank is not None else 0
            event = {
                "name": rec.name,
                "cat": rec.cat,
                "ph": "i" if rec.cat == "instant" else "X",
                "ts": rec.start * 1e6,
                "pid": pid,
                "tid": pid,
                "args": dict(rec.attrs),
            }
            if rec.cat != "instant":
                event["dur"] = rec.duration * 1e6
            else:
                event["s"] = "p"
            events.append(event)
        with open(path, "w", encoding="utf8") as fh:
            json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)

    def to_jsonl(self, path: str) -> None:
        """Write the compact JSONL stream (one record per line).

        Span and metrics records interleave; each line is a standalone
        JSON object tagged with ``"kind"`` so readers can route them.
        """
        with open(path, "w", encoding="utf8") as fh:
            for rec in self.records:
                fh.write(json.dumps(rec.to_dict()) + "\n")
            for mrec in self.metric_records:
                fh.write(json.dumps(mrec) + "\n")


def read_jsonl(path: str) -> Tuple[List[SpanRecord], List[Dict[str, Any]]]:
    """Parse a JSONL trace back into (spans, metrics snapshots)."""
    spans: List[SpanRecord] = []
    metrics: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"{path}:{lineno}: invalid JSON in trace: {exc}"
                ) from exc
            kind = obj.get("kind")
            if kind == "span":
                spans.append(SpanRecord.from_dict(obj))
            elif kind == "metrics":
                metrics.append(obj)
            else:
                raise ObservabilityError(
                    f"{path}:{lineno}: unknown trace record kind {kind!r}"
                )
    return spans, metrics


def build_tree(spans: List[SpanRecord]) -> Dict[int, List[SpanRecord]]:
    """Children-by-parent index of a span list (roots under key ``-1``).

    Children keep recording order (exit order), which for the step/phase
    structure of the PIC loop is chronological within a parent.
    """
    children: Dict[int, List[SpanRecord]] = {}
    ids = {rec.sid for rec in spans}
    for rec in spans:
        parent = rec.parent if rec.parent in ids else -1
        children.setdefault(parent, []).append(rec)
    return children


@contextmanager
def phase_span(timers: Timers, tracer, name: str, **attrs) -> Iterator[None]:
    """One PIC phase: a :class:`Timers` accumulation wrapped in a span.

    The bridge between the legacy per-kernel timer bookkeeping and the
    span hierarchy — both see the same interval, so ``Timers.report()``
    and the trace agree on where the time went.
    """
    with tracer.span(name, cat="phase", **attrs):
        with timers.timer(name):
            yield
