"""Persist and replay SimComm event logs as JSONL.

One header line identifies the format and rank count; every following
line is one :class:`~repro.parallel.comm.CommEvent` as a flat JSON
object.  The reader hands back a :class:`CommLogReplay`, which quacks
like a communicator as far as the replay checkers are concerned
(``.log`` and ``.n_ranks``), so a recorded run can be audited offline::

    from repro.observability.commlog import read_comm_log, write_comm_log
    from repro.analysis.commcheck import check_all

    write_comm_log(sim.comm, "run.commlog.jsonl")
    ...
    check_all(read_comm_log("run.commlog.jsonl")).raise_if_failed()

This is also how the CI fixture suite feeds seeded-bug event logs
(``--comm-log`` on ``python -m repro.analysis``) to the happens-before
checker without re-running the simulation that produced them.
"""

from __future__ import annotations

import json
from typing import List

from repro.exceptions import AnalysisError

#: the on-disk format identifier of the header line
LOG_FORMAT_KIND = "comm_log"

#: current format version (bump on incompatible field changes)
LOG_FORMAT_VERSION = 1

_EVENT_FIELDS = ("seq", "kind", "src", "dst", "tag", "nbytes", "detail")


class CommLogReplay:
    """A deserialized event log, replayable by the commcheck detectors."""

    def __init__(self, log: List, n_ranks: int, path: str = "") -> None:
        self.log = log
        self.n_ranks = n_ranks
        self.path = path

    def __len__(self) -> int:
        return len(self.log)


def write_comm_log(comm, path: str) -> int:
    """Serialize ``comm``'s event log to ``path``; returns events written.

    ``comm`` is duck-typed: anything with ``.log`` (CommEvent sequence)
    and ``.n_ranks`` works, including a :class:`CommLogReplay`.
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            json.dumps(
                {
                    "kind": LOG_FORMAT_KIND,
                    "version": LOG_FORMAT_VERSION,
                    "n_ranks": int(comm.n_ranks),
                }
            )
            + "\n"
        )
        for ev in comm.log:
            handle.write(
                json.dumps(
                    {name: getattr(ev, name) for name in _EVENT_FIELDS}
                )
                + "\n"
            )
    return len(comm.log)


def read_comm_log(path: str) -> CommLogReplay:
    """Load a comm log written by :func:`write_comm_log`."""
    # imported lazily: repro.parallel pulls in the distributed driver,
    # which imports this package back (tracer) — a module-scope import
    # here would create a cycle
    from repro.parallel.comm import CommEvent

    events: List[CommEvent] = []
    try:
        handle = open(path, encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"cannot read comm log {path!r}: {exc}")
    with handle:
        header_line = handle.readline()
        try:
            header = json.loads(header_line) if header_line.strip() else {}
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"{path}: malformed comm-log header: {exc}")
        if header.get("kind") != LOG_FORMAT_KIND:
            raise AnalysisError(
                f"{path}: not a comm log (header kind "
                f"{header.get('kind')!r}, expected {LOG_FORMAT_KIND!r})"
            )
        if header.get("version") != LOG_FORMAT_VERSION:
            raise AnalysisError(
                f"{path}: unsupported comm-log version "
                f"{header.get('version')!r} (reader speaks "
                f"{LOG_FORMAT_VERSION})"
            )
        n_ranks = int(header.get("n_ranks", 0))
        for lineno, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                events.append(
                    CommEvent(
                        seq=int(record["seq"]),
                        kind=str(record["kind"]),
                        src=int(record["src"]),
                        dst=int(record["dst"]),
                        tag=str(record["tag"]),
                        nbytes=int(record["nbytes"]),
                        detail=int(record.get("detail", 0)),
                    )
                )
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise AnalysisError(
                    f"{path}:{lineno}: malformed comm-log event: {exc}"
                )
    return CommLogReplay(events, n_ranks, path=path)
