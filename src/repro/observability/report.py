"""Run/step reports: the text dashboard over timers, metrics and comm.

Upgrades :meth:`Timers.report` from a flat breakdown into the quantities
the paper actually tabulates: per-step percentiles (the step-time
distribution behind Fig. 6), per-rank load and imbalance ratios (the
Sec. V.C load-balancing metric), and the rank-pair communication matrix
(SimComm's byte accounting rendered as the heatmap the performance model
consumes).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.diagnostics.timers import Timers

#: the percentiles every report quotes (median, tail, far tail)
REPORT_PERCENTILES = (50.0, 90.0, 99.0)


def percentiles(
    samples: Sequence[float], qs: Sequence[float] = REPORT_PERCENTILES
) -> Dict[str, float]:
    """``{"p50": ..., "p90": ..., ...}`` over ``samples`` (empty -> zeros)."""
    if len(samples) == 0:
        return {f"p{q:g}": 0.0 for q in qs}
    arr = np.asarray(samples, dtype=np.float64)
    values = np.percentile(arr, list(qs))
    return {f"p{q:g}": float(v) for q, v in zip(qs, values)}


def _human_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0 or unit == "GiB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024.0
    return f"{n:.1f}GiB"  # pragma: no cover - unreachable


class StepReport:
    """One step's wall time plus its rank in the run's distribution."""

    __slots__ = ("index", "wall", "share_of_p50")

    def __init__(self, index: int, wall: float, p50: float) -> None:
        self.index = index
        self.wall = wall
        #: this step relative to the median (>1 = slower than typical)
        self.share_of_p50 = wall / p50 if p50 > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StepReport(step={self.index}, wall={self.wall:.3e}s)"


class RunReport:
    """Aggregated view of a finished (or in-flight) run.

    Build with :meth:`from_timers` for a single simulation or
    :meth:`from_distributed` to also fold in the communicator matrix and
    the load-balance gauges of a
    :class:`~repro.parallel.distributed.DistributedSimulation`.
    """

    def __init__(
        self,
        timers: Timers,
        comm_matrix: Optional[np.ndarray] = None,
        rank_loads: Optional[np.ndarray] = None,
        imbalance: Optional[float] = None,
        lb_events: Optional[List[int]] = None,
        metrics_snapshot: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.timers = timers
        self.comm_matrix = comm_matrix
        self.rank_loads = rank_loads
        self.imbalance = imbalance
        self.lb_events = lb_events
        self.metrics_snapshot = metrics_snapshot

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_timers(cls, timers: Timers) -> "RunReport":
        return cls(timers)

    @classmethod
    def from_distributed(cls, sim) -> "RunReport":
        """Report over a ``DistributedSimulation`` and its comm/LB state."""
        comm = sim.comm
        n = comm.n_ranks
        matrix = np.zeros((n, n), dtype=np.float64)
        for (src, dst), nbytes in comm.pair_bytes.items():
            matrix[src, dst] = nbytes
        costs = sim.cost_model.measured(range(len(sim.boxes)), default=0.0)
        loads = np.zeros(n, dtype=np.float64)
        for i, cost in enumerate(costs):
            loads[sim.dm.rank_of(i)] += cost
        imbalance = sim.dm.imbalance(costs) if np.any(loads > 0) else 1.0
        snapshot = sim.metrics.snapshot() if sim.metrics is not None else None
        return cls(
            sim.timers,
            comm_matrix=matrix,
            rank_loads=loads,
            imbalance=float(imbalance),
            lb_events=list(sim.lb_events),
            metrics_snapshot=snapshot,
        )

    # -- derived quantities --------------------------------------------------
    def steps(self) -> List[StepReport]:
        times = self.timers.step_times
        p50 = percentiles(times)["p50"]
        return [StepReport(i, t, p50) for i, t in enumerate(times)]

    def step_percentiles(self) -> Dict[str, float]:
        return percentiles(self.timers.step_times)

    def slowest_steps(self, n: int = 3) -> List[StepReport]:
        return sorted(self.steps(), key=lambda s: -s.wall)[:n]

    # -- rendering -----------------------------------------------------------
    def render(self, top: int = 12) -> str:
        """The text dashboard: steps, percentiles, timers, comm, balance."""
        t = self.timers
        lines: List[str] = ["== run report =="]
        n_steps = len(t.step_times)
        total = float(np.sum(t.step_times)) if n_steps else t.total()
        lines.append(f"steps: {n_steps}   wall: {total:.4f}s")
        if n_steps:
            pct = self.step_percentiles()
            avg = total / n_steps
            pct_txt = "  ".join(f"{k}={v * 1e3:.2f}ms" for k, v in pct.items())
            lines.append(f"step time: mean={avg * 1e3:.2f}ms  {pct_txt}")
            slow = self.slowest_steps(3)
            slow_txt = ", ".join(
                f"#{s.index} ({s.wall * 1e3:.2f}ms, {s.share_of_p50:.1f}x p50)"
                for s in slow
            )
            lines.append(f"slowest steps: {slow_txt}")
        lines.append("")
        lines.append(self._render_timer_table(top))
        if self.rank_loads is not None and self.rank_loads.size:
            lines.append("")
            lines.append(self._render_balance())
        if self.comm_matrix is not None and self.comm_matrix.size:
            lines.append("")
            lines.append(render_comm_matrix(self.comm_matrix))
        return "\n".join(lines)

    def _render_timer_table(self, top: int) -> str:
        t = self.timers
        lines = ["phase breakdown (top by total time):"]
        grand = t.total()
        items = sorted(t.totals.items(), key=lambda kv: -kv[1])[:top]
        width = max([len(n) for n, _ in items], default=10)
        for name, tot in items:
            share = 100.0 * tot / grand if grand > 0 else 0.0
            calls = t.counts[name]
            per_call = tot / calls if calls else 0.0
            lines.append(
                f"  {name:<{width}s} {tot:9.4f}s {share:5.1f}%  "
                f"{calls:6d} calls  {per_call * 1e6:9.1f}us/call"
            )
        return "\n".join(lines)

    def _render_balance(self) -> str:
        loads = self.rank_loads
        lines = ["rank balance (measured per-box cost):"]
        mean = loads.mean() if loads.size else 0.0
        peak = loads.max() if loads.size else 0.0
        bar_width = 32
        for r, load in enumerate(loads):
            frac = load / peak if peak > 0 else 0.0
            bar = "#" * max(int(round(frac * bar_width)), 1 if load > 0 else 0)
            lines.append(f"  rank {r:3d} {load:9.4f}s  |{bar:<{bar_width}s}|")
        if self.imbalance is not None:
            lines.append(
                f"  imbalance (max/mean): {self.imbalance:.3f}"
                f"   (mean load {mean:.4f}s)"
            )
        if self.lb_events:
            lines.append(
                f"  dynamic LB events: {len(self.lb_events)} "
                f"(boxes moved: {self.lb_events})"
            )
        return "\n".join(lines)


def render_comm_matrix(matrix, title: str = "comm bytes (src -> dst):") -> str:
    """Text heatmap of the rank-pair byte matrix."""
    matrix = np.asarray(matrix, dtype=np.float64)
    n = matrix.shape[0]
    lines = [title]
    header = "  src\\dst " + " ".join(f"{d:>10d}" for d in range(n))
    lines.append(header)
    for src in range(n):
        cells = " ".join(f"{_human_bytes(matrix[src, dst]):>10s}" for dst in range(n))
        lines.append(f"  {src:7d}  {cells}")
    total = matrix.sum()
    peak = matrix.max() if matrix.size else 0.0
    lines.append(
        f"  total {_human_bytes(float(total))}, "
        f"hottest pair {_human_bytes(float(peak))}"
    )
    return "\n".join(lines)
