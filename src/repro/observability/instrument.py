"""Wiring: attach a tracer and a metrics registry to a live simulation.

The simulations carry permanently-instrumented step code (span calls
against a :data:`~repro.observability.tracer.NULL_TRACER` by default);
this module swaps the real recorders in and adds the per-step metrics
observer that mirrors the communicator, load-balancer and resilience
internals into the :class:`~repro.observability.metrics.MetricsRegistry`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import Tracer


class DistributedObserver:
    """Per-step mirror of a ``DistributedSimulation``'s internals.

    Called at the end of every step (after the step counter advanced).
    Counters advance by the *delta* since the previous observation, so
    their totals always equal the cumulative :class:`SimComm
    <repro.parallel.comm.SimComm>` accounting — the acceptance contract
    of the metrics snapshot.
    """

    def __init__(self, sim, metrics: MetricsRegistry) -> None:
        self.sim = sim
        self.metrics = metrics
        self._prev_pair_bytes = dict(sim.comm.pair_bytes)
        self._prev_messages = int(sim.comm.messages_sent.sum())
        self._prev_collectives = int(sim.comm.collective_calls)
        self._prev_lb_events = len(sim.lb_events)
        self._prev_recovery = self._recovery_totals()
        # halo / LB-migration traffic: mirrored as deltas of the honest
        # counters the pairwise exchange maintains on the simulation
        self._prev_halo_samples = int(sim.halo_samples)
        self._prev_halo_bytes = int(sim.halo_payload_bytes)
        self._prev_halo_messages = int(sim.halo_messages)
        self._prev_moved_bytes = int(sim.lb_moved_bytes)

    def _recovery_totals(self) -> Tuple[int, int, int]:
        res = self.sim.resilience
        if res is None or res.policy is None:
            return (0, 0, 0)
        stats = res.policy.stats
        return (stats.retries, stats.redeliveries, stats.dedups)

    def observe(self) -> None:
        sim = self.sim
        m = self.metrics
        comm = sim.comm

        # particles: pushed this step (counter) and currently live
        # (gauge); owned boxes only, so SPMD per-rank snapshots sum to
        # the global count
        live = sim.local_particles()
        m.counter("particles.pushed").add(live)
        m.gauge("particles.live").set(live)

        # communication: per-pair byte counters advance by the step delta
        for pair, nbytes in comm.pair_bytes.items():
            delta = nbytes - self._prev_pair_bytes.get(pair, 0)
            if delta > 0:
                m.counter("comm.pair_bytes", src=pair[0], dst=pair[1]).add(delta)
        self._prev_pair_bytes = dict(comm.pair_bytes)
        messages = int(comm.messages_sent.sum())
        m.counter("comm.messages").add(messages - self._prev_messages)
        self._prev_messages = messages
        m.counter("comm.collectives").add(
            comm.collective_calls - self._prev_collectives
        )
        self._prev_collectives = int(comm.collective_calls)
        m.gauge("comm.spilled_bytes").set(comm.spilled_bytes)

        # halo exchange: guard samples applied (local copies included),
        # aggregated cross-rank payload bytes and message count — all
        # measured by the pairwise exchange, not estimated
        m.counter("halo.guard_cells").add(
            int(sim.halo_samples) - self._prev_halo_samples
        )
        m.counter("halo.bytes").add(
            int(sim.halo_payload_bytes) - self._prev_halo_bytes
        )
        m.counter("halo.messages").add(
            int(sim.halo_messages) - self._prev_halo_messages
        )
        self._prev_halo_samples = int(sim.halo_samples)
        self._prev_halo_bytes = int(sim.halo_payload_bytes)
        self._prev_halo_messages = int(sim.halo_messages)

        # load balance: the imbalance gauge matches DistributionMapping
        # over the alive ranks (a dead rank's zero load is not imbalance)
        costs = sim.cost_model.measured(range(len(sim.boxes)), default=0.0)
        if any(c > 0 for c in costs):
            imbalance = sim.dm.imbalance(costs, exclude_ranks=sim.dead_ranks)
            m.gauge("lb.imbalance").set(imbalance)
            m.histogram("lb.box_cost").observe(max(costs))
        new_events = sim.lb_events[self._prev_lb_events:]
        if new_events:
            m.counter("lb.rebalances").add(len(new_events))
            m.counter("lb.boxes_moved").add(sum(new_events))
        self._prev_lb_events = len(sim.lb_events)
        moved_delta = int(sim.lb_moved_bytes) - self._prev_moved_bytes
        if moved_delta > 0:
            m.counter("lb.moved_bytes").add(moved_delta)
        self._prev_moved_bytes = int(sim.lb_moved_bytes)

        # resilience: mirror the recovery-policy stats as counters
        retries, redeliveries, dedups = self._recovery_totals()
        p_retries, p_redeliveries, p_dedups = self._prev_recovery
        if retries > p_retries:
            m.counter("resilience.retransmissions").add(retries - p_retries)
        if redeliveries > p_redeliveries:
            m.counter("resilience.redeliveries").add(redeliveries - p_redeliveries)
        if dedups > p_dedups:
            m.counter("resilience.dedups").add(dedups - p_dedups)
        self._prev_recovery = (retries, redeliveries, dedups)
        if sim.dead_ranks:
            m.gauge("resilience.dead_ranks").set(len(sim.dead_ranks))


def attach_observability(
    sim,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    snapshot_interval: int = 0,
) -> Tuple[Tracer, MetricsRegistry]:
    """Enable tracing and metrics on a simulation; returns both recorders.

    Works on any of the simulation classes; the distributed simulation
    additionally gets the :class:`DistributedObserver` (comm heatmap,
    imbalance gauge, resilience counters) and — with a positive
    ``snapshot_interval`` — periodic metrics snapshots interleaved into
    the trace stream (the imbalance *timeline* the CLI renders).
    """
    if tracer is None:
        tracer = Tracer(enabled=True)
    if metrics is None:
        metrics = MetricsRegistry()
    sim.tracer = tracer
    sim.metrics = metrics
    if hasattr(sim, "comm"):  # a DistributedSimulation
        sim._observer = DistributedObserver(sim, metrics)
        sim._snapshot_interval = int(snapshot_interval)
        if sim.resilience is not None:
            sim.resilience.metrics = metrics
    return tracer, metrics
