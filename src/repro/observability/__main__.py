"""Entry point for ``python -m repro.observability <trace.jsonl>``."""

import sys

from repro.observability.cli import main

if __name__ == "__main__":
    sys.exit(main())
