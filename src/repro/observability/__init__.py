"""Observability: structured tracing, metrics, and run reports.

The measurement substrate behind every performance claim this
reproduction makes (and behind the paper's Figs. 5-7 / Tables 3-4 in the
original): hierarchical spans (step → phase → kernel, per rank/box/
level), a counters/gauges/histograms registry mirroring the
communicator and load-balancer internals, and text dashboards plus a
trace-summarizing CLI (``python -m repro.observability``).

Quick start::

    from repro.observability import attach_observability

    tracer, metrics = attach_observability(sim)
    sim.step(100)
    tracer.to_chrome("trace.json")      # chrome://tracing
    tracer.to_jsonl("trace.jsonl")      # python -m repro.observability
    print(RunReport.from_timers(sim.timers).render())
"""

from repro.observability.commlog import (
    CommLogReplay,
    read_comm_log,
    write_comm_log,
)
from repro.observability.instrument import DistributedObserver, attach_observability
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    comm_matrix_from_snapshot,
    metric_id,
    parse_metric_id,
)
from repro.observability.report import (
    RunReport,
    StepReport,
    percentiles,
    render_comm_matrix,
)
from repro.observability.tracer import (
    NULL_TRACER,
    SpanRecord,
    Tracer,
    build_tree,
    phase_span,
    read_jsonl,
)

__all__ = [
    "CommLogReplay",
    "read_comm_log",
    "write_comm_log",
    "DistributedObserver",
    "attach_observability",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "comm_matrix_from_snapshot",
    "metric_id",
    "parse_metric_id",
    "RunReport",
    "StepReport",
    "percentiles",
    "render_comm_matrix",
    "NULL_TRACER",
    "SpanRecord",
    "Tracer",
    "build_tree",
    "phase_span",
    "read_jsonl",
]
