"""Metrics registry: counters, gauges and histograms for the PIC stack.

Where the tracer answers "where did the time go", the registry answers
"how much work moved": particles pushed, bytes and messages per rank
pair, guard-cell fill volume, load-imbalance factor, retransmissions,
checkpoint bytes.  The shapes follow the Prometheus data model — a
metric is a *name* plus a sorted *label set* — but everything lives in
process and serializes to plain JSON.

Snapshot/delta semantics: :meth:`MetricsRegistry.snapshot` freezes every
metric into a JSON-serializable dict; :meth:`MetricsRegistry.delta`
subtracts a previous snapshot from the current one (counters and
histogram counts diff; gauges report their current value) so per-step or
per-phase accounting needs no manual bookkeeping.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from repro.exceptions import ObservabilityError

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def metric_id(name: str, labels: Dict[str, Any]) -> str:
    """The flat ``name{k=v,...}`` identifier used in snapshots."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in _label_key(labels))
    return f"{name}{{{inner}}}"


def parse_metric_id(mid: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`metric_id`: ``"a{x=1}"`` -> ``("a", {"x": "1"})``."""
    if "{" not in mid:
        return mid, {}
    name, _, rest = mid.partition("{")
    if not rest.endswith("}"):
        raise ObservabilityError(f"malformed metric id {mid!r}")
    labels: Dict[str, str] = {}
    body = rest[:-1]
    if body:
        for part in body.split(","):
            k, sep, v = part.partition("=")
            if not sep:
                raise ObservabilityError(f"malformed metric id {mid!r}")
            labels[k] = v
    return name, labels


class Counter:
    """Monotonically increasing count (events, bytes, particles)."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError("counters only go up; use a gauge")
        self.value += amount

    inc = add

    def to_value(self) -> float:
        return self.value


class Gauge:
    """A value that goes up and down (imbalance factor, live particles)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount

    def to_value(self) -> float:
        return self.value


class Histogram:
    """Streaming distribution summary: count/sum/min/max + mean.

    Deliberately reservoir-free: per-step *percentiles* come from the
    full ``Timers.step_times`` history in
    :mod:`repro.observability.report`; the histogram covers quantities
    where only the aggregate shape matters (message sizes, box costs).
    """

    kind = "histogram"
    __slots__ = ("count", "sum", "min", "max")

    def __init__(self) -> None:
        self.count: int = 0
        self.sum: float = 0.0
        self.min: float = float("inf")
        self.max: float = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def to_value(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.sum / self.count,
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """The one place every subsystem registers what it measured.

    Metrics are created on first access (``registry.counter("comm.bytes",
    src=0, dst=1).add(n)``); re-requesting an existing name with a
    different kind is an :class:`~repro.exceptions.ObservabilityError` —
    a metric cannot silently change meaning mid-run.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelKey], Any] = {}

    def _get(self, kind: str, name: str, labels: Dict[str, Any]):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = _KINDS[kind]()
            self._metrics[key] = metric
        elif metric.kind != kind:
            raise ObservabilityError(
                f"metric {metric_id(name, labels)!r} already registered as "
                f"{metric.kind}, requested as {kind}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get("histogram", name, labels)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return any(n == name for n, _ in self._metrics)

    def metrics(self) -> Iterable[Tuple[str, Dict[str, str], Any]]:
        """Iterate (name, labels, metric) in sorted id order."""
        for (name, lkey), metric in sorted(self._metrics.items()):
            yield name, dict(lkey), metric

    # -- snapshot / delta ---------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Freeze every metric into ``{metric_id: value}``.

        Counters and gauges flatten to numbers; histograms to their
        summary dict.  The result is JSON-serializable as-is.
        """
        out: Dict[str, Any] = {}
        for name, labels, metric in self.metrics():
            out[metric_id(name, labels)] = metric.to_value()
        return out

    def delta(self, previous: Dict[str, Any]) -> Dict[str, Any]:
        """Current snapshot minus ``previous`` (a prior :meth:`snapshot`).

        Counter values and histogram count/sum subtract; gauges keep
        their current value (a gauge *is* its latest reading).  Metrics
        absent from ``previous`` diff against zero.
        """
        out: Dict[str, Any] = {}
        for name, labels, metric in self.metrics():
            mid = metric_id(name, labels)
            prev = previous.get(mid)
            if metric.kind == "counter":
                out[mid] = metric.value - (float(prev) if prev is not None else 0.0)
            elif metric.kind == "gauge":
                out[mid] = metric.value
            else:
                cur = metric.to_value()
                if isinstance(prev, dict):
                    out[mid] = {
                        "count": cur["count"] - prev.get("count", 0),
                        "sum": cur["sum"] - prev.get("sum", 0.0),
                    }
                else:
                    out[mid] = {"count": cur["count"], "sum": cur["sum"]}
        return out

    # -- persistence --------------------------------------------------------
    def dump_json(self, path: str) -> None:
        with open(path, "w", encoding="utf8") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)


#: metrics that are per-rank views of one global quantity: merge by max,
#: not sum (every rank reports the same imbalance / dead-rank / count of
#: collective operations it took part in)
DEFAULT_MAX_MERGE = ("lb.imbalance", "resilience.dead_ranks",
                     "comm.collectives", "lb.rebalances", "lb.boxes_moved")


def merge_snapshots(
    snapshots: Sequence[Dict[str, Any]],
    max_names: Sequence[str] = DEFAULT_MAX_MERGE,
) -> Dict[str, Any]:
    """Fold per-rank metric snapshots into one whole-simulation view.

    Numeric metrics sum across ranks — each rank observes only its own
    share of the work, so the sum is the loopback (all-ranks-local)
    value — except metrics whose *name* part is in ``max_names``, which
    are per-rank readings of the same global quantity and merge by max.
    Histogram summaries merge structurally (count/sum add, min/max fold,
    mean recomputed).
    """
    merged: Dict[str, Any] = {}
    for snap in snapshots:
        for mid, value in snap.items():
            if isinstance(value, dict):
                prev = merged.setdefault(
                    mid,
                    {"count": 0, "sum": 0.0,
                     "min": float("inf"), "max": float("-inf")},
                )
                prev["count"] += value.get("count", 0)
                prev["sum"] += value.get("sum", 0.0)
                if value.get("count", 0) > 0:
                    prev["min"] = min(prev["min"], value.get("min", 0.0))
                    prev["max"] = max(prev["max"], value.get("max", 0.0))
                continue
            name, _labels = parse_metric_id(mid)
            if name in max_names:
                merged[mid] = max(merged.get(mid, float("-inf")), value)
            else:
                merged[mid] = merged.get(mid, 0) + value
    for mid, value in merged.items():
        if isinstance(value, dict):
            if value["count"] == 0:
                merged[mid] = {"count": 0, "sum": 0.0, "min": 0.0,
                               "max": 0.0, "mean": 0.0}
            else:
                value["mean"] = value["sum"] / value["count"]
    return merged


def comm_matrix_from_snapshot(
    snapshot: Dict[str, Any], n_ranks: Optional[int] = None
):
    """Rebuild the rank-pair byte matrix from ``comm.pair_bytes`` metrics.

    Returns an ``(n_ranks, n_ranks)`` nested list (row = source rank) —
    plain lists so the CLI needs nothing beyond the JSON it read.
    """
    pairs: Dict[Tuple[int, int], float] = {}
    top = 0
    for mid, value in snapshot.items():
        name, labels = parse_metric_id(mid)
        if name != "comm.pair_bytes":
            continue
        try:
            src, dst = int(labels["src"]), int(labels["dst"])
        except (KeyError, ValueError) as exc:
            raise ObservabilityError(f"bad comm.pair_bytes labels in {mid!r}") from exc
        pairs[(src, dst)] = float(value)
        top = max(top, src + 1, dst + 1)
    n = n_ranks if n_ranks is not None else top
    matrix = [[0.0] * n for _ in range(n)]
    for (src, dst), nbytes in pairs.items():
        if src < n and dst < n:
            matrix[src][dst] = nbytes
    return matrix
