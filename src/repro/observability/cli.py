"""Command-line trace summarizer: ``python -m repro.observability``.

Reads a JSONL trace written by :meth:`Tracer.to_jsonl
<repro.observability.tracer.Tracer.to_jsonl>` and renders what the
paper's evaluation would ask of a recorded run: where the time went (top
spans, per category and per rank), the rank-pair communication matrix,
and the load-imbalance timeline across the interleaved metrics
snapshots.
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict
from typing import Any, Dict, List, Optional, Sequence

from repro.exceptions import ObservabilityError
from repro.observability.metrics import comm_matrix_from_snapshot, parse_metric_id
from repro.observability.report import render_comm_matrix
from repro.observability.tracer import SpanRecord, build_tree, read_jsonl


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observability",
        description="Summarize a recorded JSONL trace of a PIC run.",
    )
    parser.add_argument("trace", help="trace file written by Tracer.to_jsonl")
    parser.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="rows in the top-span table (default 10)",
    )
    parser.add_argument(
        "--tree", action="store_true",
        help="also print the aggregated span hierarchy",
    )
    parser.add_argument(
        "--rank", type=int, default=None, metavar="R",
        help="restrict the span tables to one rank",
    )
    return parser


def summarize_spans(spans: Sequence[SpanRecord]) -> Dict[str, Dict[str, float]]:
    """Aggregate spans by name: total/self time, calls, category."""
    children = build_tree(list(spans))
    by_id = {rec.sid: rec for rec in spans}
    agg: Dict[str, Dict[str, float]] = defaultdict(
        lambda: {"total": 0.0, "self": 0.0, "calls": 0}
    )
    cats: Dict[str, str] = {}
    for rec in spans:
        if rec.cat == "instant":
            continue
        child_time = sum(
            c.duration for c in children.get(rec.sid, []) if c.cat != "instant"
        )
        entry = agg[rec.name]
        entry["total"] += rec.duration
        entry["self"] += max(rec.duration - child_time, 0.0)
        entry["calls"] += 1
        cats[rec.name] = rec.cat
    for name, entry in agg.items():
        entry["cat"] = cats[name]
    # a child's time is also inside its parent's total; "self" removes it
    _ = by_id
    return dict(agg)


def _render_top(agg: Dict[str, Dict[str, Any]], top: int) -> List[str]:
    wall = sum(e["self"] for e in agg.values())
    rows = sorted(agg.items(), key=lambda kv: -kv[1]["self"])[:top]
    width = max([len(name) for name, _ in rows], default=8)
    lines = ["top spans (by self time):"]
    lines.append(
        f"  {'name':<{width}s} {'cat':<8s} {'self':>10s} {'total':>10s} "
        f"{'share':>6s} {'calls':>7s}"
    )
    for name, e in rows:
        share = 100.0 * e["self"] / wall if wall > 0 else 0.0
        lines.append(
            f"  {name:<{width}s} {e['cat']:<8s} {e['self']:9.4f}s "
            f"{e['total']:9.4f}s {share:5.1f}% {int(e['calls']):7d}"
        )
    return lines


def _render_ranks(spans: Sequence[SpanRecord]) -> List[str]:
    per_rank: Dict[int, float] = defaultdict(float)
    for rec in spans:
        if rec.cat == "step" and rec.rank is not None:
            per_rank[rec.rank] += rec.duration
    if not per_rank:
        return []
    lines = ["per-rank step time:"]
    peak = max(per_rank.values())
    for rank in sorted(per_rank):
        t = per_rank[rank]
        bar = "#" * max(int(round(24 * t / peak)), 1) if peak > 0 else ""
        lines.append(f"  rank {rank:3d} {t:9.4f}s |{bar}")
    return lines


def _render_tree(
    spans: Sequence[SpanRecord], max_children: int = 8
) -> List[str]:
    """Aggregated hierarchy: name-paths merged, child lists truncated."""
    children = build_tree(list(spans))

    # merge sibling spans of the same name under the same parent *name path*
    lines = ["span hierarchy (durations summed over repeats):"]

    def merge(records: List[SpanRecord]) -> Dict[str, Dict[str, Any]]:
        merged: Dict[str, Dict[str, Any]] = {}
        for rec in records:
            if rec.cat == "instant":
                continue
            e = merged.setdefault(rec.name, {"dur": 0.0, "calls": 0, "kids": []})
            e["dur"] += rec.duration
            e["calls"] += 1
            e["kids"].extend(children.get(rec.sid, []))
        return merged

    def walk(records: List[SpanRecord], depth: int) -> None:
        merged = merge(records)
        shown = sorted(merged.items(), key=lambda kv: -kv[1]["dur"])
        for name, e in shown[:max_children]:
            lines.append(
                f"  {'  ' * depth}{name:<24s} {e['dur']:9.4f}s "
                f"({e['calls']} calls)"
            )
            if e["kids"]:
                walk(e["kids"], depth + 1)
        if len(shown) > max_children:
            lines.append(f"  {'  ' * depth}... {len(shown) - max_children} more")

    walk(children.get(-1, []), 0)
    return lines


def _render_imbalance_timeline(
    metric_records: Sequence[Dict[str, Any]]
) -> List[str]:
    points = []
    for mrec in metric_records:
        data = mrec.get("data", {})
        for mid, value in data.items():
            name, _ = parse_metric_id(mid)
            if name == "lb.imbalance":
                points.append((mrec.get("step"), float(value)))
    if not points:
        return []
    lines = ["load-imbalance timeline (max/mean per snapshot):"]
    peak = max(v for _, v in points)
    for step, value in points:
        bar = "#" * max(int(round(24 * value / peak)), 1) if peak > 0 else ""
        label = f"step {step}" if step is not None else "snapshot"
        lines.append(f"  {label:>10s} {value:7.3f} |{bar}")
    return lines


def render_summary(
    spans: Sequence[SpanRecord],
    metric_records: Sequence[Dict[str, Any]],
    top: int = 10,
    tree: bool = False,
    rank: Optional[int] = None,
) -> str:
    if rank is not None:
        spans = [r for r in spans if r.rank == rank]
    lines: List[str] = [f"trace: {len(spans)} spans, {len(metric_records)} snapshots"]
    if spans:
        agg = summarize_spans(spans)
        lines.append("")
        lines.extend(_render_top(agg, top))
        rank_lines = _render_ranks(spans)
        if rank_lines:
            lines.append("")
            lines.extend(rank_lines)
        if tree:
            lines.append("")
            lines.extend(_render_tree(spans))
    if metric_records:
        latest = metric_records[-1].get("data", {})
        matrix = comm_matrix_from_snapshot(latest)
        if matrix:
            lines.append("")
            lines.append(render_comm_matrix(matrix))
        timeline = _render_imbalance_timeline(metric_records)
        if timeline:
            lines.append("")
            lines.extend(timeline)
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None, stream=None) -> int:
    stream = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        spans, metric_records = read_jsonl(args.trace)
    except OSError as exc:
        print(f"repro.observability: cannot read trace: {exc}", file=stream)
        return 2
    except ObservabilityError as exc:
        print(f"repro.observability: {exc}", file=stream)
        return 2
    try:
        print(
            render_summary(
                spans, metric_records, top=args.top, tree=args.tree, rank=args.rank
            ),
            file=stream,
        )
    except BrokenPipeError:  # downstream pager/head closed the pipe
        pass
    return 0
