"""Lorentz-boosted-frame LWFA on the Galilean spectral solver.

The paper's headline regime: observing the wakefield accelerator from a
frame moving with the wake compresses the range of scales by
``(1+beta)^2 gamma^2`` (Vay 2007), but the plasma then streams through
the grid at ``-beta c`` — the setup where FDTD suffers the numerical
Cherenkov instability and the Galilean/comoving PSATD solver is the
production answer (Table I "Boosted frame" + "Spectral solvers" rows).

Everything here is frame-transformed with :class:`repro.core.
boosted_frame.BoostedFrame`: plasma density ``n' = gamma n``, drift
``u'_x = -gamma beta``, laser wavelength stretched by
``gamma (1+beta)``, and the Galilean velocity of the comoving-current
closure is the plasma drift ``-beta c``.

The scenario is 1D periodic with the pulse initialized as a field fill
(not an antenna), so the *same* pure, periodic fill function can seed
the monolithic reference and every box of a decomposed run — the basis
of the distributed-vs-monolithic validation in
``benchmarks/check_psatd_distributed.py`` and the parity tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.constants import c, m_e, plasma_wavelength, q_e
from repro.core.boosted_frame import BoostedFrame
from repro.core.simulation import Simulation
from repro.grid.yee import STAGGER, YeeGrid
from repro.parallel.distributed import DistributedSimulation
from repro.particles.injection import UniformProfile
from repro.particles.species import Species


@dataclass(frozen=True)
class BoostedLWFASetup:
    """Parameters of the boosted-frame LWFA, lab values in, boosted out.

    Defaults give a small but physical case: a ~0.8 um Ti:Sapphire pulse
    in a 1e24 m^-3 gas seen from a gamma = 2 frame, two boosted plasma
    wavelengths of periodic domain at ~16 cells per boosted laser
    wavelength.
    """

    gamma_boost: float = 2.0
    density_lab: float = 1.0e24
    a0: float = 2.0
    wavelength_lab: float = 0.8e-6
    n_cells: int = 256
    ppc: int = 4
    domain_plasma_wavelengths: float = 2.0
    pulse_sigma_wavelengths: float = 2.0
    pulse_center_frac: float = 0.75
    shape_order: int = 2

    @property
    def frame(self) -> BoostedFrame:
        return BoostedFrame(gamma=self.gamma_boost)

    @property
    def density(self) -> float:
        """Boosted-frame electron density n' = gamma n."""
        return self.frame.transform_density(self.density_lab)

    @property
    def wavelength(self) -> float:
        """Boosted-frame laser wavelength, stretched by gamma (1+beta)."""
        f = self.frame
        return self.wavelength_lab * f.gamma * (1.0 + f.beta)

    @property
    def length(self) -> float:
        """Periodic domain length [m]: boosted plasma wavelengths."""
        return self.domain_plasma_wavelengths * plasma_wavelength(self.density)

    @property
    def dx(self) -> float:
        return self.length / self.n_cells

    @property
    def dt(self) -> float:
        """One light-crossing per cell; PSATD has no Courant limit."""
        return self.dx / c

    @property
    def drift_u(self) -> float:
        """Normalized x momentum of the streaming plasma: -gamma beta."""
        f = self.frame
        return -f.gamma * f.beta

    @property
    def e0(self) -> float:
        """Peak field of the pulse [V/m] from a0 at the boosted frequency."""
        omega = 2.0 * np.pi * c / self.wavelength
        return self.a0 * m_e * c * omega / q_e

    def v_galilean(self) -> Tuple[float, float, float]:
        """Comoving-current velocity for the spectral solver."""
        return self.frame.galilean_velocity()


def pulse_fill(setup: BoostedLWFASetup) -> Callable[[YeeGrid], None]:
    """A pure, periodic fill seeding the boosted pulse into Ey/Bz.

    Writes the *entire* guard-padded arrays as a function of physical
    position wrapped into the periodic domain, so a monolithic grid and
    every guard-padded box grid of a decomposition start bitwise
    identical (the contract of
    :meth:`repro.parallel.distributed.DistributedSimulation.init_fields`).
    The pulse is forward-propagating: ``Bz = Ey / c``.
    """
    length = setup.length
    sigma = setup.pulse_sigma_wavelengths * setup.wavelength
    k0 = 2.0 * np.pi / setup.wavelength
    x_center = setup.pulse_center_frac * length
    e0 = setup.e0

    def fill(grid: YeeGrid) -> None:
        g = grid.guards
        for comp, scale in (("Ey", 1.0), ("Bz", 1.0 / c)):
            stag = STAGGER[comp][0]
            idx = np.arange(grid.shape[0], dtype=np.float64)  # repro: allow(PIC007)
            x = grid.lo[0] + (idx - g + 0.5 * stag) * grid.dx[0]
            u = (x - x_center + 0.5 * length) % length - 0.5 * length
            profile = e0 * np.exp(-(u**2) / (2.0 * sigma**2)) * np.cos(k0 * u)
            grid.fields[comp][...] = (scale * profile).astype(grid.dtype)

    return fill


def build_monolithic(
    setup: Optional[BoostedLWFASetup] = None,
    guards: int = 4,
    galilean: bool = True,
) -> Tuple[Simulation, Species]:
    """The single-grid reference run of the boosted-frame LWFA."""
    setup = setup if setup is not None else BoostedLWFASetup()
    grid = YeeGrid((setup.n_cells,), (0.0,), (setup.length,), guards=guards)
    sim = Simulation(
        grid,
        dt=setup.dt,
        shape_order=setup.shape_order,
        smoothing_passes=0,
        maxwell_solver="psatd",
        v_galilean=setup.v_galilean() if galilean else None,
    )
    electrons = Species("electrons", charge=-q_e, mass=m_e, ndim=1)
    sim.add_species(
        electrons, profile=UniformProfile(setup.density), ppc=setup.ppc
    )
    electrons.momenta[:, 0] = setup.drift_u
    pulse_fill(setup)(grid)
    return sim, electrons


def make_distributed_build(
    setup: Optional[BoostedLWFASetup] = None,
    n_ranks: int = 2,
    max_grid_size: Optional[int] = None,
    psatd_guards: Optional[int] = None,
    galilean: bool = True,
) -> Callable:
    """A pure ``build(transport)`` callable of the decomposed run.

    Suitable for :func:`repro.parallel.mp_transport.run_distributed_local`
    / ``run_distributed_mp``: every SPMD worker calling it constructs the
    identical simulation.
    """
    setup = setup if setup is not None else BoostedLWFASetup()
    if max_grid_size is None:
        max_grid_size = setup.n_cells // n_ranks
    drift = setup.drift_u

    def build(transport=None):
        sim = DistributedSimulation(
            (setup.n_cells,),
            (0.0,),
            (setup.length,),
            n_ranks=n_ranks,
            max_grid_size=max_grid_size,
            dt=setup.dt,
            shape_order=setup.shape_order,
            smoothing_passes=0,
            maxwell_solver="psatd",
            psatd_guards=psatd_guards,
            v_galilean=setup.v_galilean() if galilean else None,
            transport=transport,
        )
        electrons = Species("electrons", charge=-q_e, mass=m_e, ndim=1)

        def streaming(sp):
            sp.momenta[:, 0] = drift

        sim.add_species(
            electrons,
            profile=UniformProfile(setup.density),
            ppc=setup.ppc,
            momentum_init=streaming,
        )
        sim.init_fields(pulse_fill(setup))
        return sim

    return build
