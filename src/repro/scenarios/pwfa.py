"""Beam-driven plasma wakefield accelerator (PWFA) stage.

The paper's closing section aims WarpX at "chains of meter-long plasma
accelerator stages ... for the design of future plasma-based high-energy
physics colliders"; in such chains, later stages are driven not by a laser
but by the particle bunch itself.  This scenario builds that building
block: a relativistic electron bunch drives a wake in a uniform plasma.

The bunch's initial space-charge field comes from the spectral Poisson
solve (a relativistic bunch's field is transverse-dominated; the
quasi-static longitudinal error decays as 1/gamma^2), so the simulation
starts without the spurious transient of an E = 0 launch.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.constants import c, m_e, plasma_wavelength, q_e
from repro.core.simulation import Simulation
from repro.exceptions import ConfigurationError
from repro.grid.poisson import initialize_space_charge
from repro.grid.yee import YeeGrid
from repro.particles.injection import UniformProfile, inject_plasma
from repro.particles.species import Species


def build_pwfa(
    plasma_density: float = 1.0e24,
    beam_gamma: float = 1000.0,
    beam_density_ratio: float = 5.0,
    beam_length_fraction: float = 0.15,
    beam_width_fraction: float = 0.1,
    n_cells: Tuple[int, int] = (96, 64),
    ppc_plasma=(2, 2),
    ppc_beam=(4, 4),
    shape_order: int = 2,
    seed: int = 17,
) -> Tuple[Simulation, Species, Species]:
    """A 2D PWFA stage: drive bunch + uniform plasma, periodic domain.

    The domain is one plasma wavelength long (the wake's natural period)
    and half as wide; the bunch is ``beam_density_ratio`` times denser
    than the plasma (an over-dense, blowout-regime driver), gaussian in
    both planes, placed a quarter-wavelength from the right edge so the
    wake develops behind it.

    Returns ``(simulation, beam, plasma_electrons)``.
    """
    if beam_gamma <= 1.0:
        raise ConfigurationError("the drive bunch must be relativistic")
    lam_p = plasma_wavelength(plasma_density)
    lx, ly = lam_p, 0.5 * lam_p
    grid = YeeGrid(n_cells, (0.0, -ly / 2), (lx, ly / 2), guards=4)
    sim = Simulation(
        grid,
        shape_order=shape_order,
        boundaries="periodic",
        smoothing_passes=1,
    )

    plasma = Species("plasma_electrons", charge=-q_e, mass=m_e, ndim=2)
    sim.add_species(
        plasma,
        profile=UniformProfile(plasma_density),
        ppc=ppc_plasma,
        temperature_uth=1e-4,
        rng=np.random.default_rng(seed),
    )

    beam = Species("drive_beam", charge=-q_e, mass=m_e, ndim=2)
    rng = np.random.default_rng(seed + 1)
    sigma_x = beam_length_fraction * lam_p / 2.355  # fraction = FWHM
    sigma_y = beam_width_fraction * lam_p / 2.355
    x0 = 0.75 * lx
    n_macro = int(np.prod(ppc_beam)) * 200
    pos = np.column_stack([
        rng.normal(x0, sigma_x, n_macro),
        rng.normal(0.0, sigma_y, n_macro),
    ])
    # clip stragglers into the domain
    pos[:, 0] = np.clip(pos[:, 0], 0.05 * lx, 0.95 * lx)
    pos[:, 1] = np.clip(pos[:, 1], -0.45 * ly, 0.45 * ly)
    # total bunch charge: beam_density_ratio * n_p over the bunch volume
    bunch_volume = 2.0 * np.pi * sigma_x * sigma_y
    total_particles = beam_density_ratio * plasma_density * bunch_volume
    weights = np.full(n_macro, total_particles / n_macro)
    u_x = np.sqrt(beam_gamma**2 - 1.0)
    momenta = np.zeros((n_macro, 3), dtype=np.float64)
    momenta[:, 0] = u_x
    sim.add_species(beam)
    beam.add_particles(pos, momenta, weights)

    # self-consistent initial fields of the (net-charged) system
    initialize_space_charge(grid, [plasma, beam], order=shape_order)
    return sim, beam, plasma


def wake_amplitude(sim: Simulation) -> float:
    """Peak on-axis longitudinal field [V/m] — the accelerating gradient."""
    ex = sim.grid.interior_view("Ex")
    mid = ex.shape[1] // 2
    return float(np.max(np.abs(ex[:, mid])))


def cold_wavebreaking_field(plasma_density: float) -> float:
    """The cold non-relativistic wavebreaking limit E0 = m c omega_pe / e —
    the natural unit of wakefield gradients (~96 GV/m at 1e24 m^-3)."""
    from repro.constants import plasma_frequency

    return m_e * c * plasma_frequency(plasma_density) / q_e
