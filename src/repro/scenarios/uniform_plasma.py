"""The uniform-plasma benchmark workload.

This is the paper's scaling/benchmark setup: a thermally quiet uniform
plasma, periodic boundaries, fixed particles per cell.  It doubles as the
single-node workload of the kernel-optimization benchmark (Sec. V.A.1).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.constants import m_e, plasma_wavelength, q_e
from repro.core.simulation import Simulation
from repro.grid.yee import YeeGrid
from repro.particles.injection import UniformProfile
from repro.particles.species import Species


def build_uniform_plasma(
    n_cells: Sequence[int],
    density: float = 1.0e24,
    ppc=2,
    shape_order: int = 2,
    temperature_uth: float = 0.01,
    domain_plasma_wavelengths: float = 1.0,
    smoothing_passes: int = 0,
    sort_interval: int = 0,
    seed: int = 0,
    **sim_kwargs,
) -> Tuple[Simulation, Species]:
    """A periodic uniform electron plasma sized in plasma wavelengths.

    Returns the configured simulation and its electron species.  Extra
    keyword arguments (``kernels=``, ``precision=``, ...) pass through to
    :class:`~repro.core.simulation.Simulation`.
    """
    ndim = len(n_cells)
    length = plasma_wavelength(density) * domain_plasma_wavelengths
    grid = YeeGrid(
        n_cells, (0.0,) * ndim, (length,) * ndim, guards=4
    )
    sim = Simulation(
        grid,
        shape_order=shape_order,
        boundaries="periodic",
        smoothing_passes=smoothing_passes,
        sort_interval=sort_interval,
        **sim_kwargs,
    )
    electrons = Species("electrons", charge=-q_e, mass=m_e, ndim=ndim)
    sim.add_species(
        electrons,
        profile=UniformProfile(density),
        ppc=ppc,
        temperature_uth=temperature_uth,
        rng=np.random.default_rng(seed),
    )
    return sim, electrons
