"""Preconfigured physics scenarios: the uniform-plasma benchmark workload,
a laser-wakefield accelerator in a gas jet, and the paper's hybrid
solid-gas target science case."""

from repro.scenarios.uniform_plasma import build_uniform_plasma
from repro.scenarios.lwfa import build_lwfa
from repro.scenarios.hybrid_target import HybridTargetSetup, build_hybrid_target
from repro.scenarios.pwfa import build_pwfa, wake_amplitude, cold_wavebreaking_field
from repro.scenarios.boosted_lwfa import (
    BoostedLWFASetup,
    build_monolithic as build_boosted_lwfa,
    make_distributed_build as make_boosted_lwfa_build,
    pulse_fill as boosted_lwfa_pulse_fill,
)

__all__ = [
    "build_uniform_plasma",
    "build_lwfa",
    "HybridTargetSetup",
    "build_hybrid_target",
    "build_pwfa",
    "wake_amplitude",
    "cold_wavebreaking_field",
    "BoostedLWFASetup",
    "build_boosted_lwfa",
    "make_boosted_lwfa_build",
    "boosted_lwfa_pulse_fill",
]
