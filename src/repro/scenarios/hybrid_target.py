"""The paper's science case: the hybrid solid-gas target (Fig. 1b).

An intense pulse crosses an underdense gas, reflects off a solid-density
plasma mirror at the far end, extracts a high-charge electron bunch at the
reflection, and the reflected pulse drives a wakefield in the gas that
traps and accelerates the bunch.  The solid needs the fine resolution, so
an MR patch covers it; once the laser has reflected, the patch is removed
(the star of Fig. 6) and a moving window follows the reflected pulse
backward through the gas (the dashed line of Fig. 6).

Reduced-scale substitutions relative to the paper's 4k-node 3D run, all
parameterized so they can be pushed back toward the paper's values:

* 2D (x, y) instead of 3D — the paper's own Fig. 6 comparison is run in
  2D for exactly this reason;
* normal incidence instead of 45 degrees — keeps the reflected pulse on
  the moving-window axis (the antenna supports oblique injection; the
  window is axis-aligned);
* reduced solid density / laser power / domain — laptop scale.

Solid and gas electrons are separate species so the Fig. 7a "beam charge"
(electrons extracted from the solid) is measured directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.constants import c, critical_density, fs, m_e, q_e, um
from repro.core.moving_window import MovingWindow
from repro.core.mr_simulation import MRSimulation
from repro.core.simulation import Simulation
from repro.exceptions import ConfigurationError
from repro.grid.maxwell import cfl_dt
from repro.grid.yee import YeeGrid
from repro.laser.antenna import LaserAntenna
from repro.laser.profiles import GaussianLaser
from repro.particles.injection import BoxProfile, SlabProfile
from repro.particles.species import Species

MODES = ("mr", "highres", "highres_ppc4", "coarse")


@dataclass
class HybridTargetSetup:
    """All physical and numerical parameters of the reduced science case."""

    wavelength: float = 0.8 * um
    a0: float = 4.0
    waist: float = 5.0 * um
    duration: float = 10.0 * fs
    #: domain extent [m]
    x_max: float = 40.0 * um
    y_half: float = 10.0 * um
    #: gas region and density [1/m^3] (the paper's 2.34e18 cm^-3)
    gas_lo: float = 6.0 * um
    gas_hi: float = 28.0 * um
    gas_density: float = 2.34e24
    #: solid (plasma mirror) region; density in critical densities.  The
    #: target has a finite transverse half-size so the MR patch can
    #: enclose it with underdense margins (required for subcycling).
    solid_lo: float = 28.0 * um
    solid_hi: float = 30.0 * um
    solid_nc: float = 30.0
    solid_y_half: Optional[float] = None
    #: coarse cells per laser wavelength and MR refinement ratio
    cells_per_wavelength: float = 10.0
    mr_ratio: int = 2
    #: particles per cell (coarse grid): solid / gas; per-axis counts must
    #: be even so the "ppc/4" Fig. 6 case can halve them per axis
    ppc_solid: Tuple[int, int] = (2, 2)
    ppc_gas: Tuple[int, int] = (2, 2)
    #: transverse cell coarsening relative to longitudinal
    transverse_coarsening: float = 2.0
    shape_order: int = 2
    antenna_x: float = 1.5 * um
    seed: int = 7

    def __post_init__(self) -> None:
        if not (0 < self.gas_lo < self.gas_hi <= self.solid_lo < self.solid_hi < self.x_max):
            raise ConfigurationError("hybrid target regions must be ordered")
        if self.solid_y_half is None:
            self.solid_y_half = 0.6 * self.y_half
        if self.solid_y_half >= self.y_half:
            raise ConfigurationError("the solid must not touch the y boundaries")

    # -- derived quantities -------------------------------------------------
    @property
    def solid_density(self) -> float:
        return self.solid_nc * critical_density(self.wavelength)

    def laser(self) -> GaussianLaser:
        return GaussianLaser(
            wavelength=self.wavelength,
            a0=self.a0,
            waist=self.waist,
            duration=self.duration,
            polarization="y",  # in-plane: drives electron extraction
            t_peak=2.5 * self.duration,
        )

    def reflection_time(self) -> float:
        """When the pulse peak reaches the solid surface."""
        return self.laser().t_peak + (self.solid_lo - self.antenna_x) / c

    def patch_removal_time(self) -> float:
        """Just after the pulse has fully reflected (the Fig. 6 star)."""
        return self.reflection_time() + 3.0 * self.duration

    def window_start_time(self) -> float:
        """Moving window start (the Fig. 6 dashed line)."""
        return self.patch_removal_time() + 1.0 * self.duration

    def grid_cells(self, resolution_factor: int = 1) -> Tuple[int, int]:
        dx = self.wavelength / (self.cells_per_wavelength * resolution_factor)
        nx = int(round(self.x_max / dx))
        ny = max(
            int(round(2 * self.y_half / (dx * self.transverse_coarsening))), 16
        )
        return nx, ny


def build_hybrid_target(
    setup: Optional[HybridTargetSetup] = None,
    mode: str = "mr",
    subcycle: bool = True,
) -> Tuple[Simulation, Species, Species]:
    """Build one of the Fig. 6 configurations.

    ``mode``:

    * ``"mr"`` — coarse grid plus an MR patch (ratio ``mr_ratio``) over the
      solid, removed at :meth:`HybridTargetSetup.patch_removal_time`;
    * ``"highres"`` — no MR, whole domain at the fine resolution, same ppc
      (the paper's case c);
    * ``"highres_ppc4"`` — no MR, fine resolution, ppc reduced 4x to match
      the MR case's total macroparticle count (the paper's case b);
    * ``"coarse"`` — the coarse grid alone (no fine physics; reference).

    ``subcycle`` (MR mode only): advance the fine patch with ``ratio``
    substeps so the global time step is set by the *coarse* CFL — after
    the patch is removed the MR run then takes ``ratio``x fewer steps per
    unit of physical time, which is where most of the Fig. 6 advantage
    comes from.  ``subcycle=False`` uses the fine CFL globally.

    Returns ``(simulation, solid_electrons, gas_electrons)``.
    """
    if setup is None:
        setup = HybridTargetSetup()
    if mode not in MODES:
        raise ConfigurationError(f"mode must be one of {MODES}")

    res_factor = setup.mr_ratio if mode in ("highres", "highres_ppc4") else 1
    nx, ny = setup.grid_cells(res_factor)
    grid = YeeGrid(
        (nx, ny),
        (0.0, -setup.y_half),
        (setup.x_max, setup.y_half),
        guards=4,
    )
    # the no-MR fine-resolution cases are pinned to the fine CFL; the MR
    # case uses the coarse CFL when subcycling, the fine CFL otherwise
    if mode == "mr" and not subcycle:
        dt = 0.95 * cfl_dt(tuple(d / setup.mr_ratio for d in grid.dx))
    else:
        dt = 0.95 * cfl_dt(grid.dx)

    sim_cls = MRSimulation if mode == "mr" else Simulation
    sim = sim_cls(
        grid,
        dt=dt,
        shape_order=setup.shape_order,
        boundaries=("damped", "damped"),
        n_absorber=max(ny // 12, 8),
        smoothing_passes=1,
    )

    sim.add_laser(LaserAntenna(setup.laser(), position=setup.antenna_x))

    ppc_scale = 1
    ppc_solid = setup.ppc_solid
    ppc_gas = setup.ppc_gas
    if mode == "highres":
        # same ppc on 4x the cells: 4x the particles of the MR case
        pass
    elif mode == "highres_ppc4":
        # halve ppc per axis: the same total particle count as the MR case
        ppc_solid = tuple(max(p // 2, 1) for p in setup.ppc_solid)
        ppc_gas = tuple(max(p // 2, 1) for p in setup.ppc_gas)

    rng = np.random.default_rng(setup.seed)
    solid = Species("solid_electrons", charge=-q_e, mass=m_e, ndim=2)
    sim.add_species(
        solid,
        profile=BoxProfile(
            setup.solid_density,
            (setup.solid_lo, -setup.solid_y_half),
            (setup.solid_hi, setup.solid_y_half),
        ),
        ppc=ppc_solid,
        rng=rng,
    )
    gas = Species("gas_electrons", charge=-q_e, mass=m_e, ndim=2)
    sim.add_species(
        gas,
        profile=SlabProfile(setup.gas_density, setup.gas_lo, setup.gas_hi, axis=0),
        ppc=ppc_gas,
        continuous_injection=True,
        rng=rng,
    )

    if mode == "mr":
        dx, dy = grid.dx
        lo_cell = max(int(np.floor((setup.solid_lo - 2.0 * um) / dx)), 0)
        hi_cell = min(int(np.ceil((setup.solid_hi + 1.0 * um) / dx)), nx)
        # the patch encloses the finite-size target with an underdense
        # transverse margin, so no dense plasma sits near the patch PML
        y_extent = setup.solid_y_half + 1.2 * um
        lo_y = max(int(np.floor((setup.y_half - y_extent) / dy)), 0)
        hi_y = min(int(np.ceil((setup.y_half + y_extent) / dy)), ny)
        sim.add_patch(
            (lo_cell, lo_y),
            (hi_cell, hi_y),
            ratio=setup.mr_ratio,
            n_pml=4,
            subcycle=subcycle,
            remove_time=setup.patch_removal_time(),
        )

    # the window follows the *reflected* pulse, backward through the gas
    sim.set_moving_window(
        MovingWindow(
            speed=c, start_time=setup.window_start_time(), direction=-1
        )
    )
    return sim, solid, gas
