"""Laser wakefield accelerator in a gas jet.

The workhorse scenario of compact electron accelerators (paper Sec. III):
a short intense pulse drives a plasma wave in an underdense gas; a moving
window follows the pulse over distances much longer than the box.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.constants import c, m_e, q_e, um, fs
from repro.core.moving_window import MovingWindow
from repro.core.simulation import Simulation
from repro.grid.yee import YeeGrid
from repro.laser.antenna import LaserAntenna
from repro.laser.profiles import GaussianLaser
from repro.particles.injection import GasJetProfile
from repro.particles.species import Species


def build_lwfa(
    gas_density: float = 2.0e24,
    a0: float = 2.5,
    wavelength: float = 0.8 * um,
    waist: float = 5.0 * um,
    duration: float = 8.0 * fs,
    domain_size: Tuple[float, float] = (50.0 * um, 40.0 * um),
    cells_per_wavelength: float = 16.0,
    transverse_coarsening: float = 4.0,
    ppc=(1, 1),
    shape_order: int = 2,
    window_start: Optional[float] = None,
) -> Tuple[Simulation, Species, GaussianLaser]:
    """A 2D LWFA: gas jet + laser antenna + moving window.

    The longitudinal resolution resolves the laser wavelength
    (``cells_per_wavelength``); the transverse direction is coarser by
    ``transverse_coarsening`` (standard LWFA practice).  Returns the
    simulation, the gas-electron species and the laser.
    """
    lx, ly = domain_size
    dx = wavelength / cells_per_wavelength
    nx = int(round(lx / dx))
    ny = max(int(round(ly / (dx * transverse_coarsening))), 16)
    grid = YeeGrid((nx, ny), (0.0, -ly / 2), (lx, ly / 2), guards=4)
    sim = Simulation(
        grid,
        shape_order=shape_order,
        boundaries=("damped", "damped"),
        n_absorber=max(grid.n_cells[1] // 16, 8),
        smoothing_passes=1,
    )
    laser = GaussianLaser(
        wavelength=wavelength,
        a0=a0,
        waist=waist,
        duration=duration,
        polarization="z",  # out of plane: keeps the wake fields in-plane clean
        t_peak=2.5 * duration,
    )
    sim.add_laser(LaserAntenna(laser, position=2.0 * dx + 0.0, center=0.0))
    electrons = Species("gas_electrons", charge=-q_e, mass=m_e, ndim=2)
    jet = GasJetProfile(
        gas_density,
        ramp_up=(8.0 * um, 14.0 * um),
        plateau_end=0.9 * lx,
        ramp_down_end=1.1 * lx,
    )
    sim.add_species(
        electrons,
        profile=jet,
        ppc=ppc,
        continuous_injection=True,
    )
    if window_start is None:
        window_start = laser.t_peak + 0.6 * lx / c
    sim.set_moving_window(MovingWindow(speed=c, start_time=window_start))
    return sim, electrons, laser
