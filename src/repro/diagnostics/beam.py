"""Electron-beam diagnostics for the accelerator science case.

The paper's Fig. 7(a) tracks the *beam charge in the simulation window*
(electrons above an energy threshold) and Fig. 7(b) the energy spectrum
with its spread.  These helpers compute exactly those quantities from a
species container.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.constants import MeV
from repro.particles.species import Species


def beam_charge(species: Species, energy_threshold: float = 1.0 * MeV) -> float:
    """Absolute charge [C] carried by particles above ``energy_threshold`` [J]."""
    energies = species.kinetic_energies()
    mask = energies >= energy_threshold
    return float(abs(species.charge) * np.sum(species.weights[mask]))


def beam_statistics(
    species: Species,
    energy_threshold: float = 1.0 * MeV,
    transverse_axis: int = 1,
) -> Dict[str, float]:
    """Charge, mean energy, rms spread and normalized emittance of the beam.

    Returns a dict with keys ``charge`` [C], ``mean_energy`` [J],
    ``energy_spread`` (rms/mean, dimensionless), ``emittance`` [m rad]
    (normalized transverse emittance along ``transverse_axis``), and ``n``
    (macroparticle count).  Values are zero/NaN-free even for empty beams.
    """
    energies = species.kinetic_energies()
    mask = energies >= energy_threshold
    n_sel = int(np.count_nonzero(mask))
    if n_sel == 0:
        return {
            "charge": 0.0,
            "mean_energy": 0.0,
            "energy_spread": 0.0,
            "emittance": 0.0,
            "n": 0,
        }
    w = species.weights[mask]
    en = energies[mask]
    w_sum = float(np.sum(w))
    mean_e = float(np.sum(w * en) / w_sum)
    var_e = float(np.sum(w * (en - mean_e) ** 2) / w_sum)
    spread = float(np.sqrt(var_e) / mean_e) if mean_e > 0 else 0.0

    emittance = 0.0
    if species.ndim > transverse_axis:
        y = species.positions[mask, transverse_axis]
        uy = species.momenta[mask, transverse_axis]
        y_mean = np.sum(w * y) / w_sum
        uy_mean = np.sum(w * uy) / w_sum
        dy = y - y_mean
        duy = uy - uy_mean
        var_y = np.sum(w * dy**2) / w_sum
        var_uy = np.sum(w * duy**2) / w_sum
        cov = np.sum(w * dy * duy) / w_sum
        emittance = float(np.sqrt(max(var_y * var_uy - cov**2, 0.0)))

    return {
        "charge": float(abs(species.charge) * w_sum),
        "mean_energy": mean_e,
        "energy_spread": spread,
        "emittance": emittance,
        "n": n_sel,
    }


class BeamHistory:
    """Time history of beam charge and statistics (the Fig. 7a curve)."""

    def __init__(self, energy_threshold: float = 1.0 * MeV) -> None:
        self.energy_threshold = energy_threshold
        self.times: List[float] = []
        self.charge: List[float] = []
        self.mean_energy: List[float] = []
        self.energy_spread: List[float] = []

    def record(self, time: float, species: Species) -> None:
        stats = beam_statistics(species, self.energy_threshold)
        self.times.append(float(time))
        self.charge.append(stats["charge"])
        self.mean_energy.append(stats["mean_energy"])
        self.energy_spread.append(stats["energy_spread"])

    def final_charge(self) -> float:
        return self.charge[-1] if self.charge else 0.0
