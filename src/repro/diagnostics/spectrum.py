"""Particle energy spectra (the paper's Fig. 7b).

Histograms of ``dN/dE`` (weighted macroparticle counts per energy bin) and
the peak/spread analysis used to verify the "< 10 % energy spread above
100 MeV" claim of the science case.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import DiagnosticError
from repro.particles.species import Species


def energy_spectrum(
    species: Species,
    bins: int = 100,
    e_min: Optional[float] = None,
    e_max: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Weighted energy histogram.

    Returns ``(bin_centers [J], dN_dE [1/J])`` — physical particle count
    per unit energy.
    """
    if species.n == 0:
        raise DiagnosticError("cannot build a spectrum of an empty species")
    energies = species.kinetic_energies()
    lo = float(energies.min()) if e_min is None else float(e_min)
    hi = float(energies.max()) if e_max is None else float(e_max)
    if hi <= lo:
        hi = lo * (1.0 + 1e-9) + 1e-30
    counts, edges = np.histogram(
        energies, bins=bins, range=(lo, hi), weights=species.weights
    )
    widths = np.diff(edges)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, counts / widths


def spectral_peak_and_spread(
    centers: np.ndarray,
    dn_de: np.ndarray,
    threshold: float = 0.5,
) -> Tuple[float, float]:
    """Peak energy and relative FWHM-like spread of a spectrum.

    The spread is the width of the region where the spectrum exceeds
    ``threshold`` of its peak, divided by the peak energy — the quantity
    the paper quotes as "< 10 % energy spread".
    """
    if len(centers) == 0:
        raise DiagnosticError("empty spectrum")
    i_peak = int(np.argmax(dn_de))
    peak_e = float(centers[i_peak])
    level = threshold * dn_de[i_peak]
    above = np.where(dn_de >= level)[0]
    width = float(centers[above[-1]] - centers[above[0]]) if len(above) else 0.0
    spread = width / peak_e if peak_e > 0 else 0.0
    return peak_e, spread
