"""Field and density probes: record snapshots or slices over time.

Back the Fig. 7(c,d)-style visualizations (laser amplitude over plasma
density in the x-z plane) and the field comparisons of the MR tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import DiagnosticError
from repro.grid.yee import FIELD_COMPONENTS, YeeGrid
from repro.particles.deposit import deposit_charge


class FieldProbe:
    """Record copies of selected field components at chosen times."""

    def __init__(self, components: Sequence[str] = ("Ey",)) -> None:
        for comp in components:
            if comp not in FIELD_COMPONENTS + ("Jx", "Jy", "Jz", "rho"):
                raise DiagnosticError(f"unknown field component {comp!r}")
        self.components = tuple(components)
        self.times: List[float] = []
        self.snapshots: List[Dict[str, np.ndarray]] = []

    def record(self, time: float, grid: YeeGrid) -> None:
        self.times.append(float(time))
        self.snapshots.append(
            {c: grid.interior_view(c).copy() for c in self.components}
        )

    def last(self, component: str) -> np.ndarray:
        if not self.snapshots:
            raise DiagnosticError("no snapshots recorded")
        return self.snapshots[-1][component]


class DensityProbe:
    """Deposit and record the number density of a species on demand.

    Uses a scratch grid so the simulation's rho (which may hold the total
    charge density) is not disturbed.
    """

    def __init__(self, order: int = 1) -> None:
        self.order = order
        self.times: List[float] = []
        self.snapshots: List[np.ndarray] = []

    def record(self, time: float, grid: YeeGrid, species) -> np.ndarray:
        scratch = YeeGrid(grid.n_cells, grid.lo, grid.hi, grid.guards, grid.dtype)
        if species.n:
            deposit_charge(
                scratch,
                species.positions,
                species.weights,
                charge=1.0,  # unit charge => number density
                order=self.order,
            )
        snap = scratch.interior_view("rho").copy()
        self.times.append(float(time))
        self.snapshots.append(snap)
        return snap
