"""Diagnostics: energy budgets, beam properties, particle spectra, field
probes and wall-clock timers with per-kernel breakdowns."""

from repro.diagnostics.energy import EnergyDiagnostic
from repro.diagnostics.beam import beam_charge, beam_statistics, BeamHistory
from repro.diagnostics.spectrum import energy_spectrum, spectral_peak_and_spread
from repro.diagnostics.probes import FieldProbe, DensityProbe
from repro.diagnostics.timers import Timers
from repro.diagnostics.io import (
    save_checkpoint,
    load_checkpoint,
    save_snapshot,
    load_snapshot,
)
from repro.diagnostics.gauss import gauss_law_residual, GaussLawMonitor

__all__ = [
    "EnergyDiagnostic",
    "beam_charge",
    "beam_statistics",
    "BeamHistory",
    "energy_spectrum",
    "spectral_peak_and_spread",
    "FieldProbe",
    "DensityProbe",
    "Timers",
    "save_checkpoint",
    "load_checkpoint",
    "save_snapshot",
    "load_snapshot",
    "gauss_law_residual",
    "GaussLawMonitor",
]
