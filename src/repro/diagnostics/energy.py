"""Energy budget diagnostic.

Tracks field energy, per-species kinetic energy and the total over time.
In a closed (periodic) system without an antenna the total is conserved to
the accuracy of the leapfrog scheme — the classic PIC sanity check used in
the integration tests.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


class EnergyDiagnostic:
    """Record the energy budget of a simulation over time."""

    def __init__(self) -> None:
        self.times: List[float] = []
        self.field_energy: List[float] = []
        self.kinetic_energy: Dict[str, List[float]] = {}

    def record(self, time: float, grid, species_list: Sequence) -> None:
        """Append one sample of the energy budget."""
        self.times.append(float(time))
        self.field_energy.append(grid.field_energy())
        for sp in species_list:
            self.kinetic_energy.setdefault(sp.name, []).append(sp.kinetic_energy())

    def total_energy(self) -> np.ndarray:
        """Field + kinetic total per recorded sample."""
        total = np.array(self.field_energy)
        for hist in self.kinetic_energy.values():
            total = total + np.array(hist)
        return total

    def relative_drift(self) -> float:
        """|E(t_end) - E(t_0)| / E(t_0); 0 for perfect conservation."""
        total = self.total_energy()
        if len(total) < 2 or total[0] == 0.0:
            return 0.0
        return float(abs(total[-1] - total[0]) / abs(total[0]))
