"""Wall-clock timers with per-kernel breakdown.

The paper reports time-to-solution measured with timers around the PIC
kernels; :class:`Timers` provides the same bookkeeping (plus call counts),
is cheap enough to stay always-on, and backs both the Fig. 6 benchmark and
the dynamic load balancer's measured-cost mode.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List


class Stopwatch:
    """Holder for one measured duration (filled by :meth:`Timers.stopwatch`)."""

    __slots__ = ("elapsed",)

    def __init__(self) -> None:
        self.elapsed: float = 0.0


class Timers:
    """Named accumulating wall-clock timers."""

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        #: per-step wall-clock history appended by :meth:`lap`
        self.step_times: List[float] = []
        self._lap_start: float = time.perf_counter()

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager accumulating into timer ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Record an externally measured duration."""
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    @contextmanager
    def stopwatch(self, name: str = "") -> Iterator["Stopwatch"]:
        """Time a block and hand the caller the measured duration.

        Unlike :meth:`timer`, the elapsed time is also returned (via the
        yielded :class:`Stopwatch`) so callers that feed measurements
        onward — e.g. the load balancer's per-box cost model — never
        touch the clock directly.  With a ``name`` the duration is
        additionally accumulated like :meth:`add`.
        """
        sw = Stopwatch()
        start = time.perf_counter()
        try:
            yield sw
        finally:
            sw.elapsed = time.perf_counter() - start
            if name:
                self.add(name, sw.elapsed)

    def lap(self) -> float:
        """Close the current per-step lap and append it to the history."""
        now = time.perf_counter()
        elapsed = now - self._lap_start
        self._lap_start = now
        self.step_times.append(elapsed)
        return elapsed

    def reset_lap(self) -> None:
        self._lap_start = time.perf_counter()

    def total(self) -> float:
        """Sum over all named timers."""
        return sum(self.totals.values())

    def report(self) -> str:
        """Human-readable breakdown sorted by total time."""
        lines = ["timer breakdown:"]
        for name, total in sorted(self.totals.items(), key=lambda kv: -kv[1]):
            lines.append(
                f"  {name:<24s} {total:10.4f}s  ({self.counts[name]} calls)"
            )
        return "\n".join(lines)
