"""Wall-clock timers with per-kernel breakdown.

The paper reports time-to-solution measured with timers around the PIC
kernels; :class:`Timers` provides the same bookkeeping (plus call counts),
is cheap enough to stay always-on, and backs both the Fig. 6 benchmark and
the dynamic load balancer's measured-cost mode.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List


def now() -> float:
    """The monotonic clock every timing consumer shares.

    Lint rule PIC004 bans direct ``time`` reads outside this module; the
    tracer (:mod:`repro.observability.tracer`) and anything else that
    needs raw timestamps routes through this function so all recorded
    times live on one comparable axis.
    """
    return time.perf_counter()


class Stopwatch:
    """Holder for one measured duration (filled by :meth:`Timers.stopwatch`)."""

    __slots__ = ("elapsed",)

    def __init__(self) -> None:
        self.elapsed: float = 0.0


class Timers:
    """Named accumulating wall-clock timers."""

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        #: per-step wall-clock history appended by :meth:`lap`
        self.step_times: List[float] = []
        self._lap_start: float = time.perf_counter()

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager accumulating into timer ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Record an externally measured duration."""
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    @contextmanager
    def stopwatch(self, name: str = "") -> Iterator["Stopwatch"]:
        """Time a block and hand the caller the measured duration.

        Unlike :meth:`timer`, the elapsed time is also returned (via the
        yielded :class:`Stopwatch`) so callers that feed measurements
        onward — e.g. the load balancer's per-box cost model — never
        touch the clock directly.  With a ``name`` the duration is
        additionally accumulated like :meth:`add`.
        """
        sw = Stopwatch()
        start = time.perf_counter()
        try:
            yield sw
        finally:
            sw.elapsed = time.perf_counter() - start
            if name:
                self.add(name, sw.elapsed)

    def lap(self) -> float:
        """Close the current per-step lap and append it to the history."""
        now = time.perf_counter()
        elapsed = now - self._lap_start
        self._lap_start = now
        self.step_times.append(elapsed)
        return elapsed

    def reset_lap(self) -> None:
        self._lap_start = time.perf_counter()

    def total(self) -> float:
        """Sum over all named timers."""
        return sum(self.totals.values())

    def reset(self) -> None:
        """Drop all accumulated totals, counts and the lap history."""
        self.totals.clear()
        self.counts.clear()
        self.step_times.clear()
        self._lap_start = time.perf_counter()

    def merge(self, other: "Timers") -> None:
        """Fold another :class:`Timers` into this one (per-rank aggregation).

        Totals and call counts add; the lap history concatenates (the
        merged ``step_times`` is the pool over which per-step percentiles
        are computed when ranks report independently).
        """
        for name, total in other.totals.items():
            self.totals[name] = self.totals.get(name, 0.0) + total
            self.counts[name] = self.counts.get(name, 0) + other.counts[name]
        self.step_times.extend(other.step_times)

    def report(self) -> str:
        """Human-readable breakdown sorted by total time."""
        lines = ["timer breakdown:"]
        # column width follows the longest name so nothing breaks alignment
        width = max([len(n) for n in self.totals], default=0)
        width = max(width, 24)
        grand = self.total()
        for name, total in sorted(self.totals.items(), key=lambda kv: -kv[1]):
            share = 100.0 * total / grand if grand > 0 else 0.0
            lines.append(
                f"  {name:<{width}s} {total:10.4f}s  {share:5.1f}%  "
                f"({self.counts[name]} calls)"
            )
        return "\n".join(lines)
