"""Gauss-law monitor: the global invariant behind charge conservation.

An electromagnetic PIC code never solves Poisson's equation during the
run; instead, if the deposited current satisfies the discrete continuity
equation (the Esirkepov guarantee), then the residual

    G = div E - rho / eps0

is *constant in time* at every node — whatever charge-neutrality error the
initial condition carried is frozen, never amplified.  Monitoring G is the
standard end-to-end validation that deposition, field solve and boundary
handling compose correctly; a drifting G means charge is leaking
somewhere.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.constants import eps0
from repro.grid.stencils import diff_backward
from repro.grid.yee import YeeGrid
from repro.particles.deposit import deposit_charge


def gauss_law_residual(
    grid: YeeGrid,
    species_list: Sequence,
    order: int = 2,
    periodic_axes: Sequence[int] = None,
) -> np.ndarray:
    """``div E - rho/eps0`` on the interior nodes.

    ``rho`` is deposited fresh from the particles (the run itself does not
    maintain it), with the same shape order the simulation uses, and its
    guard deposits are folded along ``periodic_axes`` (default: all).
    """
    div = np.zeros(grid.shape, dtype=np.float64)
    for d, comp in enumerate(("Ex", "Ey", "Ez")[: grid.ndim]):
        div += diff_backward(grid.fields[comp], d, grid.dx[d])
    scratch = YeeGrid(grid.n_cells, grid.lo, grid.hi, grid.guards, grid.dtype)
    for sp in species_list:
        if sp.n:
            deposit_charge(scratch, sp.positions, sp.weights, sp.charge, order)
    # fold the guard deposits of boundary particles back into the valid
    # region, exactly as the simulation folds its current deposits
    from repro.grid.boundary import accumulate_periodic_sources

    for axis in periodic_axes if periodic_axes is not None else range(grid.ndim):
        accumulate_periodic_sources(scratch, axis)
    # interior nodes only: one cell in from the valid edge, where both the
    # backward difference and the full deposition stencil are complete
    g = grid.guards
    sl = tuple(slice(g + 1, g + n) for n in grid.n_cells)
    return (div - scratch.fields["rho"] / eps0)[sl]


class GaussLawMonitor:
    """Record the Gauss-law residual norm over a run."""

    def __init__(self, order: int = 2) -> None:
        self.order = order
        self.times: List[float] = []
        self.max_residual: List[float] = []

    def record(self, sim) -> float:
        res = gauss_law_residual(
            sim.grid, [e.species for e in sim.entries.values()], self.order
        )
        value = float(np.max(np.abs(res)))
        self.times.append(sim.time)
        self.max_residual.append(value)
        return value

    def drift(self) -> float:
        """Relative growth of the residual over the recorded window."""
        if len(self.max_residual) < 2:
            return 0.0
        first = self.max_residual[0]
        if first == 0.0:
            return float(self.max_residual[-1])
        return float(self.max_residual[-1] / first - 1.0)
