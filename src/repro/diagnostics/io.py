"""Checkpoint / restart and snapshot I/O.

The paper's reported timings are "whole application including I/O"; long
production runs live and die by checkpointing.  State is written as a
single compressed ``.npz``: grid fields and bounds, every species' arrays,
the moving-window phase, and — for mesh-refined runs — each patch's fine /
coarse / auxiliary fields *including the PML split sub-fields*, so a
restarted run continues bit-for-bit.

Restore targets a freshly *constructed* simulation of identical
configuration (grids, species, patches); only array contents and scalar
state are loaded.  This mirrors production PIC practice, where the input
deck rebuilds the topology and the checkpoint supplies the data.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.exceptions import ConfigurationError


def _pack_species(prefix: str, sp, out: Dict[str, np.ndarray]) -> None:
    out[f"{prefix}/positions"] = sp.positions
    out[f"{prefix}/momenta"] = sp.momenta
    out[f"{prefix}/weights"] = sp.weights
    out[f"{prefix}/ids"] = sp.ids
    out[f"{prefix}/next_id"] = np.array(sp._next_id)


def _unpack_species(prefix: str, sp, data) -> None:
    sp.positions = data[f"{prefix}/positions"].copy()
    sp.momenta = data[f"{prefix}/momenta"].copy()
    sp.weights = data[f"{prefix}/weights"].copy()
    sp.ids = data[f"{prefix}/ids"].copy()
    sp._next_id = int(data[f"{prefix}/next_id"])


def _pack_grid(prefix: str, grid, out: Dict[str, np.ndarray]) -> None:
    out[f"{prefix}/lo"] = np.array(grid.lo)
    out[f"{prefix}/hi"] = np.array(grid.hi)
    for name, arr in grid.fields.items():
        out[f"{prefix}/field/{name}"] = arr


def _unpack_grid(prefix: str, grid, data) -> None:
    grid.lo = tuple(float(v) for v in data[f"{prefix}/lo"])
    grid.hi = tuple(float(v) for v in data[f"{prefix}/hi"])
    for name in grid.fields:
        grid.fields[name][...] = data[f"{prefix}/field/{name}"]


def _pack_pml(prefix: str, solver, out: Dict[str, np.ndarray]) -> None:
    for (comp, axis), arr in solver.split.items():
        out[f"{prefix}/split/{comp}/{axis}"] = arr


def _unpack_pml(prefix: str, solver, data) -> None:
    for (comp, axis), arr in solver.split.items():
        arr[...] = data[f"{prefix}/split/{comp}/{axis}"]


def save_checkpoint(sim, path: str) -> None:
    """Write the full state of a (possibly mesh-refined) simulation."""
    out: Dict[str, np.ndarray] = {
        "meta/time": np.array(sim.time),
        "meta/step_count": np.array(sim.step_count),
    }
    if sim.moving_window is not None:
        out["meta/window_pending"] = np.array(sim.moving_window.pending)
        out["meta/window_shifted"] = np.array(sim.moving_window.cells_shifted)
    _pack_grid("grid", sim.grid, out)
    if hasattr(sim.solver, "split"):
        _pack_pml("solver", sim.solver, out)
    for name, entry in sim.entries.items():
        _pack_species(f"species/{name}", entry.species, out)
    patches = getattr(sim, "patches", [])
    out["meta/n_patches"] = np.array(len(patches))
    for i, patch in enumerate(patches):
        p = f"patch{i}"
        out[f"{p}/region_lo"] = np.array(patch.region_lo)
        out[f"{p}/region_hi"] = np.array(patch.region_hi)
        _pack_grid(f"{p}/fine", patch.fine, out)
        _pack_grid(f"{p}/coarse", patch.coarse, out)
        _pack_grid(f"{p}/aux", patch.aux, out)
        _pack_pml(f"{p}/fine_solver", patch.fine_solver, out)
        _pack_pml(f"{p}/coarse_solver", patch.coarse_solver, out)
    np.savez_compressed(path, **out)


def load_checkpoint(sim, path: str) -> None:
    """Restore a checkpoint into an identically configured simulation."""
    if not os.path.exists(path):
        raise ConfigurationError(f"no checkpoint at {path!r}")
    data = np.load(path)
    sim.time = float(data["meta/time"])
    sim.step_count = int(data["meta/step_count"])
    if sim.moving_window is not None and "meta/window_pending" in data:
        sim.moving_window.pending = float(data["meta/window_pending"])
        sim.moving_window.cells_shifted = int(data["meta/window_shifted"])
    _unpack_grid("grid", sim.grid, data)
    if hasattr(sim.solver, "split"):
        _unpack_pml("solver", sim.solver, data)
    for name, entry in sim.entries.items():
        key = f"species/{name}/positions"
        if key not in data:
            raise ConfigurationError(f"checkpoint lacks species {name!r}")
        _unpack_species(f"species/{name}", entry.species, data)
    patches = getattr(sim, "patches", [])
    n_saved = int(data["meta/n_patches"])
    if n_saved != len(patches):
        raise ConfigurationError(
            f"checkpoint has {n_saved} patches, simulation has {len(patches)}"
        )
    for i, patch in enumerate(patches):
        p = f"patch{i}"
        patch.region_lo = [int(v) for v in data[f"{p}/region_lo"]]
        patch.region_hi = [int(v) for v in data[f"{p}/region_hi"]]
        _unpack_grid(f"{p}/fine", patch.fine, data)
        _unpack_grid(f"{p}/coarse", patch.coarse, data)
        _unpack_grid(f"{p}/aux", patch.aux, data)
        _unpack_pml(f"{p}/fine_solver", patch.fine_solver, data)
        _unpack_pml(f"{p}/coarse_solver", patch.coarse_solver, data)


def save_snapshot(grid, species: Dict[str, object], path: str) -> None:
    """Lightweight diagnostic dump: valid-region fields + particle arrays."""
    out: Dict[str, np.ndarray] = {
        "lo": np.array(grid.lo),
        "hi": np.array(grid.hi),
    }
    for name in grid.fields:
        out[f"field/{name}"] = grid.interior_view(name)
    for name, sp in species.items():
        out[f"species/{name}/positions"] = sp.positions
        out[f"species/{name}/momenta"] = sp.momenta
        out[f"species/{name}/weights"] = sp.weights
    np.savez_compressed(path, **out)


def load_snapshot(path: str) -> Dict[str, np.ndarray]:
    """Read a snapshot back as a flat dict of arrays."""
    if not os.path.exists(path):
        raise ConfigurationError(f"no snapshot at {path!r}")
    with np.load(path) as data:
        return {k: data[k].copy() for k in data.files}
