"""Checkpoint / restart and snapshot I/O.

The paper's reported timings are "whole application including I/O"; long
production runs live and die by checkpointing.  State is written as a
single compressed ``.npz``: grid fields and bounds, every species' arrays,
the moving-window phase, and — for mesh-refined runs — each patch's fine /
coarse / auxiliary fields *including the PML split sub-fields*, so a
restarted run continues bit-for-bit.

Restore targets a freshly *constructed* simulation of identical
configuration (grids, species, patches); only array contents and scalar
state are loaded.  This mirrors production PIC practice, where the input
deck rebuilds the topology and the checkpoint supplies the data.
"""

from __future__ import annotations

import os
from typing import Dict, Mapping

import numpy as np

from repro.exceptions import ConfigurationError


def _require_shape(name: str, arr: np.ndarray, expected) -> np.ndarray:
    """Validate a checkpoint array's shape *before* unpacking it.

    A checkpoint written from a differently sized grid must fail as a
    :class:`ConfigurationError` naming the offending array, not as a raw
    NumPy broadcast error halfway through a partially mutated restore.
    """
    if tuple(arr.shape) != tuple(expected):
        raise ConfigurationError(
            f"checkpoint array {name!r} has shape {tuple(arr.shape)}, "
            f"the target simulation expects {tuple(expected)} — the "
            "checkpoint was written from a differently configured run"
        )
    return arr


def _pack_species(prefix: str, sp, out: Dict[str, np.ndarray]) -> None:
    out[f"{prefix}/positions"] = sp.positions
    out[f"{prefix}/momenta"] = sp.momenta
    out[f"{prefix}/weights"] = sp.weights
    out[f"{prefix}/ids"] = sp.ids
    out[f"{prefix}/next_id"] = np.array(sp._next_id)


def _unpack_species(prefix: str, sp, data) -> None:
    positions = data[f"{prefix}/positions"]
    n = positions.shape[0]
    _require_shape(f"{prefix}/positions", positions, (n, sp.ndim))
    momenta = _require_shape(f"{prefix}/momenta", data[f"{prefix}/momenta"], (n, 3))
    weights = _require_shape(f"{prefix}/weights", data[f"{prefix}/weights"], (n,))
    ids = _require_shape(f"{prefix}/ids", data[f"{prefix}/ids"], (n,))
    sp.positions = positions.copy()
    sp.momenta = momenta.copy()
    sp.weights = weights.copy()
    sp.ids = ids.copy()
    sp._next_id = int(data[f"{prefix}/next_id"])


def _pack_grid(prefix: str, grid, out: Dict[str, np.ndarray]) -> None:
    out[f"{prefix}/lo"] = np.array(grid.lo)
    out[f"{prefix}/hi"] = np.array(grid.hi)
    for name, arr in grid.fields.items():
        out[f"{prefix}/field/{name}"] = arr


def _validate_grid(prefix: str, grid, data) -> None:
    """Shape-check every stored field of a grid against the target."""
    for name, arr in grid.fields.items():
        key = f"{prefix}/field/{name}"
        if key not in data:
            raise ConfigurationError(f"checkpoint lacks field {key!r}")
        _require_shape(key, data[key], arr.shape)


def _unpack_grid(prefix: str, grid, data) -> None:
    _validate_grid(prefix, grid, data)
    grid.lo = tuple(float(v) for v in data[f"{prefix}/lo"])
    grid.hi = tuple(float(v) for v in data[f"{prefix}/hi"])
    for name in grid.fields:
        grid.fields[name][...] = data[f"{prefix}/field/{name}"]


def _pack_pml(prefix: str, solver, out: Dict[str, np.ndarray]) -> None:
    for (comp, axis), arr in solver.split.items():
        out[f"{prefix}/split/{comp}/{axis}"] = arr


def _unpack_pml(prefix: str, solver, data) -> None:
    for (comp, axis), arr in solver.split.items():
        key = f"{prefix}/split/{comp}/{axis}"
        arr[...] = _require_shape(key, data[key], arr.shape)


def save_checkpoint(sim, path: str) -> None:
    """Write the full state of a (possibly mesh-refined) simulation."""
    out: Dict[str, np.ndarray] = {
        "meta/time": np.array(sim.time),
        "meta/step_count": np.array(sim.step_count),
    }
    if sim.moving_window is not None:
        out["meta/window_pending"] = np.array(sim.moving_window.pending)
        out["meta/window_shifted"] = np.array(sim.moving_window.cells_shifted)
    _pack_grid("grid", sim.grid, out)
    if hasattr(sim.solver, "split"):
        _pack_pml("solver", sim.solver, out)
    for name, entry in sim.entries.items():
        _pack_species(f"species/{name}", entry.species, out)
    patches = getattr(sim, "patches", [])
    out["meta/n_patches"] = np.array(len(patches))
    for i, patch in enumerate(patches):
        p = f"patch{i}"
        out[f"{p}/region_lo"] = np.array(patch.region_lo)
        out[f"{p}/region_hi"] = np.array(patch.region_hi)
        _pack_grid(f"{p}/fine", patch.fine, out)
        _pack_grid(f"{p}/coarse", patch.coarse, out)
        _pack_grid(f"{p}/aux", patch.aux, out)
        _pack_pml(f"{p}/fine_solver", patch.fine_solver, out)
        _pack_pml(f"{p}/coarse_solver", patch.coarse_solver, out)
        # subcycling state, when present: the frozen external field of
        # the previous parent step and the hysteresis membership ids —
        # both needed for a bit-identical subcycled restart
        ext_prev = getattr(patch, "_external_prev", None)
        if ext_prev is not None:
            for comp, arr in ext_prev.items():
                out[f"{p}/external_prev/{comp}"] = arr
        for name, ids in getattr(patch, "_member_ids", {}).items():
            out[f"{p}/members/{name}"] = ids
    np.savez_compressed(path, **out)


def load_checkpoint(sim, path: str) -> None:
    """Restore a checkpoint into an identically configured simulation.

    Array shapes are validated against the target *before* anything is
    unpacked, so a checkpoint from a differently sized run fails with a
    :class:`ConfigurationError` instead of dying mid-restore.  Moving
    window state is restored into ``sim.moving_window`` when one is
    attached; if the window will only be attached *after* the restore,
    the state is parked and ``set_moving_window`` applies it.
    """
    if not os.path.exists(path):
        raise ConfigurationError(f"no checkpoint at {path!r}")
    data = np.load(path)
    _validate_grid("grid", sim.grid, data)
    sim.time = float(data["meta/time"])
    sim.step_count = int(data["meta/step_count"])
    if "meta/window_pending" in data:
        window_state = (
            float(data["meta/window_pending"]),
            int(data["meta/window_shifted"]),
        )
        if sim.moving_window is not None:
            sim.moving_window.pending = window_state[0]
            sim.moving_window.cells_shifted = window_state[1]
        else:
            # window not attached yet: park the state; set_moving_window
            # picks it up so attach-after-restore still restarts exactly
            sim._deferred_window_state = window_state
    _unpack_grid("grid", sim.grid, data)
    if hasattr(sim.solver, "split"):
        _unpack_pml("solver", sim.solver, data)
    for name, entry in sim.entries.items():
        key = f"species/{name}/positions"
        if key not in data:
            raise ConfigurationError(f"checkpoint lacks species {name!r}")
        _unpack_species(f"species/{name}", entry.species, data)
    patches = getattr(sim, "patches", [])
    n_saved = int(data["meta/n_patches"])
    if n_saved != len(patches):
        raise ConfigurationError(
            f"checkpoint has {n_saved} patches, simulation has {len(patches)}"
        )
    for i, patch in enumerate(patches):
        p = f"patch{i}"
        patch.region_lo = [int(v) for v in data[f"{p}/region_lo"]]
        patch.region_hi = [int(v) for v in data[f"{p}/region_hi"]]
        _unpack_grid(f"{p}/fine", patch.fine, data)
        _unpack_grid(f"{p}/coarse", patch.coarse, data)
        _unpack_grid(f"{p}/aux", patch.aux, data)
        _unpack_pml(f"{p}/fine_solver", patch.fine_solver, data)
        _unpack_pml(f"{p}/coarse_solver", patch.coarse_solver, data)
        ext_keys = [
            k for k in data.files if k.startswith(f"{p}/external_prev/")
        ]
        if ext_keys:
            patch._external_prev = {
                k.rsplit("/", 1)[1]: data[k].copy() for k in ext_keys
            }
        member_keys = [k for k in data.files if k.startswith(f"{p}/members/")]
        if member_keys:
            patch._member_ids = {
                k.rsplit("/", 1)[1]: data[k].copy() for k in member_keys
            }


# -- distributed checkpoint/restart -----------------------------------------
#
# A DistributedSimulation checkpoints the way production AMReX codes do:
# every box writes its own chunk (grid fields + resident particles), and a
# small meta record holds the global scalars — time, step, the
# distribution mapping, and the communicator counters, so a restarted run
# resumes both the physics *and* the accounting bit-for-bit.  On disk the
# layout is one ``boxNNNN.npz`` per box plus ``meta.npz`` in a checkpoint
# directory; in memory (the fast path of the resilience manager) the same
# keys live in one flat dict.

def _box_prefix(i: int) -> str:
    return f"box{i:04d}"


def pack_distributed_state(sim) -> Dict[str, np.ndarray]:
    """The full state of a ``DistributedSimulation`` as a flat dict.

    Arrays are referenced, not copied — callers that need an immutable
    checkpoint (the in-memory restore point) must copy.
    """
    out: Dict[str, np.ndarray] = {
        "meta/time": np.array(sim.time),
        "meta/step_count": np.array(sim.step_count),
        "meta/assignment": np.asarray(sim.dm.assignment, dtype=np.intp),
        "meta/lb_events": np.asarray(sim.lb_events, dtype=np.int64),
        "meta/dead_ranks": np.asarray(sorted(sim.dead_ranks), dtype=np.intp),
        "meta/n_boxes": np.array(len(sim.boxes)),
        "comm/bytes_sent": sim.comm.bytes_sent,
        "comm/messages_sent": sim.comm.messages_sent,
        "comm/collective_calls": np.array(sim.comm.collective_calls),
        "comm/barrier_calls": np.array(sim.comm.barrier_calls),
        "comm/spilled_messages": np.array(sim.comm.spilled_messages),
        "comm/spilled_bytes": np.array(sim.comm.spilled_bytes),
    }
    pairs = sorted(sim.comm.pair_bytes.items())
    out["comm/pair_keys"] = np.array(
        [k for k, _ in pairs], dtype=np.int64
    ).reshape(len(pairs), 2)
    out["comm/pair_values"] = np.array([v for _, v in pairs], dtype=np.int64)
    box_ids = range(len(sim.boxes))
    out["meta/measured_costs"] = sim.cost_model.measured(box_ids, default=-1.0)
    for i, bg in enumerate(sim.box_grids):
        _pack_grid(f"{_box_prefix(i)}/grid", bg, out)
        for name, dsp in sim.species.items():
            _pack_species(f"{_box_prefix(i)}/species/{name}", dsp.per_box[i], out)
    return out


def unpack_distributed_state(sim, data: Mapping[str, np.ndarray]) -> None:
    """Restore packed distributed state into a configured simulation.

    Validates the box count and every grid shape before mutating
    anything, so a checkpoint from a different decomposition fails as a
    :class:`ConfigurationError`.
    """
    n_boxes = int(data["meta/n_boxes"])
    if n_boxes != len(sim.boxes):
        raise ConfigurationError(
            f"checkpoint has {n_boxes} boxes, the simulation has "
            f"{len(sim.boxes)} — decompositions differ"
        )
    for i, bg in enumerate(sim.box_grids):
        _validate_grid(f"{_box_prefix(i)}/grid", bg, data)
        for name in sim.species:
            key = f"{_box_prefix(i)}/species/{name}/positions"
            if key not in data:
                raise ConfigurationError(
                    f"checkpoint lacks species {name!r} for box {i}"
                )
    sim.time = float(data["meta/time"])
    sim.step_count = int(data["meta/step_count"])
    sim.dm.assignment = np.asarray(
        data["meta/assignment"], dtype=np.intp
    ).copy()
    sim.lb_events = [int(v) for v in data["meta/lb_events"]]
    sim.dead_ranks = set(int(r) for r in data["meta/dead_ranks"])
    sim.comm.bytes_sent[...] = data["comm/bytes_sent"]
    sim.comm.messages_sent[...] = data["comm/messages_sent"]
    sim.comm.collective_calls = int(data["comm/collective_calls"])
    sim.comm.barrier_calls = int(data["comm/barrier_calls"])
    sim.comm.spilled_messages = int(data["comm/spilled_messages"])
    sim.comm.spilled_bytes = int(data["comm/spilled_bytes"])
    sim.comm.pair_bytes.clear()
    for (src, dst), nbytes in zip(
        data["comm/pair_keys"], data["comm/pair_values"]
    ):
        sim.comm.pair_bytes[(int(src), int(dst))] = int(nbytes)
    costs = data["meta/measured_costs"]
    sim.cost_model._measured = {
        i: float(c) for i, c in enumerate(costs) if c >= 0.0
    }
    for i, bg in enumerate(sim.box_grids):
        _unpack_grid(f"{_box_prefix(i)}/grid", bg, data)
        for name, dsp in sim.species.items():
            _unpack_species(
                f"{_box_prefix(i)}/species/{name}", dsp.per_box[i], data
            )


def save_distributed_checkpoint(sim, directory: str) -> None:
    """Write a per-box checkpoint directory for a distributed run."""
    os.makedirs(directory, exist_ok=True)
    state = pack_distributed_state(sim)
    per_file: Dict[str, Dict[str, np.ndarray]] = {"meta": {}}
    for key, arr in state.items():
        head = key.split("/", 1)[0]
        fname = head if head.startswith("box") else "meta"
        per_file.setdefault(fname, {})[key] = arr
    for fname, chunk in per_file.items():
        np.savez_compressed(os.path.join(directory, f"{fname}.npz"), **chunk)


def load_distributed_checkpoint(sim, directory: str) -> None:
    """Restore a per-box checkpoint directory into a configured run."""
    meta_path = os.path.join(directory, "meta.npz")
    if not os.path.isdir(directory) or not os.path.exists(meta_path):
        raise ConfigurationError(f"no distributed checkpoint at {directory!r}")
    data: Dict[str, np.ndarray] = {}
    for fname in sorted(os.listdir(directory)):
        if not fname.endswith(".npz"):
            continue
        with np.load(os.path.join(directory, fname)) as chunk:
            for key in chunk.files:
                data[key] = chunk[key]
    unpack_distributed_state(sim, data)


def save_snapshot(grid, species: Dict[str, object], path: str) -> None:
    """Lightweight diagnostic dump: valid-region fields + particle arrays."""
    out: Dict[str, np.ndarray] = {
        "lo": np.array(grid.lo),
        "hi": np.array(grid.hi),
    }
    for name in grid.fields:
        out[f"field/{name}"] = grid.interior_view(name)
    for name, sp in species.items():
        out[f"species/{name}/positions"] = sp.positions
        out[f"species/{name}/momenta"] = sp.momenta
        out[f"species/{name}/weights"] = sp.weights
    np.savez_compressed(path, **out)


def load_snapshot(path: str) -> Dict[str, np.ndarray]:
    """Read a snapshot back as a flat dict of arrays."""
    if not os.path.exists(path):
        raise ConfigurationError(f"no snapshot at {path!r}")
    with np.load(path) as data:
        return {k: data[k].copy() for k in data.files}
