"""repro — a mesh-refined electromagnetic Particle-In-Cell code.

A from-scratch Python reproduction of *"Pushing the Frontier in the Design
of Laser-Based Electron Accelerators with Groundbreaking Mesh-Refined
Particle-In-Cell Simulations on Exascale-Class Supercomputers"* (Fedeli,
Huebl, et al., SC 2022 — the 2022 ACM Gordon Bell Prize winner).

Subpackages
-----------
``repro.grid``
    Staggered Yee grids, FDTD Maxwell solver, Berenger PML, coarse/fine
    transfer operators.
``repro.particles``
    Species containers, Boris/Vay pushers, B-spline shapes, gather and
    charge-conserving (Esirkepov) deposition, sorting, plasma injection.
``repro.laser``
    Gaussian pulses and the current-sheet antenna.
``repro.core``
    The PIC cycle, electromagnetic mesh refinement, moving window,
    load balancing.
``repro.parallel``
    AMReX-style box decomposition over a simulated, fully-accounted
    communicator; a distributed PIC verified against the monolithic run.
``repro.perfmodel``
    Machine catalog and the calibrated roofline/network models behind the
    paper's evaluation tables and figures.
``repro.diagnostics``
    Energy budgets, beam statistics, spectra, probes, timers.
``repro.analysis``
    Correctness tooling: PIC-aware lint rules (``python -m
    repro.analysis``), the SimComm protocol checker, and the opt-in
    runtime sanitizers (``REPRO_SANITIZE=1``).
``repro.scenarios``
    Uniform plasma, LWFA gas jet, and the hybrid solid-gas target.
``repro.picmi``
    A PICMI-flavored high-level input layer.
"""

from repro import constants
from repro.core.moving_window import MovingWindow
from repro.core.mr_simulation import MRSimulation
from repro.core.simulation import Simulation
from repro.exceptions import ReproError
from repro.grid.yee import YeeGrid
from repro.laser.antenna import LaserAntenna
from repro.laser.profiles import GaussianLaser
from repro.particles.species import Species

__version__ = "1.0.0"

__all__ = [
    "constants",
    "MovingWindow",
    "MRSimulation",
    "Simulation",
    "ReproError",
    "YeeGrid",
    "LaserAntenna",
    "GaussianLaser",
    "Species",
    "__version__",
]
