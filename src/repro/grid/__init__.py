"""Electromagnetic field substrate: staggered Yee grids, FDTD Maxwell solver,
absorbing boundaries (Berenger PML and graded damping), and the coarse/fine
interpolation operators used by the mesh-refinement coupling."""

from repro.grid.yee import YeeGrid, STAGGER, FIELD_COMPONENTS
from repro.grid.maxwell import MaxwellSolver, cfl_dt
from repro.grid.pml import PMLMaxwellSolver, pml_sigma_profile
from repro.grid.psatd import PSATDMaxwellSolver
from repro.grid.boundary import apply_periodic, apply_conductor, apply_damping
from repro.grid.interpolation import prolong, restrict

__all__ = [
    "YeeGrid",
    "STAGGER",
    "FIELD_COMPONENTS",
    "MaxwellSolver",
    "cfl_dt",
    "PMLMaxwellSolver",
    "PSATDMaxwellSolver",
    "pml_sigma_profile",
    "apply_periodic",
    "apply_conductor",
    "apply_damping",
    "prolong",
    "restrict",
]
