"""Pseudo-Spectral Analytical Time-Domain (PSATD) Maxwell solver.

The last capability row of the paper's Table I: WarpX's spectral solver,
key to the boosted-frame extension because its exact vacuum dispersion
removes the numerical Cherenkov instability that plagues FDTD in flowing
plasmas (Lehe et al. 2016, paper ref. [51]).

The update integrates Maxwell's equations *analytically* over one step in
k-space, assuming J constant during the step (Haber et al. 1973):

    E+ = C E + i S k_hat x (cB) - S/(eps0 c k) J
         + (1 - C) k_hat (k_hat . E) + k_hat (k_hat . J) (S/(eps0 c k) - dt/eps0)
    cB+ = C cB - i S k_hat x E + i (1 - C)/(eps0 c k) k_hat x J

with C = cos(c k dt), S = sin(c k dt).  There is **no CFL limit** and the
vacuum dispersion relation is exact at any dt.

Yee staggering is honored spectrally: each component's half-cell offsets
are absorbed into per-component phase factors exp(-i k . s dx/2) before
the update and restored after, so the solver is a drop-in replacement for
the FDTD solver on periodic domains (the particle kernels see the same
staggered real-space data).

Galilean (comoving-current) variant
-----------------------------------
In a Lorentz-boosted frame the plasma streams almost uniformly at
``v_gal = (-beta c, 0, 0)``.  The "J constant over the step" closure is
then poor: the current pattern *advects*.  The Galilean PSATD family
(Lehe et al. 2016; WarpX's comoving-PSATD option) replaces the closure by
a uniformly advected current,

    J_hat(t) = J_hat(t_mid) * exp(-i Omega (t - t_mid)),   Omega = k . v_gal,

with ``t_mid`` the step midpoint where the leapfrog deposits J.  The grid
stays static — only the three J source coefficients change, via the
Galilean phase ``theta = exp(i Omega dt / 2)``; the homogeneous (vacuum)
propagator is *exactly* the standard PSATD one, so vacuum dispersion
stays exact.  Solving ``dE/dt = i c k x (cB)/c - J/eps0`` &c. with the
advected source (particular solution ``E_p = P J_T e^{-i Omega (t-t_mid)}``,
``P = i Omega / (eps0 (omega^2 - Omega^2))``, ``omega = c k``) gives the
transverse-E, longitudinal-E and B source coefficients computed by
:func:`galilean_coefficients`; all three reduce bitwise to the standard
coefficients as ``v_gal -> 0``.

Distributed operation (``region="full"``)
-----------------------------------------
The analytic propagator kernel in real space is quasi-local: it has
support ~``c dt`` plus tails decaying with distance.  A box with wide
guard regions can therefore FFT its *entire* guard-padded array as if it
were periodic and still produce a correct interior update — errors enter
only through the fake wrap-around at the box edge and decay with guard
depth.  ``region="full"`` enables this mode: the FFT covers the padded
array, the solver skips the periodic wrap, and the caller (the
distributed driver) refreshes guards from neighbors every step.  This is
exactly how WarpX runs PSATD under domain decomposition (11-32 guard
cells in the paper's runs vs. the 1-cell FDTD stencil halo).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.constants import c, eps0
from repro.exceptions import ConfigurationError
from repro.grid.boundary import apply_periodic
from repro.grid.yee import FIELD_COMPONENTS, STAGGER, YeeGrid


def galilean_coefficients(
    k_mag: np.ndarray, omega_gal: np.ndarray, dt: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Source coefficients of the Galilean (comoving-current) PSATD update.

    Parameters
    ----------
    k_mag:
        ``|k|`` table [1/m].
    omega_gal:
        ``Omega = k . v_gal`` table [rad/s].
    dt:
        Time step [s].

    Returns
    -------
    (xe_t, xe_lmt, xb):
        Complex float64 tables such that the k-space update reads::

            E+  = C E + i S k_hat x cB + xe_t J
                  + (1-C) k_hat (k_hat.E) + xe_lmt k_hat (k_hat.J)
            cB+ = C cB - i S k_hat x E + xb k_hat x J

        With ``theta = exp(i Omega dt/2)`` (the Galilean phase),
        ``P = i Omega / (eps0 (omega^2 - Omega^2))`` and
        ``Pw = i omega / (eps0 (omega^2 - Omega^2))`` the closed forms are

            xe_t   = P (theta_bar - C theta) + i S theta Pw
            xe_l   = -2 sin(Omega dt/2) / (eps0 Omega)
            xe_lmt = xe_l - xe_t
            xb     = Pw (theta_bar - C theta) + i S theta P

        ``theta_bar - C theta`` is evaluated in the cancellation-free form
        ``2 sin^2(omega dt/2) cos(Omega dt/2) - i (1+C) sin(Omega dt/2)``.
        ``omega^2 > Omega^2`` holds for every ``k != 0`` because
        ``|v_gal| < c``; the ``k = 0`` and ``Omega = 0`` limits are the
        standard PSATD coefficients ``-S/(eps0 omega)``,
        ``S/(eps0 omega) - dt/eps0`` and ``i (1-C)/(eps0 omega)`` (with
        their own ``-dt/eps0`` / ``0`` limits at ``k = 0``), so the whole
        update reduces exactly to the standard one as ``v_gal -> 0``.
    """
    k_mag = np.asarray(k_mag, dtype=np.float64)  # repro: allow(PIC007)
    om = np.asarray(omega_gal, dtype=np.float64)  # repro: allow(PIC007)
    dt = float(dt)
    nz_k = k_mag > 0
    omega = c * k_mag
    nz_o = om != 0.0
    o_safe = np.where(nz_o, om, 1.0)
    cosw = np.cos(omega * dt)
    sinw = np.sin(omega * dt)
    theta = np.exp(0.5j * om * dt)
    # theta_bar - C theta, stable for small angles (no 1 - cos cancellation)
    tmb_ct = (
        2.0 * np.sin(0.5 * omega * dt) ** 2 * np.cos(0.5 * om * dt)
        - 1j * (1.0 + cosw) * np.sin(0.5 * om * dt)
    )
    denom_safe = np.where(nz_k, eps0 * (omega**2 - om**2), 1.0)
    p_coef = np.where(nz_k, 1j * om / denom_safe, 0.0)
    pw_coef = np.where(nz_k, 1j * omega / denom_safe, 0.0)
    xe_t = p_coef * tmb_ct + 1j * sinw * theta * pw_coef
    xe_t = np.where(nz_k, xe_t, -dt / eps0)
    xe_l = np.where(nz_o, -2.0 * np.sin(0.5 * om * dt) / (eps0 * o_safe), -dt / eps0)
    xe_lmt = xe_l - xe_t
    xb = np.where(nz_k, pw_coef * tmb_ct + 1j * sinw * theta * p_coef, 0.0)
    return xe_t, xe_lmt, xb


class PSATDMaxwellSolver:
    """Spectral Maxwell solver on a fully periodic :class:`YeeGrid`.

    Parameters
    ----------
    grid:
        The grid to advance; all axes are treated as periodic.
    dt:
        Time step [s] — unconstrained by any Courant condition.
    v_galilean:
        Galilean velocity [m/s] of the comoving-current closure (scalar =
        x-velocity, or a per-axis sequence).  ``None``/zero selects the
        standard J-constant closure.  Must satisfy ``|v| < c``.
    region:
        ``"valid"`` (default) FFTs the n unique periodic samples of the
        valid region and wraps the guards periodically afterwards — the
        monolithic mode.  ``"full"`` FFTs the entire guard-padded array
        and leaves guard filling to the caller — the per-box mode of the
        distributed driver (see module docstring).
    """

    #: PSATD advances E and B together; the leapfrog half-pushes collapse.
    advances_together = True
    #: Guard depth the local-FFT distributed mode needs (the paper's
    #: production runs use 11-32 cells; FDTD stencils need 1).
    guard_cells = 12

    def __init__(
        self,
        grid: YeeGrid,
        dt: float,
        v_galilean: Optional[Union[float, Sequence[float]]] = None,
        region: str = "valid",
    ) -> None:
        if grid.ndim < 1:
            raise ConfigurationError("PSATD needs at least one axis")
        if region not in ("valid", "full"):
            raise ConfigurationError(
                f"region must be 'valid' or 'full', got {region!r}"
            )
        self.grid = grid
        self.dt = float(dt)
        self.region = region
        self.v_galilean = self._normalize_velocity(v_galilean, grid.ndim)
        self.galilean = any(v != 0.0 for v in self.v_galilean)
        # explicit precision policy: coefficient tables are *built* in
        # double (cos/sin of c k dt must not lose digits at table-build
        # time) and then *stored* in the grid's real dtype, so that on a
        # float32 grid the whole spectral pipeline — FFTs, phase factors,
        # update coefficients — runs in complex64 instead of silently
        # promoting every full-grid product to complex128
        self.rdtype = grid.dtype
        self.cdtype = np.result_type(self.rdtype, np.complex64)
        n_fft = grid.shape if region == "full" else grid.n_cells
        self._n_fft = tuple(n_fft)
        # angular wavenumbers of the FFT samples
        ks = [
            2.0 * np.pi * np.fft.fftfreq(self._n_fft[d], d=grid.dx[d])
            for d in range(grid.ndim)
        ]
        mesh = np.meshgrid(*ks, indexing="ij")
        # embed into 3 components (missing axes carry k = 0: invariance)
        self.kvec = [
            mesh[d] if d < grid.ndim else np.zeros_like(mesh[0])
            for d in range(3)
        ]
        self.k_mag = np.sqrt(sum(k**2 for k in self.kvec))
        with np.errstate(invalid="ignore", divide="ignore"):
            self.k_hat = [
                np.where(self.k_mag > 0, k / np.where(self.k_mag > 0, self.k_mag, 1.0), 0.0)
                for k in self.kvec
            ]
        theta = c * self.k_mag * self.dt
        self.cos = np.cos(theta)
        self.sin = np.sin(theta)
        # S / (eps0 c k), with the k -> 0 limit dt/eps0
        self.j_coeff = np.where(
            self.k_mag > 0,
            self.sin / (eps0 * c * np.where(self.k_mag > 0, self.k_mag, 1.0)),
            self.dt / eps0,
        )
        # hot-loop tables, hoisted out of step(): the longitudinal-J
        # correction (S/(eps0 c k) - dt/eps0, -> 0 as k -> 0) and the
        # B-push source coefficient (1-C)/(eps0 c k)
        self.long_corr = self.j_coeff - self.dt / eps0
        inv_k = np.where(
            self.k_mag > 0, 1.0 / np.where(self.k_mag > 0, self.k_mag, 1.0), 0.0
        )
        self.b_j_coeff = (1.0 - self.cos) * inv_k / (eps0 * c)
        if self.galilean:
            omega_gal = sum(
                self.kvec[d] * self.v_galilean[d] for d in range(3)
            )
            xe_t, xe_lmt, xb = galilean_coefficients(
                self.k_mag, omega_gal, self.dt
            )
            self.xe_t = xe_t.astype(self.cdtype)
            self.xe_lmt = xe_lmt.astype(self.cdtype)
            self.xb = xb.astype(self.cdtype)
        # per-component staggering phases exp(-i k . s dx / 2)
        self._phase: Dict[str, np.ndarray] = {}
        for comp in FIELD_COMPONENTS + ("Jx", "Jy", "Jz"):
            s = STAGGER[comp]
            phase = np.zeros_like(self.k_mag)
            for d in range(grid.ndim):
                phase = phase + self.kvec[d] * (0.5 * s[d] * grid.dx[d])
            self._phase[comp] = np.exp(-1j * phase).astype(self.cdtype)
        # demote the double-built tables to the working precision
        self.k_mag = self.k_mag.astype(self.rdtype)
        self.k_hat = [k.astype(self.rdtype) for k in self.k_hat]
        self.cos = self.cos.astype(self.rdtype)
        self.sin = self.sin.astype(self.rdtype)
        self.j_coeff = self.j_coeff.astype(self.rdtype)
        self.long_corr = self.long_corr.astype(self.rdtype)
        self.b_j_coeff = self.b_j_coeff.astype(self.rdtype)

    @staticmethod
    def _normalize_velocity(
        v_galilean: Optional[Union[float, Sequence[float]]], ndim: int
    ) -> Tuple[float, float, float]:
        if v_galilean is None:
            return (0.0, 0.0, 0.0)
        if np.isscalar(v_galilean):
            v = [float(v_galilean)]
        else:
            v = [float(x) for x in v_galilean]
        if len(v) > 3:
            raise ConfigurationError(
                f"v_galilean takes at most 3 components, got {len(v)}"
            )
        v = tuple(v + [0.0] * (3 - len(v)))
        if math.sqrt(sum(x * x for x in v)) >= c:
            raise ConfigurationError(
                f"|v_galilean| must be < c, got {v} m/s"
            )
        for d in range(ndim, 3):
            if v[d] != 0.0:
                raise ConfigurationError(
                    f"v_galilean has a component along invariant axis {d} "
                    f"of a {ndim}D grid; it would be silently ignored"
                )
        return v

    # -- real <-> spectral ---------------------------------------------------
    def _fft_slices(self) -> Tuple[slice, ...]:
        """The window of the field arrays the FFT covers.

        ``valid`` mode: the n (not n+1) unique periodic samples.
        ``full`` mode: the whole guard-padded array.
        """
        if self.region == "full":
            return tuple(slice(0, s) for s in self.grid.shape)
        g = self.grid.guards
        return tuple(slice(g, g + n) for n in self.grid.n_cells)

    def _to_spectral(self, component: str) -> np.ndarray:
        arr = self.grid.fields[component][self._fft_slices()]
        # fftn(float32) already yields complex64; the astype is a no-op
        # there and only guards against a caller handing in mixed dtypes
        spec = np.fft.fftn(arr).astype(self.cdtype, copy=False)
        return spec * self._phase[component]

    def _from_spectral(self, component: str, spec: np.ndarray) -> None:
        arr = np.fft.ifftn(spec / self._phase[component]).real
        fields = self.grid.fields[component]
        fields[self._fft_slices()] = arr
        if self.region == "valid":
            # the n-sample window skips the duplicated nodal plane
            # (arr[g+n] is the same physical point as arr[g] on a
            # periodic axis) — restore it per the component's staggering
            g = self.grid.guards
            stag = STAGGER[component]
            nd = fields.ndim
            for d, n in enumerate(self.grid.n_cells):
                if stag[d] == 0:
                    dst = [slice(None)] * nd
                    src = [slice(None)] * nd
                    dst[d] = slice(g + n, g + n + 1)
                    src[d] = slice(g, g + 1)
                    fields[tuple(dst)] = fields[tuple(src)]

    # -- the update ------------------------------------------------------------
    @staticmethod
    def _cross(a, b):
        return [
            a[1] * b[2] - a[2] * b[1],
            a[2] * b[0] - a[0] * b[2],
            a[0] * b[1] - a[1] * b[0],
        ]

    @staticmethod
    def _dot(a, b):
        return a[0] * b[0] + a[1] * b[1] + a[2] * b[2]

    def step(self) -> None:
        """Advance E and B by dt (J constant — or advected, if Galilean)."""
        e_hat = [self._to_spectral(comp) for comp in ("Ex", "Ey", "Ez")]
        cb_hat = [c * self._to_spectral(comp) for comp in ("Bx", "By", "Bz")]
        j_hat = [self._to_spectral(comp) for comp in ("Jx", "Jy", "Jz")]

        khat = self.k_hat
        cos, sin = self.cos, self.sin
        k_dot_e = self._dot(khat, e_hat)
        k_dot_j = self._dot(khat, j_hat)
        k_x_cb = self._cross(khat, cb_hat)
        k_x_e = self._cross(khat, e_hat)
        k_x_j = self._cross(khat, j_hat)

        new_e = []
        new_cb = []
        if self.galilean:
            xe_t, xe_lmt, xb = self.xe_t, self.xe_lmt, self.xb
            for i in range(3):
                new_e.append(
                    cos * e_hat[i]
                    + 1j * sin * k_x_cb[i]
                    + xe_t * j_hat[i]
                    + (1.0 - cos) * khat[i] * k_dot_e
                    + khat[i] * k_dot_j * xe_lmt
                )
                new_cb.append(
                    cos * cb_hat[i]
                    - 1j * sin * k_x_e[i]
                    + xb * k_x_j[i]
                )
        else:
            jc, long_corr, b_j_coeff = self.j_coeff, self.long_corr, self.b_j_coeff
            for i in range(3):
                new_e.append(
                    cos * e_hat[i]
                    + 1j * sin * k_x_cb[i]
                    - jc * j_hat[i]
                    + (1.0 - cos) * khat[i] * k_dot_e
                    + khat[i] * k_dot_j * long_corr
                )
                new_cb.append(
                    cos * cb_hat[i]
                    - 1j * sin * k_x_e[i]
                    + 1j * b_j_coeff * k_x_j[i]
                )

        for i, comp in enumerate(("Ex", "Ey", "Ez")):
            self._from_spectral(comp, new_e[i])
        for i, comp in enumerate(("Bx", "By", "Bz")):
            self._from_spectral(comp, new_cb[i] / c)
        if self.region == "valid":
            for axis in range(self.grid.ndim):
                apply_periodic(self.grid, axis)

    # drop-in leapfrog-interface compatibility: PSATD advances E and B
    # together, so the half-B pushes collapse into one full step
    def push_b(self, fraction: float = 1.0) -> None:  # pragma: no cover
        raise ConfigurationError(
            "PSATD advances E and B together; call step() instead"
        )

    push_e = push_b
