"""Pseudo-Spectral Analytical Time-Domain (PSATD) Maxwell solver.

The last capability row of the paper's Table I: WarpX's spectral solver,
key to the boosted-frame extension because its exact vacuum dispersion
removes the numerical Cherenkov instability that plagues FDTD in flowing
plasmas (Lehe et al. 2016, paper ref. [51]).

The update integrates Maxwell's equations *analytically* over one step in
k-space, assuming J constant during the step (Haber et al. 1973):

    E+ = C E + i S k_hat x (cB) - S/(eps0 c k) J
         + (1 - C) k_hat (k_hat . E) + k_hat (k_hat . J) (S/(eps0 c k) - dt/eps0)
    cB+ = C cB - i S k_hat x E + i (1 - C)/(eps0 c k) k_hat x J

with C = cos(c k dt), S = sin(c k dt).  There is **no CFL limit** and the
vacuum dispersion relation is exact at any dt.

Yee staggering is honored spectrally: each component's half-cell offsets
are absorbed into per-component phase factors exp(-i k . s dx/2) before
the update and restored after, so the solver is a drop-in replacement for
the FDTD solver on periodic domains (the particle kernels see the same
staggered real-space data).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.constants import c, eps0
from repro.exceptions import ConfigurationError
from repro.grid.boundary import apply_periodic
from repro.grid.yee import FIELD_COMPONENTS, STAGGER, YeeGrid


class PSATDMaxwellSolver:
    """Spectral Maxwell solver on a fully periodic :class:`YeeGrid`.

    Parameters
    ----------
    grid:
        The grid to advance; all axes are treated as periodic.
    dt:
        Time step [s] — unconstrained by any Courant condition.
    """

    def __init__(self, grid: YeeGrid, dt: float) -> None:
        if grid.ndim < 1:
            raise ConfigurationError("PSATD needs at least one axis")
        self.grid = grid
        self.dt = float(dt)
        # explicit precision policy: coefficient tables are *built* in
        # double (cos/sin of c k dt must not lose digits at table-build
        # time) and then *stored* in the grid's real dtype, so that on a
        # float32 grid the whole spectral pipeline — FFTs, phase factors,
        # update coefficients — runs in complex64 instead of silently
        # promoting every full-grid product to complex128
        self.rdtype = grid.dtype
        self.cdtype = np.result_type(self.rdtype, np.complex64)
        n = grid.n_cells
        # angular wavenumbers of the unique (length-n) periodic samples
        ks = [
            2.0 * np.pi * np.fft.fftfreq(n[d], d=grid.dx[d])
            for d in range(grid.ndim)
        ]
        mesh = np.meshgrid(*ks, indexing="ij")
        # embed into 3 components (missing axes carry k = 0: invariance)
        self.kvec = [
            mesh[d] if d < grid.ndim else np.zeros_like(mesh[0])
            for d in range(3)
        ]
        self.k_mag = np.sqrt(sum(k**2 for k in self.kvec))
        with np.errstate(invalid="ignore", divide="ignore"):
            self.k_hat = [
                np.where(self.k_mag > 0, k / np.where(self.k_mag > 0, self.k_mag, 1.0), 0.0)
                for k in self.kvec
            ]
        theta = c * self.k_mag * self.dt
        self.cos = np.cos(theta)
        self.sin = np.sin(theta)
        # S / (eps0 c k), with the k -> 0 limit dt/eps0
        self.j_coeff = np.where(
            self.k_mag > 0,
            self.sin / (eps0 * c * np.where(self.k_mag > 0, self.k_mag, 1.0)),
            self.dt / eps0,
        )
        # per-component staggering phases exp(-i k . s dx / 2)
        self._phase: Dict[str, np.ndarray] = {}
        for comp in FIELD_COMPONENTS + ("Jx", "Jy", "Jz"):
            s = STAGGER[comp]
            phase = np.zeros_like(self.k_mag)
            for d in range(grid.ndim):
                phase = phase + self.kvec[d] * (0.5 * s[d] * grid.dx[d])
            self._phase[comp] = np.exp(-1j * phase).astype(self.cdtype)
        # demote the double-built tables to the working precision
        self.k_mag = self.k_mag.astype(self.rdtype)
        self.k_hat = [k.astype(self.rdtype) for k in self.k_hat]
        self.cos = self.cos.astype(self.rdtype)
        self.sin = self.sin.astype(self.rdtype)
        self.j_coeff = self.j_coeff.astype(self.rdtype)

    # -- real <-> spectral ---------------------------------------------------
    def _unique_slices(self, component: str) -> Tuple[slice, ...]:
        """The n (not n+1) unique periodic samples of a component."""
        g = self.grid.guards
        return tuple(slice(g, g + n) for n in self.grid.n_cells)

    def _to_spectral(self, component: str) -> np.ndarray:
        arr = self.grid.fields[component][self._unique_slices(component)]
        # fftn(float32) already yields complex64; the astype is a no-op
        # there and only guards against a caller handing in mixed dtypes
        spec = np.fft.fftn(arr).astype(self.cdtype, copy=False)
        return spec * self._phase[component]

    def _from_spectral(self, component: str, spec: np.ndarray) -> None:
        arr = np.fft.ifftn(spec / self._phase[component]).real
        self.grid.fields[component][self._unique_slices(component)] = arr

    # -- the update ------------------------------------------------------------
    @staticmethod
    def _cross(a, b):
        return [
            a[1] * b[2] - a[2] * b[1],
            a[2] * b[0] - a[0] * b[2],
            a[0] * b[1] - a[1] * b[0],
        ]

    @staticmethod
    def _dot(a, b):
        return a[0] * b[0] + a[1] * b[1] + a[2] * b[2]

    def step(self) -> None:
        """Advance E and B by dt (J assumed constant over the step)."""
        e_hat = [self._to_spectral(comp) for comp in ("Ex", "Ey", "Ez")]
        cb_hat = [c * self._to_spectral(comp) for comp in ("Bx", "By", "Bz")]
        j_hat = [self._to_spectral(comp) for comp in ("Jx", "Jy", "Jz")]

        khat = self.k_hat
        cos, sin, jc = self.cos, self.sin, self.j_coeff
        k_dot_e = self._dot(khat, e_hat)
        k_dot_j = self._dot(khat, j_hat)
        k_x_cb = self._cross(khat, cb_hat)
        k_x_e = self._cross(khat, e_hat)
        k_x_j = self._cross(khat, j_hat)

        # the longitudinal-J correction (S/(eps0 c k) - dt/eps0); -> 0 as k -> 0
        long_corr = jc - self.dt / eps0
        inv_k = np.where(self.k_mag > 0, 1.0 / np.where(self.k_mag > 0, self.k_mag, 1.0), 0.0)
        b_j_coeff = (1.0 - cos) * inv_k / (eps0 * c)

        new_e = []
        new_cb = []
        for i in range(3):
            new_e.append(
                cos * e_hat[i]
                + 1j * sin * k_x_cb[i]
                - jc * j_hat[i]
                + (1.0 - cos) * khat[i] * k_dot_e
                + khat[i] * k_dot_j * long_corr
            )
            new_cb.append(
                cos * cb_hat[i]
                - 1j * sin * k_x_e[i]
                + 1j * b_j_coeff * k_x_j[i]
            )

        for i, comp in enumerate(("Ex", "Ey", "Ez")):
            self._from_spectral(comp, new_e[i])
        for i, comp in enumerate(("Bx", "By", "Bz")):
            self._from_spectral(comp, new_cb[i] / c)
        for axis in range(self.grid.ndim):
            apply_periodic(self.grid, axis)

    # drop-in leapfrog-interface compatibility: PSATD advances E and B
    # together, so the half-B pushes collapse into one full step
    def push_b(self, fraction: float = 1.0) -> None:  # pragma: no cover
        raise ConfigurationError(
            "PSATD advances E and B together; call step() instead"
        )

    push_e = push_b
