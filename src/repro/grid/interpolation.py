"""Coarse <-> fine grid transfer operators for mesh refinement.

Both operators are separable per axis and aware of the Yee staggering:

* :func:`prolong` — linear interpolation of a coarse array onto the fine
  sample points of the same physical region (used for the ``I[F(s)-F(c)]``
  term of the field substitution and for initializing patch fields).
* :func:`restrict` — full-weighting (nodal axes) / box-average (staggered
  axes) of a fine array onto coarse sample points (used to transfer the
  fine-patch current density onto the parent grid).

Arrays passed in are *sample arrays*: index 0 along each axis is the first
sample of the region, at coordinate ``0.5 * stagger`` in units of that
array's own cell size.  Both arrays describe the same physical region.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def _interp_axis(arr: np.ndarray, axis: int, pos: np.ndarray) -> np.ndarray:
    """Linear interpolation of ``arr`` along ``axis`` at fractional ``pos``.

    Positions outside the sample range are linearly extrapolated from the
    edge pair (callers keep such points inside guard/PML zones).
    """
    n = arr.shape[axis]
    i0 = np.floor(pos).astype(np.intp)
    np.clip(i0, 0, max(n - 2, 0), out=i0)
    w = pos - i0
    lo = np.take(arr, i0, axis=axis)
    hi = np.take(arr, np.minimum(i0 + 1, n - 1), axis=axis)
    shape = [1] * arr.ndim
    shape[axis] = len(pos)
    w = w.reshape(shape)
    return lo * (1.0 - w) + hi * w


def prolong(
    arr: np.ndarray,
    ratio: int,
    stagger: Sequence[int],
    fine_shape: Sequence[int],
) -> np.ndarray:
    """Interpolate a coarse sample array onto ``fine_shape`` fine samples."""
    out = arr
    for d in range(arr.ndim):
        s = stagger[d]
        k = np.arange(fine_shape[d], dtype=np.float64)  # repro: allow(PIC007)
        pos = (k + 0.5 * s) / ratio - 0.5 * s
        out = _interp_axis(out, d, pos)
    return out


def _restrict_axis_nodal(arr: np.ndarray, axis: int, ratio: int, n_coarse: int) -> np.ndarray:
    """Triangular full-weighting onto nodal coarse samples."""
    n_f = arr.shape[axis]
    centers = np.arange(n_coarse, dtype=np.intp) * ratio
    out = None
    for m in range(-(ratio - 1), ratio):
        w = (ratio - abs(m)) / float(ratio * ratio)
        idx = np.clip(centers + m, 0, n_f - 1)
        term = w * np.take(arr, idx, axis=axis)
        out = term if out is None else out + term
    return out


def _restrict_axis_staggered(arr: np.ndarray, axis: int, ratio: int, n_coarse: int) -> np.ndarray:
    """Box average of the ``ratio`` fine faces inside each coarse face."""
    n_f = arr.shape[axis]
    base = np.arange(n_coarse, dtype=np.intp) * ratio
    out = None
    for t in range(ratio):
        idx = np.clip(base + t, 0, n_f - 1)
        term = np.take(arr, idx, axis=axis) / float(ratio)
        out = term if out is None else out + term
    return out


def restrict(
    arr: np.ndarray,
    ratio: int,
    stagger: Sequence[int],
    coarse_shape: Sequence[int],
) -> np.ndarray:
    """Average a fine sample array onto ``coarse_shape`` coarse samples."""
    out = arr
    for d in range(arr.ndim):
        if stagger[d]:
            out = _restrict_axis_staggered(out, d, ratio, coarse_shape[d])
        else:
            out = _restrict_axis_nodal(out, d, ratio, coarse_shape[d])
    return out


def region_sample_counts(
    n_cells: Sequence[int], stagger: Sequence[int]
) -> Tuple[int, ...]:
    """Number of samples of a component over a region of ``n_cells`` cells."""
    return tuple(n + 1 - s for n, s in zip(n_cells, stagger))
