"""Staggered Yee grid container.

All field components are stored on arrays of *identical* shape
``n_cells + 1 + 2*guards`` per axis; the physical staggering (node vs.
half-cell offset) is metadata interpreted by the stencils and the particle
interpolation.  Index ``i`` of a component with stagger ``s`` along axis
``d`` sits at physical coordinate ``lo[d] + (i - guards + 0.5*s) * dx[d]``.

This uniform-shape convention mirrors how WarpX/AMReX MultiFabs are used in
practice and keeps every kernel free of per-component shape arithmetic.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

#: Yee staggering of each component: 1 = half-cell offset along that axis.
STAGGER: Dict[str, Tuple[int, int, int]] = {
    "Ex": (1, 0, 0),
    "Ey": (0, 1, 0),
    "Ez": (0, 0, 1),
    "Bx": (0, 1, 1),
    "By": (1, 0, 1),
    "Bz": (1, 1, 0),
    "Jx": (1, 0, 0),
    "Jy": (0, 1, 0),
    "Jz": (0, 0, 1),
    "rho": (0, 0, 0),
}

#: The electromagnetic components evolved by the Maxwell solver.
FIELD_COMPONENTS = ("Ex", "Ey", "Ez", "Bx", "By", "Bz")

#: Source terms deposited by particles.
SOURCE_COMPONENTS = ("Jx", "Jy", "Jz", "rho")


class YeeGrid:
    """A rectangular staggered grid holding E, B, J and rho.

    Parameters
    ----------
    n_cells:
        Number of cells per axis (length 1, 2 or 3).
    lo, hi:
        Physical bounds of the valid (non-guard) region per axis [m].
    guards:
        Number of guard cells on every side of every axis.
    dtype:
        Floating point type of the field arrays (the paper runs WarpX in
        double and mixed precision; both are supported here).
    """

    def __init__(
        self,
        n_cells: Sequence[int],
        lo: Sequence[float],
        hi: Sequence[float],
        guards: int = 2,
        dtype=np.float64,
    ) -> None:
        self.n_cells = tuple(int(n) for n in n_cells)
        self.ndim = len(self.n_cells)
        if self.ndim not in (1, 2, 3):
            raise ConfigurationError(f"ndim must be 1, 2 or 3, got {self.ndim}")
        if len(lo) != self.ndim or len(hi) != self.ndim:
            raise ConfigurationError("lo/hi must match the grid dimensionality")
        if any(n < 1 for n in self.n_cells):
            raise ConfigurationError(f"every axis needs >= 1 cell, got {self.n_cells}")
        self.lo = tuple(float(v) for v in lo)
        self.hi = tuple(float(v) for v in hi)
        if any(h <= l for l, h in zip(self.lo, self.hi)):
            raise ConfigurationError("hi must exceed lo on every axis")
        self.guards = int(guards)
        if self.guards < 1:
            raise ConfigurationError("at least one guard cell is required")
        self.dtype = np.dtype(dtype)
        self.dx = tuple(
            (h - l) / n for l, h, n in zip(self.lo, self.hi, self.n_cells)
        )
        #: Array shape per axis: valid nodes (n+1) plus guards on both sides.
        self.shape = tuple(n + 1 + 2 * self.guards for n in self.n_cells)
        self.fields: Dict[str, np.ndarray] = {
            name: np.zeros(self.shape, dtype=self.dtype)
            for name in FIELD_COMPONENTS + SOURCE_COMPONENTS
        }

    # -- convenient attribute access -------------------------------------
    def __getattr__(self, name: str) -> np.ndarray:
        fields = self.__dict__.get("fields")
        if fields is not None and name in fields:
            return fields[name]
        raise AttributeError(name)

    # -- index space ------------------------------------------------------
    def valid_slices(self, component: str = "rho") -> Tuple[slice, ...]:
        """Slices selecting the valid (non-guard) region of ``component``.

        Nodal axes carry ``n+1`` valid values, staggered axes ``n``.
        """
        stag = STAGGER[component]
        g = self.guards
        return tuple(
            slice(g, g + n + 1 - stag[d]) for d, n in enumerate(self.n_cells)
        )

    def interior_view(self, component: str) -> np.ndarray:
        """View of the valid region of ``component`` (no copy)."""
        return self.fields[component][self.valid_slices(component)]

    def axis_coords(self, axis: int, component: str = "rho") -> np.ndarray:
        """Physical coordinates of the valid points of ``component`` on ``axis``.

        Always double precision: geometry (positions, cell edges) stays
        in float64 regardless of the field dtype — the mixed-precision
        policy lowers field *storage*, never coordinates, so float32
        grids see the exact same sample points as float64 grids.
        """
        stag = STAGGER[component][axis]
        n = self.n_cells[axis]
        idx = np.arange(n + 1 - stag, dtype=np.float64)  # repro: allow(PIC007)
        return self.lo[axis] + (idx + 0.5 * stag) * self.dx[axis]

    def set_precision(self, dtype) -> None:
        """Convert every field array to ``dtype`` in place.

        The entry point of the mixed-precision policy
        (``Simulation(..., precision="mixed")``): field *storage* drops
        to float32 while geometry (``lo``/``hi``/``dx``,
        :meth:`axis_coords`) and all particle quantities stay double.
        Solvers capture ``grid.dtype`` at construction, so convert
        before building a :class:`Simulation` — or let the simulation
        do it, which converts first.
        """
        dtype = np.dtype(dtype)
        if dtype.kind != "f":
            raise ConfigurationError(
                f"field dtype must be floating point, got {dtype}"
            )
        if dtype == self.dtype:
            return
        self.dtype = dtype
        for name, arr in self.fields.items():
            self.fields[name] = arr.astype(dtype)

    def zero_sources(self) -> None:
        """Reset the deposited current and charge density to zero."""
        for name in SOURCE_COMPONENTS:
            self.fields[name].fill(0.0)

    def copy(self) -> "YeeGrid":
        """Deep copy of the grid including all field data."""
        other = YeeGrid(self.n_cells, self.lo, self.hi, self.guards, self.dtype)
        for name, arr in self.fields.items():
            other.fields[name][...] = arr
        return other

    # -- energy -----------------------------------------------------------
    def field_energy(self) -> float:
        """Total electromagnetic energy in the valid region [J].

        Uses the standard ``u = eps0/2 E^2 + 1/(2 mu0) B^2`` density summed
        over valid points times the cell volume.  In 1D/2D the invariant
        axes contribute a unit length (energy per meter / per square meter).
        """
        from repro.constants import eps0, mu0

        cell_volume = float(np.prod(self.dx))
        e2 = sum(
            float(np.sum(self.interior_view(n) ** 2)) for n in ("Ex", "Ey", "Ez")
        )
        b2 = sum(
            float(np.sum(self.interior_view(n) ** 2)) for n in ("Bx", "By", "Bz")
        )
        return cell_volume * (0.5 * eps0 * e2 + 0.5 / mu0 * b2)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"YeeGrid(n_cells={self.n_cells}, lo={self.lo}, hi={self.hi}, "
            f"guards={self.guards}, dtype={self.dtype})"
        )
