"""Domain boundary conditions for single-patch grids.

Three families are provided:

* periodic — guard cells wrap around the valid region,
* conductor — perfect electric conductor (tangential E and normal B zeroed
  on the wall, fields mirrored into the guards),
* damping — graded exponential absorber (the cheap alternative to the PML,
  used by several production PIC codes for large outer boundaries).

Boundaries act on one grid axis at a time so that per-axis mixes (e.g.
periodic transverse + absorbing longitudinal) are expressible.
"""

from __future__ import annotations

from itertools import product
from typing import List, Sequence, Tuple

import numpy as np

from repro.grid.yee import STAGGER, FIELD_COMPONENTS, YeeGrid


def _axis_slice(ndim: int, axis: int, sl: slice):
    out = [slice(None)] * ndim
    out[axis] = sl
    return tuple(out)


def periodic_image_shifts(
    domain_cells: Sequence[int], periodic_axes: Sequence[int] = ()
) -> List[Tuple[int, ...]]:
    """Every periodic-image shift vector of the domain, zero shift included.

    Along a periodic axis a box has images displaced by ``-n``, ``0`` and
    ``+n`` cells; a non-periodic axis contributes only ``0``.  The pairwise
    halo exchange enumerates box overlaps against each shifted image, which
    is how wrap-around neighbor pairs (and a box's own periodic image, for
    a single-box axis) are found.  Sufficient as long as a box plus its
    guards never spans more than one full period.
    """
    per_axis = [
        (-int(domain_cells[d]), 0, int(domain_cells[d]))
        if d in periodic_axes
        else (0,)
        for d in range(len(domain_cells))
    ]
    return [tuple(s) for s in product(*per_axis)]


def apply_periodic(grid: YeeGrid, axis: int, components=None) -> None:
    """Fill guard cells along ``axis`` from the periodic image of the valid data.

    For a nodal component the first and last valid planes are physically the
    same point, so the period is ``n_cells`` for every staggering.
    """
    g = grid.guards
    n = grid.n_cells[axis]
    names = components if components is not None else list(grid.fields)
    for name in names:
        arr = grid.fields[name]
        stag = STAGGER[name][axis]
        # identify the duplicated nodal plane: arr[g] == arr[g+n]
        if stag == 0:
            arr[_axis_slice(arr.ndim, axis, slice(g + n, g + n + 1))] = arr[
                _axis_slice(arr.ndim, axis, slice(g, g + 1))
            ]
        # low guards <- image of high valid region
        arr[_axis_slice(arr.ndim, axis, slice(0, g))] = arr[
            _axis_slice(arr.ndim, axis, slice(n, n + g))
        ]
        # high guards <- image of low valid region
        hi0 = g + n + 1 - stag
        arr[_axis_slice(arr.ndim, axis, slice(hi0, hi0 + g + stag))] = arr[
            _axis_slice(arr.ndim, axis, slice(g + 1 - stag, g + 1 + g))
        ]


def accumulate_periodic_sources(grid: YeeGrid, axis: int) -> None:
    """Fold guard-cell deposits of J and rho back into the valid region.

    Deposition writes into the guards when a particle sits near the wall;
    with periodic boundaries those contributions belong to the opposite
    side and must be *added* (not copied) before the field push.
    """
    g = grid.guards
    n = grid.n_cells[axis]
    for name in ("Jx", "Jy", "Jz", "rho"):
        arr = grid.fields[name]
        stag = STAGGER[name][axis]
        nd = arr.ndim
        # low guards fold onto the top of the valid region
        arr[_axis_slice(nd, axis, slice(n, n + g))] += arr[
            _axis_slice(nd, axis, slice(0, g))
        ]
        # high guards fold onto the bottom
        hi0 = g + n + 1 - stag
        extent = arr.shape[axis] - hi0
        arr[_axis_slice(nd, axis, slice(g + 1 - stag, g + 1 - stag + extent))] += arr[
            _axis_slice(nd, axis, slice(hi0, None))
        ]
        if stag == 0:
            # the duplicated nodal plane holds the same physical point
            arr[_axis_slice(nd, axis, slice(g, g + 1))] += arr[
                _axis_slice(nd, axis, slice(g + n, g + n + 1))
            ]
            arr[_axis_slice(nd, axis, slice(g + n, g + n + 1))] = arr[
                _axis_slice(nd, axis, slice(g, g + 1))
            ]
        arr[_axis_slice(nd, axis, slice(0, g))] = 0.0
        arr[_axis_slice(nd, axis, slice(hi0, None))] = 0.0


def apply_conductor(grid: YeeGrid, axis: int) -> None:
    """Perfect-electric-conductor walls on both ends of ``axis``.

    Tangential E (components nodal along ``axis``) vanish on the wall plane
    and are odd-mirrored into the guards; normal E and tangential B are
    even-mirrored, which makes the wall a perfect reflector.
    """
    g = grid.guards
    n = grid.n_cells[axis]
    for name in FIELD_COMPONENTS:
        arr = grid.fields[name]
        stag = STAGGER[name][axis]
        nd = arr.ndim
        is_e = name.startswith("E")
        tangential_e = is_e and stag == 0
        normal_b = (not is_e) and stag == 0
        odd = tangential_e or normal_b
        if odd and stag == 0:
            arr[_axis_slice(nd, axis, slice(g, g + 1))] = 0.0
            arr[_axis_slice(nd, axis, slice(g + n, g + n + 1))] = 0.0
        sign = -1.0 if odd else 1.0
        for k in range(1, g + 1):
            if stag == 0:
                lo_src, lo_dst = g + k, g - k
                hi_src, hi_dst = g + n - k, g + n + k
            else:
                lo_src, lo_dst = g + k - 1, g - k
                hi_src, hi_dst = g + n - k, g + n + k - 1
            if hi_dst >= arr.shape[axis]:
                continue
            arr[_axis_slice(nd, axis, slice(lo_dst, lo_dst + 1))] = sign * arr[
                _axis_slice(nd, axis, slice(lo_src, lo_src + 1))
            ]
            arr[_axis_slice(nd, axis, slice(hi_dst, hi_dst + 1))] = sign * arr[
                _axis_slice(nd, axis, slice(hi_src, hi_src + 1))
            ]


def damping_profile(n_layer: int, strength: float = 0.02, power: int = 2) -> np.ndarray:
    """Per-plane multiplicative damping factors, 1.0 at the inner edge.

    ``factor[k] = 1 - strength * ((n_layer - k)/n_layer)^power`` for plane
    ``k`` counted from the outer edge inward; applied every step this gives
    a smooth exponential decay of outgoing waves.
    """
    k = np.arange(n_layer, dtype=np.float64)  # repro: allow(PIC007)
    depth = (n_layer - k) / n_layer
    return 1.0 - strength * depth**power


def apply_damping(
    grid: YeeGrid,
    axis: int,
    n_layer: int,
    strength: float = 0.02,
    power: int = 2,
    sides: str = "both",
) -> None:
    """Multiply E and B by a graded profile inside layers at the axis ends."""
    factors = damping_profile(n_layer, strength, power)
    nd = grid.fields["Ex"].ndim
    size = grid.shape[axis]
    for name in FIELD_COMPONENTS:
        arr = grid.fields[name]
        if sides in ("both", "low"):
            for k in range(n_layer):
                arr[_axis_slice(nd, axis, slice(k, k + 1))] *= factors[k]
        if sides in ("both", "high"):
            for k in range(n_layer):
                arr[_axis_slice(nd, axis, slice(size - 1 - k, size - k))] *= factors[k]
