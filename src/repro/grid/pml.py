"""Berenger split-field Perfectly Matched Layer.

The mesh-refinement algorithm of the paper (Sec. V.B) terminates both the
fine patch and its coarse companion patch with absorbing layers so that
waves generated inside the patch leave without spurious reflection.  This
module implements the classic Berenger split-field PML: every field
component is split into the two sub-components driven by the two terms of
its curl, and each sub-component is damped by a conductivity graded along
the axis of its own derivative.

Where the conductivity vanishes (the patch interior) the update reduces
*exactly* to the vacuum FDTD scheme, so a PML-terminated patch uses a
single code path (:class:`PMLMaxwellSolver` is a drop-in replacement for
:class:`repro.grid.maxwell.MaxwellSolver`).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.constants import c, eps0
from repro.exceptions import StabilityError
from repro.grid.maxwell import cfl_dt
from repro.grid.stencils import CURL_TERMS, diff_backward, diff_forward
from repro.grid.yee import STAGGER, YeeGrid


def pml_sigma_profile(
    grid: YeeGrid,
    axis: int,
    stagger: int,
    n_pml: int,
    order: int = 3,
    r0: float = 1.0e-8,
    sides: str = "both",
) -> np.ndarray:
    """1D conductivity profile [1/s] along ``axis`` for one staggering.

    Polynomial grading ``sigma = sigma_max (depth/n_pml)^order`` inside the
    outermost ``n_pml`` valid cells (and growing through the guards), with
    ``sigma_max`` set from the theoretical normal-incidence reflection
    coefficient ``r0``.
    """
    g = grid.guards
    n = grid.n_cells[axis]
    dx = grid.dx[axis]
    # conductivity tables are DP by design  # repro: allow(PIC007)
    idx = np.arange(grid.shape[axis], dtype=np.float64)  # repro: allow(PIC007)
    pos = idx - g + 0.5 * stagger  # in cell units; valid region is [0, n]
    depth = np.zeros_like(pos)
    if sides in ("both", "low"):
        depth = np.maximum(depth, n_pml - pos)
    if sides in ("both", "high"):
        depth = np.maximum(depth, pos - (n - n_pml))
    sigma_max = -(order + 1) * math.log(r0) * c / (2.0 * n_pml * dx)
    return sigma_max * (np.maximum(depth, 0.0) / n_pml) ** order


def _exp_coeffs(sigma: np.ndarray, dt: float) -> Tuple[np.ndarray, np.ndarray]:
    """Exponential-integrator coefficients (decay, source weight).

    The split-field ODE ``dP/dt + sigma P = R`` integrates exactly to
    ``P <- decay * P + weight * R`` with ``decay = exp(-sigma dt)`` and
    ``weight = (1 - decay)/sigma`` (limit ``dt`` as ``sigma -> 0``).
    """
    s_dt = sigma * dt
    decay = np.exp(-s_dt)
    with np.errstate(divide="ignore", invalid="ignore"):
        weight = np.where(s_dt > 1.0e-12, (1.0 - decay) / np.where(sigma > 0, sigma, 1.0), dt)
    return decay, weight


class PMLMaxwellSolver:
    """FDTD solver with Berenger split fields over the whole grid.

    Parameters
    ----------
    grid:
        The grid to evolve; its ``fields`` always hold the recomposed
        (summed) physical fields after each push.
    dt:
        Time step [s].
    n_pml:
        Absorber thickness in cells measured inward from each domain edge.
    axes:
        Axes that carry an absorbing layer (default: all grid axes).
    sides:
        ``"both"``, ``"low"`` or ``"high"`` — which ends of each axis absorb.
    order, r0:
        Conductivity grading polynomial order and target reflection.
    """

    #: Same split leapfrog interface as the vacuum FDTD solver.
    advances_together = False
    #: The second-order curl stencil reaches one cell into the halo.
    guard_cells = 1

    def __init__(
        self,
        grid: YeeGrid,
        dt: float,
        n_pml: int = 8,
        axes: Optional[Sequence[int]] = None,
        sides: str = "both",
        order: int = 3,
        r0: float = 1.0e-8,
    ) -> None:
        self.grid = grid
        self.dt = float(dt)
        limit = cfl_dt(grid.dx, cfl=1.0)
        if self.dt > limit * (1.0 + 1e-12):
            raise StabilityError(
                f"dt={self.dt:.3e}s exceeds the CFL limit {limit:.3e}s"
            )
        self.n_pml = int(n_pml)
        self.axes = tuple(axes) if axes is not None else tuple(range(grid.ndim))
        # split sub-fields, keyed by (component, derivative axis)
        self.split: Dict[Tuple[str, int], np.ndarray] = {}
        # per split sub-field: 1D sigma broadcast to the grid shape
        self._sigma: Dict[Tuple[str, int], np.ndarray] = {}
        for comp in ("Ex", "Ey", "Ez", "Bx", "By", "Bz"):
            terms = [t for t in CURL_TERMS[comp] if t[1] < grid.ndim]
            for i, (_, axis, _) in enumerate(terms):
                key = (comp, axis)
                part = np.zeros(grid.shape, dtype=grid.dtype)
                # carry any pre-existing field entirely in the first part
                if i == 0:
                    part[...] = grid.fields[comp]
                self.split[key] = part
                if axis in self.axes:
                    sig1d = pml_sigma_profile(
                        grid, axis, STAGGER[comp][axis], self.n_pml, order, r0, sides
                    )
                else:
                    sig1d = np.zeros(grid.shape[axis], dtype=np.float64)  # repro: allow(PIC007)
                shape = [1] * grid.ndim
                shape[axis] = grid.shape[axis]
                self._sigma[key] = sig1d.reshape(shape)
        self._scratch = np.zeros(grid.shape, dtype=grid.dtype)
        self._coeff_cache: Dict[Tuple[str, int, float], Tuple[np.ndarray, np.ndarray]] = {}

    def _coeffs(self, key: Tuple[str, int], dt: float) -> Tuple[np.ndarray, np.ndarray]:
        cache_key = (key[0], key[1], dt)
        if cache_key not in self._coeff_cache:
            self._coeff_cache[cache_key] = _exp_coeffs(self._sigma[key], dt)
        return self._coeff_cache[cache_key]

    def _push_family(self, components, coeff: float, fraction: float, with_current: bool) -> None:
        g = self.grid
        dt = self.dt * fraction
        use_fwd = components[0].startswith("B")
        for comp in components:
            terms = [t for t in CURL_TERMS[comp] if t[1] < g.ndim]
            if not terms:
                # lower-dimensional grids: no curl term exists (e.g. Ex in
                # 1D); the field still responds to the deposited current.
                if with_current:
                    g.fields[comp] -= dt * g.fields["J" + comp[1]] / eps0
                continue
            for i, (source, axis, sign) in enumerate(terms):
                key = (comp, axis)
                diff = diff_forward if use_fwd else diff_backward
                rhs = diff(g.fields[source], axis, g.dx[axis], out=self._scratch)
                rhs = coeff * sign * rhs
                if with_current and i == 0:
                    rhs = rhs - g.fields["J" + comp[1]] / eps0
                decay, weight = self._coeffs(key, dt)
                part = self.split[key]
                part *= decay
                part += weight * rhs
            # recompose the physical field
            total = g.fields[comp]
            total.fill(0.0)
            for _, axis, _ in terms:
                total += self.split[(comp, axis)]

    def push_b(self, fraction: float = 1.0) -> None:
        """Advance the split B sub-fields by ``fraction * dt``."""
        self._push_family(("Bx", "By", "Bz"), 1.0, fraction, with_current=False)

    def push_e(self, fraction: float = 1.0) -> None:
        """Advance the split E sub-fields by ``fraction * dt`` (includes J)."""
        self._push_family(("Ex", "Ey", "Ez"), c * c, fraction, with_current=True)

    def step(self) -> None:
        """One full leapfrog step (half B, full E, half B)."""
        self.push_b(0.5)
        self.push_e(1.0)
        self.push_b(0.5)
