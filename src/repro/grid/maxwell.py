"""Second-order FDTD Maxwell solver on the staggered Yee grid.

This is the standard explicit leapfrog update used by every code in the
paper's Table I: ``B`` is advanced with the forward-difference curl of
``E``; ``E`` with the backward-difference curl of ``B`` minus the deposited
current.  The solver is dimension-general (1D/2D/3D); derivatives along
absent axes vanish, which gives the usual 2D3V behaviour on 2D grids.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.constants import c, eps0
from repro.exceptions import StabilityError
from repro.grid.stencils import curl_term
from repro.grid.yee import YeeGrid


def cfl_dt(dx: Sequence[float], cfl: float = 0.999) -> float:
    """Largest stable FDTD time step for cell sizes ``dx`` [s].

    The Courant limit of the Yee scheme is
    ``c dt <= 1 / sqrt(sum_d 1/dx_d^2)``; ``cfl`` is the safety fraction.
    """
    inv = math.sqrt(sum(1.0 / d**2 for d in dx))
    return cfl / (c * inv)


class MaxwellSolver:
    """Vacuum FDTD updates for a :class:`YeeGrid`.

    Parameters
    ----------
    grid:
        The grid whose fields are evolved in place.
    dt:
        Time step [s]; checked against the Courant limit at construction.
    """

    #: FDTD exposes split push_e/push_b leapfrog halves.
    advances_together = False
    #: The second-order curl stencil reaches one cell into the halo.
    guard_cells = 1

    def __init__(self, grid: YeeGrid, dt: float) -> None:
        self.grid = grid
        self.dt = float(dt)
        limit = cfl_dt(grid.dx, cfl=1.0)
        if self.dt > limit * (1.0 + 1e-12):
            raise StabilityError(
                f"dt={self.dt:.3e}s exceeds the CFL limit {limit:.3e}s "
                f"for dx={grid.dx}"
            )
        self._scratch = np.zeros(grid.shape, dtype=grid.dtype)

    def push_b(self, fraction: float = 1.0) -> None:
        """Advance B by ``fraction * dt`` using ``dB/dt = -curl E``."""
        g = self.grid
        dt = self.dt * fraction
        for comp in ("Bx", "By", "Bz"):
            g.fields[comp] += dt * curl_term(
                g.fields, comp, g.ndim, g.dx, self._scratch
            )

    def push_e(self, fraction: float = 1.0) -> None:
        """Advance E by ``fraction * dt`` using ``dE/dt = c^2 curl B - J/eps0``."""
        g = self.grid
        dt = self.dt * fraction
        c2 = c * c
        for comp, j in (("Ex", "Jx"), ("Ey", "Jy"), ("Ez", "Jz")):
            g.fields[comp] += dt * (
                c2 * curl_term(g.fields, comp, g.ndim, g.dx, self._scratch)
                - g.fields[j] / eps0
            )

    def step(self) -> None:
        """One full leapfrog step: half B, full E, half B.

        This centering keeps E and B synchronous at step boundaries, which
        simplifies diagnostics and the MR coupling; it is algebraically
        equivalent to the usual staggered-in-time update.
        """
        self.push_b(0.5)
        self.push_e(1.0)
        self.push_b(0.5)
