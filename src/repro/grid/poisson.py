"""Spectral Poisson solver for self-consistent initialization.

Electromagnetic PIC runs need an initial E field consistent with the
initial charge density (div E = rho/eps0); starting a non-neutral
configuration — e.g. a relativistic beam — from E = 0 launches a spurious
transient.  On periodic domains the solve is exact in k-space:
``phi_hat = rho_hat / (eps0 k^2)``, ``E = -grad phi``, with the gradient
evaluated spectrally on each component's staggered lattice so the result
satisfies the *discrete* (backward-difference) Gauss law used everywhere
else in the package.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.constants import eps0
from repro.exceptions import ConfigurationError
from repro.grid.boundary import apply_periodic
from repro.grid.yee import STAGGER, YeeGrid


def solve_poisson(grid: YeeGrid, set_fields: bool = True) -> np.ndarray:
    """Solve ``div E = rho/eps0`` on a periodic grid from ``grid.rho``.

    The k = 0 (net charge) mode is projected out — a periodic universe
    must be neutral, and dropping the mode reproduces the usual uniform
    neutralizing background.  Returns the potential on the unique nodes;
    when ``set_fields`` is true, writes ``Ex/Ey/Ez`` (staggered) so that
    the *discrete* backward-difference divergence matches ``rho/eps0``
    exactly.
    """
    g = grid.guards
    n = grid.n_cells
    sl = tuple(slice(g, g + nn) for nn in n)
    rho = grid.fields["rho"][sl]
    rho_hat = np.fft.fftn(rho)

    # discrete eigenvalues of the backward-difference Laplacian: using
    # K_d = (1 - exp(-i k dx)) / dx for the backward difference makes the
    # resulting E satisfy the same discrete Gauss law the diagnostics use
    ks = [2.0 * np.pi * np.fft.fftfreq(n[d], d=grid.dx[d]) for d in range(grid.ndim)]
    mesh = np.meshgrid(*ks, indexing="ij")
    k_back = [
        (1.0 - np.exp(-1j * mesh[d] * grid.dx[d])) / grid.dx[d]
        for d in range(grid.ndim)
    ]
    # forward difference is the adjoint: K_f = (exp(+i k dx) - 1) / dx
    k_fwd = [
        (np.exp(1j * mesh[d] * grid.dx[d]) - 1.0) / grid.dx[d]
        for d in range(grid.ndim)
    ]
    lap = sum(kb * kf for kb, kf in zip(k_back, k_fwd))
    lap_flat = lap.reshape(-1)
    rho_flat = rho_hat.reshape(-1)
    phi_flat = np.zeros_like(rho_flat)
    nonzero = np.abs(lap_flat) > 1e-30
    phi_flat[nonzero] = -rho_flat[nonzero] / (eps0 * lap_flat[nonzero])
    phi_hat = phi_flat.reshape(lap.shape)

    if set_fields:
        for d, comp in enumerate(("Ex", "Ey", "Ez")[: grid.ndim]):
            # E = -grad phi with the forward difference (node -> face),
            # whose backward-difference divergence is the discrete
            # Laplacian above
            e_hat = -k_fwd[d] * phi_hat
            e_real = np.fft.ifftn(e_hat).real
            grid.fields[comp][sl] = e_real
        for axis in range(grid.ndim):
            apply_periodic(grid, axis)
    return np.fft.ifftn(phi_hat).real


def initialize_space_charge(grid: YeeGrid, species_list: Sequence, order: int = 2) -> None:
    """Deposit the species' charge and set the self-consistent E field."""
    from repro.particles.deposit import deposit_charge
    from repro.grid.boundary import accumulate_periodic_sources

    grid.fields["rho"].fill(0.0)
    for sp in species_list:
        if sp.n:
            deposit_charge(grid, sp.positions, sp.weights, sp.charge, order)
    for axis in range(grid.ndim):
        accumulate_periodic_sources(grid, axis)
    solve_poisson(grid, set_fields=True)
