"""Finite-difference stencils on uniformly-shaped staggered arrays.

With the uniform-shape convention of :class:`repro.grid.yee.YeeGrid`, the
two Yee curl operators reduce to forward differences (node -> half-cell,
used for the B push) and backward differences (half-cell -> node, used for
the E push).  The helpers below return arrays of the input shape; the
first/last plane along the differenced axis is left zero and is always
hidden inside the guard region when used correctly.
"""

from __future__ import annotations

import numpy as np


def _shifted_slices(ndim: int, axis: int):
    """(center, plus_one) slice tuples along ``axis`` for a ``ndim`` array."""
    center = [slice(None)] * ndim
    plus = [slice(None)] * ndim
    center[axis] = slice(0, -1)
    plus[axis] = slice(1, None)
    return tuple(center), tuple(plus)


def diff_forward(arr: np.ndarray, axis: int, dx: float, out: np.ndarray = None) -> np.ndarray:
    """Forward difference ``(arr[i+1] - arr[i]) / dx`` stored at index ``i``.

    Takes a node-centred quantity to the half-cell point ``i + 1/2``.
    """
    if out is None:
        out = np.zeros_like(arr)
    center, plus = _shifted_slices(arr.ndim, axis)
    np.subtract(arr[plus], arr[center], out=out[center])
    out[center] /= dx
    # the trailing plane has no right neighbour
    trail = [slice(None)] * arr.ndim
    trail[axis] = slice(-1, None)
    out[tuple(trail)] = 0.0
    return out


def diff_backward(arr: np.ndarray, axis: int, dx: float, out: np.ndarray = None) -> np.ndarray:
    """Backward difference ``(arr[i] - arr[i-1]) / dx`` stored at index ``i``.

    Takes a half-cell-centred quantity back to the node ``i``.
    """
    if out is None:
        out = np.zeros_like(arr)
    center, plus = _shifted_slices(arr.ndim, axis)
    np.subtract(arr[plus], arr[center], out=out[plus])
    out[plus] /= dx
    lead = [slice(None)] * arr.ndim
    lead[axis] = slice(0, 1)
    out[tuple(lead)] = 0.0
    return out


#: The (component, source-component, axis) wiring of the two curls.  Each
#: entry of ``curl E`` reads: dB<c>/dt -= sign * dE<s>/d<axis> and uses
#: forward differences; ``curl B`` is the mirror set with backward
#: differences for the E push.  Axes refer to x=0, y=1, z=2; terms along
#: axes that do not exist in a lower-dimensional grid vanish (invariance).
CURL_TERMS = {
    # dBx/dt = -(dEz/dy - dEy/dz)
    "Bx": (("Ez", 1, -1.0), ("Ey", 2, +1.0)),
    # dBy/dt = -(dEx/dz - dEz/dx)
    "By": (("Ex", 2, -1.0), ("Ez", 0, +1.0)),
    # dBz/dt = -(dEy/dx - dEx/dy)
    "Bz": (("Ey", 0, -1.0), ("Ex", 1, +1.0)),
    # dEx/dt = c^2 (dBz/dy - dBy/dz) - Jx/eps0
    "Ex": (("Bz", 1, +1.0), ("By", 2, -1.0)),
    # dEy/dt = c^2 (dBx/dz - dBz/dx) - Jy/eps0
    "Ey": (("Bx", 2, +1.0), ("Bz", 0, -1.0)),
    # dEz/dt = c^2 (dBy/dx - dBx/dy) - Jz/eps0
    "Ez": (("By", 0, +1.0), ("Bx", 1, -1.0)),
}


def curl_term(
    fields: dict,
    component: str,
    ndim: int,
    dx,
    scratch: np.ndarray = None,
) -> np.ndarray:
    """Evaluate the curl driving ``component`` (sum of its two terms).

    Terms whose derivative axis does not exist in ``ndim`` dimensions are
    dropped (invariance along the missing axes).  Returns an array of the
    field shape; ``scratch`` may be supplied to avoid an allocation.
    """
    ref = fields[component]
    total = np.zeros_like(ref)
    diff = diff_forward if component.startswith("B") else diff_backward
    for source, axis, sign in CURL_TERMS[component]:
        if axis >= ndim:
            continue
        term = diff(fields[source], axis, dx[axis], out=scratch)
        if sign > 0:
            total += term
        else:
            total -= term
        if scratch is not None:
            scratch.fill(0.0)
    return total
