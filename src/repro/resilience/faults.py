"""Deterministic, seedable fault scenarios for distributed runs.

The paper's hero runs occupy an exascale machine for hours; at that
scale message loss, link glitches and node failures are routine events a
production campaign must survive, which is why WarpX inherits AMReX's
checkpoint/restart.  This module lets any :class:`~repro.parallel.
distributed.DistributedSimulation` be executed under a *scripted*
failure scenario: a :class:`FaultSchedule` lists exactly which faults
fire at which step, a :class:`FaultInjector` replays them against the
communicator's live traffic, and — because every schedule is either
hand-written or derived from a seed — any failing scenario is replayable
bit-for-bit.

Modelled faults:

==============  ========================================================
``drop``        a message is lost on the wire (sender keeps the original
                in its retransmission buffer)
``duplicate``   a message arrives twice (filtered receiver-side by
                message id)
``corrupt``     a payload is mangled in transit (detected by checksum,
                repaired by retransmission)
``delay``       a message arrives late — after ``delay`` receive
                attempts (absorbed by the retry/backoff loop)
``rank_failure``  a rank dies at the start of step N, losing all of its
                boxes' field and particle data (recovered by
                ``restore_and_redistribute``)
==============  ========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.parallel.comm import payload_nbytes

#: every fault kind a schedule may contain
FAULT_KINDS = ("drop", "duplicate", "corrupt", "delay", "rank_failure")

#: the message-level subset (everything but ``rank_failure``)
MESSAGE_FAULT_KINDS = ("drop", "duplicate", "corrupt", "delay")


@dataclass
class FaultSpec:
    """One scheduled fault.

    Message faults fire on the first send *at or after* ``step`` that
    matches the ``src``/``dst``/``tag`` filters (``None`` matches
    anything); each spec fires at most once.  A ``corrupt`` spec
    additionally waits for a payload with actual bytes (there is nothing
    to mangle in a zero-byte marker message).  ``rank_failure`` ignores
    the message filters and kills ``rank`` at the start of ``step``.
    """

    kind: str
    step: int
    src: Optional[int] = None
    dst: Optional[int] = None
    tag: Optional[str] = None
    rank: Optional[int] = None
    #: receive attempts a delayed message takes to arrive
    delay: int = 2
    fired: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; pick from {FAULT_KINDS}"
            )
        if self.kind == "rank_failure" and self.rank is None:
            raise ConfigurationError("rank_failure needs a target rank")
        if self.kind == "delay" and self.delay < 1:
            raise ConfigurationError("delay must be at least one attempt")

    def matches_send(
        self, step: int, src: int, dst: int, tag: str
    ) -> bool:
        """Does this (message) spec fire on the given send?"""
        if self.fired or self.kind == "rank_failure" or step < self.step:
            return False
        if self.src is not None and src != self.src:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        if self.tag is not None and tag != self.tag:
            return False
        return True


class FaultSchedule:
    """An ordered list of :class:`FaultSpec` plus the scenario seed.

    The seed drives every random choice the injector makes (which byte a
    corruption flips), so a schedule value *is* the full scenario: same
    schedule, same run, same failure, every time.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self.seed = int(seed)

    def add(self, spec: FaultSpec) -> "FaultSchedule":
        self.specs.append(spec)
        return self

    def message_specs(self) -> List[FaultSpec]:
        return [s for s in self.specs if s.kind != "rank_failure"]

    def rank_failures(self) -> List[FaultSpec]:
        return [s for s in self.specs if s.kind == "rank_failure"]

    def fired(self) -> List[FaultSpec]:
        return [s for s in self.specs if s.fired]

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSchedule(n={len(self.specs)}, seed={self.seed})"

    @classmethod
    def random(
        cls,
        seed: int,
        n_faults: int,
        max_step: int,
        n_ranks: Optional[int] = None,
        kinds: Sequence[str] = MESSAGE_FAULT_KINDS,
        tag: Optional[str] = None,
    ) -> "FaultSchedule":
        """A seeded random scenario of ``n_faults`` message faults.

        Used by the fuzz tests: steps are drawn uniformly from
        ``[0, max_step)``, kinds from ``kinds``, and src/dst filters are
        left open (match any traffic) unless ``n_ranks`` is given, in
        which case roughly half the specs pin a random src rank.
        """
        rng = np.random.default_rng(seed)
        specs = []
        for _ in range(int(n_faults)):
            kind = str(rng.choice(list(kinds)))
            src = None
            if n_ranks is not None and rng.random() < 0.5:
                src = int(rng.integers(0, n_ranks))
            specs.append(
                FaultSpec(
                    kind=kind,
                    step=int(rng.integers(0, max_step)),
                    src=src,
                    tag=tag,
                    delay=int(rng.integers(1, 4)),
                )
            )
        return cls(specs, seed=seed)


def corrupt_payload(payload: Any, rng: np.random.Generator) -> Any:
    """A structurally identical copy of ``payload`` with one byte flipped.

    Arrays are deep-copied (the sender's retransmission buffer keeps the
    pristine original); one byte of one randomly chosen non-empty array
    is XOR-mangled, the smallest corruption a checksum must still catch.
    """
    arrays: List[np.ndarray] = []

    def _copy(obj: Any) -> Any:
        if isinstance(obj, np.ndarray):
            out = np.array(obj, copy=True)
            arrays.append(out)
            return out
        if isinstance(obj, tuple):
            return tuple(_copy(o) for o in obj)
        if isinstance(obj, list):
            return [_copy(o) for o in obj]
        if isinstance(obj, dict):
            return {k: _copy(v) for k, v in obj.items()}
        return obj

    out = _copy(payload)
    targets = [a for a in arrays if a.nbytes > 0]
    if not targets:
        raise ConfigurationError("cannot corrupt a payload with no bytes")
    arr = targets[int(rng.integers(0, len(targets)))]
    flat = arr.reshape(-1).view(np.uint8)
    flat[int(rng.integers(0, flat.size))] ^= np.uint8(0x40)
    return out


class FaultInjector:
    """Replays a :class:`FaultSchedule` against live communicator traffic.

    Attached to a :class:`~repro.parallel.comm.SimComm` via
    ``attach_resilience``; the communicator calls :meth:`on_send` for
    every message and the simulation driver calls :meth:`begin_step` /
    :meth:`rank_failure_due` once per step.
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self.rng = np.random.default_rng(schedule.seed)
        self.step = 0

    def begin_step(self, step: int) -> None:
        self.step = int(step)

    def on_send(
        self, src: int, dst: int, tag: str, payload: Any
    ) -> Optional[Tuple[str, Any]]:
        """The action for this send: ``None`` (deliver) or (kind, extra).

        ``extra`` is the corrupted payload for ``corrupt`` and the
        arrival countdown for ``delay``; unused otherwise.
        """
        for spec in self.schedule.specs:
            if not spec.matches_send(self.step, src, dst, tag):
                continue
            if spec.kind == "corrupt" and payload_nbytes(payload) == 0:
                # nothing to mangle (e.g. a zero-byte halo marker): let
                # this send through and keep the spec armed
                continue
            spec.fired = True
            if spec.kind == "corrupt":
                return ("corrupt", corrupt_payload(payload, self.rng))
            if spec.kind == "delay":
                return ("delay", spec.delay)
            return (spec.kind, None)
        return None

    def rank_failure_due(self, step: int) -> Optional[FaultSpec]:
        """The unfired rank failure scheduled at or before ``step``, if any."""
        for spec in self.schedule.rank_failures():
            if not spec.fired and spec.step <= step:
                return spec
        return None
