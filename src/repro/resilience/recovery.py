"""Recovery policies: retry/backoff and checkpoint restore_and_redistribute.

Two recovery mechanisms, mirroring how exascale PIC campaigns actually
survive (paper context: multi-hour Frontier/Fugaku occupancy where rank
loss is routine):

* **retry with exponential backoff** for transient message faults —
  dropped, corrupted, duplicated or delayed messages are repaired inside
  the resilient transport (:meth:`SimComm.recv <repro.parallel.comm.
  SimComm.recv>`), with the :class:`RecoveryPolicy` bounding the retries
  and accounting the modelled backoff time;
* **restore_and_redistribute** for hard rank failure — the run rolls
  back to the last distributed checkpoint, the dead rank's boxes are
  evacuated to the survivors, and the lost steps are replayed (the
  deterministic step makes the replay bit-identical to a fault-free
  run).

Every recovery action is recorded in the communicator event log, so the
:mod:`repro.analysis.commcheck` replay can audit that no injected fault
went unrecovered (rules RES001/RES002).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.diagnostics.io import (
    load_distributed_checkpoint,
    pack_distributed_state,
    save_distributed_checkpoint,
    unpack_distributed_state,
)
from repro.exceptions import ResilienceError
from repro.resilience.faults import FaultInjector, FaultSchedule, FaultSpec


@dataclass
class RecoveryStats:
    """What the recovery layer did during a run (for tests and reports)."""

    retries: int = 0
    redeliveries: int = 0
    dedups: int = 0
    restores: int = 0
    backoff_attempts: int = 0
    #: modelled seconds spent waiting in the exponential-backoff loop
    backoff_time: float = 0.0
    #: bytes re-read from checkpoints by restore_and_redistribute
    restored_bytes: int = 0

    def total_recoveries(self) -> int:
        return self.retries + self.redeliveries + self.dedups + self.restores


@dataclass
class RecoveryPolicy:
    """Bounds and bookkeeping of the transient-fault retry loop.

    ``max_retries`` caps the receive attempts spent waiting for a
    delayed message; ``backoff_base`` is the modelled first-attempt wait,
    doubled on every further attempt (classic exponential backoff).
    """

    max_retries: int = 8
    backoff_base: float = 1e-6
    stats: RecoveryStats = field(default_factory=RecoveryStats)

    # -- notes called by the resilient transport ---------------------------
    def note_retry(self, attempt: int) -> None:
        self.stats.retries += 1

    def note_redeliver(self) -> None:
        self.stats.redeliveries += 1

    def note_dedup(self) -> None:
        self.stats.dedups += 1

    def note_backoff(self, attempt: int) -> None:
        self.stats.backoff_attempts += 1
        self.stats.backoff_time += self.backoff_base * 2.0 ** (attempt - 1)

    def note_restore(self, nbytes: int) -> None:
        self.stats.restores += 1
        self.stats.restored_bytes += int(nbytes)


class ResilienceManager:
    """Wires fault injection, checkpointing and recovery into a
    :class:`~repro.parallel.distributed.DistributedSimulation`.

    The simulation calls :meth:`begin_step` before and :meth:`finish_step`
    after every step.  ``begin_step`` fires any scheduled rank failure
    (and recovers it), then takes a checkpoint whenever the interval is
    due; message-level faults fire inside the communicator against live
    traffic.  Checkpoints go to ``checkpoint_dir`` when given (the
    distributed per-box layout of :func:`~repro.diagnostics.io.
    save_distributed_checkpoint`), otherwise to an in-memory copy of the
    packed state — the fast path the fuzz tests use.
    """

    def __init__(
        self,
        schedule: Optional[FaultSchedule] = None,
        policy: Optional[RecoveryPolicy] = None,
        checkpoint_interval: int = 0,
        checkpoint_dir: Optional[str] = None,
    ) -> None:
        self.injector = FaultInjector(schedule) if schedule is not None else None
        self.policy = policy
        self.checkpoint_interval = int(checkpoint_interval)
        self.checkpoint_dir = checkpoint_dir
        #: metrics registry set by repro.observability.attach_observability
        self.metrics = None
        self._memory_checkpoint: Optional[Dict[str, np.ndarray]] = None
        self._checkpoint_step: Optional[int] = None
        # ranks that died this run: the checkpoint may predate a failure,
        # so the restored dead_ranks set must be re-unioned with these
        self._dead: set = set()

    # -- wiring ------------------------------------------------------------
    def attach(self, sim) -> None:
        """Hook the injector/policy into the simulation's communicator."""
        if self.injector is not None:
            sim.comm.attach_resilience(self.injector, self.policy)

    # -- per-step protocol -------------------------------------------------
    def begin_step(self, sim) -> None:
        if self.injector is not None:
            spec = self.injector.rank_failure_due(sim.step_count)
            if spec is not None:
                self._fail_and_recover(sim, spec)
            self.injector.begin_step(sim.step_count)
        if self._checkpoint_due(sim.step_count):
            self.save_checkpoint(sim)

    def finish_step(self, sim) -> None:
        sim.comm.finish_step()

    # -- checkpointing -----------------------------------------------------
    def _checkpoint_due(self, step: int) -> bool:
        if self._checkpoint_step is None:
            # always hold at least one restore point (taken before the
            # first step, i.e. right after setup)
            return True
        return (
            self.checkpoint_interval > 0
            and step % self.checkpoint_interval == 0
            and step != self._checkpoint_step
        )

    def save_checkpoint(self, sim) -> None:
        if self.checkpoint_dir is not None:
            save_distributed_checkpoint(sim, self.checkpoint_dir)
            if self.metrics is not None:
                nbytes = sum(
                    arr.nbytes for arr in pack_distributed_state(sim).values()
                )
        else:
            state = pack_distributed_state(sim)
            self._memory_checkpoint = {
                k: np.array(v, copy=True) for k, v in state.items()
            }
            if self.metrics is not None:
                nbytes = sum(
                    arr.nbytes for arr in self._memory_checkpoint.values()
                )
        if self.metrics is not None:
            self.metrics.counter("checkpoint.saves").add(1)
            self.metrics.counter("checkpoint.bytes").add(nbytes)
        sim.tracer.instant("checkpoint", step=sim.step_count)
        self._checkpoint_step = sim.step_count

    def _restore_checkpoint(self, sim) -> int:
        """Restore the last checkpoint into ``sim``; returns bytes read."""
        if self.checkpoint_dir is not None:
            load_distributed_checkpoint(sim, self.checkpoint_dir)
            return sum(
                arr.nbytes for arr in pack_distributed_state(sim).values()
            )
        unpack_distributed_state(sim, self._memory_checkpoint)
        return sum(arr.nbytes for arr in self._memory_checkpoint.values())

    # -- restore_and_redistribute ------------------------------------------
    def _fail_and_recover(self, sim, spec: FaultSpec) -> None:
        """Kill ``spec.rank`` and recover via checkpoint restore.

        The rank's boxes lose their field and particle data (filled with
        NaN / emptied — the data is gone, not stale).  Recovery restores
        the whole decomposed state from the last checkpoint, marks the
        rank dead, evacuates its boxes to the survivors and lets the
        driver replay the rolled-back steps.
        """
        rank = int(spec.rank)
        spec.fired = True
        sim.comm.record_rank_failure(rank)
        for i in range(len(sim.boxes)):
            if sim.dm.rank_of(i) != rank:
                continue
            for arr in sim.box_grids[i].fields.values():
                arr.fill(np.nan)
            for dsp in sim.species.values():
                sp = dsp.per_box[i]
                if sp.n:
                    sp.remove(np.ones(sp.n, dtype=bool))
        if self.policy is None:
            raise ResilienceError(
                f"rank {rank} failed at step {sim.step_count} and no "
                "recovery policy is configured (restore_and_redistribute "
                "needs one)"
            )
        if self._checkpoint_step is None:
            raise ResilienceError(
                f"rank {rank} failed at step {sim.step_count} but no "
                "checkpoint has been taken to restore from"
            )
        nbytes = self._restore_checkpoint(sim)
        self._dead.add(rank)
        sim.dead_ranks |= self._dead
        alive = [
            r for r in range(sim.comm.n_ranks) if r not in sim.dead_ranks
        ]
        if not alive:
            raise ResilienceError("every rank has failed; nothing to restore to")
        costs = [b.n_cells for b in sim.boxes]
        # the restored mapping may predate earlier failures: evacuate
        # every dead rank that still owns boxes, not just the newest one
        for dead in sorted(sim.dead_ranks):
            if np.any(sim.dm.assignment == dead):
                sim.dm.evacuate(dead, alive=alive, costs=costs)
        sim.comm.record_restore(rank, nbytes)
        self.policy.note_restore(nbytes)
        if self.metrics is not None:
            self.metrics.counter("resilience.restores").add(1)
            self.metrics.counter("resilience.restored_bytes").add(nbytes)
        sim.tracer.instant(
            "rank_restore", rank=rank, step=sim.step_count, nbytes=nbytes
        )
