"""Fault injection, distributed checkpoint/restart, automatic recovery.

The resilience substrate of the reproduction: exascale campaigns (the
paper's hero runs hold thousands of nodes for hours) cannot assume a
fault-free machine, so WarpX leans on AMReX checkpoint/restart.  Here
the same contract is made *testable*: any distributed run can execute
under a deterministic, seedable :class:`FaultSchedule`; transient
message faults are repaired by :class:`RecoveryPolicy` retries; a hard
rank failure rolls back to the last distributed checkpoint and
redistributes the dead rank's boxes — and every fault and recovery is
an auditable communicator event (commcheck rules RES001/RES002).
"""

from repro.resilience.faults import (
    FAULT_KINDS,
    MESSAGE_FAULT_KINDS,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    corrupt_payload,
)
from repro.resilience.recovery import (
    RecoveryPolicy,
    RecoveryStats,
    ResilienceManager,
)

__all__ = [
    "FAULT_KINDS",
    "MESSAGE_FAULT_KINDS",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "corrupt_payload",
    "RecoveryPolicy",
    "RecoveryStats",
    "ResilienceManager",
]
