"""Simulated communicator with full message accounting.

Stands in for MPI: ranks live in one process and messages move through
buffers, but every send is *recorded* — source, destination, byte count,
tag — so the performance model can run on the code's true communication
volumes rather than estimates.  The interface deliberately mirrors the
mpi4py buffer idiom (send counted in bytes, collectives as explicit calls).

Beyond the aggregate counters, every operation appends a
:class:`CommEvent` to :attr:`SimComm.log`; the post-hoc protocol checker
(:mod:`repro.analysis.commcheck`) replays that log to detect unreceived
messages, tag mismatches, self-sends and collective divergence.
"""

from __future__ import annotations

import zlib
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.diagnostics.timers import now
from repro.exceptions import CommunicationError, ResilienceError
from repro.parallel.transport import LoopbackTransport, Transport

#: fault events a :class:`FaultInjector <repro.resilience.faults.
#: FaultInjector>` can leave in the log
FAULT_EVENT_KINDS = (
    "fault_drop",
    "fault_duplicate",
    "fault_corrupt",
    "fault_delay",
    "rank_fail",
)

#: recovery-action events the resilient transport records
RECOVERY_EVENT_KINDS = (
    "recover_retry",
    "recover_redeliver",
    "recover_dedup",
    "recover_restore",
)

#: schedule-structure events emitted by the exchange phases themselves
#: (``begin_phase``/``end_phase``/``record_apply``); replayed by the
#: happens-before checker in :mod:`repro.analysis.commcheck`
SCHEDULE_EVENT_KINDS = (
    "phase_begin",
    "phase_end",
    "apply",
)


@dataclass(frozen=True)
class CommEvent:
    """One recorded communicator operation.

    ``kind`` is one of ``"send"``, ``"recv"``, ``"recv_missing"`` (a recv
    that found no matching message, recorded before the error is raised),
    ``"collective"`` or ``"barrier"``.  For collectives and barriers
    ``src`` is the participating rank and ``dst`` is ``-1``.

    Under fault injection (:mod:`repro.resilience`) the log additionally
    carries fault events (:data:`FAULT_EVENT_KINDS`: an injected drop,
    duplicate, corruption, delay, or rank failure) and the recovery
    actions that repaired them (:data:`RECOVERY_EVENT_KINDS`: a
    retransmit, a late delivery, a receiver-side dedup, a checkpoint
    restore).  The protocol checker pairs the two streams to verify no
    fault went unrecovered (RES001/RES002).

    Exchange phases additionally bracket their traffic with
    :data:`SCHEDULE_EVENT_KINDS`: a ``phase_begin``/``phase_end`` pair
    per exchange (``src = dst = -1``; ``detail`` holds the declared
    cross-rank message count at begin) and, for ordered fold/fill
    phases, one ``apply`` event per applied overlap entry with
    ``detail`` carrying the canonical order index.  The happens-before
    checker replays these to flag phase overlap on a shared tag
    (COMM007), non-canonical application order (COMM009) and applies
    racing in-flight messages (COMM010).  ``detail`` is 0 for every
    other event kind.
    """

    seq: int
    kind: str
    src: int
    dst: int
    tag: str
    nbytes: int
    detail: int = 0


def _msg_context(op: str, src: int, dst: int, tag: str) -> str:
    """The one message-context format shared by runtime errors and commcheck."""
    return f"{op}: src={src} dst={dst} tag={tag!r}"


class SimComm:
    """An in-process stand-in for an MPI communicator over ``n_ranks``.

    ``device_buffer_bytes`` models the finite GPU memory available for
    communication buffers: messages that do not fit "spill" to pinned host
    memory, WarpX's fall-back for the buffer spikes of large load
    balancing or mesh-refinement-removal steps (paper Sec. V.A.2).  Spills
    are counted (and cost a slowdown factor in the performance model) but
    never fail — exactly the slower-but-safe trade the paper describes.
    """

    #: modelled pinned-host vs device bandwidth ratio for spilled traffic
    SPILL_SLOWDOWN = 4.0

    def __init__(
        self,
        n_ranks: int,
        device_buffer_bytes: Optional[int] = None,
        transport: Optional[Transport] = None,
    ) -> None:
        if n_ranks < 1:
            raise CommunicationError(f"need at least one rank, got {n_ranks}")
        self.n_ranks = int(n_ranks)
        #: where messages physically live between send and recv
        self.transport: Transport = (
            transport if transport is not None else LoopbackTransport()
        )
        self.transport.bind(self)
        #: rank this endpoint belongs to (None: every rank is local)
        self.local_rank = self.transport.local_rank
        if self.transport.blocking and device_buffer_bytes is not None:
            raise CommunicationError(
                "device-buffer spill modelling needs the loopback transport "
                "(the receiver cannot release a remote sender's buffer)"
            )
        # the local landing store: the loopback wire itself, or the
        # drained inbox of a multi-process endpoint
        self._queues: Dict[Tuple[int, int, str], List[Any]] = (
            self.transport.queues
        )
        # accounting
        self.bytes_sent = np.zeros(self.n_ranks, dtype=np.int64)
        self.messages_sent = np.zeros(self.n_ranks, dtype=np.int64)
        self.pair_bytes: Dict[Tuple[int, int], int] = defaultdict(int)
        self.collective_calls = 0
        self.barrier_calls = 0
        # event log replayed by repro.analysis.commcheck
        self.log: List[CommEvent] = []
        self._seq = 0
        # pinned-memory fall-back accounting
        self.device_buffer_bytes = device_buffer_bytes
        self._buffer_in_use = np.zeros(self.n_ranks, dtype=np.int64)
        self.spilled_messages = 0
        self.spilled_bytes = 0
        # -- resilient transport (both None unless attach_resilience) ------
        #: duck-typed fault source: .on_send(src, dst, tag, payload)
        self.fault_injector = None
        #: duck-typed recovery policy: .max_retries, .note_retry(), ...
        self.recovery = None
        self._msg_id = 0
        # sender-side retransmission buffer: originals of dropped/corrupted
        # messages, keyed like the queues
        self._lost: Dict[Tuple[int, int, str], List[Tuple[int, int, Any]]] = (
            defaultdict(list)
        )
        # in-flight delayed messages: [countdown, msg_id, nbytes, payload]
        self._delayed: Dict[Tuple[int, int, str], List[List[Any]]] = (
            defaultdict(list)
        )
        # receiver-side sequence filter (delivered msg ids per queue key)
        self._delivered: Dict[Tuple[int, int, str], set] = defaultdict(set)

    def _check_rank(self, rank: int, role: str, op: str) -> None:
        if not (0 <= rank < self.n_ranks):
            noun = f"{role} rank" if role else "rank"
            raise CommunicationError(
                f"{op}: {noun} {rank} out of range [0, {self.n_ranks})"
            )

    def _record(
        self, kind: str, src: int, dst: int, tag: str, nbytes: int,
        detail: int = 0,
    ) -> None:
        self.log.append(
            CommEvent(self._seq, kind, src, dst, tag, nbytes, detail)
        )
        self._seq += 1

    def _account_buffer(self, src: int, nbytes: int) -> None:
        if self.device_buffer_bytes is not None:
            if self._buffer_in_use[src] + nbytes > self.device_buffer_bytes:
                self.spilled_messages += 1
                self.spilled_bytes += nbytes
            else:
                self._buffer_in_use[src] += nbytes

    def _enqueue(
        self,
        src: int,
        dst: int,
        tag: str,
        payload: Any,
        nbytes: int,
        msg_id: int,
        checksum: Optional[int],
    ) -> None:
        self._account_buffer(src, nbytes)
        self._record("send", src, dst, tag, nbytes)
        self.transport.deliver(
            (src, dst, tag), (src, nbytes, payload, msg_id, checksum)
        )

    def send(self, src: int, dst: int, payload: Any, tag: str = "") -> None:
        """Enqueue ``payload`` from ``src`` to ``dst`` and account its size.

        With a finite device buffer, the payload occupies buffer space on
        the sender until received; overflow spills to pinned memory.

        When a fault injector is attached (:meth:`attach_resilience`) the
        message may instead be dropped, duplicated, corrupted in transit
        or delayed, exactly as the injector's schedule dictates; the sent
        bytes are accounted either way (the wire was used).
        """
        self._check_rank(src, "src", "send")
        self._check_rank(dst, "dst", "send")
        nbytes = payload_nbytes(payload)
        self.bytes_sent[src] += nbytes
        self.messages_sent[src] += 1
        self.pair_bytes[(src, dst)] += nbytes
        msg_id = self._msg_id
        self._msg_id += 1
        if self.fault_injector is not None:
            checksum = payload_checksum(payload)
            action = self.fault_injector.on_send(src, dst, tag, payload)
            if action is not None:
                kind, extra = action
                key = (src, dst, tag)
                if kind == "drop":
                    # lost on the wire; original kept in the sender-side
                    # retransmission buffer for a recovery retry
                    self._record("fault_drop", src, dst, tag, nbytes)
                    self._lost[key].append((msg_id, nbytes, payload))
                    return
                if kind == "delay":
                    self._record("fault_delay", src, dst, tag, nbytes)
                    self._delayed[key].append(
                        [int(extra), msg_id, nbytes, payload]
                    )
                    return
                if kind == "corrupt":
                    # checksum of the *original* travels with the mangled
                    # payload (the sender computed it before the bit flip)
                    self._enqueue(src, dst, tag, extra, nbytes, msg_id, checksum)
                    self._record("fault_corrupt", src, dst, tag, nbytes)
                    self._lost[key].append((msg_id, nbytes, payload))
                    return
                if kind == "duplicate":
                    self._enqueue(
                        src, dst, tag, payload, nbytes, msg_id, checksum
                    )
                    self._record("fault_duplicate", src, dst, tag, nbytes)
                    self.transport.deliver(
                        key, (src, nbytes, payload, msg_id, checksum)
                    )
                    return
                raise CommunicationError(
                    f"fault injector returned unknown action {kind!r}"
                )
            self._enqueue(src, dst, tag, payload, nbytes, msg_id, checksum)
            return
        self._account_buffer(src, nbytes)
        self._record("send", src, dst, tag, nbytes)
        # remote endpoints always checksum: the wire is a real process
        # boundary there, so integrity must not depend on fault injection
        checksum = (
            payload_checksum(payload) if self.transport.blocking else None
        )
        self.transport.deliver(
            (src, dst, tag), (src, nbytes, payload, msg_id, checksum)
        )

    def recv(self, src: int, dst: int, tag: str = "") -> Any:
        """Dequeue the oldest matching message (releases its buffer space).

        Under an attached fault injector this is the resilient receive:
        duplicate copies are filtered by message id, corrupted payloads
        are detected by checksum and retransmitted from the sender-side
        buffer, and dropped/delayed messages are recovered by the retry
        loop of the attached policy.  A fault that cannot be recovered
        raises :class:`~repro.exceptions.ResilienceError` — never a
        silent wrong payload.
        """
        self._check_rank(src, "src", "recv")
        self._check_rank(dst, "dst", "recv")
        key = (src, dst, tag)
        if self.fault_injector is not None:
            return self._recv_resilient(key)
        self.transport.drain()
        queue = self._queues.get(key)
        while not queue:
            if not self.transport.wait(key):
                break
            self.transport.drain()
            queue = self._queues.get(key)
        if not queue:
            if self.transport.blocking:
                self._raise_timeout(src, dst, tag)
            self._raise_missing(src, dst, tag)
        sender, nbytes, payload, _msg_id, checksum = queue.pop(0)
        if self.device_buffer_bytes is not None:
            self._buffer_in_use[sender] = max(
                self._buffer_in_use[sender] - nbytes, 0
            )
        if checksum is not None and payload_checksum(payload) != checksum:
            self._record("recv", src, dst, tag, nbytes)
            raise ResilienceError(
                "corrupted message detected "
                f"({_msg_context('recv', src, dst, tag)}) with no fault "
                "injector attached: the transport itself mangled the payload"
            )
        self._record("recv", src, dst, tag, nbytes)
        return payload

    def _raise_timeout(self, src: int, dst: int, tag: str) -> None:
        """A blocking recv ran out of patience: the peer is likely dead.

        Recorded as ``recv_missing`` (the audit trail shows where the
        run stalled) and raised as :class:`ResilienceError` with full
        message context, never a silent hang.
        """
        self._record("recv_missing", src, dst, tag, 0)
        timeout = getattr(self.transport, "recv_timeout", None)
        raise ResilienceError(
            f"no message ({_msg_context('recv', src, dst, tag)}) after "
            f"{timeout}s on the {self.transport.kind} transport; the "
            f"worker process for rank {src} may have died mid-phase"
        )

    def _raise_missing(self, src: int, dst: int, tag: str) -> None:
        self._record("recv_missing", src, dst, tag, 0)
        pending_tags = sorted(
            t for (s, d, t), q in self._queues.items()
            if s == src and d == dst and q
        )
        hint = (
            f" (pending tags for this pair: {pending_tags})"
            if pending_tags
            else ""
        )
        raise CommunicationError(
            f"no message {_msg_context('recv', src, dst, tag)}{hint}"
        )

    def _recv_resilient(self, key: Tuple[int, int, str]) -> Any:
        """The receive loop of the resilient transport (injector attached)."""
        src, dst, tag = key
        policy = self.recovery
        max_retries = policy.max_retries if policy is not None else 0
        attempts = 0
        while True:
            self.transport.drain()
            queue = self._queues.get(key)
            while queue:
                sender, nbytes, payload, msg_id, checksum = queue.pop(0)
                if self.device_buffer_bytes is not None:
                    self._buffer_in_use[sender] = max(
                        self._buffer_in_use[sender] - nbytes, 0
                    )
                if msg_id in self._delivered[key]:
                    # a duplicate copy of an already-delivered message:
                    # the sequence filter discards it
                    self._record("recover_dedup", src, dst, tag, nbytes)
                    if policy is not None:
                        policy.note_dedup()
                    continue
                if checksum is not None and payload_checksum(payload) != checksum:
                    self._record("recv", src, dst, tag, nbytes)
                    if self.transport.blocking:
                        # the original lives in the *sender's* process:
                        # NACK it and wait for the retransmission (the
                        # sender records the recover_retry, pairing the
                        # fault on its own log)
                        if policy is None:
                            raise ResilienceError(
                                "corrupted message detected "
                                f"({_msg_context('recv', src, dst, tag)}) "
                                "and no recovery policy is attached to "
                                "retransmit it"
                            )
                        self.transport.request_retransmit(key, msg_id)
                        queue = self._queues.get(key)
                        continue
                    original = self._take_lost(key, msg_id)
                    if policy is None or original is None:
                        raise ResilienceError(
                            "corrupted message detected "
                            f"({_msg_context('recv', src, dst, tag)}) and no "
                            "recovery policy is attached to retransmit it"
                        )
                    self._record("recover_retry", src, dst, tag, nbytes)
                    policy.note_retry(attempts)
                    self._enqueue(
                        src, dst, tag, original[2], original[1],
                        self._next_msg_id(), payload_checksum(original[2]),
                    )
                    queue = self._queues.get(key)
                    continue
                self._delivered[key].add(msg_id)
                self._record("recv", src, dst, tag, nbytes)
                return payload
            # nothing deliverable: service delayed messages (one backoff
            # tick per attempt) and retransmit anything known lost
            progressed = False
            delayed = self._delayed.get(key)
            if delayed:
                for entry in delayed:
                    entry[0] -= 1
                ready = [e for e in delayed if e[0] <= 0]
                if ready:
                    if policy is None:
                        raise ResilienceError(
                            "delayed message "
                            f"({_msg_context('recv', src, dst, tag)}) with no "
                            "recovery policy attached to wait for it"
                        )
                    for _countdown, msg_id, nbytes, payload in ready:
                        self._record("recover_redeliver", src, dst, tag, nbytes)
                        policy.note_redeliver()
                        self._enqueue(
                            src, dst, tag, payload, nbytes, msg_id,
                            payload_checksum(payload),
                        )
                    self._delayed[key] = [e for e in delayed if e[0] > 0]
                    progressed = True
            lost = self._lost.get(key)
            if not progressed and lost:
                if policy is None:
                    raise ResilienceError(
                        "message lost in transit "
                        f"({_msg_context('recv', src, dst, tag)}) and no "
                        "recovery policy is attached to retransmit it"
                    )
                msg_id, nbytes, payload = lost.pop(0)
                self._record("recover_retry", src, dst, tag, nbytes)
                policy.note_retry(attempts)
                self._enqueue(
                    src, dst, tag, payload, nbytes, msg_id,
                    payload_checksum(payload),
                )
                progressed = True
            if progressed:
                continue
            if self.transport.blocking:
                # nothing recoverable receiver-side: the sender holds the
                # retransmission buffers, so wait (probing it) for more
                # traffic instead of giving up
                if self.transport.wait(key):
                    continue
                self._raise_timeout(src, dst, tag)
            if delayed and policy is not None and attempts < max_retries:
                attempts += 1
                policy.note_backoff(attempts)
                continue
            if delayed:
                raise ResilienceError(
                    f"delayed message ({_msg_context('recv', src, dst, tag)}) "
                    f"did not arrive within {max_retries} retries"
                )
            self._raise_missing(src, dst, tag)

    def _next_msg_id(self) -> int:
        msg_id = self._msg_id
        self._msg_id += 1
        return msg_id

    def _take_lost(
        self, key: Tuple[int, int, str], msg_id: int
    ) -> Optional[Tuple[int, int, Any]]:
        """Pop the retransmission-buffer entry for ``msg_id`` (None if gone)."""
        for i, entry in enumerate(self._lost.get(key, ())):
            if entry[0] == msg_id:
                return self._lost[key].pop(i)
        return None

    # -- sender-side control servicing (blocking transports) ---------------
    def service_nack(self, key: Tuple[int, int, str], msg_id: int) -> bool:
        """Retransmit the buffered original of a NACKed message.

        A remote receiver detected a checksum mismatch and asked for
        ``msg_id`` again; the original sits in this endpoint's
        retransmission buffer.  Mirrors the loopback corrupt-recovery
        path: new message id, fresh checksum, ``recover_retry`` recorded
        on the *sender's* log (where the ``fault_corrupt`` it pairs with
        also lives).
        """
        src, dst, tag = key
        original = self._take_lost(key, msg_id)
        if original is None:
            return False
        self._record("recover_retry", src, dst, tag, original[1])
        if self.recovery is not None:
            self.recovery.note_retry(0)
        self._enqueue(
            src, dst, tag, original[2], original[1],
            self._next_msg_id(), payload_checksum(original[2]),
        )
        return True

    def service_probe(self, key: Tuple[int, int, str]) -> bool:
        """Service a remote receiver's nothing-arrived probe for ``key``.

        One probe is one backoff tick: delayed messages count down (and
        redeliver at zero), then any known-lost message is retransmitted.
        This is the sender-side half of the loopback no-progress branch
        of :meth:`_recv_resilient`, relocated to the process that
        actually holds the ``_delayed``/``_lost`` buffers.
        """
        src, dst, tag = key
        policy = self.recovery
        progressed = False
        delayed = self._delayed.get(key)
        if delayed:
            for entry in delayed:
                entry[0] -= 1
            ready = [e for e in delayed if e[0] <= 0]
            if ready:
                for _countdown, msg_id, nbytes, payload in ready:
                    self._record("recover_redeliver", src, dst, tag, nbytes)
                    if policy is not None:
                        policy.note_redeliver()
                    self._enqueue(
                        src, dst, tag, payload, nbytes, msg_id,
                        payload_checksum(payload),
                    )
                self._delayed[key] = [e for e in delayed if e[0] > 0]
                progressed = True
        lost = self._lost.get(key)
        if not progressed and lost:
            msg_id, nbytes, payload = lost.pop(0)
            self._record("recover_retry", src, dst, tag, nbytes)
            if policy is not None:
                policy.note_retry(0)
            self._enqueue(
                src, dst, tag, payload, nbytes, msg_id,
                payload_checksum(payload),
            )
            progressed = True
        return progressed

    # -- resilience hooks --------------------------------------------------
    def attach_resilience(self, injector, recovery=None) -> None:
        """Attach a fault injector and (optionally) a recovery policy.

        ``injector`` is consulted on every :meth:`send`; ``recovery``
        drives the retry/backoff loop of :meth:`recv`.  Both are
        duck-typed so this module keeps no dependency on
        :mod:`repro.resilience`.
        """
        self.fault_injector = injector
        self.recovery = recovery

    def finish_step(self) -> None:
        """End-of-step transport maintenance under fault injection.

        Drains duplicate copies still queued (recorded as dedups) and
        raises :class:`~repro.exceptions.ResilienceError` if a dropped or
        delayed message was never asked for again — a fault nobody
        recovered must stop the run, not linger silently.
        """
        self.transport.drain()
        if self.fault_injector is None:
            return
        for key, queue in self._queues.items():
            kept = []
            for entry in queue:
                if entry[3] in self._delivered[key]:
                    self._record(
                        "recover_dedup", key[0], key[1], key[2], entry[1]
                    )
                    if self.recovery is not None:
                        self.recovery.note_dedup()
                else:
                    kept.append(entry)
            queue[:] = kept
        leftovers = self._fault_leftovers()
        if leftovers and self.transport.blocking:
            # remote receivers recover through probe/NACK control
            # messages, which may still be on their way here: keep
            # servicing the inbox until the buffers empty or the
            # transport's own patience runs out
            deadline = now() + getattr(
                self.transport, "recv_timeout", 0.0
            )
            while leftovers and now() < deadline:
                self.transport.pump()
                leftovers = self._fault_leftovers()
        if leftovers:
            raise ResilienceError(
                "unrecovered message fault(s) at end of step for "
                f"(src, dst, tag) = {leftovers}; the receiver never "
                "re-requested the lost/delayed message"
            )

    def _fault_leftovers(self) -> List[Tuple[int, int, str]]:
        return sorted(
            key for key, entries in self._lost.items() if entries
        ) + sorted(key for key, entries in self._delayed.items() if entries)

    def record_rank_failure(self, rank: int) -> None:
        """Log a hard rank failure (audited by commcheck rule RES002)."""
        self._check_rank(rank, "", "rank_fail")
        self._record("rank_fail", rank, -1, "rank", 0)

    def record_restore(self, rank: int, nbytes: int = 0) -> None:
        """Log a checkpoint-restore recovery for a failed rank."""
        self._check_rank(rank, "", "recover_restore")
        self._record("recover_restore", rank, -1, "rank", nbytes)

    # -- schedule structure (replayed by the happens-before checker) --------
    def begin_phase(self, tag: str, n_messages: int = 0) -> None:
        """Mark the start of an exchange phase operating on ``tag``.

        ``n_messages`` is the number of *cross-rank* messages the phase
        intends to move (same-rank overlaps are local copies and never
        touch the communicator — declaring only cross-rank traffic is
        what keeps single-rank decompositions clean under the pair
        accounting of the happens-before checker).
        """
        self._record("phase_begin", -1, -1, tag, 0, detail=int(n_messages))

    def end_phase(self, tag: str) -> None:
        """Mark the end of the exchange phase operating on ``tag``."""
        self._record("phase_end", -1, -1, tag, 0)

    def record_apply(self, tag: str, order: int, nbytes: int = 0) -> None:
        """Log the application of one overlap entry of an ordered phase.

        ``order`` is the entry's canonical order index; the checker
        requires the sequence within a phase to be strictly increasing
        (COMM009) and every apply to happen after the phase's traffic
        has fully arrived (COMM010).
        """
        self._record("apply", -1, -1, tag, nbytes, detail=int(order))

    def pending(self) -> int:
        """Number of undelivered messages (should be 0 between phases)."""
        return sum(len(q) for q in self._queues.values())

    def allreduce_sum(
        self, values: np.ndarray, rank: Optional[int] = None
    ) -> np.ndarray:
        """Model an allreduce: account ~2 log2(P) message rounds per rank.

        ``rank=None`` models the whole collective at once (every rank
        participates); passing a rank records that rank's participation
        only, letting tests and the protocol checker model divergence
        (some ranks reaching the collective, others not).
        """
        if rank is not None:
            self._check_rank(rank, "", "allreduce_sum")
        if self.transport.blocking:
            # a real reduction across worker processes; the modelled
            # accounting below is unchanged so counters stay transport-
            # independent
            if rank is None:
                raise CommunicationError(
                    "allreduce_sum on a blocking transport needs the "
                    "calling rank (every worker participates explicitly)"
                )
            values = self.transport.allreduce(values)
        self.collective_calls += 1
        nbytes = payload_nbytes(values)
        rounds = max(int(np.ceil(np.log2(max(self.n_ranks, 2)))), 1)
        if rank is None:
            self.bytes_sent += nbytes * rounds
            self.messages_sent += rounds
            for r in range(self.n_ranks):
                self._record("collective", r, -1, "allreduce_sum", nbytes)
        else:
            self.bytes_sent[rank] += nbytes * rounds
            self.messages_sent[rank] += rounds
            self._record("collective", rank, -1, "allreduce_sum", nbytes)
        return values

    def barrier(self, rank: Optional[int] = None) -> None:
        """Record a barrier; per-rank participation mirrors allreduce_sum.

        On a blocking transport this is additionally a *real* rendezvous:
        no worker proceeds until every rank has arrived.
        """
        if self.transport.blocking:
            self.transport.sync()
        self.barrier_calls += 1
        if rank is None:
            for r in range(self.n_ranks):
                self._record("barrier", r, -1, "barrier", 0)
        else:
            self._check_rank(rank, "", "barrier")
            self._record("barrier", rank, -1, "barrier", 0)

    # -- reporting ---------------------------------------------------------
    def pair_bytes_for_tag(self, prefix: str = "") -> Dict[Tuple[int, int], int]:
        """Per (src, dst) bytes of logged ``send`` events matching a tag prefix.

        Replays the event log, so in a fault-free run the totals reconcile
        exactly with :attr:`pair_bytes` (which aggregates every tag) —
        this is how tests and the perf model attribute traffic to one
        exchange phase (e.g. prefix ``"halo"`` or ``"lb:"``).
        """
        out: Dict[Tuple[int, int], int] = defaultdict(int)
        for e in self.log:
            if e.kind == "send" and e.tag.startswith(prefix):
                out[(e.src, e.dst)] += e.nbytes
        return dict(out)

    def total_bytes(self) -> int:
        return int(self.bytes_sent.sum())

    def total_messages(self) -> int:
        return int(self.messages_sent.sum())

    def max_pair_bytes(self) -> int:
        return max(self.pair_bytes.values(), default=0)

    def reset_counters(self) -> None:
        """Zero the aggregate counters (the event log is kept: it is the
        audit trail the protocol checker replays)."""
        self.bytes_sent[:] = 0
        self.messages_sent[:] = 0
        self.pair_bytes.clear()
        self.collective_calls = 0
        self.barrier_calls = 0

    def clear_log(self) -> None:
        """Drop the recorded event history (e.g. between benchmark phases)."""
        self.log.clear()


def payload_checksum(payload: Any) -> int:
    """CRC32 over a payload's bytes (arrays, nested tuples, scalars).

    The integrity check of the resilient transport: computed at send
    time, carried with the message, and re-verified at receive time so a
    corrupted-in-transit payload is detected instead of deposited into
    the physics.  Cheap (one pass) and fully deterministic.
    """
    crc = 0
    if isinstance(payload, np.ndarray):
        return zlib.crc32(np.ascontiguousarray(payload).tobytes())
    if isinstance(payload, (tuple, list)):
        for p in payload:
            crc = zlib.crc32(payload_checksum(p).to_bytes(4, "little"), crc)
        return crc
    if isinstance(payload, dict):
        for k in sorted(payload, key=str):
            crc = zlib.crc32(bytes(str(k), "utf8"), crc)
            crc = zlib.crc32(
                payload_checksum(payload[k]).to_bytes(4, "little"), crc
            )
        return crc
    return zlib.crc32(bytes(repr(payload), "utf8"))


def payload_nbytes(payload: Any) -> int:
    """Size of a payload in bytes (arrays by buffer size, tuples summed)."""
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (tuple, list)):
        return sum(payload_nbytes(p) for p in payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(v) for v in payload.values())
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 8
    return len(bytes(str(payload), "utf8"))
