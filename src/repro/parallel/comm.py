"""Simulated communicator with full message accounting.

Stands in for MPI: ranks live in one process and messages move through
buffers, but every send is *recorded* — source, destination, byte count,
tag — so the performance model can run on the code's true communication
volumes rather than estimates.  The interface deliberately mirrors the
mpi4py buffer idiom (send counted in bytes, collectives as explicit calls).

Beyond the aggregate counters, every operation appends a
:class:`CommEvent` to :attr:`SimComm.log`; the post-hoc protocol checker
(:mod:`repro.analysis.commcheck`) replays that log to detect unreceived
messages, tag mismatches, self-sends and collective divergence.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import CommunicationError


@dataclass(frozen=True)
class CommEvent:
    """One recorded communicator operation.

    ``kind`` is one of ``"send"``, ``"recv"``, ``"recv_missing"`` (a recv
    that found no matching message, recorded before the error is raised),
    ``"collective"`` or ``"barrier"``.  For collectives and barriers
    ``src`` is the participating rank and ``dst`` is ``-1``.
    """

    seq: int
    kind: str
    src: int
    dst: int
    tag: str
    nbytes: int


def _msg_context(op: str, src: int, dst: int, tag: str) -> str:
    """The one message-context format shared by runtime errors and commcheck."""
    return f"{op}: src={src} dst={dst} tag={tag!r}"


class SimComm:
    """An in-process stand-in for an MPI communicator over ``n_ranks``.

    ``device_buffer_bytes`` models the finite GPU memory available for
    communication buffers: messages that do not fit "spill" to pinned host
    memory, WarpX's fall-back for the buffer spikes of large load
    balancing or mesh-refinement-removal steps (paper Sec. V.A.2).  Spills
    are counted (and cost a slowdown factor in the performance model) but
    never fail — exactly the slower-but-safe trade the paper describes.
    """

    #: modelled pinned-host vs device bandwidth ratio for spilled traffic
    SPILL_SLOWDOWN = 4.0

    def __init__(self, n_ranks: int, device_buffer_bytes: Optional[int] = None) -> None:
        if n_ranks < 1:
            raise CommunicationError(f"need at least one rank, got {n_ranks}")
        self.n_ranks = int(n_ranks)
        self._queues: Dict[Tuple[int, int, str], List[Any]] = defaultdict(list)
        # accounting
        self.bytes_sent = np.zeros(self.n_ranks, dtype=np.int64)
        self.messages_sent = np.zeros(self.n_ranks, dtype=np.int64)
        self.pair_bytes: Dict[Tuple[int, int], int] = defaultdict(int)
        self.collective_calls = 0
        self.barrier_calls = 0
        # event log replayed by repro.analysis.commcheck
        self.log: List[CommEvent] = []
        self._seq = 0
        # pinned-memory fall-back accounting
        self.device_buffer_bytes = device_buffer_bytes
        self._buffer_in_use = np.zeros(self.n_ranks, dtype=np.int64)
        self.spilled_messages = 0
        self.spilled_bytes = 0

    def _check_rank(self, rank: int, role: str, op: str) -> None:
        if not (0 <= rank < self.n_ranks):
            noun = f"{role} rank" if role else "rank"
            raise CommunicationError(
                f"{op}: {noun} {rank} out of range [0, {self.n_ranks})"
            )

    def _record(
        self, kind: str, src: int, dst: int, tag: str, nbytes: int
    ) -> None:
        self.log.append(CommEvent(self._seq, kind, src, dst, tag, nbytes))
        self._seq += 1

    def send(self, src: int, dst: int, payload: Any, tag: str = "") -> None:
        """Enqueue ``payload`` from ``src`` to ``dst`` and account its size.

        With a finite device buffer, the payload occupies buffer space on
        the sender until received; overflow spills to pinned memory.
        """
        self._check_rank(src, "src", "send")
        self._check_rank(dst, "dst", "send")
        nbytes = payload_nbytes(payload)
        self.bytes_sent[src] += nbytes
        self.messages_sent[src] += 1
        self.pair_bytes[(src, dst)] += nbytes
        if self.device_buffer_bytes is not None:
            if self._buffer_in_use[src] + nbytes > self.device_buffer_bytes:
                self.spilled_messages += 1
                self.spilled_bytes += nbytes
            else:
                self._buffer_in_use[src] += nbytes
        self._record("send", src, dst, tag, nbytes)
        self._queues[(src, dst, tag)].append((src, nbytes, payload))

    def recv(self, src: int, dst: int, tag: str = "") -> Any:
        """Dequeue the oldest matching message (releases its buffer space)."""
        self._check_rank(src, "src", "recv")
        self._check_rank(dst, "dst", "recv")
        queue = self._queues.get((src, dst, tag))
        if not queue:
            self._record("recv_missing", src, dst, tag, 0)
            pending_tags = sorted(
                t for (s, d, t), q in self._queues.items()
                if s == src and d == dst and q
            )
            hint = (
                f" (pending tags for this pair: {pending_tags})"
                if pending_tags
                else ""
            )
            raise CommunicationError(
                f"no message {_msg_context('recv', src, dst, tag)}{hint}"
            )
        sender, nbytes, payload = queue.pop(0)
        if self.device_buffer_bytes is not None:
            self._buffer_in_use[sender] = max(
                self._buffer_in_use[sender] - nbytes, 0
            )
        self._record("recv", src, dst, tag, nbytes)
        return payload

    def pending(self) -> int:
        """Number of undelivered messages (should be 0 between phases)."""
        return sum(len(q) for q in self._queues.values())

    def allreduce_sum(
        self, values: np.ndarray, rank: Optional[int] = None
    ) -> np.ndarray:
        """Model an allreduce: account ~2 log2(P) message rounds per rank.

        ``rank=None`` models the whole collective at once (every rank
        participates); passing a rank records that rank's participation
        only, letting tests and the protocol checker model divergence
        (some ranks reaching the collective, others not).
        """
        if rank is not None:
            self._check_rank(rank, "", "allreduce_sum")
        self.collective_calls += 1
        nbytes = payload_nbytes(values)
        rounds = max(int(np.ceil(np.log2(max(self.n_ranks, 2)))), 1)
        if rank is None:
            self.bytes_sent += nbytes * rounds
            self.messages_sent += rounds
            for r in range(self.n_ranks):
                self._record("collective", r, -1, "allreduce_sum", nbytes)
        else:
            self.bytes_sent[rank] += nbytes * rounds
            self.messages_sent[rank] += rounds
            self._record("collective", rank, -1, "allreduce_sum", nbytes)
        return values

    def barrier(self, rank: Optional[int] = None) -> None:
        """Record a barrier; per-rank participation mirrors allreduce_sum."""
        self.barrier_calls += 1
        if rank is None:
            for r in range(self.n_ranks):
                self._record("barrier", r, -1, "barrier", 0)
        else:
            self._check_rank(rank, "", "barrier")
            self._record("barrier", rank, -1, "barrier", 0)

    # -- reporting ---------------------------------------------------------
    def total_bytes(self) -> int:
        return int(self.bytes_sent.sum())

    def total_messages(self) -> int:
        return int(self.messages_sent.sum())

    def max_pair_bytes(self) -> int:
        return max(self.pair_bytes.values(), default=0)

    def reset_counters(self) -> None:
        """Zero the aggregate counters (the event log is kept: it is the
        audit trail the protocol checker replays)."""
        self.bytes_sent[:] = 0
        self.messages_sent[:] = 0
        self.pair_bytes.clear()
        self.collective_calls = 0
        self.barrier_calls = 0

    def clear_log(self) -> None:
        """Drop the recorded event history (e.g. between benchmark phases)."""
        self.log.clear()


def payload_nbytes(payload: Any) -> int:
    """Size of a payload in bytes (arrays by buffer size, tuples summed)."""
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (tuple, list)):
        return sum(payload_nbytes(p) for p in payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(v) for v in payload.values())
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 8
    return len(bytes(str(payload), "utf8"))
