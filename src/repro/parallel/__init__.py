"""Parallelism substrate: AMReX-style block decomposition and a simulated
MPI layer.

The paper's runs decompose each refinement level into rectangular boxes
distributed over MPI ranks, with guard-cell halo exchange and particle
redistribution.  Here the same algorithmic structure runs inside one
process: :class:`SimComm` routes and *accounts* every message (bytes,
counts) so the performance model can consume real communication volumes,
while the physics of a decomposed run is verified to match the monolithic
run to machine precision."""

from repro.parallel.box import Box, chop_domain
from repro.parallel.distribution import DistributionMapping
from repro.parallel.comm import SimComm
from repro.parallel.halo import (
    assemble_global,
    scatter_local,
    fold_sources_global,
    halo_bytes_per_box,
)
from repro.parallel.redistribute import redistribute_particles
from repro.parallel.distributed import DistributedSimulation

__all__ = [
    "Box",
    "chop_domain",
    "DistributionMapping",
    "SimComm",
    "assemble_global",
    "scatter_local",
    "fold_sources_global",
    "halo_bytes_per_box",
    "redistribute_particles",
    "DistributedSimulation",
]
