"""Parallelism substrate: AMReX-style block decomposition and a simulated
MPI layer.

The paper's runs decompose each refinement level into rectangular boxes
distributed over MPI ranks, with guard-cell halo exchange and particle
redistribution.  Here the same algorithmic structure runs inside one
process: guard-cell regions, deposit folds, redistributed particles and
migrated boxes all travel as real payloads through :class:`SimComm`
``send``/``recv`` — coalesced into one message per rank pair and phase —
so the byte/message accounting the performance model consumes *is* the
data that moved, while the physics of a decomposed run is verified to
match the monolithic run to machine precision.
"""

from repro.parallel.box import Box, chop_domain
from repro.parallel.distribution import DistributionMapping
from repro.parallel.comm import SimComm
from repro.parallel.halo import (
    HaloExchangeStats,
    HaloOverlap,
    assemble_global,
    exchange_halos,
    fold_sources_global,
    fold_sources_pairwise,
    halo_bytes_per_box,
    neighbor_overlaps,
    scatter_local,
)
from repro.parallel.redistribute import migrate_boxes, redistribute_particles
from repro.parallel.distributed import DistributedSimulation

__all__ = [
    "Box",
    "chop_domain",
    "DistributionMapping",
    "SimComm",
    "HaloExchangeStats",
    "HaloOverlap",
    "assemble_global",
    "exchange_halos",
    "fold_sources_global",
    "fold_sources_pairwise",
    "scatter_local",
    "halo_bytes_per_box",
    "neighbor_overlaps",
    "migrate_boxes",
    "redistribute_particles",
    "DistributedSimulation",
]
