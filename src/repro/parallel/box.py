"""Integer index-space boxes and domain chopping (the AMReX BoxArray).

A :class:`Box` is a half-open rectangle of *cell* indices ``[lo, hi)``.
:func:`chop_domain` splits a domain into boxes of at most ``max_grid_size``
cells per axis — the granularity knob the paper's strong-scaling section
discusses ("one block of cells per device" is the scaling floor).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DecompositionError


@dataclass(frozen=True)
class Box:
    """A half-open rectangle of cell indices ``[lo, hi)``."""

    lo: Tuple[int, ...]
    hi: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise DecompositionError("lo and hi must have the same length")
        if any(h <= l for l, h in zip(self.lo, self.hi)):
            raise DecompositionError(f"empty box {self.lo}..{self.hi}")

    @property
    def ndim(self) -> int:
        return len(self.lo)

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def n_cells(self) -> int:
        return int(np.prod(self.shape))

    def center(self) -> Tuple[float, ...]:
        return tuple(0.5 * (l + h) for l, h in zip(self.lo, self.hi))

    def contains_cell(self, cell: Sequence[int]) -> bool:
        return all(l <= c < h for l, c, h in zip(self.lo, cell, self.hi))

    def intersect(self, other: "Box") -> Optional["Box"]:
        """Overlap box, or None if disjoint."""
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(h <= l for l, h in zip(lo, hi)):
            return None
        return Box(lo, hi)

    def grown(self, n: int) -> "Box":
        """Box enlarged by ``n`` cells on every side (the guard region)."""
        return Box(
            tuple(l - n for l in self.lo), tuple(h + n for h in self.hi)
        )

    def shifted(self, offsets: Sequence[int]) -> "Box":
        return Box(
            tuple(l + o for l, o in zip(self.lo, offsets)),
            tuple(h + o for h, o in zip(self.hi, offsets)),
        )

    def is_adjacent(self, other: "Box", guards: int = 1) -> bool:
        """True if ``other`` intersects this box grown by ``guards``."""
        return self.grown(guards).intersect(other) is not None


def chop_domain(
    n_cells: Sequence[int], max_grid_size: int
) -> List[Box]:
    """Split ``[0, n_cells)`` into boxes of at most ``max_grid_size`` per axis.

    Every axis is divided into near-equal segments; the resulting boxes
    tile the domain exactly.
    """
    if max_grid_size < 1:
        raise DecompositionError("max_grid_size must be >= 1")
    per_axis = []
    for n in n_cells:
        n_seg = -(-n // max_grid_size)  # ceil division
        edges = np.linspace(0, n, n_seg + 1).astype(int)
        per_axis.append(list(zip(edges[:-1], edges[1:])))
    boxes = []
    for combo in product(*per_axis):
        lo = tuple(seg[0] for seg in combo)
        hi = tuple(seg[1] for seg in combo)
        boxes.append(Box(lo, hi))
    return boxes
