"""Distribution mapping: which rank owns which box.

Wraps the load-balancing strategies of :mod:`repro.core.load_balance` in
the AMReX ``DistributionMapping`` shape, and implements the dynamic
rebalance step (recompute from fresh costs; report how many boxes moved —
a proxy for the particle/field data that must be shipped).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.load_balance import (
    distribute_knapsack,
    distribute_round_robin,
    distribute_sfc,
    evacuate_boxes,
    load_imbalance,
)
from repro.exceptions import DecompositionError
from repro.parallel.box import Box

STRATEGIES = ("round_robin", "sfc", "knapsack")


class DistributionMapping:
    """Assignment of a list of boxes to ``n_ranks`` ranks."""

    def __init__(
        self,
        boxes: Sequence[Box],
        n_ranks: int,
        strategy: str = "sfc",
        costs: Optional[Sequence[float]] = None,
    ) -> None:
        if strategy not in STRATEGIES:
            raise DecompositionError(
                f"unknown strategy {strategy!r}; pick from {STRATEGIES}"
            )
        if n_ranks < 1:
            raise DecompositionError("need at least one rank")
        self.boxes = list(boxes)
        self.n_ranks = int(n_ranks)
        self.strategy = strategy
        self.assignment = self._compute(costs)

    def _compute(
        self,
        costs: Optional[Sequence[float]],
        exclude_ranks: Sequence[int] = (),
    ) -> np.ndarray:
        if costs is None:
            costs = [b.n_cells for b in self.boxes]
        costs = np.asarray(costs, dtype=np.float64)
        if costs.size != len(self.boxes):
            raise DecompositionError("one cost per box required")
        if self.strategy == "round_robin":
            return distribute_round_robin(
                costs, self.n_ranks, exclude_ranks=exclude_ranks
            )
        if self.strategy == "knapsack":
            return distribute_knapsack(
                costs, self.n_ranks, exclude_ranks=exclude_ranks
            )
        centers = np.array([b.center() for b in self.boxes])
        return distribute_sfc(
            costs, self.n_ranks, box_centers=centers,
            exclude_ranks=exclude_ranks,
        )

    def rank_of(self, box_index: int) -> int:
        return int(self.assignment[box_index])

    def boxes_of(self, rank: int) -> List[int]:
        return [i for i, r in enumerate(self.assignment) if r == rank]

    def imbalance(
        self, costs: Sequence[float], exclude_ranks: Sequence[int] = ()
    ) -> float:
        """Max/mean load over the ranks not in ``exclude_ranks``."""
        return load_imbalance(
            costs, self.assignment, self.n_ranks, exclude_ranks=exclude_ranks
        )

    def rebalance(
        self,
        costs: Sequence[float],
        strategy: Optional[str] = None,
        exclude_ranks: Sequence[int] = (),
    ) -> int:
        """Recompute the mapping from fresh costs.

        ``strategy`` overrides the construction-time strategy for this
        rebalance only (the paper's dynamic LB redistributes with the
        knapsack heuristic on measured costs even when the initial layout
        came from the space-filling curve).  ``exclude_ranks`` — the dead
        ranks after a failure — are barred from the new mapping, so a
        rebalance can never resurrect an evacuated rank.  Returns the
        number of boxes that changed rank — each implies shipping that
        box's field and particle data, the traffic the paper's
        pinned-memory fall-back absorbs during large LB steps.
        """
        old = self.assignment
        if strategy is not None:
            if strategy not in STRATEGIES:
                raise DecompositionError(f"unknown strategy {strategy!r}")
            saved, self.strategy = self.strategy, strategy
            try:
                self.assignment = self._compute(costs, exclude_ranks)
            finally:
                self.strategy = saved
        else:
            self.assignment = self._compute(costs, exclude_ranks)
        return int(np.count_nonzero(old != self.assignment))

    def evacuate(
        self,
        dead_rank: int,
        alive: Sequence[int],
        costs: Optional[Sequence[float]] = None,
    ) -> int:
        """Move a failed rank's boxes to the survivors; others stay put.

        The ``restore_and_redistribute`` mapping update: greedy
        least-loaded placement of the orphaned boxes only (minimal data
        motion during recovery).  Returns the number of boxes moved.
        """
        if costs is None:
            costs = [b.n_cells for b in self.boxes]
        old = self.assignment
        self.assignment = evacuate_boxes(costs, old, dead_rank, alive)
        return int(np.count_nonzero(old != self.assignment))
