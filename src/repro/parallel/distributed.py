"""A domain-decomposed PIC simulation over simulated ranks.

Runs the *same* PIC cycle as :class:`repro.core.simulation.Simulation`,
but on a box decomposition: every box owns a guard-padded grid and the
particles inside it; deposits are folded across box boundaries, fields are
halo-exchanged after the Maxwell push, and particles are redistributed
after the position push.  All communication is accounted through a
:class:`SimComm` so a run yields both physics *and* the per-step message
volumes the performance model consumes.

An integration test verifies that a decomposed run reproduces the
monolithic run to machine precision — the correctness contract of the
whole substrate.

Scope: periodic boundaries on every axis (the uniform-plasma setup of the
paper's weak/strong scaling benchmarks).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Set

import numpy as np

from repro.analysis.sanitize import Sanitizer
from repro.constants import c
from repro.core.costs import CostModel
from repro.core.simulation import smooth_binomial
from repro.diagnostics.timers import Timers
from repro.exceptions import ConfigurationError
from repro.grid.maxwell import MaxwellSolver, cfl_dt
from repro.grid.yee import FIELD_COMPONENTS, YeeGrid
from repro.observability.tracer import NULL_TRACER, phase_span
from repro.parallel.box import Box, chop_domain
from repro.parallel.comm import SimComm
from repro.parallel.distribution import DistributionMapping
from repro.grid.psatd import PSATDMaxwellSolver
from repro.parallel.halo import (
    HALO_TAG_PREFIX,
    assemble_global,
    exchange_halos,
    fold_sources_pairwise,
    neighbor_overlaps,
)
from repro.parallel.redistribute import (
    build_box_lookup,
    migrate_boxes,
    redistribute_particles,
    wrap_positions_periodic,
)
from repro.particles.deposit import deposit_current_esirkepov
from repro.particles.gather import gather_fields
from repro.particles.injection import DensityProfile, inject_plasma
from repro.particles.pusher import lorentz_factor, push_boris, push_positions
from repro.particles.shapes import required_guards
from repro.particles.species import Species

if TYPE_CHECKING:  # imported lazily: repro.resilience sits above this layer
    from repro.resilience.faults import FaultSchedule
    from repro.resilience.recovery import RecoveryPolicy, ResilienceManager


class DistributedSpecies:
    """One logical species scattered over the boxes."""

    def __init__(self, prototype: Species, n_boxes: int) -> None:
        self.prototype = prototype
        self.per_box: List[Species] = [
            Species(prototype.name, prototype.charge, prototype.mass, prototype.ndim)
            for _ in range(n_boxes)
        ]

    def total_n(self) -> int:
        return sum(sp.n for sp in self.per_box)

    def kinetic_energy(self) -> float:
        return sum(sp.kinetic_energy() for sp in self.per_box)

    def gather_all(self) -> Species:
        """All particles merged into one container (diagnostics only)."""
        out = Species(
            self.prototype.name,
            self.prototype.charge,
            self.prototype.mass,
            self.prototype.ndim,
        )
        for sp in self.per_box:
            out.extend(sp)
        return out


class DistributedSimulation:
    """Periodic uniform-plasma PIC on an AMReX-style box decomposition."""

    def __init__(
        self,
        n_cells: Sequence[int],
        lo: Sequence[float],
        hi: Sequence[float],
        n_ranks: int,
        max_grid_size: int = 32,
        strategy: str = "sfc",
        dt: Optional[float] = None,
        cfl: float = 0.9,
        shape_order: int = 2,
        smoothing_passes: int = 0,
        guards: int = 4,
        dynamic_lb: bool = False,
        lb_interval: int = 10,
        lb_threshold: float = 1.1,
        lb_cost_source: str = "measured",
        fault_schedule: Optional["FaultSchedule"] = None,
        recovery: Optional["RecoveryPolicy"] = None,
        checkpoint_interval: int = 0,
        checkpoint_dir: Optional[str] = None,
        tracer=None,
        transport=None,
        maxwell_solver: str = "yee",
        psatd_guards: Optional[int] = None,
        v_galilean=None,
    ) -> None:
        if maxwell_solver not in ("yee", "psatd"):
            raise ConfigurationError(
                f"unknown Maxwell solver {maxwell_solver!r}"
            )
        self.maxwell_solver = maxwell_solver
        if maxwell_solver != "psatd":
            if psatd_guards is not None:
                raise ConfigurationError(
                    "psatd_guards only applies to maxwell_solver='psatd'"
                )
            if v_galilean is not None:
                raise ConfigurationError(
                    "v_galilean is a property of the spectral solver; "
                    "use maxwell_solver='psatd'"
                )
        # guard width is a *solver* property: the spectral local-FFT mode
        # needs a deep halo (accuracy grows with depth; the paper's runs
        # use 11-32 cells), FDTD stencils one cell.  Boxes are built with
        # the larger of the user's particle-shape guards and the solver's
        # declared requirement.
        if maxwell_solver == "psatd":
            solver_guards = (
                int(psatd_guards)
                if psatd_guards is not None
                else PSATDMaxwellSolver.guard_cells
            )
            if solver_guards < 1:
                raise ConfigurationError("psatd_guards must be >= 1")
            guards = max(int(guards), solver_guards)
        self.domain = YeeGrid(n_cells, lo, hi, guards=guards)
        self.dt = float(dt) if dt is not None else cfl_dt(self.domain.dx, cfl)
        self.shape_order = int(shape_order)
        if guards < required_guards(self.shape_order) + 1:
            raise ConfigurationError("not enough guard cells for this shape order")
        self.smoothing_passes = int(smoothing_passes)
        self.boxes = chop_domain(n_cells, max_grid_size)
        if maxwell_solver == "psatd":
            for b in self.boxes:
                for d in range(b.ndim):
                    if b.shape[d] + 2 * guards > n_cells[d]:
                        raise ConfigurationError(
                            f"PSATD box {b.shape} with {guards} guards "
                            f"spans more than one period of the "
                            f"{tuple(n_cells)} domain along axis {d}; "
                            "shrink max_grid_size, lower psatd_guards, "
                            "or grow the domain"
                        )
        self.dm = DistributionMapping(self.boxes, n_ranks, strategy)
        self.comm = SimComm(n_ranks, transport=transport)
        #: SPMD rank of this process (None: all ranks live here)
        self.local_rank = self.comm.local_rank
        self.timers = Timers()
        #: span recorder; the shared no-op unless observability is attached
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: metrics registry set by repro.observability.attach_observability
        self.metrics = None
        self._observer = None
        #: steps between metrics snapshots interleaved into the trace
        self._snapshot_interval = 0
        self.box_grids: List[YeeGrid] = []
        self.box_solvers: List[MaxwellSolver] = []
        #: spectral solvers read guard J and need a source-halo fill
        self._spectral_solver = maxwell_solver == "psatd"
        for b in self.boxes:
            b_lo = tuple(lo[d] + b.lo[d] * self.domain.dx[d] for d in range(b.ndim))
            b_hi = tuple(lo[d] + b.hi[d] * self.domain.dx[d] for d in range(b.ndim))
            bg = YeeGrid(b.shape, b_lo, b_hi, guards=guards)
            self.box_grids.append(bg)
            if self._spectral_solver:
                # region="full": each box FFTs its guard-padded array;
                # the per-step guard refresh supplies the true neighbor
                # data the fake wrap-around would otherwise corrupt
                self.box_solvers.append(
                    PSATDMaxwellSolver(
                        bg, self.dt, v_galilean=v_galilean, region="full"
                    )
                )
            else:
                self.box_solvers.append(MaxwellSolver(bg, self.dt))
        self.box_lookup = build_box_lookup(self.boxes, n_cells)
        periodic_axes = range(self.domain.ndim)
        #: deposit-folding overlaps (valid regions receiving guard deposits)
        self.fold_overlaps = neighbor_overlaps(
            self.boxes, n_cells, guards, periodic_axes, kind="fold"
        )
        #: field-guard fill overlaps (the canonical-owner partition)
        self.fill_overlaps = neighbor_overlaps(
            self.boxes, n_cells, guards, periodic_axes, kind="fill"
        )
        # honest halo/LB traffic counters, accumulated from the per-phase
        # exchange stats (observability mirrors these as per-step deltas)
        self.halo_samples = 0
        self.halo_payload_bytes = 0
        self.halo_messages = 0
        self.lb_moved_bytes = 0
        self.species: Dict[str, DistributedSpecies] = {}
        self.dynamic_lb = bool(dynamic_lb)
        self.lb_interval = int(lb_interval)
        self.lb_threshold = float(lb_threshold)
        if lb_cost_source not in ("measured", "heuristic"):
            raise ConfigurationError(
                f"lb_cost_source must be 'measured' or 'heuristic', "
                f"got {lb_cost_source!r}"
            )
        self.lb_cost_source = lb_cost_source
        self.cost_model = CostModel()
        self.lb_events: List[int] = []
        #: opt-in runtime invariant checks (None unless REPRO_SANITIZE=1)
        self.sanitizer: Optional[Sanitizer] = Sanitizer.from_env()
        self.time = 0.0
        self.step_count = 0
        #: ranks lost to a hard failure (their boxes were evacuated)
        self.dead_ranks: Set[int] = set()
        #: fault-injection / checkpoint / recovery orchestration (optional)
        self.resilience: Optional["ResilienceManager"] = None
        if self.local_rank is not None:
            # SPMD: each worker holds one rank, so the whole-simulation
            # services (checkpoint/restore, rank-failure evacuation)
            # cannot run inside a worker; a dead worker surfaces as a
            # recv timeout (ResilienceError) instead.  Message-level
            # fault injection and recovery stay fully supported.
            if checkpoint_interval > 0 or checkpoint_dir is not None:
                raise ConfigurationError(
                    "checkpointing is not supported on a per-process "
                    "transport: run checkpoints on the loopback transport"
                )
            if fault_schedule is not None and fault_schedule.rank_failures():
                raise ConfigurationError(
                    "rank_failure faults are not supported on a "
                    "per-process transport (a dead worker raises a recv "
                    "timeout); use message-level faults here"
                )
            if fault_schedule is not None:
                from repro.resilience.faults import FaultInjector

                self.comm.attach_resilience(
                    FaultInjector(fault_schedule), recovery
                )
        elif (
            fault_schedule is not None
            or checkpoint_interval > 0
            or checkpoint_dir is not None
        ):
            from repro.resilience.recovery import ResilienceManager

            self.resilience = ResilienceManager(
                schedule=fault_schedule,
                policy=recovery,
                checkpoint_interval=checkpoint_interval,
                checkpoint_dir=checkpoint_dir,
            )
            self.resilience.attach(self)

    # -- setup -----------------------------------------------------------
    def add_species(
        self,
        species: Species,
        profile: Optional[DensityProfile] = None,
        ppc=None,
        momentum_init: Optional[Callable[[Species], None]] = None,
        temperature_uth: float = 0.0,
        rng_seed: int = 0,
    ) -> DistributedSpecies:
        """Register a species and fill every box from ``profile``.

        ``momentum_init`` is called per box container after injection —
        make it a pure function of position so the decomposed and
        monolithic initializations agree.
        """
        dsp = DistributedSpecies(species, len(self.boxes))
        for bg, sp in zip(self.box_grids, dsp.per_box):
            if profile is not None and ppc is not None:
                inject_plasma(
                    sp,
                    bg,
                    profile,
                    ppc,
                    temperature_uth=temperature_uth,
                    rng=np.random.default_rng(rng_seed),
                )
            if momentum_init is not None and sp.n:
                momentum_init(sp)
        self.species[species.name] = dsp
        return dsp

    def init_fields(self, fn: Callable[[YeeGrid], None]) -> None:
        """Apply an initial-field fill ``fn(grid)`` to every box grid.

        ``fn`` must be a pure, periodic function of physical position
        writing the *entire* guard-padded arrays (use the grid's
        ``lo``/``dx``/``guards`` to compute coordinates): every box —
        and a monolithic grid filled with the same ``fn`` — then starts
        from identical data, guards included, with no communication.
        """
        for i, bg in enumerate(self.box_grids):
            if self.owns_box(i):
                fn(bg)

    def owns_box(self, i: int) -> bool:
        """Does this endpoint compute box ``i``?  (Always true when every
        rank is local; under SPMD, grids of unowned boxes stay stale.)"""
        return self.local_rank is None or self.dm.rank_of(i) == self.local_rank

    # -- the decomposed PIC cycle ------------------------------------------
    def step(self, n: int = 1) -> None:
        """Advance ``n`` steps (counted by target step number).

        Under a fault schedule a rank failure rolls the run back to the
        last checkpoint, so the loop tracks the *target* step count: the
        rolled-back steps are replayed until the run genuinely reaches
        ``step_count + n``.
        """
        target = self.step_count + n
        while self.step_count < target:
            self._single_step()

    def _phase(self, name: str, **attrs):
        """Timer accumulation for one phase, plus a span when tracing."""
        if self.tracer.enabled:
            return phase_span(self.timers, self.tracer, name, **attrs)
        return self.timers.timer(name)

    def _single_step(self) -> None:
        with self.tracer.span("step", cat="step", step=self.step_count):
            self.timers.reset_lap()
            if self.resilience is not None:
                self.resilience.begin_step(self)
            elif self.comm.fault_injector is not None:
                self.comm.fault_injector.begin_step(self.step_count)
            with self._phase("particles"):
                for i, (box, bg) in enumerate(zip(self.boxes, self.box_grids)):
                    if not self.owns_box(i):
                        continue
                    bg.zero_sources()
                    with self.tracer.span(
                        "box", cat="box", rank=self.dm.rank_of(i), box=i
                    ):
                        with self.timers.stopwatch() as sw:
                            self._push_and_deposit_box(i, bg)
                    self.cost_model.record_measured(i, sw.elapsed)
            self._finish_step()

    def _push_and_deposit_box(self, i: int, bg: YeeGrid) -> None:
        """Gather/push/deposit every species' particles of box ``i``."""
        ndim = self.domain.ndim
        for dsp in self.species.values():
            sp = dsp.per_box[i]
            if sp.n == 0:
                continue
            e_f, b_f = gather_fields(bg, sp.positions, self.shape_order)
            sp.momenta = push_boris(
                sp.momenta, e_f, b_f, sp.charge, sp.mass, self.dt
            )
            x_old = sp.positions
            sp.positions = push_positions(x_old, sp.momenta, self.dt, ndim)
            vel = sp.momenta * (c / lorentz_factor(sp.momenta))[:, None]
            deposit_current_esirkepov(
                bg,
                x_old,
                sp.positions,
                vel,
                sp.weights,
                sp.charge,
                self.dt,
                self.shape_order,
            )

    def _lb_costs(self) -> np.ndarray:
        """Per-box cost vector driving the rebalance decision.

        ``"measured"`` uses the wall-clock EMA of the cost model — the
        paper's measured-runtime mode, inherently run-dependent.
        ``"heuristic"`` is a pure function of cell and live particle
        counts, so every transport produces the same vector — the mode
        the cross-transport parity tests pin.  Under SPMD each rank only
        knows its own boxes' entries, so a real allreduce assembles the
        global vector; the loopback heuristic path makes the matching
        ``rank=None`` accounting call, keeping counters
        transport-independent.
        """
        n = len(self.boxes)
        if self.lb_cost_source == "heuristic":
            cells = np.array(
                [b.n_cells for b in self.boxes], dtype=np.float64
            )
            parts = np.array(
                [
                    sum(d.per_box[i].n for d in self.species.values())
                    for i in range(n)
                ],
                dtype=np.float64,
            )
            costs = self.cost_model.heuristic(cells, parts)
            if self.local_rank is not None:
                owned = np.array(
                    [self.owns_box(i) for i in range(n)], dtype=bool
                )
                costs = np.where(owned, costs, 0.0)
            return np.asarray(
                self.comm.allreduce_sum(costs, rank=self.local_rank),
                dtype=np.float64,
            )
        costs = self.cost_model.measured(range(n), default=0.0)
        if self.local_rank is not None:
            # each worker measured only its own boxes; sum the pieces
            costs = np.asarray(
                self.comm.allreduce_sum(costs, rank=self.local_rank),
                dtype=np.float64,
            )
        return costs

    def _note_halo(self, stats) -> None:
        """Fold one exchange's stats into the cumulative halo counters."""
        self.halo_samples += stats.samples
        self.halo_payload_bytes += stats.payload_bytes
        self.halo_messages += stats.messages

    def _finish_step(self) -> None:
        """Everything after the per-box particle work: fold sources,
        advance fields, exchange halos, redistribute, balance load.

        All field data moves pairwise through the communicator; the
        global grid is touched only by diagnostics (and the sanitizers).
        """
        ndim = self.domain.ndim
        periodic_axes = tuple(range(ndim))
        with self._phase("fold_sources"):
            if self.smoothing_passes > 0:
                # smooth each box's raw deposits (guards included) before
                # folding, mirroring the monolithic smooth-then-fold order
                for i, bg in enumerate(self.box_grids):
                    if not self.owns_box(i):
                        continue
                    for comp in ("Jx", "Jy", "Jz"):
                        for axis in range(ndim):
                            smooth_binomial(
                                bg.fields[comp], axis, self.smoothing_passes
                            )
            self._note_halo(fold_sources_pairwise(
                self.comm,
                self.box_grids,
                self.boxes,
                self.fold_overlaps,
                self.dm.assignment,
                guards=self.domain.guards,
                local_rank=self.local_rank,
            ))

        if self._spectral_solver:
            # the local-FFT spectral push reads J in the guards (FDTD
            # only reads valid J), so after folding the deposits to
            # their owners, fill every box's guard J from the owners —
            # a distinct phase tag keeps the schedule verifier's
            # per-phase accounting exact
            with self._phase("halo_sources"):
                self._note_halo(exchange_halos(
                    self.comm,
                    self.box_grids,
                    self.boxes,
                    self.fill_overlaps,
                    self.dm.assignment,
                    guards=self.domain.guards,
                    components=("Jx", "Jy", "Jz"),
                    tag=HALO_TAG_PREFIX + ":sources",
                    local_rank=self.local_rank,
                ))

        with self._phase("maxwell"):
            for i, solver in enumerate(self.box_solvers):
                if self.owns_box(i):
                    solver.step()

        with self._phase("halo_fields"):
            self._note_halo(exchange_halos(
                self.comm,
                self.box_grids,
                self.boxes,
                self.fill_overlaps,
                self.dm.assignment,
                guards=self.domain.guards,
                components=FIELD_COMPONENTS,
                local_rank=self.local_rank,
            ))

        with self._phase("redistribute"):
            for dsp in self.species.values():
                for i, sp in enumerate(dsp.per_box):
                    if sp.n and self.owns_box(i):
                        wrap_positions_periodic(
                            sp.positions, self.domain.lo, self.domain.hi,
                            periodic_axes,
                        )
                redistribute_particles(
                    dsp.per_box,
                    self.boxes,
                    self.box_lookup,
                    self.domain.lo,
                    self.domain.dx,
                    comm=self.comm,
                    rank_of_box=self.dm.assignment,
                    local_rank=self.local_rank,
                )

        if (
            self.dynamic_lb
            and self.step_count % self.lb_interval == self.lb_interval - 1
        ):
            with self._phase("load_balance"):
                costs = self._lb_costs()
                imb = self.dm.imbalance(costs, exclude_ranks=self.dead_ranks)
                if imb > self.lb_threshold:
                    old_assignment = self.dm.assignment.copy()
                    moved = self.dm.rebalance(
                        costs, strategy="knapsack",
                        exclude_ranks=self.dead_ranks,
                    )
                    if moved:
                        _, nbytes = migrate_boxes(
                            self.comm,
                            self.box_grids,
                            self.species,
                            old_assignment,
                            self.dm.assignment,
                            local_rank=self.local_rank,
                        )
                        self.lb_moved_bytes += nbytes
                    self.lb_events.append(moved)

        self.time += self.dt
        self.step_count += 1
        self.timers.lap()

        if self.resilience is not None:
            self.resilience.finish_step(self)
        elif self.comm.fault_injector is not None:
            self.comm.finish_step()

        if self._observer is not None:
            self._observer.observe()
            if (
                self._snapshot_interval > 0
                and self.step_count % self._snapshot_interval == 0
            ):
                self.tracer.add_metrics_snapshot(
                    self.metrics.snapshot(), step=self.step_count
                )

        if self.sanitizer is not None:
            with self._phase("sanitize"):
                self._run_sanitizers()

    def _run_sanitizers(self) -> None:
        """Per-step invariant checks (opt-in via ``REPRO_SANITIZE=1``)."""
        step = self.step_count
        san = self.sanitizer
        if self.local_rank is None:
            # the step loop no longer maintains the global grid — refresh
            # it here (diagnostics-only) so the global invariants stay
            # meaningful.  Under SPMD no process holds the global state
            # (unowned grids are stale), so only per-box checks run.
            assemble_global(
                self.domain,
                self.box_grids,
                self.boxes,
                FIELD_COMPONENTS,
                periodic_axes=tuple(range(self.domain.ndim)),
            )
            san.check_fields_finite(self.domain, step, label=" (global)")
            for axis in range(self.domain.ndim):
                san.check_guard_consistency(
                    self.domain, axis, step, label=" (global)"
                )
        for i, bg in enumerate(self.box_grids):
            if self.owns_box(i):
                san.check_fields_finite(bg, step, label=f" (box {i})")
        for name, dsp in self.species.items():
            for i, sp in enumerate(dsp.per_box):
                if sp.n and self.owns_box(i):
                    san.check_particles_in_domain(
                        name,
                        sp.positions,
                        self.domain.lo,
                        self.domain.hi,
                        step,
                        where="redistribute",
                    )
        if self.local_rank is None:
            # an SPMD endpoint may legitimately hold early arrivals from
            # a rank that already entered the next step
            san.check_comm_quiescent(self.comm, step)

    # -- diagnostics -------------------------------------------------------
    def _require_global(self, what: str) -> None:
        if self.local_rank is not None:
            raise ConfigurationError(
                f"{what} needs the global grid, which no SPMD worker "
                "holds; gather per-box state through the transport runner "
                "instead (repro.parallel.mp_transport.run_distributed_mp)"
            )

    def global_field_view(self, component: str) -> np.ndarray:
        """The assembled global field (valid region)."""
        self._require_global("global_field_view")
        assemble_global(
            self.domain,
            self.box_grids,
            self.boxes,
            (component,),
            periodic_axes=tuple(range(self.domain.ndim)),
        )
        return self.domain.interior_view(component)

    def total_particles(self) -> int:
        return sum(d.total_n() for d in self.species.values())

    def local_particles(self) -> int:
        """Particles in boxes this endpoint owns.

        Equal to :meth:`total_particles` when all ranks are local; on an
        SPMD endpoint it skips the stale unowned containers, so per-rank
        values sum to the global count.
        """
        return sum(
            dsp.per_box[i].n
            for dsp in self.species.values()
            for i in range(len(self.boxes))
            if self.owns_box(i)
        )

    def field_energy(self) -> float:
        self._require_global("field_energy")
        assemble_global(
            self.domain,
            self.box_grids,
            self.boxes,
            FIELD_COMPONENTS,
            periodic_axes=tuple(range(self.domain.ndim)),
        )
        return self.domain.field_energy()
