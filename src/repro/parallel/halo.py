"""Guard-cell (halo) exchange between the boxes of one refinement level.

Exchange is genuinely pairwise: :func:`neighbor_overlaps` enumerates the
exact index regions where one box's data is needed by another (periodic
images included), and :func:`exchange_halos` / :func:`fold_sources_pairwise`
slice those regions out of the source box and route them through
:class:`SimComm` as real payloads.  All regions travelling between the
same pair of ranks are coalesced into a single message per exchange phase
— the paper's message-aggregation optimization — and overlaps between
boxes on the same rank short-circuit to local copies, which is why a
locality-aware distribution (SFC) sends fewer bytes for the same physics.

Two overlap kinds cover the PIC cycle:

* ``"fold"`` — after deposition, guard-cell J/rho contributions are *added*
  into the valid region of the box that owns the samples (every deposit is
  summed exactly once per destination copy);
* ``"fill"`` — after the field push, every guard sample (and duplicated
  nodal plane) is *overwritten* with the value computed by the sample's
  unique owner box.

The global-assembly helpers (:func:`assemble_global`,
:func:`fold_sources_global`, :func:`scatter_local`) remain as
diagnostics/reference paths only — the step loop never touches the global
grid.

Index convention: a box with cell range ``[lo, hi)`` and ``g`` guards maps
its local array index ``k`` (along an axis) to the *sample* index
``lo + k - g``; every component array spans samples ``[lo - g, hi + g + 1)``
regardless of staggering.  Overlap regions are expressed in sample space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DecompositionError
from repro.grid.boundary import (
    accumulate_periodic_sources,
    apply_periodic,
    periodic_image_shifts,
)
from repro.grid.yee import FIELD_COMPONENTS, SOURCE_COMPONENTS, STAGGER, YeeGrid
from repro.parallel.box import Box
from repro.parallel.comm import SimComm, payload_nbytes

#: tags of the two halo phases; commcheck and the byte-reconciliation
#: tests filter the event log on this prefix
HALO_TAG_PREFIX = "halo"


def _local_to_global_slices(box: Box, local_shape: Sequence[int]) -> Tuple[slice, ...]:
    """Global-array slices covered by a box's *full* local array."""
    return tuple(
        slice(l, l + s) for l, s in zip(box.lo, local_shape)
    )


def fold_sources_global(
    global_grid: YeeGrid,
    box_grids: Sequence[YeeGrid],
    boxes: Sequence[Box],
    periodic_axes: Sequence[int] = (),
    components: Sequence[str] = SOURCE_COMPONENTS,
) -> None:
    """Sum all per-box deposits into the global grid (reference path).

    Because every macroparticle deposits on exactly one box and local
    array indices map affinely to global indices, the summed global array
    is bit-identical to a monolithic deposition.  Used by diagnostics and
    as the cross-check oracle for :func:`fold_sources_pairwise`.
    """
    for comp in components:
        g_arr = global_grid.fields[comp]
        g_arr.fill(0.0)
        for box, bg in zip(boxes, box_grids):
            sl = _local_to_global_slices(box, bg.fields[comp].shape)
            g_arr[sl] += bg.fields[comp]
    for axis in periodic_axes:
        accumulate_periodic_sources(global_grid, axis)


def assemble_global(
    global_grid: YeeGrid,
    box_grids: Sequence[YeeGrid],
    boxes: Sequence[Box],
    components: Sequence[str],
    periodic_axes: Sequence[int] = (),
) -> None:
    """Write each box's valid field data into the global grid (diagnostics).

    Samples on shared box faces are written by several boxes with
    identical values (their stencils saw identical guard data), so
    overwrite order does not matter.
    """
    for comp in components:
        g_arr = global_grid.fields[comp]
        for box, bg in zip(boxes, box_grids):
            v_sl = bg.valid_slices(comp)
            g_sl = tuple(
                slice(box.lo[d] + s.start, box.lo[d] + s.stop)
                for d, s in enumerate(v_sl)
            )
            g_arr[g_sl] = bg.fields[comp][v_sl]
    for axis in periodic_axes:
        apply_periodic(global_grid, axis, components=components)


def scatter_local(
    global_grid: YeeGrid,
    box_grids: Sequence[YeeGrid],
    boxes: Sequence[Box],
    components: Sequence[str],
) -> None:
    """Copy each box's full local range (valid + guards) from the global grid."""
    for comp in components:
        g_arr = global_grid.fields[comp]
        for box, bg in zip(boxes, box_grids):
            sl = _local_to_global_slices(box, bg.fields[comp].shape)
            bg.fields[comp][...] = g_arr[sl]


@dataclass(frozen=True)
class HaloOverlap:
    """One directed data dependency between two boxes.

    Samples of box ``src`` (displaced by the periodic image ``shift``)
    land in ``region`` of box ``dst``: a source sample with index ``t``
    appears at ``t + shift`` in the destination frame.  ``region`` is a
    half-open :class:`Box` in *sample* space — for ``"fill"`` overlaps it
    lies inside ``dst``'s full (guard-padded) range and reads only owned
    source samples; for ``"fold"`` overlaps it lies inside ``dst``'s
    valid range and reads the source's full range (guards included).
    """

    dst: int
    src: int
    shift: Tuple[int, ...]
    region: Box
    kind: str

    @property
    def n_samples(self) -> int:
        """Samples of one (nodal) component covered by this overlap."""
        return self.region.n_cells


def neighbor_overlaps(
    boxes: Sequence[Box],
    domain_cells: Sequence[int],
    guards: int,
    periodic_axes: Sequence[int] = (),
    kind: str = "fill",
) -> List[HaloOverlap]:
    """All :class:`HaloOverlap` regions of a box array.

    ``kind="fill"`` produces the field-guard exchange pattern: for every
    destination box, the regions over all (source, shift) pairs tile the
    box's full array *exactly once* each, minus the box's own owned cells
    — every guard sample has a unique canonical owner.  ``kind="fold"``
    produces the source-deposit pattern: the destination's valid region
    intersected with every guard-padded source image, so each deposit is
    summed into every copy of the sample it belongs to.  The identity
    overlap (same box, zero shift) is skipped for both kinds.
    """
    if kind not in ("fill", "fold"):
        raise DecompositionError(f"unknown overlap kind {kind!r}")
    if not boxes:
        return []
    shifts = periodic_image_shifts(domain_cells, periodic_axes)
    overlaps: List[HaloOverlap] = []
    for i, bi in enumerate(boxes):
        if kind == "fill":
            # the full guard-padded sample range of the destination
            target = Box(
                tuple(l - guards for l in bi.lo),
                tuple(h + guards + 1 for h in bi.hi),
            )
        else:
            # the (nodal) valid sample range; staggered components trim
            # the top plane at slice time
            target = Box(bi.lo, tuple(h + 1 for h in bi.hi))
        for j, bj in enumerate(boxes):
            for shift in shifts:
                if i == j and all(s == 0 for s in shift):
                    continue
                if kind == "fill":
                    source = bj.shifted(shift)
                else:
                    source = Box(
                        tuple(l - guards + s for l, s in zip(bj.lo, shift)),
                        tuple(h + guards + 1 + s for h, s in zip(bj.hi, shift)),
                    )
                region = target.intersect(source)
                if region is not None:
                    overlaps.append(HaloOverlap(i, j, shift, region, kind))
    return overlaps


def _overlap_slices(
    ov: HaloOverlap,
    dst_box: Box,
    src_box: Box,
    guards: int,
    stagger: Sequence[int],
) -> Optional[Tuple[Tuple[slice, ...], Tuple[slice, ...]]]:
    """Destination/source array slices of one overlap for one component.

    Fold regions are trimmed at the destination's top valid plane for
    staggered axes (the staggered valid range is one sample shorter);
    returns None when the trim empties the region.
    """
    dst_sl, src_sl = [], []
    for d in range(dst_box.ndim):
        lo = ov.region.lo[d]
        hi = ov.region.hi[d]
        if ov.kind == "fold":
            hi = min(hi, dst_box.hi[d] + 1 - stagger[d])
            if hi <= lo:
                return None
        dst_sl.append(slice(lo - dst_box.lo[d] + guards, hi - dst_box.lo[d] + guards))
        src_sl.append(
            slice(
                lo - ov.shift[d] - src_box.lo[d] + guards,
                hi - ov.shift[d] - src_box.lo[d] + guards,
            )
        )
    return tuple(dst_sl), tuple(src_sl)


@dataclass
class HaloExchangeStats:
    """Honest accounting of one exchange phase.

    ``payload_bytes`` is the byte count of the aggregated cross-rank
    message payloads exactly as :func:`~repro.parallel.comm.payload_nbytes`
    sees them, so it reconciles with the communicator's ``pair_bytes`` and
    event log.  ``samples`` counts every applied array sample, local
    copies included (the guard-cell work is the same wherever the
    neighbor lives).
    """

    messages: int = 0
    payload_bytes: int = 0
    samples: int = 0
    local_copies: int = 0

    def merge(self, other: "HaloExchangeStats") -> None:
        self.messages += other.messages
        self.payload_bytes += other.payload_bytes
        self.samples += other.samples
        self.local_copies += other.local_copies


def _apply_entries(
    box_grids: Sequence[YeeGrid],
    entries: Sequence[Tuple[int, str, Tuple[int, ...], np.ndarray]],
    accumulate: bool,
) -> None:
    for dst_box, comp, dst_lo, data in entries:
        arr = box_grids[dst_box].fields[comp]
        sl = tuple(slice(lo, lo + s) for lo, s in zip(dst_lo, data.shape))
        if accumulate:
            arr[sl] += data
        else:
            arr[sl] = data


def _run_exchange(
    comm: SimComm,
    box_grids: Sequence[YeeGrid],
    boxes: Sequence[Box],
    overlaps: Sequence[HaloOverlap],
    rank_of_box: Sequence[int],
    guards: int,
    components: Sequence[str],
    tag: str,
    accumulate: bool,
    local_rank: Optional[int] = None,
) -> HaloExchangeStats:
    """Pack, send, receive and apply one exchange phase.

    All source regions are sliced (and copied) *before* anything is
    applied, so the exchange has snapshot semantics — a destination
    update can never leak into a source read.  One ``comm.send`` carries
    every region travelling between a given (src_rank, dst_rank) pair;
    same-rank regions never touch the communicator.

    Entries carry their position in the overlap enumeration and are
    applied in that canonical order after all messages arrive, so the
    floating-point summation order of the fold depends only on the box
    array — never on the distribution mapping.  A run whose boxes were
    rebalanced (or evacuated off a dead rank) therefore stays
    bit-identical to the same run under any other assignment, which is
    what the resilience layer's recovered-equals-fault-free contract
    requires.

    With ``local_rank`` set (SPMD: one process per rank on a blocking
    transport) the overlap enumeration still runs in full — every rank
    derives the same canonical order indices and the same cross-rank
    pair set from slice geometry alone — but data is packed only where
    this rank owns the source box, sent only on pairs it sources,
    received only on pairs it sinks, and applied only into boxes it
    owns.  Per-rank stats sum to the loopback totals: ``samples`` and
    ``local_copies`` are counted by the packer, ``messages`` and
    ``payload_bytes`` by the receiver.
    """
    stats = HaloExchangeStats()
    pair_payloads: Dict[Tuple[int, int], List] = {}
    cross_pairs: set = set()
    entries: List[Tuple[int, int, str, Tuple[int, ...], np.ndarray]] = []
    order = 0
    for ov in overlaps:
        src_rank = int(rank_of_box[ov.src])
        dst_rank = int(rank_of_box[ov.dst])
        dst_box = boxes[ov.dst]
        src_box = boxes[ov.src]
        src_fields = box_grids[ov.src].fields
        for comp in components:
            sls = _overlap_slices(ov, dst_box, src_box, guards, STAGGER[comp])
            if sls is None:
                continue
            dst_sl, src_sl = sls
            pack = local_rank is None or src_rank == local_rank
            if src_rank != dst_rank:
                cross_pairs.add((src_rank, dst_rank))
            if pack:
                data = src_fields[comp][src_sl].copy()
                entry = (
                    order, ov.dst, comp,
                    tuple(s.start for s in dst_sl), data,
                )
                stats.samples += data.size
                if src_rank == dst_rank:
                    entries.append(entry)
                    stats.local_copies += 1
                else:
                    pair_payloads.setdefault(
                        (src_rank, dst_rank), []
                    ).append(entry)
            order += 1
    send_pairs = sorted(
        p for p in cross_pairs if local_rank is None or p[0] == local_rank
    )
    recv_pairs = sorted(
        p for p in cross_pairs if local_rank is None or p[1] == local_rank
    )
    comm.begin_phase(tag, n_messages=len(send_pairs))
    for pair in send_pairs:
        comm.send(pair[0], pair[1], pair_payloads[pair], tag=tag)
    for pair in recv_pairs:
        payload = comm.recv(pair[0], pair[1], tag=tag)
        stats.messages += 1
        stats.payload_bytes += payload_nbytes(payload)
        entries.extend(payload)
    entries.sort(key=lambda e: e[0])
    for e in entries:
        comm.record_apply(tag, e[0], nbytes=int(e[4].nbytes))
    _apply_entries(box_grids, [e[1:] for e in entries], accumulate)
    comm.end_phase(tag)
    return stats


def fold_sources_pairwise(
    comm: SimComm,
    box_grids: Sequence[YeeGrid],
    boxes: Sequence[Box],
    overlaps: Sequence[HaloOverlap],
    rank_of_box: Sequence[int],
    guards: int,
    components: Sequence[str] = SOURCE_COMPONENTS,
    tag: str = HALO_TAG_PREFIX + ":fold",
    local_rank: Optional[int] = None,
) -> HaloExchangeStats:
    """Accumulate guard-cell J/rho deposits into their owning boxes.

    ``overlaps`` must come from ``neighbor_overlaps(..., kind="fold")``.
    After the call every box's component-valid region holds the complete
    (periodic) sum of all deposits for its samples — equal to folding on
    an assembled global grid, up to floating-point summation order.
    Guard cells keep their raw local deposits; nothing in the cycle reads
    them (E and J are colocated, and guard E/B are overwritten by the
    field fill).
    """
    for ov in overlaps:
        if ov.kind != "fold":
            raise DecompositionError(
                "fold_sources_pairwise needs kind='fold' overlaps"
            )
    return _run_exchange(
        comm, box_grids, boxes, overlaps, rank_of_box, guards,
        components, tag, accumulate=True, local_rank=local_rank,
    )


def exchange_halos(
    comm: SimComm,
    box_grids: Sequence[YeeGrid],
    boxes: Sequence[Box],
    overlaps: Sequence[HaloOverlap],
    rank_of_box: Sequence[int],
    guards: int,
    components: Sequence[str] = FIELD_COMPONENTS,
    tag: str = HALO_TAG_PREFIX + ":fields",
    local_rank: Optional[int] = None,
) -> HaloExchangeStats:
    """Overwrite every guard sample with its canonical owner's value.

    ``overlaps`` must come from ``neighbor_overlaps(..., kind="fill")``.
    The fill regions partition each box's non-owned samples exactly, so
    after the call the full (guard-padded) array of every box is
    bit-identical to scattering from an assembled, periodic global grid.
    """
    for ov in overlaps:
        if ov.kind != "fill":
            raise DecompositionError(
                "exchange_halos needs kind='fill' overlaps"
            )
    return _run_exchange(
        comm, box_grids, boxes, overlaps, rank_of_box, guards,
        components, tag, accumulate=False, local_rank=local_rank,
    )


def halo_bytes_per_box(
    box: Box, guards: int, n_components: int, itemsize: int = 8
) -> int:
    """Guard-shell size of one box in bytes (all components).

    The surface-to-volume communication estimate used by the perf model.
    """
    outer = np.prod([s + 2 * guards for s in box.shape])
    inner = np.prod(box.shape)
    return int((outer - inner) * n_components * itemsize)
