"""Guard-cell (halo) exchange between the boxes of one refinement level.

Data movement is implemented through assembly into a global array — which
inside one process is both simple and exactly equivalent to pairwise
exchange — while the *message accounting* is pairwise and faithful: for
every pair of boxes whose grown regions overlap (including periodic
images), the true overlap sample count is recorded with the communicator.

Index convention: a box with cell range ``[lo, hi)`` and ``g`` guards maps
its local array index ``k`` (along an axis) to global array index
``lo + k`` when the global array carries the same ``g`` guards.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.grid.boundary import accumulate_periodic_sources, apply_periodic
from repro.grid.yee import YeeGrid
from repro.parallel.box import Box
from repro.parallel.comm import SimComm


def _local_to_global_slices(box: Box, local_shape: Sequence[int]) -> Tuple[slice, ...]:
    """Global-array slices covered by a box's *full* local array."""
    return tuple(
        slice(l, l + s) for l, s in zip(box.lo, local_shape)
    )


def fold_sources_global(
    global_grid: YeeGrid,
    box_grids: Sequence[YeeGrid],
    boxes: Sequence[Box],
    periodic_axes: Sequence[int] = (),
    components: Sequence[str] = ("Jx", "Jy", "Jz", "rho"),
) -> None:
    """Sum all per-box deposits into the global grid (guards included).

    Because every macroparticle deposits on exactly one box and local
    array indices map affinely to global indices, the summed global array
    is bit-identical to a monolithic deposition.
    """
    for comp in components:
        g_arr = global_grid.fields[comp]
        g_arr.fill(0.0)
        for box, bg in zip(boxes, box_grids):
            sl = _local_to_global_slices(box, bg.fields[comp].shape)
            g_arr[sl] += bg.fields[comp]
    for axis in periodic_axes:
        accumulate_periodic_sources(global_grid, axis)


def assemble_global(
    global_grid: YeeGrid,
    box_grids: Sequence[YeeGrid],
    boxes: Sequence[Box],
    components: Sequence[str],
    periodic_axes: Sequence[int] = (),
) -> None:
    """Write each box's valid field data into the global grid.

    Samples on shared box faces are written by several boxes with
    identical values (their stencils saw identical guard data), so
    overwrite order does not matter.
    """
    for comp in components:
        g_arr = global_grid.fields[comp]
        for box, bg in zip(boxes, box_grids):
            v_sl = bg.valid_slices(comp)
            g_sl = tuple(
                slice(box.lo[d] + s.start, box.lo[d] + s.stop)
                for d, s in enumerate(v_sl)
            )
            g_arr[g_sl] = bg.fields[comp][v_sl]
    for axis in periodic_axes:
        apply_periodic(global_grid, axis, components=components)


def scatter_local(
    global_grid: YeeGrid,
    box_grids: Sequence[YeeGrid],
    boxes: Sequence[Box],
    components: Sequence[str],
) -> None:
    """Copy each box's full local range (valid + guards) from the global grid."""
    for comp in components:
        g_arr = global_grid.fields[comp]
        for box, bg in zip(boxes, box_grids):
            sl = _local_to_global_slices(box, bg.fields[comp].shape)
            bg.fields[comp][...] = g_arr[sl]


def neighbor_overlaps(
    boxes: Sequence[Box],
    domain_cells: Sequence[int],
    guards: int,
    periodic_axes: Sequence[int] = (),
) -> List[Tuple[int, int, int]]:
    """Pairwise halo overlap sizes: (box_i, box_j, n_samples).

    ``n_samples`` is the number of cells of box ``j`` inside box ``i``'s
    guard shell (including periodic images) — the amount of data ``j``
    ships to ``i`` per exchanged component.
    """
    ndim = boxes[0].ndim if boxes else 0
    shifts = []
    for offsets in product(*[
        ((-domain_cells[d], 0, domain_cells[d]) if d in periodic_axes else (0,))
        for d in range(ndim)
    ]):
        shifts.append(offsets)
    overlaps = []
    for i, bi in enumerate(boxes):
        grown = bi.grown(guards)
        for j, bj in enumerate(boxes):
            total = 0
            for shift in shifts:
                if i == j and all(s == 0 for s in shift):
                    continue
                inter = grown.intersect(bj.shifted(shift))
                if inter is not None:
                    total += inter.n_cells
            if total > 0:
                overlaps.append((i, j, total))
    return overlaps


def account_halo_traffic(
    comm: SimComm,
    overlaps: Sequence[Tuple[int, int, int]],
    rank_of_box: Sequence[int],
    n_components: int,
    itemsize: int = 8,
) -> None:
    """Record one halo exchange's messages with the communicator.

    Overlaps between boxes on the *same* rank cost nothing (local copies),
    matching how real MPI halo exchange behaves under a locality-aware
    distribution — this is why the SFC strategy wins on communication.
    """
    for i, j, n_samples in overlaps:
        src = rank_of_box[j]
        dst = rank_of_box[i]
        if src == dst:
            continue
        comm.send(
            src,
            dst,
            np.empty(0, dtype=np.float64),  # accounting only; data moved via global assembly
            tag="halo",
        )
        nbytes = n_samples * n_components * itemsize
        comm.bytes_sent[src] += nbytes
        comm.pair_bytes[(src, dst)] += nbytes
        comm.recv(src, dst, tag="halo")


def halo_bytes_per_box(
    box: Box, guards: int, n_components: int, itemsize: int = 8
) -> int:
    """Guard-shell size of one box in bytes (all components).

    The surface-to-volume communication estimate used by the perf model.
    """
    outer = np.prod([s + 2 * guards for s in box.shape])
    inner = np.prod(box.shape)
    return int((outer - inner) * n_components * itemsize)
