"""Transport abstraction under :class:`~repro.parallel.comm.SimComm`.

A transport decides *where messages physically live* between a ``send``
and its matching ``recv``; the communicator keeps everything else
(accounting, event log, fault injection, checksums, retransmission
buffers).  Two implementations exist:

* :class:`LoopbackTransport` (here) — the default/test transport: every
  rank lives in one Python process and messages sit in an in-process
  queue dictionary.  This is exactly the pre-transport behaviour of
  ``SimComm`` and stays bit-identical to it.
* :class:`~repro.parallel.mp_transport.MultiprocessingTransport` — one
  worker process per rank; messages cross real process boundaries
  through per-rank inboxes (optionally via shared memory), and the
  resilience layer's retransmissions travel as explicit control
  messages.

The cross-transport equivalence contract — same sends, same per-rank
counters, same physics — is what the differential test matrix in
``tests/test_transport_matrix.py`` enforces; the helpers at the bottom
(:func:`merge_comm_counters`, :func:`merge_rank_logs`) are how per-rank
state from a multi-process run is folded back into the single-view shape
the loopback transport produces natively.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import CommunicationError

#: (src, dst, tag) — the queue key of one ordered message channel
ChannelKey = Tuple[int, int, str]


class Transport:
    """Interface between :class:`SimComm` and the message substrate.

    ``blocking`` distinguishes the two recv disciplines: a non-blocking
    transport (loopback) either has the message already or never will,
    so a missing message is an immediate protocol error; a blocking
    transport (multiprocessing) waits for in-flight traffic up to a
    timeout before declaring the peer dead.
    """

    #: short name used in reports and test parametrization
    kind = "base"
    #: True when ranks run in separate processes (SPMD execution)
    blocking = False
    #: the rank this endpoint belongs to (None: all ranks are local)
    local_rank: Optional[int] = None

    def bind(self, comm) -> None:
        """Attach the owning communicator (for control-message service)."""
        self.comm = comm

    def deliver(self, key: ChannelKey, entry: Tuple) -> None:
        """Move one wire message toward its destination rank."""
        raise NotImplementedError

    def drain(self) -> int:
        """Pull every arrived message into ``comm._queues``.

        Control messages (retransmit requests, barrier tokens) are
        serviced as a side effect.  Returns how many *data* messages
        were drained.
        """
        return 0

    def wait(self, key: ChannelKey) -> bool:
        """Block until new traffic may have arrived for ``key``.

        Returns False when the transport can rule out further arrivals
        (loopback: always) or the receive timeout expired.
        """
        return False

    def request_retransmit(self, key: ChannelKey, msg_id: Optional[int]) -> None:
        """Ask ``key``'s source rank to retransmit (no-op on loopback —
        the sender-side buffers are directly reachable)."""

    def pump(self) -> int:
        """Service the inbox briefly (one short blocking poll).

        Used by senders waiting for remote receivers to ask for their
        buffered retransmissions; returns how many data messages arrived.
        No-op on loopback (there is no remote side to wait for).
        """
        return 0

    def sync(self) -> None:
        """Infrastructure rendezvous between ranks (NOT an accounted
        barrier: the modelled ``SimComm.barrier`` is separate)."""

    def close(self) -> None:
        """Release transport resources (queues, shared memory)."""

    def describe(self) -> str:
        return self.kind


class LoopbackTransport(Transport):
    """All ranks in one process; the queue dictionary IS the wire.

    ``SimComm`` aliases :attr:`queues` as its ``_queues``, so every code
    path that predates the transport abstraction (including the
    resilient receive loop, which reaches into the sender-side
    retransmission buffers directly) behaves exactly as before.
    """

    kind = "loopback"
    blocking = False

    def __init__(self) -> None:
        self.queues: Dict[ChannelKey, List[Any]] = defaultdict(list)

    def deliver(self, key: ChannelKey, entry: Tuple) -> None:
        self.queues[key].append(entry)


# -- cross-process aggregation helpers ----------------------------------------


@dataclass
class CommCounters:
    """The picklable counter state of one communicator endpoint.

    ``from_comm`` snapshots a live :class:`SimComm`;
    :func:`merge_comm_counters` folds the per-rank snapshots of an SPMD
    run into the single-communicator shape a loopback run produces —
    the object both sides of the differential test matrix compare.
    """

    n_ranks: int
    bytes_sent: np.ndarray
    messages_sent: np.ndarray
    pair_bytes: Dict[Tuple[int, int], int]
    collective_calls: int = 0
    barrier_calls: int = 0
    spilled_messages: int = 0
    spilled_bytes: int = 0

    @classmethod
    def from_comm(cls, comm) -> "CommCounters":
        return cls(
            n_ranks=comm.n_ranks,
            bytes_sent=np.array(comm.bytes_sent, dtype=np.int64),
            messages_sent=np.array(comm.messages_sent, dtype=np.int64),
            pair_bytes=dict(comm.pair_bytes),
            collective_calls=comm.collective_calls,
            barrier_calls=comm.barrier_calls,
            spilled_messages=comm.spilled_messages,
            spilled_bytes=comm.spilled_bytes,
        )

    def total_bytes(self) -> int:
        return int(self.bytes_sent.sum())

    def total_messages(self) -> int:
        return int(self.messages_sent.sum())


def merge_comm_counters(states: Sequence[CommCounters]) -> CommCounters:
    """Fold per-rank counter snapshots into one communicator view.

    Send-side counters (bytes/messages/pair_bytes) are disjoint across
    ranks — rank ``r`` only ever increments its own row — so the merge
    is an elementwise sum.  Collective/barrier call counts are per-rank
    views of the *same* collective operations, so the merge takes the
    maximum (every rank that participated counted each operation once).
    """
    if not states:
        raise CommunicationError("nothing to merge: no counter states given")
    n_ranks = states[0].n_ranks
    for s in states:
        if s.n_ranks != n_ranks:
            raise CommunicationError(
                f"cannot merge counters over different rank counts "
                f"({s.n_ranks} vs {n_ranks})"
            )
    out = CommCounters(
        n_ranks=n_ranks,
        bytes_sent=np.zeros(n_ranks, dtype=np.int64),
        messages_sent=np.zeros(n_ranks, dtype=np.int64),
        pair_bytes=defaultdict(int),
    )
    for s in states:
        out.bytes_sent += s.bytes_sent
        out.messages_sent += s.messages_sent
        for pair, nbytes in s.pair_bytes.items():
            out.pair_bytes[pair] += nbytes
        out.collective_calls = max(out.collective_calls, s.collective_calls)
        out.barrier_calls = max(out.barrier_calls, s.barrier_calls)
        out.spilled_messages += s.spilled_messages
        out.spilled_bytes += s.spilled_bytes
    out.pair_bytes = dict(out.pair_bytes)
    return out


def pair_bytes_for_tag(log, prefix: str = "") -> Dict[Tuple[int, int], int]:
    """Per (src, dst) bytes of logged ``send`` events matching ``prefix``.

    The event-log replay of :meth:`SimComm.pair_bytes_for_tag`, usable
    on any event sequence (a merged multi-process log included).
    """
    out: Dict[Tuple[int, int], int] = defaultdict(int)
    for e in log:
        if e.kind == "send" and e.tag.startswith(prefix):
            out[(e.src, e.dst)] += e.nbytes
    return dict(out)


@dataclass
class _PhaseSegment:
    """One phase occurrence sliced out of a per-rank event log."""

    tag: str
    declared: int = 0
    sends: List = field(default_factory=list)
    recvs: List = field(default_factory=list)
    applies: List = field(default_factory=list)
    others: List = field(default_factory=list)


def _segment_rank_log(log) -> Tuple[List, List[_PhaseSegment]]:
    """Split one rank's log into (pre/interphase events, phase segments).

    Events outside any phase are returned per segment position: element
    ``k`` of the first list holds the loose events that preceded phase
    segment ``k`` (the final element holds the trailing events).
    """
    loose: List[List] = [[]]
    segments: List[_PhaseSegment] = []
    current: Optional[_PhaseSegment] = None
    for ev in log:
        if ev.kind == "phase_begin":
            current = _PhaseSegment(tag=ev.tag, declared=ev.detail)
        elif ev.kind == "phase_end":
            if current is not None:
                segments.append(current)
                loose.append([])
            current = None
        elif current is None:
            loose[-1].append(ev)
        elif ev.kind == "send":
            current.sends.append(ev)
        elif ev.kind == "recv":
            current.recvs.append(ev)
        elif ev.kind == "apply":
            current.applies.append(ev)
        else:
            current.others.append(ev)
    return loose, segments


def merge_rank_logs(logs: Sequence[Sequence], n_ranks: int) -> List:
    """Interleave per-rank event logs into one replayable global log.

    Ranks of a fault-free SPMD run traverse the *same* sequence of
    exchange phases, so the merge is structural: for each phase
    occurrence, emit one ``phase_begin`` (declared counts summed), every
    rank's sends, then every rank's recvs, then all applies in canonical
    order, then one ``phase_end``.  The result satisfies the FIFO
    send-before-recv discipline of the protocol checker, so
    ``check_all`` replays a clean multi-process run clean — the same
    audit the loopback transport gets natively.

    Only fault-free logs merge faithfully; logs carrying fault events
    are audited per rank instead (their recovery pairing is rank-local).
    """
    from repro.parallel.comm import CommEvent

    split = [_segment_rank_log(log) for log in logs]
    n_phases = {len(segments) for _loose, segments in split}
    if len(n_phases) != 1:
        raise CommunicationError(
            f"cannot merge rank logs with diverging phase counts "
            f"{sorted(n_phases)}: the ranks did not run the same schedule"
        )
    merged: List = []
    seq = 0

    def emit(kind, src, dst, tag, nbytes, detail=0):
        nonlocal seq
        merged.append(CommEvent(seq, kind, src, dst, tag, nbytes, detail))
        seq += 1

    for k in range(n_phases.pop() + 1):
        for loose, _segments in split:
            if k < len(loose):
                for ev in loose[k]:
                    emit(ev.kind, ev.src, ev.dst, ev.tag, ev.nbytes, ev.detail)
        segments = [s[1][k] for s in split if k < len(s[1])]
        if not segments:
            continue
        tags = {s.tag for s in segments}
        if len(tags) != 1:
            raise CommunicationError(
                f"cannot merge rank logs: phase {k} tags diverge "
                f"({sorted(tags)})"
            )
        tag = tags.pop()
        emit("phase_begin", -1, -1, tag, 0,
             detail=sum(s.declared for s in segments))
        for s in segments:
            for ev in s.sends:
                emit(ev.kind, ev.src, ev.dst, ev.tag, ev.nbytes, ev.detail)
        for s in segments:
            for ev in s.others:
                emit(ev.kind, ev.src, ev.dst, ev.tag, ev.nbytes, ev.detail)
        for s in segments:
            for ev in s.recvs:
                emit(ev.kind, ev.src, ev.dst, ev.tag, ev.nbytes, ev.detail)
        applies = sorted(
            (ev for s in segments for ev in s.applies),
            key=lambda ev: ev.detail,
        )
        for ev in applies:
            emit(ev.kind, ev.src, ev.dst, ev.tag, ev.nbytes, ev.detail)
        emit("phase_end", -1, -1, tag, 0)
    return merged
