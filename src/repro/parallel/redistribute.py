"""Particle redistribution and box migration between ranks.

Particles that left their box are routed to the box that now contains
them (after periodic wrapping), and boxes reassigned by the dynamic load
balancer ship their full field + particle state to the new owner.
Messages go through the simulated communicator when source and
destination live on different ranks, so both kinds of traffic show up in
the accounting like everything else.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DecompositionError
from repro.parallel.box import Box
from repro.parallel.comm import SimComm, payload_nbytes
from repro.particles.species import Species


def _owner_of_positions(
    positions: np.ndarray,
    domain_lo: Sequence[float],
    dx: Sequence[float],
    box_lookup: np.ndarray,
) -> np.ndarray:
    """Owning box index per particle via the cell-to-box lookup table."""
    flat = np.zeros(positions.shape[0], dtype=np.intp)
    strides = np.cumprod([1] + [box_lookup.shape[d] for d in range(box_lookup.ndim - 1, 0, -1)])[::-1]
    for d in range(positions.shape[1]):
        cell = np.floor((positions[:, d] - domain_lo[d]) / dx[d]).astype(np.intp)
        np.clip(cell, 0, box_lookup.shape[d] - 1, out=cell)
        flat += cell * strides[d]
    return box_lookup.ravel()[flat]


def build_box_lookup(boxes: Sequence[Box], domain_cells: Sequence[int]) -> np.ndarray:
    """Cell-index -> box-index table for the whole domain."""
    lookup = np.full(tuple(domain_cells), -1, dtype=np.intp)
    for i, b in enumerate(boxes):
        sl = tuple(slice(l, h) for l, h in zip(b.lo, b.hi))
        lookup[sl] = i
    if np.any(lookup < 0):
        raise DecompositionError("boxes do not tile the domain")
    return lookup


def wrap_positions_periodic(
    positions: np.ndarray,
    domain_lo: Sequence[float],
    domain_hi: Sequence[float],
    axes: Sequence[int],
) -> None:
    """In-place periodic wrap of positions along ``axes``."""
    for d in axes:
        length = domain_hi[d] - domain_lo[d]
        x = positions[:, d]
        np.mod(x - domain_lo[d], length, out=x)
        x += domain_lo[d]


def _batch_from_arrays(proto: Species, arrays: Tuple) -> Species:
    """A particle batch rebuilt from a received array payload."""
    pos, mom, wgt, ids = arrays
    batch = Species(proto.name, proto.charge, proto.mass, proto.ndim, proto.dtype)
    batch.positions = np.asarray(pos, dtype=proto.dtype)
    batch.momenta = np.asarray(mom, dtype=proto.dtype)
    batch.weights = np.asarray(wgt, dtype=proto.dtype)
    batch.ids = np.asarray(ids, dtype=np.int64)
    return batch


def redistribute_particles(
    species_per_box: Sequence[Species],
    boxes: Sequence[Box],
    box_lookup: np.ndarray,
    domain_lo: Sequence[float],
    dx: Sequence[float],
    comm: Optional[SimComm] = None,
    rank_of_box: Optional[Sequence[int]] = None,
    local_rank: Optional[int] = None,
) -> int:
    """Move particles to their owning boxes; returns how many moved.

    ``species_per_box`` holds one container per box (same species).  When
    ``comm``/``rank_of_box`` are given, cross-rank moves travel as
    messages carrying the particles' position+momentum+weight+id arrays.

    The wire protocol is deterministic: exactly one message per ordered
    pair of distinct active ranks (derived from ``rank_of_box`` alone),
    carrying every batch moving between that pair — possibly none, a
    zero-byte message.  A receiver therefore never has to predict
    data-dependent message counts, which is what lets one worker process
    per rank (``local_rank`` set) run the same protocol as the loopback
    transport.  Batches apply in canonical ``(src_box, dst_box)`` order
    on every transport, so destination containers are filled in the
    exact order a loopback run produces — bit-identical physics.
    """
    n_moved = 0
    batches: List[Tuple[int, int, Species]] = []  # (src_box, dst_box, batch)
    for i, sp in enumerate(species_per_box):
        if (
            local_rank is not None
            and rank_of_box is not None
            and int(rank_of_box[i]) != local_rank
        ):
            continue
        if sp.n == 0:
            continue
        owner = _owner_of_positions(sp.positions, domain_lo, dx, box_lookup)
        leaving = owner != i
        if not np.any(leaving):
            continue
        movers = sp.remove(leaving)
        owners = owner[leaving]
        for j in np.unique(owners):
            batch = movers.select(owners == j)
            n_moved += batch.n
            batches.append((i, int(j), batch))
    if comm is None or rank_of_box is None:
        for _i, j, batch in sorted(batches, key=lambda b: (b[0], b[1])):
            species_per_box[j].extend(batch)
        return n_moved
    active = sorted({int(r) for r in rank_of_box})
    pairs = [(a, b) for a in active for b in active if a != b]
    per_pair: Dict[Tuple[int, int], List] = {p: [] for p in pairs}
    pending: List[Tuple[int, int, Species]] = []
    for i, j, batch in batches:
        src = int(rank_of_box[i])
        dst = int(rank_of_box[j])
        if src == dst:
            pending.append((i, j, batch))
        else:
            # the received payload IS the batch: the comm path is
            # load-bearing, so injected message faults would alter the
            # physics unless the resilient transport recovers
            per_pair[(src, dst)].append(
                (i, j, (batch.positions, batch.momenta, batch.weights,
                        batch.ids))
            )
    send_pairs = [p for p in pairs if local_rank is None or p[0] == local_rank]
    recv_pairs = [p for p in pairs if local_rank is None or p[1] == local_rank]
    comm.begin_phase("particles", n_messages=len(send_pairs))
    for p in send_pairs:
        comm.send(p[0], p[1], per_pair[p], tag="particles")
    for p in recv_pairs:
        payload = comm.recv(p[0], p[1], tag="particles")
        for i, j, arrays in payload:
            pending.append((i, j, _batch_from_arrays(species_per_box[j], arrays)))
    for _i, j, batch in sorted(pending, key=lambda b: (b[0], b[1])):
        species_per_box[j].extend(batch)
    comm.end_phase("particles")
    return n_moved


def migrate_boxes(
    comm: SimComm,
    box_grids: Sequence,
    species: Mapping[str, object],
    old_assignment: Sequence[int],
    new_assignment: Sequence[int],
    tag: str = "lb:migrate",
    local_rank: Optional[int] = None,
) -> Tuple[int, int]:
    """Ship the state of every box that changed rank to its new owner.

    A dynamic-LB move costs the box's full field arrays plus every
    species' particle arrays — the traffic the paper's pinned-memory
    fall-back absorbs during large LB steps.  All boxes moving between
    the same (old_rank, new_rank) pair travel in one aggregated message,
    and the comm path is load-bearing: the receiving side writes the
    *received* payload back into the box state, so an unrecovered message
    fault would alter the physics.  ``species`` maps name -> holder with
    a ``per_box`` list of particle containers (duck-typed to avoid a
    dependency on the distributed driver).  Returns ``(n_messages,
    payload_bytes)``.

    With ``local_rank`` set (SPMD), the move list — derived from the two
    assignment arrays every rank holds identically — is enumerated in
    full, but state is packed and sent only for boxes this rank is
    giving up, and received/applied only for boxes it is taking over.
    ``payload_bytes`` is counted at the receiver, so per-rank totals sum
    to the loopback value.
    """
    per_pair: Dict[Tuple[int, int], List] = {}
    move_pairs: set = set()
    for i, (old, new) in enumerate(zip(old_assignment, new_assignment)):
        old, new = int(old), int(new)
        if old == new:
            continue
        move_pairs.add((old, new))
        if local_rank is not None and old != local_rank:
            continue
        fields = {
            comp: arr.copy() for comp, arr in box_grids[i].fields.items()
        }
        parts = {}
        for name, holder in species.items():
            sp = holder.per_box[i]
            parts[name] = (
                sp.positions.copy(), sp.momenta.copy(),
                sp.weights.copy(), sp.ids.copy(),
            )
        per_pair.setdefault((old, new), []).append((i, fields, parts))
    send_pairs = sorted(
        p for p in move_pairs if local_rank is None or p[0] == local_rank
    )
    recv_pairs = sorted(
        p for p in move_pairs if local_rank is None or p[1] == local_rank
    )
    comm.begin_phase(tag, n_messages=len(send_pairs))
    for pair in send_pairs:
        comm.send(pair[0], pair[1], per_pair[pair], tag=tag)
    moved_bytes = 0
    for pair in recv_pairs:
        payload = comm.recv(pair[0], pair[1], tag=tag)
        moved_bytes += payload_nbytes(payload)
        for i, fields, parts in payload:
            for comp, arr in fields.items():
                box_grids[i].fields[comp][...] = arr
            for name, (pos, mom, wgt, ids) in parts.items():
                sp = species[name].per_box[i]
                sp.positions = np.asarray(pos, dtype=sp.dtype)
                sp.momenta = np.asarray(mom, dtype=sp.dtype)
                sp.weights = np.asarray(wgt, dtype=sp.dtype)
                sp.ids = np.asarray(ids, dtype=np.int64)
    comm.end_phase(tag)
    return len(send_pairs), moved_bytes

