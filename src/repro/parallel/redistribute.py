"""Particle redistribution and box migration between ranks.

Particles that left their box are routed to the box that now contains
them (after periodic wrapping), and boxes reassigned by the dynamic load
balancer ship their full field + particle state to the new owner.
Messages go through the simulated communicator when source and
destination live on different ranks, so both kinds of traffic show up in
the accounting like everything else.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DecompositionError
from repro.parallel.box import Box
from repro.parallel.comm import SimComm, payload_nbytes
from repro.particles.species import Species


def _owner_of_positions(
    positions: np.ndarray,
    domain_lo: Sequence[float],
    dx: Sequence[float],
    box_lookup: np.ndarray,
) -> np.ndarray:
    """Owning box index per particle via the cell-to-box lookup table."""
    flat = np.zeros(positions.shape[0], dtype=np.intp)
    strides = np.cumprod([1] + [box_lookup.shape[d] for d in range(box_lookup.ndim - 1, 0, -1)])[::-1]
    for d in range(positions.shape[1]):
        cell = np.floor((positions[:, d] - domain_lo[d]) / dx[d]).astype(np.intp)
        np.clip(cell, 0, box_lookup.shape[d] - 1, out=cell)
        flat += cell * strides[d]
    return box_lookup.ravel()[flat]


def build_box_lookup(boxes: Sequence[Box], domain_cells: Sequence[int]) -> np.ndarray:
    """Cell-index -> box-index table for the whole domain."""
    lookup = np.full(tuple(domain_cells), -1, dtype=np.intp)
    for i, b in enumerate(boxes):
        sl = tuple(slice(l, h) for l, h in zip(b.lo, b.hi))
        lookup[sl] = i
    if np.any(lookup < 0):
        raise DecompositionError("boxes do not tile the domain")
    return lookup


def wrap_positions_periodic(
    positions: np.ndarray,
    domain_lo: Sequence[float],
    domain_hi: Sequence[float],
    axes: Sequence[int],
) -> None:
    """In-place periodic wrap of positions along ``axes``."""
    for d in axes:
        length = domain_hi[d] - domain_lo[d]
        x = positions[:, d]
        np.mod(x - domain_lo[d], length, out=x)
        x += domain_lo[d]


def redistribute_particles(
    species_per_box: Sequence[Species],
    boxes: Sequence[Box],
    box_lookup: np.ndarray,
    domain_lo: Sequence[float],
    dx: Sequence[float],
    comm: Optional[SimComm] = None,
    rank_of_box: Optional[Sequence[int]] = None,
) -> int:
    """Move particles to their owning boxes; returns how many moved.

    ``species_per_box`` holds one container per box (same species).  When
    ``comm``/``rank_of_box`` are given, cross-rank moves are recorded as
    messages carrying the particles' position+momentum+weight+id payload.
    """
    n_moved = 0
    if comm is not None:
        comm.begin_phase("particles")
    pending: List[Tuple[int, Species]] = []
    for i, sp in enumerate(species_per_box):
        if sp.n == 0:
            continue
        owner = _owner_of_positions(sp.positions, domain_lo, dx, box_lookup)
        leaving = owner != i
        if not np.any(leaving):
            continue
        movers = sp.remove(leaving)
        owners = owner[leaving]
        for j in np.unique(owners):
            batch = movers.select(owners == j)
            n_moved += batch.n
            if comm is not None and rank_of_box is not None:
                src = rank_of_box[i]
                dst = rank_of_box[int(j)]
                if src != dst:
                    # the received payload IS the batch: the comm path is
                    # load-bearing, so injected message faults would alter
                    # the physics unless the resilient transport recovers
                    comm.send(
                        src,
                        dst,
                        (batch.positions, batch.momenta, batch.weights, batch.ids),
                        tag="particles",
                    )
                    pos, mom, wgt, ids = comm.recv(src, dst, tag="particles")
                    batch = Species(
                        batch.name, batch.charge, batch.mass, batch.ndim, batch.dtype
                    )
                    batch.positions = np.asarray(pos, dtype=batch.dtype)
                    batch.momenta = np.asarray(mom, dtype=batch.dtype)
                    batch.weights = np.asarray(wgt, dtype=batch.dtype)
                    batch.ids = np.asarray(ids, dtype=np.int64)
            pending.append((int(j), batch))
    for j, batch in pending:
        species_per_box[j].extend(batch)
    if comm is not None:
        comm.end_phase("particles")
    return n_moved


def migrate_boxes(
    comm: SimComm,
    box_grids: Sequence,
    species: Mapping[str, object],
    old_assignment: Sequence[int],
    new_assignment: Sequence[int],
    tag: str = "lb:migrate",
) -> Tuple[int, int]:
    """Ship the state of every box that changed rank to its new owner.

    A dynamic-LB move costs the box's full field arrays plus every
    species' particle arrays — the traffic the paper's pinned-memory
    fall-back absorbs during large LB steps.  All boxes moving between
    the same (old_rank, new_rank) pair travel in one aggregated message,
    and the comm path is load-bearing: the receiving side writes the
    *received* payload back into the box state, so an unrecovered message
    fault would alter the physics.  ``species`` maps name -> holder with
    a ``per_box`` list of particle containers (duck-typed to avoid a
    dependency on the distributed driver).  Returns ``(n_messages,
    payload_bytes)``.
    """
    per_pair: Dict[Tuple[int, int], List] = {}
    for i, (old, new) in enumerate(zip(old_assignment, new_assignment)):
        old, new = int(old), int(new)
        if old == new:
            continue
        fields = {
            comp: arr.copy() for comp, arr in box_grids[i].fields.items()
        }
        parts = {}
        for name, holder in species.items():
            sp = holder.per_box[i]
            parts[name] = (
                sp.positions.copy(), sp.momenta.copy(),
                sp.weights.copy(), sp.ids.copy(),
            )
        per_pair.setdefault((old, new), []).append((i, fields, parts))
    pairs = sorted(per_pair)
    comm.begin_phase(tag, n_messages=len(pairs))
    for pair in pairs:
        comm.send(pair[0], pair[1], per_pair[pair], tag=tag)
    moved_bytes = 0
    for pair in pairs:
        payload = comm.recv(pair[0], pair[1], tag=tag)
        moved_bytes += payload_nbytes(payload)
        for i, fields, parts in payload:
            for comp, arr in fields.items():
                box_grids[i].fields[comp][...] = arr
            for name, (pos, mom, wgt, ids) in parts.items():
                sp = species[name].per_box[i]
                sp.positions = np.asarray(pos, dtype=sp.dtype)
                sp.momenta = np.asarray(mom, dtype=sp.dtype)
                sp.weights = np.asarray(wgt, dtype=sp.dtype)
                sp.ids = np.asarray(ids, dtype=np.int64)
    comm.end_phase(tag)
    return len(pairs), moved_bytes

