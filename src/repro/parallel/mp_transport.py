"""One worker process per rank: SimComm over ``multiprocessing``.

:class:`MultiprocessingTransport` is the blocking counterpart of the
in-process loopback: every rank runs in its own forked worker, each with
one ``multiprocessing.Queue`` inbox, and messages — the same
``(src, nbytes, payload, msg_id, checksum)`` wire entries the pairwise
halo protocol produces — cross a real process boundary.  Large arrays
hop through POSIX shared memory instead of the queue pipe.

The resilience layer stays load-bearing across the boundary: CRC32
checksums are always computed (the wire is real here), a receiver that
detects corruption NACKs the sender's retransmission buffer, and a
receiver that sees nothing arrive probes the sender, driving the
delayed-message countdowns and lost-message retransmits that the
loopback transport services in-process.  Every blocking wait — receive,
barrier, reduction — services all control traffic, so recovery cannot
deadlock behind a collective.

Quiescence is count-exact: :meth:`MultiprocessingTransport.sync` sends a
sequence-numbered token to every peer and dispatches the inbox until all
peers' tokens arrive.  ``multiprocessing.Queue`` preserves per-producer
FIFO order, so holding rank *r*'s token proves every message *r* sent
before the barrier has already been drained into the local queues.

:func:`run_distributed_mp` is the SPMD driver: each worker builds the
*same* :class:`~repro.parallel.distributed.DistributedSimulation`
deterministically, computes only the boxes its rank owns, and ships its
owned state, counters and event log back to the parent, which folds them
into the single-view shape a loopback run produces natively
(:class:`MPRunResult`) — the object the cross-transport differential
tests compare bit-for-bit.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import traceback
from collections import defaultdict
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.diagnostics.timers import now
from repro.exceptions import CommunicationError, ResilienceError
from repro.parallel.transport import (
    ChannelKey,
    CommCounters,
    Transport,
    merge_comm_counters,
    merge_rank_logs,
)

#: payloads at or above this many bytes ride in shared memory
DEFAULT_SHM_THRESHOLD = 1 << 16

#: marker tuple head for a shared-memory array reference on the wire
_SHM_MARKER = "__shm_ndarray__"


def _shm_encode(obj: Any, threshold: int) -> Any:
    """Replace large arrays in ``obj`` with shared-memory references.

    Each reference is single-use: the receiver attaches, copies the data
    out, closes and unlinks the segment.  Structure and small values
    still travel (pickled) through the queue pipe.
    """
    if isinstance(obj, np.ndarray):
        if obj.nbytes >= threshold:
            seg = shared_memory.SharedMemory(create=True, size=obj.nbytes)
            view = np.ndarray(obj.shape, dtype=obj.dtype, buffer=seg.buf)
            view[...] = obj
            ref = (_SHM_MARKER, seg.name, obj.shape, obj.dtype.str)
            seg.close()
            # ownership passes to the receiver (who attaches and then
            # unlinks); keep the local resource tracker out of it
            resource_tracker.unregister(seg._name, "shared_memory")
            return ref
        return obj
    if isinstance(obj, tuple):
        return tuple(_shm_encode(o, threshold) for o in obj)
    if isinstance(obj, list):
        return [_shm_encode(o, threshold) for o in obj]
    if isinstance(obj, dict):
        return {k: _shm_encode(v, threshold) for k, v in obj.items()}
    return obj


def _shm_decode(obj: Any) -> Any:
    """Resolve shared-memory references back into owned arrays."""
    if isinstance(obj, tuple):
        if len(obj) == 4 and isinstance(obj[0], str) and obj[0] == _SHM_MARKER:
            _, name, shape, dtype = obj
            seg = shared_memory.SharedMemory(name=name)
            try:
                view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)
                out = np.array(view, copy=True)
            finally:
                seg.close()
                seg.unlink()
            return out
        return tuple(_shm_decode(o) for o in obj)
    if isinstance(obj, list):
        return [_shm_decode(o) for o in obj]
    if isinstance(obj, dict):
        return {k: _shm_decode(v) for k, v in obj.items()}
    return obj


class MultiprocessingTransport(Transport):
    """A SimComm endpoint living in one worker process.

    All inter-rank traffic flows through per-rank inbox queues shared by
    fork inheritance; :meth:`drain` moves arrived data messages into the
    local landing store (:attr:`queues`, aliased by ``SimComm._queues``)
    and services control messages — retransmit NACKs, probes, barrier
    tokens, reduction parts — as a side effect.
    """

    kind = "multiprocessing"
    blocking = True

    def __init__(
        self,
        local_rank: int,
        n_ranks: int,
        inboxes: Sequence[Any],
        recv_timeout: float = 30.0,
        poll_interval: float = 0.02,
        shm_threshold: int = DEFAULT_SHM_THRESHOLD,
    ) -> None:
        if not (0 <= local_rank < n_ranks):
            raise CommunicationError(
                f"local rank {local_rank} out of range [0, {n_ranks})"
            )
        if len(inboxes) != n_ranks:
            raise CommunicationError(
                f"need one inbox per rank: got {len(inboxes)} for {n_ranks}"
            )
        self.local_rank = int(local_rank)
        self.n_ranks = int(n_ranks)
        self._inboxes = list(inboxes)
        self._inbox = self._inboxes[self.local_rank]
        #: seconds a blocking recv waits before declaring the peer dead
        self.recv_timeout = float(recv_timeout)
        #: inbox poll period; also the probe cadence while starved
        self.poll_interval = float(poll_interval)
        self.shm_threshold = int(shm_threshold)
        self.queues: Dict[ChannelKey, List[Any]] = defaultdict(list)
        self._sync_seq = 0
        self._sync_seen: Dict[int, set] = {}
        self._reduce_seq = 0
        self._reduce_parts: Dict[int, Dict[int, np.ndarray]] = {}
        self._reduce_results: Dict[int, np.ndarray] = {}

    # -- outbound ----------------------------------------------------------
    def deliver(self, key: ChannelKey, entry: Tuple) -> None:
        src, dst, tag = key
        if dst == self.local_rank:
            # self-delivery (possible for retransmissions of a local
            # loop): land directly, no wire involved
            self.queues[key].append(entry)
            return
        if src != self.local_rank:
            raise CommunicationError(
                f"SPMD endpoint of rank {self.local_rank} cannot send as "
                f"rank {src}: each worker only speaks for itself"
            )
        sender, nbytes, payload, msg_id, checksum = entry
        payload = _shm_encode(payload, self.shm_threshold)
        self._inboxes[dst].put(
            ("data", key, (sender, nbytes, payload, msg_id, checksum))
        )

    def request_retransmit(self, key: ChannelKey, msg_id: Optional[int]) -> None:
        self._inboxes[key[0]].put(("nack", key, msg_id))

    # -- inbound -----------------------------------------------------------
    def _dispatch(self, msg: Tuple) -> int:
        kind = msg[0]
        if kind == "data":
            _, key, entry = msg
            sender, nbytes, payload, msg_id, checksum = entry
            self.queues[key].append(
                (sender, nbytes, _shm_decode(payload), msg_id, checksum)
            )
            return 1
        if kind == "nack":
            self.comm.service_nack(msg[1], msg[2])
            return 0
        if kind == "probe":
            self.comm.service_probe(msg[1])
            return 0
        if kind == "sync":
            _, seq, src = msg
            self._sync_seen.setdefault(seq, set()).add(src)
            return 0
        if kind == "reduce":
            _, seq, src, arr = msg
            self._reduce_parts.setdefault(seq, {})[src] = arr
            return 0
        if kind == "reduce_result":
            self._reduce_results[msg[1]] = msg[2]
            return 0
        raise CommunicationError(f"unknown wire message kind {kind!r}")

    def drain(self) -> int:
        n = 0
        while True:
            try:
                msg = self._inbox.get_nowait()
            except queue_mod.Empty:
                return n
            n += self._dispatch(msg)

    def pump(self) -> int:
        """One short blocking poll of the inbox (plus a full drain)."""
        try:
            msg = self._inbox.get(timeout=self.poll_interval)
        except queue_mod.Empty:
            return 0
        return self._dispatch(msg) + self.drain()

    def wait(self, key: ChannelKey) -> bool:
        """Block until data arrives (any channel), probing ``key``'s source.

        The probe cadence is what drives the *sender-side* fault
        recovery: each probe ticks delayed-message countdowns and
        triggers lost-message retransmission over there.  Returns False
        only when ``recv_timeout`` elapses with no data at all — the
        caller turns that into a :class:`ResilienceError`, never a hang.
        """
        src = key[0]
        deadline = now() + self.recv_timeout
        while True:
            remaining = deadline - now()
            if remaining <= 0:
                return False
            try:
                msg = self._inbox.get(
                    timeout=min(self.poll_interval, remaining)
                )
            except queue_mod.Empty:
                if src != self.local_rank:
                    self._inboxes[src].put(("probe", key))
                continue
            if self._dispatch(msg) + self.drain() > 0:
                return True

    # -- collectives -------------------------------------------------------
    def sync(self) -> None:
        """Count-exact quiescent barrier over all ranks.

        Per-producer FIFO of the inbox queues guarantees that once every
        peer's token (for this barrier's sequence number) has been
        dispatched, every message sent before the barrier has landed in
        the local queues — the property the differential tests rely on
        when they reconcile counters after a run.
        """
        if self.n_ranks == 1:
            return
        self._sync_seq += 1
        seq = self._sync_seq
        for r in range(self.n_ranks):
            if r != self.local_rank:
                self._inboxes[r].put(("sync", seq, self.local_rank))
        deadline = now() + self.recv_timeout
        while len(self._sync_seen.get(seq, ())) < self.n_ranks - 1:
            remaining = deadline - now()
            if remaining <= 0:
                missing = sorted(
                    set(range(self.n_ranks))
                    - {self.local_rank}
                    - self._sync_seen.get(seq, set())
                )
                raise ResilienceError(
                    f"barrier {seq} timed out after {self.recv_timeout}s "
                    f"on rank {self.local_rank}: no token from rank(s) "
                    f"{missing} — worker(s) likely died"
                )
            try:
                msg = self._inbox.get(
                    timeout=min(self.poll_interval, remaining)
                )
            except queue_mod.Empty:
                continue
            self._dispatch(msg)
        self._sync_seen.pop(seq, None)

    def allreduce(self, values: np.ndarray) -> np.ndarray:
        """A real sum-reduction: gather to rank 0, broadcast the total.

        Contributions are summed in rank order, so the result is
        deterministic; when each vector entry is owned by exactly one
        rank (the SPMD cost vectors), the sum is bit-identical to the
        vector a loopback run assembles directly.
        """
        arr = np.asarray(values)
        if self.n_ranks == 1:
            return values
        self._reduce_seq += 1
        seq = self._reduce_seq
        deadline = now() + self.recv_timeout

        def pump_until(done: Callable[[], bool], what: str) -> None:
            while not done():
                remaining = deadline - now()
                if remaining <= 0:
                    raise ResilienceError(
                        f"allreduce {seq} timed out after "
                        f"{self.recv_timeout}s on rank {self.local_rank} "
                        f"waiting for {what}"
                    )
                try:
                    msg = self._inbox.get(
                        timeout=min(self.poll_interval, remaining)
                    )
                except queue_mod.Empty:
                    continue
                self._dispatch(msg)

        if self.local_rank == 0:
            pump_until(
                lambda: len(self._reduce_parts.get(seq, {}))
                >= self.n_ranks - 1,
                "contributions",
            )
            parts = self._reduce_parts.pop(seq)
            total = np.array(arr, copy=True)
            for r in sorted(parts):
                total = total + parts[r]
            for r in range(1, self.n_ranks):
                self._inboxes[r].put(("reduce_result", seq, total))
            return total
        self._inboxes[0].put(("reduce", seq, self.local_rank, arr))
        pump_until(lambda: seq in self._reduce_results, "the result")
        return self._reduce_results.pop(seq)

    def close(self) -> None:
        """Detach from the inbox queues without blocking on flush.

        Called after the final :meth:`sync`, when all traffic is proven
        delivered; cancelling the feeder join keeps an error-path exit
        from hanging on messages nobody will ever read.
        """
        for q in self._inboxes:
            q.cancel_join_thread()

    def describe(self) -> str:
        return (
            f"{self.kind}(rank={self.local_rank}/{self.n_ranks}, "
            f"timeout={self.recv_timeout}s)"
        )


# -- SPMD process runner -------------------------------------------------


def _spmd_worker_main(
    rank: int,
    n_ranks: int,
    inboxes: List[Any],
    worker_fn: Callable,
    result_q: Any,
    transport_kwargs: Dict[str, Any],
) -> None:
    transport = MultiprocessingTransport(
        rank, n_ranks, inboxes, **transport_kwargs
    )
    try:
        out = worker_fn(rank, transport)
        # all traffic proven delivered before anyone tears down
        transport.sync()
        result_q.put((rank, "ok", out))
    except BaseException:
        result_q.put((rank, "error", traceback.format_exc()))
    finally:
        result_q.close()
        result_q.join_thread()
        transport.close()


def run_spmd(
    n_ranks: int,
    worker_fn: Callable[[int, MultiprocessingTransport], Any],
    recv_timeout: float = 30.0,
    poll_interval: float = 0.02,
    shm_threshold: int = DEFAULT_SHM_THRESHOLD,
    run_timeout: float = 300.0,
) -> List[Any]:
    """Run ``worker_fn(rank, transport)`` in one forked process per rank.

    Returns the per-rank results in rank order.  A worker that raises —
    including a :class:`ResilienceError` from a receive that timed out
    on a dead peer — or dies outright turns into one aggregated
    :class:`ResilienceError` carrying every failed rank's traceback, and
    every surviving worker is terminated; the parent never hangs past
    ``run_timeout``.
    """
    if n_ranks < 1:
        raise CommunicationError(f"need at least one rank, got {n_ranks}")
    ctx = mp.get_context("fork")
    inboxes = [ctx.Queue() for _ in range(n_ranks)]
    result_q = ctx.Queue()
    transport_kwargs = {
        "recv_timeout": recv_timeout,
        "poll_interval": poll_interval,
        "shm_threshold": shm_threshold,
    }
    procs = [
        ctx.Process(
            target=_spmd_worker_main,
            args=(r, n_ranks, inboxes, worker_fn, result_q, transport_kwargs),
            daemon=True,
        )
        for r in range(n_ranks)
    ]
    for p in procs:
        p.start()
    results: Dict[int, Any] = {}
    errors: Dict[int, str] = {}
    deadline = now() + run_timeout
    try:
        while len(results) + len(errors) < n_ranks:
            try:
                rank, status, payload = result_q.get(timeout=0.2)
                (results if status == "ok" else errors)[rank] = payload
                continue
            except queue_mod.Empty:
                pass
            for r, p in enumerate(procs):
                if (
                    p.exitcode is not None
                    and p.exitcode != 0
                    and r not in results
                    and r not in errors
                ):
                    errors[r] = (
                        f"worker process for rank {r} exited with code "
                        f"{p.exitcode} without reporting a result"
                    )
            if now() > deadline:
                missing = sorted(
                    set(range(n_ranks)) - set(results) - set(errors)
                )
                raise ResilienceError(
                    f"SPMD run timed out after {run_timeout}s; no result "
                    f"from rank(s) {missing}"
                )
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            p.join(timeout=5.0)
        for q in inboxes:
            q.cancel_join_thread()
        result_q.cancel_join_thread()
    if errors:
        report = "\n".join(
            f"--- rank {r} ---\n{errors[r]}" for r in sorted(errors)
        )
        raise ResilienceError(
            f"{len(errors)} worker(s) failed during the SPMD run:\n{report}"
        )
    return [results[r] for r in range(n_ranks)]


@dataclass
class MPRunResult:
    """Everything a multi-process run hands back, in loopback shape.

    ``fields``/``species`` hold each box's state from the rank that
    owned it at the end of the run; ``counters`` is the
    :func:`merge_comm_counters` fold of the per-rank counter snapshots
    and ``merged_log`` the :func:`merge_rank_logs` interleaving of the
    per-rank event logs (fault-free runs only — ``rank_logs`` keeps the
    raw per-rank streams either way).
    """

    n_ranks: int
    n_steps: int
    fields: Dict[int, Dict[str, np.ndarray]]
    species: Dict[str, Dict[int, Dict[str, np.ndarray]]]
    assignment: np.ndarray
    counters: CommCounters
    rank_counters: List[CommCounters]
    rank_logs: List[List[Any]]
    merged_log: Optional[List[Any]]
    halo: Dict[str, int]
    lb_events: List[int]
    lb_moved_bytes: int
    recovery: List[Dict[str, float]]
    rank_walls: List[float]
    wall_time: float = 0.0
    rank_metrics: List[Optional[Dict[str, Any]]] = field(default_factory=list)

    def total_particles(self) -> int:
        return sum(
            arrays["ids"].size
            for per_box in self.species.values()
            for arrays in per_box.values()
        )


def _collect_worker_state(sim) -> Dict[str, Any]:
    """Pack one worker's owned state and accounting for the parent."""
    fields = {}
    species: Dict[str, Dict[int, Dict[str, np.ndarray]]] = {}
    for i in range(len(sim.boxes)):
        if not sim.owns_box(i):
            continue
        fields[i] = {
            comp: np.array(arr, copy=True)
            for comp, arr in sim.box_grids[i].fields.items()
        }
    for name, dsp in sim.species.items():
        species[name] = {}
        for i, sp in enumerate(dsp.per_box):
            if not sim.owns_box(i):
                continue
            species[name][i] = {
                "positions": np.array(sp.positions, copy=True),
                "momenta": np.array(sp.momenta, copy=True),
                "weights": np.array(sp.weights, copy=True),
                "ids": np.array(sp.ids, copy=True),
            }
    recovery = {}
    if sim.comm.recovery is not None:
        recovery = {
            k: v
            for k, v in vars(sim.comm.recovery.stats).items()
            if isinstance(v, (int, float)) and not k.startswith("_")
        }
    return {
        "fields": fields,
        "species": species,
        "assignment": np.array(sim.dm.assignment, copy=True),
        "counters": CommCounters.from_comm(sim.comm),
        "log": list(sim.comm.log),
        "halo": {
            "samples": sim.halo_samples,
            "payload_bytes": sim.halo_payload_bytes,
            "messages": sim.halo_messages,
        },
        "lb_events": list(sim.lb_events),
        "lb_moved_bytes": sim.lb_moved_bytes,
        "recovery": recovery,
        "metrics": sim.metrics.snapshot() if sim.metrics is not None else None,
    }


def run_distributed_local(
    build: Callable[..., Any],
    n_steps: int,
    merge_logs: bool = True,
) -> MPRunResult:
    """The loopback twin of :func:`run_distributed_mp`.

    Runs ``build(transport=None)`` in-process (all ranks local) and
    packs the outcome into the same :class:`MPRunResult` shape, so the
    differential tests compare the two transports field by field without
    caring which side is which.
    """
    sim = build(transport=None)
    t0 = now()
    sim.step(n_steps)
    wall = now() - t0
    state = _collect_worker_state(sim)
    log = state["log"]
    return MPRunResult(
        n_ranks=sim.comm.n_ranks,
        n_steps=n_steps,
        fields=state["fields"],
        species=state["species"],
        assignment=state["assignment"],
        counters=state["counters"],
        rank_counters=[state["counters"]],
        rank_logs=[log],
        merged_log=list(log) if merge_logs else None,
        halo=state["halo"],
        lb_events=state["lb_events"],
        lb_moved_bytes=state["lb_moved_bytes"],
        recovery=[state["recovery"]],
        rank_walls=[wall],
        wall_time=wall,
        rank_metrics=[state["metrics"]],
    )


def run_distributed_mp(
    build: Callable[..., Any],
    n_steps: int,
    n_ranks: int,
    recv_timeout: float = 30.0,
    poll_interval: float = 0.02,
    shm_threshold: int = DEFAULT_SHM_THRESHOLD,
    run_timeout: float = 300.0,
    merge_logs: bool = True,
) -> MPRunResult:
    """Step a DistributedSimulation ``n_steps`` with one process per rank.

    ``build(transport)`` must construct the simulation — species
    included — as a pure function of its argument: every worker calls it
    with its own endpoint and must end up with the same boxes,
    distribution mapping and initial particles (verified cheap proxies:
    diverging schedules deadlock or fail the merge).  Pass
    ``merge_logs=False`` for fault-injected runs, whose per-rank logs
    carry rank-local recovery pairings that do not interleave.
    """

    def worker(rank: int, transport: MultiprocessingTransport):
        sim = build(transport=transport)
        if sim.comm.transport is not transport:
            raise CommunicationError(
                "build() must pass the given transport to "
                "DistributedSimulation(transport=...)"
            )
        t0 = now()
        sim.step(n_steps)
        wall = now() - t0
        # rendezvous before collection so late retransmissions and
        # control traffic are fully settled on every endpoint
        transport.sync()
        state = _collect_worker_state(sim)
        state["wall"] = wall
        return state

    t0 = now()
    states = run_spmd(
        n_ranks,
        worker,
        recv_timeout=recv_timeout,
        poll_interval=poll_interval,
        shm_threshold=shm_threshold,
        run_timeout=run_timeout,
    )
    wall_time = now() - t0
    fields: Dict[int, Dict[str, np.ndarray]] = {}
    species: Dict[str, Dict[int, Dict[str, np.ndarray]]] = {}
    for state in states:
        for i, comps in state["fields"].items():
            if i in fields:
                raise CommunicationError(
                    f"box {i} reported by two ranks: diverging ownership"
                )
            fields[i] = comps
        for name, per_box in state["species"].items():
            species.setdefault(name, {}).update(per_box)
    assignments = [state["assignment"] for state in states]
    for other in assignments[1:]:
        if not np.array_equal(assignments[0], other):
            raise CommunicationError(
                "final distribution mappings diverge across ranks — the "
                "workers did not run the same schedule"
            )
    rank_counters = [state["counters"] for state in states]
    rank_logs = [state["log"] for state in states]
    halo = {"samples": 0, "payload_bytes": 0, "messages": 0}
    for state in states:
        for k in halo:
            halo[k] += state["halo"][k]
    lb_events = states[0]["lb_events"]
    return MPRunResult(
        n_ranks=n_ranks,
        n_steps=n_steps,
        fields=fields,
        species=species,
        assignment=assignments[0],
        counters=merge_comm_counters(rank_counters),
        rank_counters=rank_counters,
        rank_logs=rank_logs,
        merged_log=(
            merge_rank_logs(rank_logs, n_ranks) if merge_logs else None
        ),
        halo=halo,
        lb_events=lb_events,
        lb_moved_bytes=sum(state["lb_moved_bytes"] for state in states),
        recovery=[state["recovery"] for state in states],
        rank_walls=[state["wall"] for state in states],
        wall_time=wall_time,
        rank_metrics=[state["metrics"] for state in states],
    )
