"""Post-hoc protocol checker for the simulated MPI layer.

Replays :attr:`SimComm.log <repro.parallel.comm.SimComm.log>` after a
run (or any phase of one) and reports protocol violations the way a
deadlock/race detector would on a real MPI trace:

======   =================================================================
COMM001  unreceived messages (send without a matching recv by end of run)
COMM002  tag mismatch (a recv found nothing under its tag while messages
         for the same (src, dst) pair were pending under another tag)
COMM003  self-send (src == dst; should be a local copy, and would
         deadlock a blocking-send MPI implementation)
COMM004  collective-count divergence across ranks (some ranks reached an
         allreduce that others never did — a guaranteed deadlock)
COMM005  barrier-count divergence across ranks
RES001   unrecovered message fault (an injected drop/duplicate/corrupt/
         delay event with no matching recovery action later in the log)
RES002   unrecovered rank failure (a ``rank_fail`` event with no
         subsequent checkpoint-restore for that rank)
======   =================================================================

When the log carries schedule-structure events
(``phase_begin``/``phase_end``/``apply``, emitted by the exchange phases
themselves), :func:`check_happens_before` additionally replays the
happens-before relation of the schedule:

======   =================================================================
COMM007  phase overlap: a phase begins (or ends) while messages on its
         tag are still in flight from an earlier phase — e.g. a
         load-balance migration overlapping an unfinished halo exchange
         on a shared tag
COMM009  non-canonical application order: an ordered fold/fill phase
         applied its overlap entries out of the canonical (strictly
         increasing) order, so the floating-point sum depends on the
         rank mapping
COMM010  fold-before-arrival race: an entry was applied while messages
         contributing to the same phase were still in flight
======   =================================================================

(COMM006 and COMM008 — unmatched send/recv sites and cyclic wait-for
chains — are *static* rules of :mod:`repro.analysis.commstatic`; they
need source positions, not a trace.)

Same-rank overlaps are local copies that never touch the communicator:
the happens-before accounting is driven purely by observed send/recv
events, so a single-rank decomposition (zero messages, phases intact)
replays clean by construction.

Use :func:`check_comm` for the point-to-point/collective/resilience
report, :func:`check_all` to also replay the happens-before relation,
or :meth:`ProtocolReport.raise_if_failed` to turn violations into a
:class:`~repro.exceptions.ProtocolError` (how the distributed tests gate
on a clean protocol).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.analysis.findings import Finding, sort_findings
from repro.exceptions import ProtocolError

if TYPE_CHECKING:  # imported lazily to keep repro.analysis layering-free
    from repro.parallel.comm import SimComm

LOG_PATH = "<SimComm log>"


def _msg_context(op: str, src: int, dst: int, tag: str) -> str:
    """Message-context format, identical to SimComm's runtime errors."""
    return f"{op}: src={src} dst={dst} tag={tag!r}"


def _finding(rule: str, seq: int, message: str) -> Finding:
    """A commcheck finding; the event sequence number stands in for a line."""
    return Finding(rule=rule, message=message, path=LOG_PATH, line=seq)


def _check_point_to_point(comm: "SimComm") -> List[Finding]:
    """COMM001/COMM002/COMM003 by replaying send/recv events in order."""
    findings: List[Finding] = []
    outstanding: Dict[Tuple[int, int, str], List[int]] = defaultdict(list)
    for ev in comm.log:
        key = (ev.src, ev.dst, ev.tag)
        if ev.kind == "send":
            outstanding[key].append(ev.seq)
            if ev.src == ev.dst:
                findings.append(
                    _finding(
                        "COMM003",
                        ev.seq,
                        f"self-send on rank {ev.src} "
                        f"({_msg_context('send', ev.src, ev.dst, ev.tag)}); "
                        "use a local copy instead",
                    )
                )
        elif ev.kind == "recv":
            if outstanding[key]:
                outstanding[key].pop(0)
        elif ev.kind == "recv_missing":
            pending_tags = sorted(
                t
                for (s, d, t), seqs in outstanding.items()
                if s == ev.src and d == ev.dst and seqs and t != ev.tag
            )
            if pending_tags:
                findings.append(
                    _finding(
                        "COMM002",
                        ev.seq,
                        f"tag mismatch: {_msg_context('recv', ev.src, ev.dst, ev.tag)} "
                        f"found nothing while tags {pending_tags} were pending "
                        "for the same pair",
                    )
                )
    for (src, dst, tag), seqs in sorted(outstanding.items()):
        if seqs:
            findings.append(
                _finding(
                    "COMM001",
                    seqs[0],
                    f"{len(seqs)} unreceived message(s) "
                    f"({_msg_context('send', src, dst, tag)}); every send "
                    "needs a matching recv by end of run",
                )
            )
    return findings


def _check_divergence(comm: "SimComm", kind: str, rule: str) -> List[Finding]:
    """Collective/barrier participation must be uniform across ranks."""
    counts: Counter = Counter()
    last_seq = 0
    for ev in comm.log:
        if ev.kind == kind:
            counts[ev.src] += 1
            last_seq = ev.seq
    if not counts:
        return []
    per_rank = [counts.get(r, 0) for r in range(comm.n_ranks)]
    if len(set(per_rank)) == 1:
        return []
    label = "allreduce" if kind == "collective" else "barrier"
    return [
        _finding(
            rule,
            last_seq,
            f"{label} count diverges across ranks: per-rank counts "
            f"{per_rank} (min {min(per_rank)}, max {max(per_rank)}) — "
            "a real MPI run would deadlock",
        )
    ]


#: which recovery action repairs which injected fault (RES001 pairing)
_FAULT_RECOVERY = {
    "fault_drop": "recover_retry",
    "fault_corrupt": "recover_retry",
    "fault_duplicate": "recover_dedup",
    "fault_delay": "recover_redeliver",
}


def _check_resilience(comm: "SimComm") -> List[Finding]:
    """RES001/RES002: every fault event must be followed by its recovery.

    Fault and recovery events are matched FIFO per (src, dst, tag) and
    per required recovery kind — a retransmission repairs the *oldest*
    outstanding drop/corruption on that channel, mirroring the FIFO
    queues of the transport itself.  Rank failures pair with
    checkpoint-restore events per rank.
    """
    findings: List[Finding] = []
    outstanding: Dict[Tuple[Tuple[int, int, str], str], List[Tuple[int, str]]] = (
        defaultdict(list)
    )
    failed_ranks: Dict[int, List[int]] = defaultdict(list)
    for ev in comm.log:
        key = (ev.src, ev.dst, ev.tag)
        if ev.kind in _FAULT_RECOVERY:
            outstanding[(key, _FAULT_RECOVERY[ev.kind])].append(
                (ev.seq, ev.kind)
            )
        elif ev.kind in ("recover_retry", "recover_dedup", "recover_redeliver"):
            pending = outstanding.get((key, ev.kind))
            if pending:
                pending.pop(0)
        elif ev.kind == "rank_fail":
            failed_ranks[ev.src].append(ev.seq)
        elif ev.kind == "recover_restore":
            if failed_ranks.get(ev.src):
                failed_ranks[ev.src].pop(0)
    for ((src, dst, tag), needed), events in sorted(outstanding.items()):
        for seq, fault_kind in events:
            findings.append(
                _finding(
                    "RES001",
                    seq,
                    f"injected {fault_kind.removeprefix('fault_')} "
                    f"({_msg_context('send', src, dst, tag)}) was never "
                    f"recovered (no matching {needed!r} event)",
                )
            )
    for rank, seqs in sorted(failed_ranks.items()):
        for seq in seqs:
            findings.append(
                _finding(
                    "RES002",
                    seq,
                    f"rank {rank} failed and was never restored from a "
                    "checkpoint (no recover_restore event)",
                )
            )
    return findings


class _PhaseState:
    """Replay state of one open exchange phase (per tag)."""

    __slots__ = ("begin_seq", "declared", "last_order", "flagged_order",
                 "flagged_race")

    def __init__(self, begin_seq: int, declared: int) -> None:
        self.begin_seq = begin_seq
        self.declared = declared
        self.last_order: int | None = None
        self.flagged_order = False
        self.flagged_race = False


def _check_happens_before(comm: "SimComm") -> List[Finding]:
    """COMM007/COMM009/COMM010 by replaying schedule-structure events.

    ``outstanding`` counts in-flight messages per tag from observed
    send/recv events only — local copies never appear, so phases with no
    cross-rank traffic (single-rank decompositions) are vacuously clean.
    Each race/order violation is reported once per phase (the first
    offending event carries the provenance).
    """
    findings: List[Finding] = []
    outstanding: Counter = Counter()
    phases: Dict[str, _PhaseState] = {}
    for ev in comm.log:
        if ev.kind == "send":
            outstanding[ev.tag] += 1
        elif ev.kind == "recv":
            if outstanding[ev.tag] > 0:
                outstanding[ev.tag] -= 1
        elif ev.kind == "phase_begin":
            in_flight = outstanding[ev.tag]
            if ev.tag in phases:
                findings.append(
                    _finding(
                        "COMM007",
                        ev.seq,
                        f"phase on tag {ev.tag!r} begins while an earlier "
                        f"phase on the same tag (event "
                        f"{phases[ev.tag].begin_seq}) is still open — "
                        "overlapping phases cannot tell their messages apart",
                    )
                )
            elif in_flight > 0:
                findings.append(
                    _finding(
                        "COMM007",
                        ev.seq,
                        f"phase on tag {ev.tag!r} begins while "
                        f"{in_flight} message(s) on the same tag are still "
                        "in flight from outside the phase — e.g. a "
                        "migration overlapping an unfinished halo exchange",
                    )
                )
            phases[ev.tag] = _PhaseState(ev.seq, ev.detail)
        elif ev.kind == "phase_end":
            phases.pop(ev.tag, None)
        elif ev.kind == "apply":
            state = phases.get(ev.tag)
            if state is None:
                continue  # applies outside a phase are not schedule-bound
            if outstanding[ev.tag] > 0 and not state.flagged_race:
                state.flagged_race = True
                findings.append(
                    _finding(
                        "COMM010",
                        ev.seq,
                        f"apply on tag {ev.tag!r} (order {ev.detail}) while "
                        f"{outstanding[ev.tag]} contributing message(s) are "
                        "still in flight — the fold raced its own traffic",
                    )
                )
            if (
                state.last_order is not None
                and ev.detail <= state.last_order
                and not state.flagged_order
            ):
                state.flagged_order = True
                findings.append(
                    _finding(
                        "COMM009",
                        ev.seq,
                        f"apply on tag {ev.tag!r} out of canonical order "
                        f"(order {ev.detail} after {state.last_order}) — "
                        "the floating-point sum now depends on the rank "
                        "mapping",
                    )
                )
            state.last_order = ev.detail
    return findings


@dataclass
class ProtocolReport:
    """Outcome of one protocol check: findings plus a little context."""

    findings: List[Finding] = field(default_factory=list)
    n_events: int = 0
    n_ranks: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def format(self) -> str:
        head = (
            f"protocol check over {self.n_events} events on "
            f"{self.n_ranks} rank(s): "
        )
        if self.ok:
            return head + "clean"
        lines = [head + f"{len(self.findings)} violation(s)"]
        lines += [f"  {f.format()}" for f in self.findings]
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience alias
        return self.format()

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise ProtocolError(self.format())


def check_comm(comm: "SimComm") -> ProtocolReport:
    """Run the point-to-point/collective/resilience detectors."""
    findings: List[Finding] = []
    findings += _check_point_to_point(comm)
    findings += _check_divergence(comm, "collective", "COMM004")
    findings += _check_divergence(comm, "barrier", "COMM005")
    findings += _check_resilience(comm)
    return ProtocolReport(
        findings=sort_findings(findings),
        n_events=len(comm.log),
        n_ranks=comm.n_ranks,
    )


def check_happens_before(comm: "SimComm") -> ProtocolReport:
    """Replay only the happens-before relation (COMM007/009/010).

    Logs without schedule-structure events trivially pass — the checker
    is driven entirely by ``phase_begin``/``phase_end``/``apply``
    markers, so it composes with hand-built event logs and with replays
    loaded from disk (:mod:`repro.observability.commlog`).
    """
    return ProtocolReport(
        findings=sort_findings(_check_happens_before(comm)),
        n_events=len(comm.log),
        n_ranks=comm.n_ranks,
    )


def check_all(comm: "SimComm") -> ProtocolReport:
    """Every replay detector: protocol rules plus happens-before."""
    findings = check_comm(comm).findings + _check_happens_before(comm)
    return ProtocolReport(
        findings=sort_findings(findings),
        n_events=len(comm.log),
        n_ranks=comm.n_ranks,
    )
