"""Static communication-schedule extraction and verification.

Walks python sources (normally ``src/repro``, in particular
``parallel/``) for calls on a communicator object — any receiver whose
name contains ``comm`` calling ``send`` / ``recv`` / ``begin_phase`` /
``end_phase`` / ``record_apply`` / ``allreduce_sum`` / ``barrier`` —
and rebuilds the *schedule* those sites imply: per-phase message flows
with statically inferred ``(src, dst, tag)`` components, resolved by
the constant-propagation engine of :mod:`repro.analysis.dataflow` plus
a one-level call-graph propagation for tags passed down through
parameters (how ``_run_exchange``'s bare ``tag`` parameter resolves to
``"halo:fold"`` and ``"halo:fields"`` from its two wrappers).

The extracted schedule is then verified:

======   =================================================================
COMM006  unmatched message sites: a send with no receive site for the
         same tag in the same function (or vice versa) — a message that
         can never be delivered, or a receive that must block forever.
         Downgraded to a warning when the tag cannot be statically
         resolved at a site (the schedule is then unverifiable there).
COMM007  cross-phase tag collision: two distinct exchange phases declare
         the same tag (e.g. a migration reusing a halo tag) — their
         in-flight messages would be indistinguishable.
COMM008  recv-before-send: a phase posts its (blocking) receive before
         any send of the same tag — the cyclic wait-for pattern that
         deadlocks a blocking multiprocessing transport outright.
COMM010  send-buffer mutation: an array payload is mutated (directly or
         through an alias) after the send and before the phase's last
         receive — the message is corrupted while in flight.
======   =================================================================

Approximations (documented, deliberate): matching is function-local
(this codebase pairs every send with its recv in the same function); a
parameter with a default resolves to that default (call sites are only
consulted for parameters *without* defaults); control-flow inside a
function is summarized lexically for the ordering checks.  Each is the
conservative choice for the shipped tree — anything the engine cannot
prove constant is reported as unverifiable (a warning), never guessed.

The replay-side complements — COMM007 phase overlap, COMM009
non-canonical fold order and COMM010 fold-before-arrival, checked
against a *recorded* event log — live in
:mod:`repro.analysis.commcheck`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.dataflow import ModuleAnalysis, fold_expr
from repro.analysis.findings import Finding, Severity, sort_findings
from repro.analysis.linter import iter_python_files

#: communicator methods that constitute schedule structure
COMM_METHODS = (
    "send",
    "recv",
    "begin_phase",
    "end_phase",
    "record_apply",
    "allreduce_sum",
    "barrier",
)

#: positional index of the tag argument per method (None: method has none)
_TAG_ARG_INDEX = {
    "send": 3,
    "recv": 2,
    "begin_phase": 0,
    "end_phase": 0,
    "record_apply": 0,
}

#: positional index of the (src, dst) rank arguments per method
_RANK_ARG_INDEX = {"send": (0, 1), "recv": (0, 1)}

#: positional index of the payload argument of a send
_PAYLOAD_ARG_INDEX = 2

#: in-place array mutators recognized by the buffer-mutation check
_MUTATING_METHODS = frozenset({"fill", "sort", "resize", "put", "partition"})

#: rule id, severity, one-line description (for ``--list-rules``)
STATIC_RULES = (
    ("COMM006", "send/recv site without a matching counterpart for its tag "
                "(unresolvable tags are reported as warnings)"),
    ("COMM007", "two exchange phases declare the same tag (cross-phase "
                "namespace collision)"),
    ("COMM008", "blocking recv posted before any send of the same tag "
                "(deadlock under a blocking transport)"),
    ("COMM010", "send buffer mutated (directly or via an alias) while the "
                "message is in flight"),
)


@dataclass(frozen=True)
class MessageFlow:
    """One send or recv site under one statically resolved tag."""

    kind: str
    path: str
    line: int
    func: str
    tag: str
    src: Optional[int] = None
    dst: Optional[int] = None


@dataclass(frozen=True)
class PhaseInfo:
    """One exchange phase: a ``begin_phase`` site under one tag value."""

    tag: str
    path: str
    line: int
    func: str
    n_sends: int = 0
    n_recvs: int = 0


@dataclass
class Schedule:
    """The statically extracted communication schedule of a source tree."""

    phases: List[PhaseInfo] = field(default_factory=list)
    flows: List[MessageFlow] = field(default_factory=list)
    n_files: int = 0
    n_sites: int = 0

    def tags(self) -> List[str]:
        return sorted({p.tag for p in self.phases})


@dataclass
class _Site:
    """One communicator call site, pre-resolution."""

    kind: str
    call: ast.Call
    line: int
    module: "_Module"
    fn: Optional[ast.FunctionDef]
    tags: FrozenSet[str] = frozenset()

    @property
    def func_name(self) -> str:
        return self.fn.name if self.fn is not None else "<module>"


class _Module:
    """One parsed source file plus its dataflow analysis and call index."""

    def __init__(self, path: str, tree: ast.Module) -> None:
        self.path = path
        self.tree = tree
        self.analysis = ModuleAnalysis(tree)
        #: every Name-call in the module: callee name -> [(call, encl fn)]
        self.calls: Dict[str, List[Tuple[ast.Call, Optional[ast.FunctionDef]]]] = {}
        #: function definitions by bare name (later definitions win)
        self.functions: Dict[str, ast.FunctionDef] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef):
                self.functions[node.name] = node
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                self.calls.setdefault(node.func.id, []).append(
                    (node, self.analysis.enclosing_function(node))
                )


def _receiver_is_comm(func: ast.expr) -> bool:
    """``X.meth`` where the terminal name of ``X`` contains "comm"."""
    if not isinstance(func, ast.Attribute):
        return False
    base = func.value
    if isinstance(base, ast.Name):
        return "comm" in base.id.lower()
    if isinstance(base, ast.Attribute):
        return "comm" in base.attr.lower()
    return False


def _positional_params(fn: ast.FunctionDef) -> List[str]:
    args = fn.args
    return [a.arg for a in list(getattr(args, "posonlyargs", [])) + list(args.args)]


def _has_default(fn: ast.FunctionDef, name: str) -> bool:
    params = _positional_params(fn)
    if name in params:
        first_with_default = len(params) - len(fn.args.defaults)
        return params.index(name) >= first_with_default
    for arg, default in zip(fn.args.kwonlyargs, fn.args.kw_defaults):
        if arg.arg == name:
            return default is not None
    return False


def _arg_for_param(
    fn: ast.FunctionDef, call: ast.Call, name: str
) -> Optional[ast.expr]:
    """The expression a plain-Name call passes for parameter ``name``."""
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    params = _positional_params(fn)
    if name not in params:
        return None
    idx = params.index(name)
    if idx < len(call.args) and not any(
        isinstance(a, ast.Starred) for a in call.args[: idx + 1]
    ):
        return call.args[idx]
    return None


def _call_arg(call: ast.Call, keyword: str, index: int) -> Optional[ast.expr]:
    """Argument ``keyword``/positional ``index`` of a call (None if absent)."""
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    if index < len(call.args) and not any(
        isinstance(a, ast.Starred) for a in call.args[: index + 1]
    ):
        return call.args[index]
    return None


class _Workspace:
    """All modules under the given paths, with cross-module resolution."""

    #: maximum caller-chain depth for parameter propagation
    MAX_DEPTH = 4

    def __init__(self, paths: Sequence[str]) -> None:
        self.modules: List[_Module] = []
        self.sites: List[_Site] = []
        for full, rel in iter_python_files(paths):
            try:
                with open(full, encoding="utf-8") as handle:
                    tree = ast.parse(handle.read(), filename=rel)
            except (SyntaxError, OSError):
                continue  # the linter reports unparseable files (PIC000)
            # anchor findings at the path as scanned, matching the linter
            self.modules.append(_Module(full, tree))
        for module in self.modules:
            for node in ast.walk(module.tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in COMM_METHODS
                    and _receiver_is_comm(node.func)
                ):
                    self.sites.append(
                        _Site(
                            kind=node.func.attr,
                            call=node,
                            line=node.lineno,
                            module=module,
                            fn=module.analysis.enclosing_function(node),
                        )
                    )
        for site in self.sites:
            site.tags = frozenset(self._site_tags(site))

    # -- value resolution ----------------------------------------------------
    def resolve_values(
        self,
        module: _Module,
        fn: Optional[ast.FunctionDef],
        expr: ast.expr,
        _depth: Optional[int] = None,
        _stack: FrozenSet[Tuple[str, str, str]] = frozenset(),
    ) -> Set[object]:
        """Possible constant values of ``expr`` at its site.

        Intraprocedural resolution first; a parameter *without a default*
        is then resolved through every plain-Name call site of its
        function across the workspace (depth-limited, cycle-guarded).
        An empty set means "not statically resolvable".
        """
        depth = self.MAX_DEPTH if _depth is None else _depth
        if fn is None:
            ok, value = fold_expr(expr, module.analysis.env.lookup)
            return {value} if ok else set()
        ok, value = module.analysis.function_analysis(fn).resolve(expr)
        if ok:
            return {value}
        if depth <= 0 or not isinstance(expr, ast.Name):
            return set()
        name = expr.id
        is_param = name in _positional_params(fn) or name in [
            a.arg for a in fn.args.kwonlyargs
        ]
        if not is_param or _has_default(fn, name):
            return set()
        key = (module.path, fn.name, name)
        if key in _stack:
            return set()
        stack = _stack | {key}
        values: Set[object] = set()
        for caller_module in self.modules:
            for call, caller_fn in caller_module.calls.get(fn.name, ()):  # noqa: B020
                arg = _arg_for_param(fn, call, name)
                if arg is None:
                    continue
                values |= self.resolve_values(
                    caller_module, caller_fn, arg, depth - 1, stack
                )
        return values

    def _site_tags(self, site: _Site) -> Set[str]:
        index = _TAG_ARG_INDEX.get(site.kind)
        if index is None:
            return set()
        expr = _call_arg(site.call, "tag", index)
        if expr is None:
            return {""}  # the communicator's default tag
        values = self.resolve_values(site.module, site.fn, expr)
        return {v for v in values if isinstance(v, str)}

    def _site_rank(self, site: _Site, which: int) -> Optional[int]:
        indices = _RANK_ARG_INDEX.get(site.kind)
        if indices is None:
            return None
        keyword = ("src", "dst")[which]
        expr = _call_arg(site.call, keyword, indices[which])
        if expr is None:
            return None
        values = self.resolve_values(site.module, site.fn, expr)
        ints = {v for v in values if isinstance(v, int) and not isinstance(v, bool)}
        return ints.pop() if len(ints) == 1 else None


# -- checks ------------------------------------------------------------------

def _group_sites(
    sites: Sequence[_Site],
) -> Dict[Tuple[str, str], List[_Site]]:
    groups: Dict[Tuple[str, str], List[_Site]] = {}
    for site in sites:
        groups.setdefault((site.module.path, site.func_name), []).append(site)
    return groups


def _check_matched_pairs(ws: _Workspace) -> List[Finding]:
    """COMM006: every send needs a recv site for its tag (function-local)."""
    findings: List[Finding] = []
    for (path, func), group in sorted(_group_sites(ws.sites).items()):
        sends = [s for s in group if s.kind == "send"]
        recvs = [s for s in group if s.kind == "recv"]
        for site in sends + recvs:
            if not site.tags:
                findings.append(
                    Finding(
                        rule="COMM006",
                        message=(
                            f"cannot statically resolve the tag of this "
                            f"{site.kind} in {func!r}; the schedule is "
                            "unverifiable at this site"
                        ),
                        path=path,
                        line=site.line,
                        severity=Severity.WARNING,
                    )
                )
        recv_tags = {t for s in recvs for t in s.tags}
        send_tags = {t for s in sends for t in s.tags}
        for site in sends:
            for tag in sorted(site.tags - recv_tags):
                findings.append(
                    Finding(
                        rule="COMM006",
                        message=(
                            f"send on tag {tag!r} in {func!r} has no "
                            "matching recv site — the message can never be "
                            "delivered"
                        ),
                        path=path,
                        line=site.line,
                    )
                )
        for site in recvs:
            for tag in sorted(site.tags - send_tags):
                findings.append(
                    Finding(
                        rule="COMM006",
                        message=(
                            f"recv on tag {tag!r} in {func!r} has no "
                            "matching send site — the receive must block "
                            "forever"
                        ),
                        path=path,
                        line=site.line,
                    )
                )
    return findings


def _check_tag_disjointness(ws: _Workspace) -> List[Finding]:
    """COMM007: no two phase declarations may claim the same tag."""
    findings: List[Finding] = []
    claims: Dict[str, List[_Site]] = {}
    for site in ws.sites:
        if site.kind == "begin_phase":
            for tag in site.tags:
                claims.setdefault(tag, []).append(site)
    for tag, sites in sorted(claims.items()):
        distinct = sorted(
            {(s.module.path, s.line) for s in sites}
        )
        if len(distinct) < 2:
            continue
        first = distinct[0]
        for path, line in distinct[1:]:
            findings.append(
                Finding(
                    rule="COMM007",
                    message=(
                        f"tag {tag!r} is declared by more than one exchange "
                        f"phase (also at {first[0]}:{first[1]}) — "
                        "overlapping phases cannot tell their messages apart"
                    ),
                    path=path,
                    line=line,
                )
            )
    return findings


def _check_recv_before_send(ws: _Workspace) -> List[Finding]:
    """COMM008: a blocking recv lexically before any same-tag send."""
    findings: List[Finding] = []
    for (path, func), group in sorted(_group_sites(ws.sites).items()):
        tags = {t for s in group if s.kind in ("send", "recv") for t in s.tags}
        for tag in sorted(tags):
            send_lines = [
                s.line for s in group if s.kind == "send" and tag in s.tags
            ]
            recv_lines = [
                s.line for s in group if s.kind == "recv" and tag in s.tags
            ]
            if not send_lines or not recv_lines:
                continue  # COMM006 already covers the unmatched case
            if min(recv_lines) < min(send_lines):
                findings.append(
                    Finding(
                        rule="COMM008",
                        message=(
                            f"recv on tag {tag!r} in {func!r} is posted "
                            f"before any send of that tag (first send at "
                            f"line {min(send_lines)}) — every rank would "
                            "block in recv with nothing in flight: deadlock "
                            "under a blocking transport"
                        ),
                        path=path,
                        line=min(recv_lines),
                    )
                )
    return findings


def _check_buffer_mutation(ws: _Workspace) -> List[Finding]:
    """COMM010 (static): payload arrays mutated while the message flies."""
    findings: List[Finding] = []
    for (path, func), group in sorted(_group_sites(ws.sites).items()):
        sends = [s for s in group if s.kind == "send" and s.fn is not None]
        for site in sends:
            payload = _call_arg(site.call, "payload", _PAYLOAD_ARG_INDEX)
            if not isinstance(payload, ast.Name):
                continue
            analysis = site.module.analysis.function_analysis(site.fn)
            state = analysis.state_before(site.call)
            value = state.get(payload.id)
            if not _is_array_value(value):
                continue
            recv_lines = [
                s.line
                for s in group
                if s.kind == "recv" and (s.tags & site.tags or not site.tags)
            ]
            in_flight_until = max(recv_lines) if recv_lines else float("inf")
            mutation = _find_mutation(
                site.fn, analysis, value, site.line, in_flight_until
            )
            if mutation is not None:
                line, name = mutation
                via = (
                    f"via alias {name!r}" if name != payload.id
                    else f"through {name!r}"
                )
                findings.append(
                    Finding(
                        rule="COMM010",
                        message=(
                            f"send buffer {payload.id!r} (sent at line "
                            f"{site.line} in {func!r}) is mutated {via} "
                            "while the message is in flight — the payload "
                            "is corrupted before it is received"
                        ),
                        path=path,
                        line=line,
                    )
                )
    return findings


def _is_array_value(value: object) -> bool:
    from repro.analysis.dataflow import ArrayValue

    return isinstance(value, ArrayValue)


def _find_mutation(
    fn: ast.FunctionDef,
    analysis,
    array_value: object,
    after_line: int,
    before_line: float,
) -> Optional[Tuple[int, str]]:
    """First statement in ``(after_line, before_line)`` mutating the array."""
    for node in ast.walk(fn):
        if not isinstance(node, ast.stmt):
            continue
        line = getattr(node, "lineno", 0)
        if not (after_line < line < before_line):
            continue
        name = _mutated_name(node)
        if name is None:
            continue
        state = analysis.state_before(node)
        if state.get(name) == array_value:
            return line, name
    return None


def _mutated_name(stmt: ast.stmt) -> Optional[str]:
    """The base name an in-place array mutation targets (None otherwise)."""
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, ast.AugAssign):
        targets = [stmt.target]
    for target in targets:
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            return target.value.id
        if isinstance(stmt, ast.AugAssign) and isinstance(target, ast.Name):
            return target.id
    if (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Attribute)
        and stmt.value.func.attr in _MUTATING_METHODS
        and isinstance(stmt.value.func.value, ast.Name)
    ):
        return stmt.value.func.value.id
    return None


# -- public API --------------------------------------------------------------

def extract_schedule(paths: Sequence[str]) -> Schedule:
    """Rebuild the static communication schedule under ``paths``."""
    ws = _Workspace(paths)
    return _schedule_from(ws)


def _schedule_from(ws: _Workspace) -> Schedule:
    schedule = Schedule(n_files=len(ws.modules), n_sites=len(ws.sites))
    groups = _group_sites(ws.sites)
    for site in ws.sites:
        if site.kind != "begin_phase":
            continue
        group = groups[(site.module.path, site.func_name)]
        for tag in sorted(site.tags):
            schedule.phases.append(
                PhaseInfo(
                    tag=tag,
                    path=site.module.path,
                    line=site.line,
                    func=site.func_name,
                    n_sends=sum(
                        1 for s in group if s.kind == "send" and tag in s.tags
                    ),
                    n_recvs=sum(
                        1 for s in group if s.kind == "recv" and tag in s.tags
                    ),
                )
            )
    for site in ws.sites:
        if site.kind not in ("send", "recv"):
            continue
        for tag in sorted(site.tags) or [""]:
            schedule.flows.append(
                MessageFlow(
                    kind=site.kind,
                    path=site.module.path,
                    line=site.line,
                    func=site.func_name,
                    tag=tag,
                    src=ws._site_rank(site, 0),
                    dst=ws._site_rank(site, 1),
                )
            )
    schedule.phases.sort(key=lambda p: (p.path, p.line, p.tag))
    schedule.flows.sort(key=lambda f: (f.path, f.line, f.tag, f.kind))
    return schedule


def check_schedule(paths: Sequence[str]) -> List[Finding]:
    """Extract and verify the schedule; findings sorted deterministically."""
    ws = _Workspace(paths)
    findings: List[Finding] = []
    findings += _check_matched_pairs(ws)
    findings += _check_tag_disjointness(ws)
    findings += _check_recv_before_send(ws)
    findings += _check_buffer_mutation(ws)
    return sort_findings(findings)
