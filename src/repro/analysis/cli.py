"""Command-line driver: ``python -m repro.analysis [paths...]``.

Runs the registered lint rules *and* the static communication-schedule
verifier (:mod:`repro.analysis.commstatic`) over the given
files/directories (default: ``src/repro``, falling back to the
installed package location) and reports findings as
``path:line: [severity] RULE-ID message`` — or as one JSON object with
``--format json`` so CI can annotate PRs.  Recorded SimComm event logs
(see :mod:`repro.observability.commlog`) can be replayed through the
protocol and happens-before checkers with ``--comm-log``.

A ``--baseline`` file (JSON: ``{"findings": [{"rule": ..., "path":
...}]}``) suppresses known findings by (rule id, path suffix), which is
how the CI gate fails only on *new* findings.  Exits 1 when any
error-severity finding survives, 2 on an analysis failure.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence, Set, Tuple

from repro.analysis.commstatic import STATIC_RULES, check_schedule
from repro.analysis.findings import Finding, Severity, sort_findings
from repro.analysis.linter import lint_paths, registered_rules
from repro.exceptions import AnalysisError


def _default_paths() -> List[str]:
    """``src/repro`` under the current directory, else the package itself."""
    candidate = os.path.join("src", "repro")
    if os.path.isdir(candidate):
        return [candidate]
    import repro

    return [os.path.dirname(os.path.abspath(repro.__file__))]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="PIC-aware static analysis over the repro source tree.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule ids (repeatable or comma-separated, "
             "e.g. --select PIC002,COMM008)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON baseline of known findings to suppress (CI gates on "
             "new findings only)",
    )
    parser.add_argument(
        "--comm-log",
        action="append",
        metavar="FILE",
        help="replay a recorded SimComm event log (JSONL) through the "
             "protocol and happens-before checkers (repeatable)",
    )
    parser.add_argument(
        "--no-commstatic",
        action="store_true",
        help="skip the static communication-schedule verifier",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-finding lines, print only the summary",
    )
    return parser


#: runtime/replay rules that live outside the static passes: the
#: commcheck protocol + happens-before replay (COMM/RES) and the step
#: sanitizers (SAN)
RUNTIME_RULES = (
    ("COMM001", "unreceived messages (send without a matching recv)"),
    ("COMM002", "tag mismatch on a failed recv"),
    ("COMM003", "self-send (src == dst)"),
    ("COMM004", "collective-count divergence across ranks"),
    ("COMM005", "barrier-count divergence across ranks"),
    ("COMM007", "exchange phase begins while same-tag messages are in "
                "flight (phase overlap)"),
    ("COMM009", "ordered fold applied out of canonical order"),
    ("COMM010", "apply raced in-flight messages of its own phase"),
    ("RES001", "injected message fault without a matching recovery"),
    ("RES002", "rank failure without a checkpoint restore"),
    ("SAN001", "non-finite field values after the solve"),
    ("SAN002", "particles outside the domain after boundaries"),
    ("SAN003", "guard cells diverge from their periodic image"),
    ("SAN004", "communicator not quiescent between steps"),
    ("SAN005", "gather/deposit stencil outside the padded field array"),
)


def _print_rules(stream) -> None:
    for rule in registered_rules():
        print(f"{rule.rule_id}  [{rule.severity}]  {rule.description}",
              file=stream)
    for rule_id, description in STATIC_RULES:
        print(f"{rule_id}  [static]  {description}", file=stream)
    for rule_id, description in RUNTIME_RULES:
        kind = "replay" if rule_id[:3] in ("COM", "RES") else "runtime"
        print(f"{rule_id}  [{kind}]  {description}", file=stream)


def _partition_select(
    select: Optional[Sequence[str]],
) -> Tuple[Optional[List[str]], Optional[Set[str]]]:
    """Split ``--select`` into lint-registry ids and a global id filter.

    Returns ``(lint_select, keep_ids)``: ``lint_select`` is passed to
    the lint registry (None = all; empty list = skip linting); the
    ``keep_ids`` set filters commstatic/replay findings (None = keep
    all).  Unknown ids raise :class:`AnalysisError`.
    """
    if not select:
        return None, None
    select = [
        rule_id.strip()
        for entry in select
        for rule_id in entry.split(",")
        if rule_id.strip()
    ]
    lint_ids = {rule.rule_id for rule in registered_rules()}
    known = (
        lint_ids
        | {rule_id for rule_id, _ in STATIC_RULES}
        | {rule_id for rule_id, _ in RUNTIME_RULES}
    )
    unknown = sorted(set(select) - known)
    if unknown:
        raise AnalysisError(f"unknown rule id(s) in --select: {unknown}")
    return [s for s in select if s in lint_ids], set(select)


def _load_baseline(path: str) -> List[Tuple[str, str]]:
    """(rule id, path suffix) pairs of findings the baseline accepts."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise AnalysisError(f"cannot read baseline {path!r}: {exc}")
    entries = data.get("findings") if isinstance(data, dict) else None
    if entries is None:
        raise AnalysisError(
            f"baseline {path!r} must be a JSON object with a 'findings' list"
        )
    pairs: List[Tuple[str, str]] = []
    for entry in entries:
        try:
            pairs.append((str(entry["rule"]), str(entry["path"])))
        except (TypeError, KeyError):
            raise AnalysisError(
                f"baseline {path!r}: each finding needs 'rule' and 'path'"
            )
    return pairs


def _apply_baseline(
    findings: Sequence[Finding], baseline: Sequence[Tuple[str, str]]
) -> List[Finding]:
    """Drop findings the baseline accepts (matched by rule + path suffix).

    Line numbers are deliberately ignored: a baseline must keep
    suppressing a known finding when unrelated edits shift it.
    """
    kept = []
    for finding in findings:
        suppressed = any(
            finding.rule == rule
            and (finding.path == path or finding.path.endswith(path))
            for rule, path in baseline
        )
        if not suppressed:
            kept.append(finding)
    return kept


def _replay_logs(paths: Sequence[str]) -> List[Finding]:
    from repro.analysis.commcheck import check_all
    from repro.observability.commlog import read_comm_log

    findings: List[Finding] = []
    for path in paths:
        replay = read_comm_log(path)
        report = check_all(replay)
        for finding in report.findings:
            # re-anchor provenance to the log file (line = event index)
            findings.append(
                Finding(
                    rule=finding.rule,
                    message=finding.message,
                    path=path,
                    line=finding.line,
                    severity=finding.severity,
                )
            )
    return findings


def render_report(findings: Sequence[Finding], quiet: bool, stream) -> None:
    if not quiet:
        for finding in findings:
            print(finding.format(), file=stream)
    n_err = sum(1 for f in findings if f.severity == Severity.ERROR)
    n_warn = len(findings) - n_err
    if findings:
        print(
            f"repro.analysis: {n_err} error(s), {n_warn} warning(s)",
            file=stream,
        )
    else:
        print("repro.analysis: clean", file=stream)


def render_json(findings: Sequence[Finding], stream) -> None:
    n_err = sum(1 for f in findings if f.severity == Severity.ERROR)
    payload = {
        "tool": "repro.analysis",
        "errors": n_err,
        "warnings": len(findings) - n_err,
        "findings": [
            {
                "rule": f.rule,
                "severity": str(f.severity),
                "path": f.path,
                "line": f.line,
                "message": f.message,
            }
            for f in findings
        ],
    }
    print(json.dumps(payload, indent=2, sort_keys=True), file=stream)


def main(argv: Optional[Sequence[str]] = None, stream=None) -> int:
    stream = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules(stream)
        return 0
    paths = args.paths or _default_paths()
    try:
        lint_select, keep_ids = _partition_select(args.select)
        findings: List[Finding] = []
        if lint_select is None or lint_select:
            findings += lint_paths(paths, select=lint_select)
        if not args.no_commstatic:
            findings += check_schedule(paths)
        if args.comm_log:
            findings += _replay_logs(args.comm_log)
        if keep_ids is not None:
            findings = [f for f in findings if f.rule in keep_ids]
        if args.baseline:
            findings = _apply_baseline(findings, _load_baseline(args.baseline))
        findings = sort_findings(findings)
    except AnalysisError as exc:
        print(f"repro.analysis: error: {exc}", file=stream)
        return 2
    if args.format == "json":
        render_json(findings, stream)
    else:
        render_report(findings, args.quiet, stream)
    has_errors = any(f.severity == Severity.ERROR for f in findings)
    return 1 if has_errors else 0
