"""Command-line driver: ``python -m repro.analysis [paths...]``.

Runs the registered lint rules over the given files/directories
(default: ``src/repro``, falling back to the installed package location)
and reports findings as ``path:line: [severity] RULE-ID message``.
Exits non-zero when any error-severity finding survives — the CI gate.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.analysis.findings import Finding, Severity
from repro.analysis.linter import lint_paths, registered_rules
from repro.exceptions import AnalysisError


def _default_paths() -> List[str]:
    """``src/repro`` under the current directory, else the package itself."""
    candidate = os.path.join("src", "repro")
    if os.path.isdir(candidate):
        return [candidate]
    import repro

    return [os.path.dirname(os.path.abspath(repro.__file__))]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="PIC-aware static analysis over the repro source tree.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule ids (repeatable, e.g. --select PIC002)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-finding lines, print only the summary",
    )
    return parser


#: runtime/replay rules that live outside the static linter: the
#: commcheck protocol replay (COMM/RES) and the step sanitizers (SAN)
RUNTIME_RULES = (
    ("COMM001", "unreceived messages (send without a matching recv)"),
    ("COMM002", "tag mismatch on a failed recv"),
    ("COMM003", "self-send (src == dst)"),
    ("COMM004", "collective-count divergence across ranks"),
    ("COMM005", "barrier-count divergence across ranks"),
    ("RES001", "injected message fault without a matching recovery"),
    ("RES002", "rank failure without a checkpoint restore"),
    ("SAN001", "non-finite field values after the solve"),
    ("SAN002", "particles outside the domain after boundaries"),
    ("SAN003", "guard cells diverge from their periodic image"),
    ("SAN004", "communicator not quiescent between steps"),
    ("SAN005", "gather/deposit stencil outside the padded field array"),
)


def _print_rules(stream) -> None:
    for rule in registered_rules():
        print(f"{rule.rule_id}  [{rule.severity}]  {rule.description}",
              file=stream)
    for rule_id, description in RUNTIME_RULES:
        kind = "replay" if rule_id[:3] in ("COM", "RES") else "runtime"
        print(f"{rule_id}  [{kind}]  {description}", file=stream)


def render_report(findings: Sequence[Finding], quiet: bool, stream) -> None:
    if not quiet:
        for finding in findings:
            print(finding.format(), file=stream)
    n_err = sum(1 for f in findings if f.severity == Severity.ERROR)
    n_warn = len(findings) - n_err
    if findings:
        print(
            f"repro.analysis: {n_err} error(s), {n_warn} warning(s)",
            file=stream,
        )
    else:
        print("repro.analysis: clean", file=stream)


def main(argv: Optional[Sequence[str]] = None, stream=None) -> int:
    stream = stream if stream is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules(stream)
        return 0
    paths = args.paths or _default_paths()
    try:
        findings = lint_paths(paths, select=args.select)
    except AnalysisError as exc:
        print(f"repro.analysis: error: {exc}", file=stream)
        return 2
    render_report(findings, args.quiet, stream)
    has_errors = any(f.severity == Severity.ERROR for f in findings)
    return 1 if has_errors else 0
