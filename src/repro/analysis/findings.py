"""The common finding record shared by the linter, commcheck and sanitizers.

Every layer of the analysis subsystem reports problems as
:class:`Finding` values so the CLI, the CI gate and the tests consume one
format: ``path:line: [severity] RULE-ID message``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Severity:
    """Finding severities, ordered: errors gate CI, warnings do not."""

    ERROR = "error"
    WARNING = "warning"

    ORDER = (ERROR, WARNING)


@dataclass(frozen=True)
class Finding:
    """One rule violation with enough context to jump to it."""

    rule: str
    message: str
    path: str = "<run>"
    line: int = 0
    severity: str = Severity.ERROR

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.severity}] {self.rule} {self.message}"

    def __str__(self) -> str:  # pragma: no cover - convenience alias
        return self.format()


def sort_findings(findings):
    """Stable order for reports: by path, line, then rule id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))
