"""PIC-aware static analysis and runtime sanitizers.

The paper's production runs lean on strict kernel and communication
discipline (guard-cell-only halo writes, matched send/recv pairs, no
silent NaN propagation).  This subpackage machine-checks the same
contracts for the reproduction:

``repro.analysis.linter``
    An AST lint pass with PIC-specific rules (no per-particle Python
    loops in hot kernels, explicit dtypes on field allocations,
    ``ReproError``-only exception discipline, timing through
    :class:`~repro.diagnostics.timers.Timers`, ``__all__`` consistency).
``repro.analysis.dataflow``
    The intraprocedural dataflow engine behind the value-tracking rules:
    a statement-level CFG with constant propagation, module constant
    environments, and array-allocation/alias tracking.
``repro.analysis.commstatic``
    A static communication-schedule extractor and verifier over the
    sources: matched send/recv site pairs, cross-phase tag disjointness,
    recv-before-send deadlock patterns and in-flight buffer mutation
    (COMM006/007/008/010).
``repro.analysis.commcheck``
    A post-hoc protocol checker over :class:`~repro.parallel.comm.SimComm`'s
    event log: unreceived messages, tag mismatches, self-sends,
    collective/barrier divergence across ranks, and — over the
    schedule-structure events — the happens-before replay (phase
    overlap, non-canonical fold order, fold-before-arrival races).
``repro.analysis.sanitize``
    Opt-in runtime invariant sanitizers (``REPRO_SANITIZE=1``) wired into
    the PIC step: non-finite fields, out-of-domain particles, guard-cell
    consistency.

Run the static passes from the command line::

    python -m repro.analysis src/repro
"""

from repro.analysis.findings import Finding, Severity
from repro.analysis.linter import LintRule, lint_paths, registered_rules
from repro.analysis.commcheck import (
    ProtocolReport,
    check_all,
    check_comm,
    check_happens_before,
)
from repro.analysis.commstatic import (
    MessageFlow,
    PhaseInfo,
    Schedule,
    check_schedule,
    extract_schedule,
)
from repro.analysis.sanitize import Sanitizer

__all__ = [
    "Finding",
    "Severity",
    "LintRule",
    "lint_paths",
    "registered_rules",
    "ProtocolReport",
    "check_all",
    "check_comm",
    "check_happens_before",
    "MessageFlow",
    "PhaseInfo",
    "Schedule",
    "check_schedule",
    "extract_schedule",
    "Sanitizer",
]
