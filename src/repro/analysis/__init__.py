"""PIC-aware static analysis and runtime sanitizers.

The paper's production runs lean on strict kernel and communication
discipline (guard-cell-only halo writes, matched send/recv pairs, no
silent NaN propagation).  This subpackage machine-checks the same
contracts for the reproduction:

``repro.analysis.linter``
    An AST lint pass with PIC-specific rules (no per-particle Python
    loops in hot kernels, explicit dtypes on field allocations,
    ``ReproError``-only exception discipline, timing through
    :class:`~repro.diagnostics.timers.Timers`, ``__all__`` consistency).
``repro.analysis.commcheck``
    A post-hoc protocol checker over :class:`~repro.parallel.comm.SimComm`'s
    event log: unreceived messages, tag mismatches, self-sends and
    collective/barrier divergence across ranks.
``repro.analysis.sanitize``
    Opt-in runtime invariant sanitizers (``REPRO_SANITIZE=1``) wired into
    the PIC step: non-finite fields, out-of-domain particles, guard-cell
    consistency.

Run the static pass from the command line::

    python -m repro.analysis src/repro
"""

from repro.analysis.findings import Finding, Severity
from repro.analysis.linter import LintRule, lint_paths, registered_rules
from repro.analysis.commcheck import ProtocolReport, check_comm
from repro.analysis.sanitize import Sanitizer

__all__ = [
    "Finding",
    "Severity",
    "LintRule",
    "lint_paths",
    "registered_rules",
    "ProtocolReport",
    "check_comm",
    "Sanitizer",
]
