"""PIC006: kernel-phase work in the step drivers must be timed.

Every performance claim rests on the per-phase instrumentation: a kernel
call that runs outside a ``timers.timer(...)``/``stopwatch()``/
``tracer.span(...)``/``_phase(...)`` context is invisible to the Fig. 6
breakdown, the load balancer's measured-cost mode *and* the trace — an
untimed hot path.  This rule walks the step-driver methods of the
simulation modules (``_single_step``/``_step_body``/``_finish_step``/
``_advance_subcycled_patches``) and flags any call to a known
kernel-phase entry point that is not lexically inside a timed ``with``
block.

Kernel *hook* methods themselves (``_gather``, ``_deposit``, ...) are
exempt: the contract is that their call sites in the drivers are timed,
which is exactly what this rule checks.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.findings import Finding
from repro.analysis.linter import LintContext, LintRule, register

#: modules holding a step driver (the PIC cycle orchestrators)
DRIVER_MODULE_BASENAMES = ("simulation.py", "mr_simulation.py", "distributed.py")

#: the step-driver methods whose bodies are checked
DRIVER_METHODS = frozenset(
    {"_single_step", "_step_body", "_finish_step", "_advance_subcycled_patches"}
)

#: kernel-phase entry points (free functions and simulation hooks) whose
#: call sites inside a driver must be timed
KERNEL_CALLS = frozenset(
    {
        # simulation hooks
        "_gather", "_deposit", "_finalize_deposits", "_advance_fields",
        "_push_and_deposit_box", "_run_sanitizers",
        # particle kernels
        "gather_fields", "push_boris", "push_vay", "push_positions",
        "deposit_current_esirkepov", "deposit_current_direct",
        "sort_species_by_bin", "smooth_binomial",
        # parallel substrate
        "fold_sources_global", "assemble_global", "scatter_local",
        "fold_sources_pairwise", "exchange_halos",
        "redistribute_particles", "migrate_boxes",
    }
)

#: context-manager call names that count as "timed"
TIMED_CONTEXTS = frozenset(
    {"timer", "stopwatch", "span", "_phase", "phase_span"}
)


def _call_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _with_is_timed(node: ast.With) -> bool:
    for item in node.items:
        for sub in ast.walk(item.context_expr):
            if isinstance(sub, ast.Call) and _call_name(sub) in TIMED_CONTEXTS:
                return True
    return False


def _kernel_calls_in_expr(node: ast.AST) -> Iterator[ast.Call]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and _call_name(sub) in KERNEL_CALLS:
            yield sub


def _walk_stmts(stmts, timed: bool) -> Iterator[ast.Call]:
    """Yield untimed kernel calls, tracking the enclosing timed contexts."""
    for stmt in stmts:
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                if not timed:
                    yield from _kernel_calls_in_expr(item.context_expr)
            yield from _walk_stmts(stmt.body, timed or _with_is_timed(stmt))
        elif isinstance(stmt, (ast.For, ast.While)):
            if not timed:
                yield from _kernel_calls_in_expr(stmt.iter if isinstance(stmt, ast.For) else stmt.test)
            yield from _walk_stmts(stmt.body, timed)
            yield from _walk_stmts(stmt.orelse, timed)
        elif isinstance(stmt, ast.If):
            if not timed:
                yield from _kernel_calls_in_expr(stmt.test)
            yield from _walk_stmts(stmt.body, timed)
            yield from _walk_stmts(stmt.orelse, timed)
        elif isinstance(stmt, ast.Try):
            yield from _walk_stmts(stmt.body, timed)
            for handler in stmt.handlers:
                yield from _walk_stmts(handler.body, timed)
            yield from _walk_stmts(stmt.orelse, timed)
            yield from _walk_stmts(stmt.finalbody, timed)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # a nested helper is its own scope; call sites are what count
            continue
        elif not timed:
            yield from _kernel_calls_in_expr(stmt)


@register
class UntimedKernelPhaseRule(LintRule):
    rule_id = "PIC006"
    description = (
        "kernel-phase calls in step drivers must run under a "
        "timers.timer()/stopwatch()/span()/_phase() context"
    )

    def check_module(self, ctx: LintContext) -> Iterable[Finding]:
        if ctx.basename not in DRIVER_MODULE_BASENAMES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in DRIVER_METHODS:
                continue
            for call in _walk_stmts(node.body, timed=False):
                yield ctx.finding(
                    self,
                    call,
                    f"kernel-phase call {_call_name(call)}() in "
                    f"{node.name}() runs outside a timer/span context; "
                    "wrap it in timers.timer(...), stopwatch() or a span",
                )
