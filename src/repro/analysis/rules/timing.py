"""PIC004: wall-clock reads go through ``diagnostics.timers.Timers``.

The load balancer and the performance model both consume the timer
bookkeeping; a kernel that reads ``time.perf_counter()`` directly
produces timings invisible to them (and to the Fig. 6 benchmark
breakdown).  Any direct call of a ``time``-module clock outside
``diagnostics/timers.py`` is flagged — use ``Timers.timer(name)`` or
``Timers.stopwatch()`` instead.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from repro.analysis.findings import Finding
from repro.analysis.linter import LintContext, LintRule, register

CLOCK_FUNCS = frozenset(
    {"time", "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns",
     "process_time", "process_time_ns"}
)

#: the one module allowed to read clocks directly
EXEMPT_BASENAMES = ("timers.py",)


def _time_aliases(tree: ast.Module) -> Set[str]:
    """Local names bound to the ``time`` module (``import time as _t``)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    aliases.add(alias.asname or "time")
    return aliases


def _clock_imports(tree: ast.Module) -> Set[str]:
    """Names bound by ``from time import perf_counter [as x]``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in CLOCK_FUNCS:
                    names.add(alias.asname or alias.name)
    return names


@register
class TimerDisciplineRule(LintRule):
    rule_id = "PIC004"
    description = "no direct time.time()/perf_counter() outside diagnostics.timers"

    def check_module(self, ctx: LintContext) -> Iterable[Finding]:
        if ctx.basename in EXEMPT_BASENAMES:
            return
        module_aliases = _time_aliases(ctx.tree)
        clock_names = _clock_imports(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            direct = (
                isinstance(func, ast.Attribute)
                and func.attr in CLOCK_FUNCS
                and isinstance(func.value, ast.Name)
                and func.value.id in module_aliases
            )
            imported = isinstance(func, ast.Name) and func.id in clock_names
            if direct or imported:
                yield ctx.finding(
                    self,
                    node,
                    "direct wall-clock read; route timing through "
                    "diagnostics.timers.Timers (timer()/stopwatch())",
                )
