"""PIC002: field allocations must pin their dtype explicitly.

The paper runs WarpX in double and mixed precision; silently inheriting
NumPy's default dtype is how a mixed-precision build ends up doing
double-precision halo exchanges.  Every ``np.zeros``/``np.empty``
allocation must say what it allocates — either a ``dtype=`` keyword or
the positional dtype argument.  ``zeros_like``/``empty_like`` inherit
their prototype's dtype and are exempt by construction.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.linter import LintContext, LintRule, register

ALLOCATORS = ("zeros", "empty")
NUMPY_ALIASES = ("np", "numpy")


@register
class ExplicitDtypeRule(LintRule):
    rule_id = "PIC002"
    description = "np.zeros/np.empty must pass an explicit dtype"

    def check_module(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in ALLOCATORS
                and isinstance(func.value, ast.Name)
                and func.value.id in NUMPY_ALIASES
            ):
                continue
            has_positional_dtype = len(node.args) >= 2
            has_keyword_dtype = any(kw.arg == "dtype" for kw in node.keywords)
            if not (has_positional_dtype or has_keyword_dtype):
                yield ctx.finding(
                    self,
                    node,
                    f"np.{func.attr} without explicit dtype "
                    "(pass dtype=... so precision is pinned)",
                )
