"""PIC002: field allocations must pin their dtype explicitly.

The paper runs WarpX in double and mixed precision; silently inheriting
NumPy's default dtype is how a mixed-precision build ends up doing
double-precision halo exchanges.  Every ``np.zeros``/``np.empty``
allocation must say what it allocates — either a ``dtype=`` keyword or
the positional dtype argument.  ``zeros_like``/``empty_like`` inherit
their prototype's dtype and are exempt by construction.

The rule is value-tracking, not pattern-matching: numpy import aliases
are discovered from the module (``import numpy as xp`` is recognized,
unioned with the conventional ``np``/``numpy`` so snippets without
imports still lint), and a ``dtype=`` argument that the dataflow engine
(:mod:`repro.analysis.dataflow`) proves to be ``None`` — directly or
through a constant/parameter-default chain — is flagged exactly like a
missing one: ``dtype=None`` *is* the numpy default.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.dataflow import (
    DEFAULT_NUMPY_ALIASES,
    ModuleAnalysis,
    build_module_env,
)
from repro.analysis.findings import Finding
from repro.analysis.linter import LintContext, LintRule, register

ALLOCATORS = ("zeros", "empty")
NUMPY_ALIASES = tuple(sorted(DEFAULT_NUMPY_ALIASES))


@register
class ExplicitDtypeRule(LintRule):
    rule_id = "PIC002"
    description = "np.zeros/np.empty must pass an explicit (non-None) dtype"

    def check_module(self, ctx: LintContext) -> Iterable[Finding]:
        env = build_module_env(ctx.tree)
        analysis: Optional[ModuleAnalysis] = None
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in ALLOCATORS
                and isinstance(func.value, ast.Name)
                and func.value.id in env.numpy_aliases
            ):
                continue
            dtype_expr: Optional[ast.expr] = None
            if len(node.args) >= 2:
                dtype_expr = node.args[1]
            for kw in node.keywords:
                if kw.arg == "dtype":
                    dtype_expr = kw.value
            if dtype_expr is None:
                yield ctx.finding(
                    self,
                    node,
                    f"np.{func.attr} without explicit dtype "
                    "(pass dtype=... so precision is pinned)",
                )
                continue
            # the dataflow engine resolves constants through assignments
            # and parameter defaults; a provable None is the numpy
            # default in disguise
            if analysis is None:
                analysis = ModuleAnalysis(ctx.tree, env)
            ok, value = analysis.resolve(dtype_expr)
            if ok and value is None:
                yield ctx.finding(
                    self,
                    node,
                    f"np.{func.attr} dtype resolves to None — that is the "
                    "numpy default, not an explicit precision; pin a real "
                    "dtype",
                )
