"""PIC003: library code raises ``ReproError`` subclasses only.

One catchable root type is the library's error contract
(:mod:`repro.exceptions`); a stray ``ValueError`` from deep inside a
kernel escapes every ``except ReproError`` in user code and tests.
Raising builtin exceptions is flagged, with two idiomatic exemptions:

* ``NotImplementedError`` — abstract-method stubs;
* protocol exceptions (``AttributeError``, ``KeyError``, ``IndexError``,
  ``StopIteration``) inside dunder methods, where Python's object
  protocol requires them (e.g. ``__getattr__`` must raise
  ``AttributeError`` for ``hasattr`` to work).

Bare ``raise`` (re-raise) and raising a caught exception object are
always allowed.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.linter import LintContext, LintRule, register

#: builtin exception types that library code must not raise directly
FORBIDDEN_BUILTINS = frozenset(
    {
        "BaseException",
        "Exception",
        "ArithmeticError",
        "AssertionError",
        "AttributeError",
        "BufferError",
        "EOFError",
        "FloatingPointError",
        "IOError",
        "IndexError",
        "KeyError",
        "LookupError",
        "MemoryError",
        "NameError",
        "OSError",
        "OverflowError",
        "RuntimeError",
        "StopIteration",
        "SystemError",
        "TypeError",
        "ValueError",
        "ZeroDivisionError",
    }
)

#: allowed inside dunder methods because the object protocol demands them
PROTOCOL_EXCEPTIONS = frozenset(
    {"AttributeError", "KeyError", "IndexError", "StopIteration"}
)


def _raised_name(node: ast.Raise) -> Optional[str]:
    exc = node.exc
    if exc is None:
        return None  # bare re-raise
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return None


def _walk_with_function(
    node: ast.AST, func: Optional[str] = None
) -> Iterator[Tuple[ast.Raise, Optional[str]]]:
    """Yield (raise node, enclosing function name) pairs."""
    for child in ast.iter_child_nodes(node):
        child_func = func
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            child_func = child.name
        if isinstance(child, ast.Raise):
            yield child, child_func
        yield from _walk_with_function(child, child_func)


@register
class ExceptionDisciplineRule(LintRule):
    rule_id = "PIC003"
    description = "raise ReproError subclasses, not builtin exceptions"

    def check_module(self, ctx: LintContext) -> Iterable[Finding]:
        for node, func_name in _walk_with_function(ctx.tree):
            name = _raised_name(node)
            if name is None or name == "NotImplementedError":
                continue
            if name not in FORBIDDEN_BUILTINS:
                continue  # assumed to be a ReproError subclass
            in_dunder = bool(
                func_name
                and func_name.startswith("__")
                and func_name.endswith("__")
            )
            if in_dunder and name in PROTOCOL_EXCEPTIONS:
                continue
            yield ctx.finding(
                self,
                node,
                f"raises builtin {name}; raise a ReproError subclass from "
                "repro.exceptions instead",
            )
