"""PIC001: no per-particle Python loops in hot-path kernel modules.

The Sec. V.A.1 lesson of the paper: kernels must be expressed over whole
particle batches (vectorized here, GPU-parallel in WarpX), never as a
Python loop over individual particles.  This rule flags ``for _ in
range(n)`` loops in the hot modules when ``n`` is a particle count —
literally ``x.shape[0]`` or a name assigned from it.  Chunked loops
(three-argument ``range(start, stop, chunk)``) are the sanctioned batch
idiom and pass.  Deliberately-scalar reference kernels carry a
``# repro: allow(PIC001)`` pragma on their ``def`` line.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.analysis.findings import Finding
from repro.analysis.linter import LintContext, LintRule, register

#: kernel modules where per-particle loops are forbidden
HOT_MODULE_BASENAMES = ("deposit.py", "gather.py", "pusher.py")


def _contains_shape0(node: ast.AST) -> bool:
    """Does the expression mention ``<something>.shape[0]``?"""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Subscript):
            continue
        value = sub.value
        if isinstance(value, ast.Attribute) and value.attr == "shape":
            index = sub.slice
            if isinstance(index, ast.Constant) and index.value == 0:
                return True
    return False


def _particle_count_names(scope: ast.AST) -> Set[str]:
    """Names assigned from expressions containing ``.shape[0]`` in scope."""
    names: Set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign) and _contains_shape0(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if _contains_shape0(node.value) and isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _scopes(tree: ast.Module) -> List[ast.AST]:
    scopes: List[ast.AST] = [tree]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(node)
    return scopes


@register
class PerParticleLoopRule(LintRule):
    rule_id = "PIC001"
    description = (
        "hot-path kernel modules must not loop over particles in Python; "
        "vectorize over the batch or chunk with range(start, stop, chunk)"
    )

    def check_module(self, ctx: LintContext) -> Iterable[Finding]:
        if ctx.basename not in HOT_MODULE_BASENAMES:
            return
        seen = set()
        for scope in _scopes(ctx.tree):
            counts = _particle_count_names(scope)
            for node in ast.walk(scope):
                if not isinstance(node, ast.For):
                    continue
                call = node.iter
                if not (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Name)
                    and call.func.id == "range"
                    and len(call.args) in (1, 2)
                ):
                    continue
                stop = call.args[-1]
                is_particle_count = _contains_shape0(stop) or (
                    isinstance(stop, ast.Name) and stop.id in counts
                )
                key = (node.lineno, node.col_offset)
                if is_particle_count and key not in seen:
                    seen.add(key)
                    yield ctx.finding(
                        self,
                        node,
                        "per-particle Python loop in hot-path module; "
                        "vectorize over the batch (or pragma a reference kernel)",
                    )
