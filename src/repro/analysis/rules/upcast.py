"""PIC007: no hard-coded float64 dtypes in kernel-phase code.

The mixed-precision mode (the paper's Table III "MP" rows) stores
fields in float32 and keeps particle quantities double.  That policy
dies silently when kernel-phase code pins an allocation to
``np.float64``: the float32 pipeline promotes on first contact, every
downstream product becomes a full-grid double temporary, and the
memory-bandwidth win the mode exists for evaporates — with bit-exact
results, so nothing ever fails.

This rule flags allocator/conversion calls (``zeros``, ``empty``,
``ones``, ``full``, ``arange``, ``linspace``, ``array``, ``asarray``,
``ascontiguousarray``) whose dtype is literally ``np.float64``,
``np.double``, ``"float64"``, ``"f8"`` or builtin ``float`` — in the
kernel-phase modules only.  Precision there must be *derived* (from
``grid.dtype``, a field array, or a dtype parameter), not asserted.

Deliberately-double sites are real and common — shape weights, gather
accumulators and geometry stay DP *by design* under the mixed-precision
policy — and carry a ``# repro: allow(PIC007)`` pragma, turning every
intentional float64 into documentation instead of a hazard.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.dataflow import build_module_env
from repro.analysis.findings import Finding
from repro.analysis.linter import LintContext, LintRule, register

#: modules on the field/kernel hot path where float64 must be a choice,
#: not a default (cf. HOT_MODULE_BASENAMES of PIC001, plus the field
#: containers and solvers the deposits/gathers read and write)
KERNEL_PHASE_BASENAMES = (
    "gather.py",
    "deposit.py",
    "shapes.py",
    "kernels.py",
    "compiled.py",
    "stencils.py",
    "maxwell.py",
    "psatd.py",
    "pml.py",
    "boundary.py",
    "interpolation.py",
    "yee.py",
)

#: numpy callables taking a dtype; positional dtype sits at index 1 for
#: the shape/array-first subset, keyword ``dtype=`` works for all
DTYPE_CALLS = (
    "zeros", "empty", "ones", "full", "arange", "linspace",
    "array", "asarray", "ascontiguousarray",
)
_POSITIONAL_DTYPE_AT_1 = (
    "zeros", "empty", "ones", "array", "asarray", "ascontiguousarray",
)

_F64_STRINGS = ("float64", "f8", "d", "double")
_F64_ATTRS = ("float64", "double", "float_")


def _is_hardcoded_float64(expr: ast.expr, numpy_aliases) -> bool:
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id in numpy_aliases
        and expr.attr in _F64_ATTRS
    ):
        return True
    if isinstance(expr, ast.Constant) and expr.value in _F64_STRINGS:
        return True
    # builtin float *is* IEEE double as a numpy dtype
    if isinstance(expr, ast.Name) and expr.id == "float":
        return True
    return False


@register
class SilentUpcastRule(LintRule):
    rule_id = "PIC007"
    description = (
        "kernel-phase code must not hard-code float64 dtypes; derive the "
        "precision from the grid/field or pragma a DP-by-design site"
    )

    def check_module(self, ctx: LintContext) -> Iterable[Finding]:
        if ctx.basename not in KERNEL_PHASE_BASENAMES:
            return
        env = build_module_env(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in DTYPE_CALLS
                and isinstance(func.value, ast.Name)
                and func.value.id in env.numpy_aliases
            ):
                continue
            dtype_expr: Optional[ast.expr] = None
            if func.attr in _POSITIONAL_DTYPE_AT_1 and len(node.args) >= 2:
                dtype_expr = node.args[1]
            for kw in node.keywords:
                if kw.arg == "dtype":
                    dtype_expr = kw.value
            if dtype_expr is not None and _is_hardcoded_float64(
                dtype_expr, env.numpy_aliases
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"np.{func.attr} pins dtype=float64 in kernel-phase "
                    "code — a float32 field pipeline silently upcasts "
                    "here; derive the dtype (grid.dtype, arr.dtype, a "
                    "parameter) or mark the site DP-by-design with "
                    "# repro: allow(PIC007)",
                )
