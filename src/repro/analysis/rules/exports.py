"""PIC005: ``__all__`` stays consistent with what a package actually binds.

Package ``__init__`` files are the public API surface; this rule keeps
them honest in three ways:

* every ``__all__`` entry must be bound in the module (no phantom
  exports surviving a rename);
* every public name an ``__init__.py`` binds via ``from ... import``
  must be listed in ``__all__`` (no accidental unexported API), and an
  ``__init__.py`` that re-exports names must define ``__all__`` at all;
* ``from repro.x.y import N`` inside an ``__init__.py`` is resolved
  against the scanned tree and ``N`` must exist in ``repro/x/y.py``
  (catches the submodule rename that the import would only surface at
  runtime).
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.linter import LintContext, LintRule, register


def module_bound_names(tree: ast.Module) -> Set[str]:
    """Names bound at module level by imports, defs and assignments."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name.split(".")[0]
                names.add(bound)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            names.add(elt.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


def find_dunder_all(tree: ast.Module) -> Tuple[Optional[List[str]], int]:
    """The literal ``__all__`` list and its line (None if absent/dynamic)."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            continue
        if isinstance(node.value, (ast.List, ast.Tuple)):
            entries = []
            for elt in node.value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    entries.append(elt.value)
                else:
                    return None, node.lineno  # dynamic entry: cannot check
            return entries, node.lineno
        return None, node.lineno
    return None, 0


def _package_base(path: str) -> Optional[str]:
    """Directory containing the ``repro`` package root, if ``path`` is in one."""
    d = os.path.dirname(os.path.abspath(path))
    while True:
        if os.path.basename(d) == "repro" and os.path.isfile(
            os.path.join(d, "__init__.py")
        ):
            return os.path.dirname(d)
        parent = os.path.dirname(d)
        if parent == d:
            return None
        d = parent


@register
class ExportConsistencyRule(LintRule):
    rule_id = "PIC005"
    description = "__all__ must match the names a package binds and re-exports"

    def __init__(self) -> None:
        self._bound_cache: Dict[str, Optional[Set[str]]] = {}

    def _resolved_names(self, base: str, module: str) -> Optional[Set[str]]:
        """Module-level names of ``module`` resolved under ``base`` (cached)."""
        parts = module.split(".")
        candidates = (
            os.path.join(base, *parts) + ".py",
            os.path.join(base, *parts, "__init__.py"),
        )
        for candidate in candidates:
            if candidate in self._bound_cache:
                return self._bound_cache[candidate]
            if os.path.isfile(candidate):
                try:
                    with open(candidate, "r", encoding="utf8") as fh:
                        tree = ast.parse(fh.read())
                    names = module_bound_names(tree)
                except SyntaxError:
                    names = None
                self._bound_cache[candidate] = names
                return names
        return None

    def check_module(self, ctx: LintContext) -> Iterable[Finding]:
        bound = module_bound_names(ctx.tree)
        exported, all_line = find_dunder_all(ctx.tree)
        is_init = ctx.basename == "__init__.py"

        if exported is not None:
            for name in exported:
                if name not in bound:
                    yield Finding(
                        rule=self.rule_id,
                        message=f"__all__ lists {name!r} but the module does "
                        "not bind it",
                        path=ctx.path,
                        line=all_line,
                        severity=self.severity,
                    )

        if not is_init:
            return

        base = _package_base(ctx.path)
        reexported: List[Tuple[str, int]] = []
        for node in ctx.tree.body:
            if not isinstance(node, ast.ImportFrom) or node.level:
                continue
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                if not local.startswith("_"):
                    reexported.append((local, node.lineno))
                # resolve repro-internal imports against the scanned tree
                if (
                    base is not None
                    and node.module
                    and node.module.split(".")[0] == "repro"
                ):
                    target_names = self._resolved_names(base, node.module)
                    if target_names is not None and alias.name not in target_names:
                        yield ctx.finding(
                            self,
                            node,
                            f"{node.module} does not define {alias.name!r}",
                        )

        if not reexported:
            return
        if exported is None:
            yield Finding(
                rule=self.rule_id,
                message="package __init__ re-exports names but defines no "
                "literal __all__",
                path=ctx.path,
                line=all_line or 1,
                severity=self.severity,
            )
            return
        listed = set(exported)
        for name, line in reexported:
            if name not in listed:
                yield Finding(
                    rule=self.rule_id,
                    message=f"public re-export {name!r} missing from __all__",
                    path=ctx.path,
                    line=line,
                    severity=self.severity,
                )
