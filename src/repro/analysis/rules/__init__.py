"""PIC-specific lint rules.

Importing this package registers every rule with the linter registry.
Rule ids are stable and documented in the README:

======  ==================================================================
PIC001  no per-particle Python ``for`` loops in hot-path kernel modules
PIC002  ``np.zeros``/``np.empty`` must pass an explicit ``dtype``
PIC003  only ``ReproError`` subclasses may be raised from library code
PIC004  no direct wall-clock calls outside ``diagnostics.timers``
PIC005  ``__all__`` must be consistent with the names a package binds
PIC006  kernel-phase calls in step drivers must run under a timer/span
======  ==================================================================
"""

from repro.analysis.rules import dtype
from repro.analysis.rules import exports
from repro.analysis.rules import hotloop
from repro.analysis.rules import raises
from repro.analysis.rules import spans
from repro.analysis.rules import timing

__all__ = ["dtype", "exports", "hotloop", "raises", "spans", "timing"]
