"""PIC-specific lint rules.

Importing this package registers every rule with the linter registry.
Rule ids are stable and documented in the README:

======  ==================================================================
PIC001  no per-particle Python ``for`` loops in hot-path kernel modules
PIC002  ``np.zeros``/``np.empty`` must pass an explicit ``dtype`` (the
        dataflow engine also flags a dtype that provably resolves to
        ``None``, and discovers numpy import aliases from the module)
PIC003  only ``ReproError`` subclasses may be raised from library code
PIC004  no direct wall-clock calls outside ``diagnostics.timers``
PIC005  ``__all__`` must be consistent with the names a package binds
PIC006  kernel-phase calls in step drivers must run under a timer/span
PIC007  kernel-phase modules must not hard-code ``float64`` dtypes
        (silent upcasts of float32 mixed-precision pipelines); DP-by-
        design sites carry ``# repro: allow(PIC007)``
======  ==================================================================

The static schedule rules (COMM006-COMM010) live in
:mod:`repro.analysis.commstatic`, not in this registry: they operate on
a cross-module workspace rather than one file at a time.
"""

from repro.analysis.rules import dtype
from repro.analysis.rules import exports
from repro.analysis.rules import hotloop
from repro.analysis.rules import raises
from repro.analysis.rules import spans
from repro.analysis.rules import timing
from repro.analysis.rules import upcast

__all__ = [
    "dtype", "exports", "hotloop", "raises", "spans", "timing", "upcast",
]
