"""Intraprocedural dataflow: a statement-level CFG with constant propagation.

The AST lint rules started as pure pattern matchers; this module gives
them (and the static communication-schedule verifier,
:mod:`repro.analysis.commstatic`) actual *value tracking*:

* **constant propagation** over a per-function control-flow graph — a
  flat lattice (undefined → constant → non-constant) joined at branch
  merges and loop heads, so ``tag = PREFIX + ":fold"`` resolves to the
  string it denotes on every path that reaches a ``comm.send``;
* **module constant environment** — module-level ``NAME = <literal>``
  bindings (and numpy import aliases) visible to every function, which
  is how default parameter values like ``tag=HALO_TAG_PREFIX + ":fold"``
  fold to concrete tags;
* **reaching allocations and buffer aliasing** — ``np.zeros``-family
  calls produce an :class:`ArrayValue` carrying the allocation site and
  its dtype expression; plain-name assignment propagates the *same*
  value, so ``alias = buf`` is visible to checks that care whether two
  names denote one buffer (the send-buffer mutation race, COMM010).

The engine is deliberately modest: intraprocedural, immutable values
only (strings, numbers, tuples, ``None``), and a conservative join —
anything it cannot prove constant becomes :data:`NONCONST`, never a
wrong constant.  ``try`` blocks are approximated (handlers are assumed
reachable from the block entry and exit), which is sound for the
constant queries the rules make.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import AnalysisError


class _NonConst:
    """Lattice bottom: the value is not a single compile-time constant."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NONCONST"


#: the unique non-constant sentinel (identity-compared everywhere)
NONCONST = _NonConst()

#: value types the constant lattice tracks (all immutable)
_CONST_TYPES = (str, bytes, bool, int, float, complex, tuple, type(None))


@dataclass(frozen=True)
class ArrayValue:
    """An abstract array: one allocation site plus its dtype expression.

    ``dtype`` is the source text of the allocation's dtype argument
    (``None`` when the allocation did not pin one); ``site`` is the line
    of the allocating call.  Aliasing assignments (``b = a``) propagate
    the *same* ``ArrayValue``, so two names comparing equal here denote
    the same underlying buffer.
    """

    site: int
    dtype: Optional[str] = None


#: numpy allocator names that produce an :class:`ArrayValue`
_ALLOCATORS = {
    "zeros": 1, "empty": 1, "ones": 1, "full": 2,
    "array": None, "asarray": None, "zeros_like": None,
    "empty_like": None, "ones_like": None, "full_like": None,
}

#: default names recognized as the numpy module when no import is seen
DEFAULT_NUMPY_ALIASES = frozenset({"np", "numpy"})


# -- expression folding ------------------------------------------------------

def fold_expr(
    node: ast.AST, lookup: Callable[[str], Any]
) -> Tuple[bool, Any]:
    """Fold ``node`` to a compile-time value under ``lookup``.

    ``lookup(name)`` returns the value bound to a name (a constant, an
    :class:`ArrayValue`, or :data:`NONCONST`); it must raise ``KeyError``
    for unknown names.  Returns ``(True, value)`` on success and
    ``(False, None)`` when the expression is not provably constant.
    """
    try:
        value = _fold(node, lookup)
    except _FoldFailure:
        return False, None
    return True, value


class _FoldFailure(Exception):
    """Internal control flow of :func:`fold_expr` (never escapes)."""


def _fold(node: ast.AST, lookup: Callable[[str], Any]) -> Any:
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        try:
            value = lookup(node.id)
        except KeyError:
            raise _FoldFailure from None
        if value is NONCONST:
            raise _FoldFailure
        return value
    if isinstance(node, ast.Tuple):
        return tuple(_fold(elt, lookup) for elt in node.elts)
    if isinstance(node, ast.UnaryOp):
        operand = _fold(node.operand, lookup)
        _require_scalar(operand)
        if isinstance(node.op, ast.USub):
            return -operand
        if isinstance(node.op, ast.UAdd):
            return +operand
        if isinstance(node.op, ast.Not):
            return not operand
        raise _FoldFailure
    if isinstance(node, ast.BinOp):
        left = _fold(node.left, lookup)
        right = _fold(node.right, lookup)
        return _fold_binop(node.op, left, right)
    if isinstance(node, ast.JoinedStr):
        parts: List[str] = []
        for piece in node.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
            elif isinstance(piece, ast.FormattedValue):
                if piece.format_spec is not None or piece.conversion not in (-1, 115):
                    raise _FoldFailure
                parts.append(str(_fold(piece.value, lookup)))
            else:
                raise _FoldFailure
        return "".join(parts)
    raise _FoldFailure


def _require_scalar(value: Any) -> None:
    if isinstance(value, ArrayValue) or not isinstance(value, _CONST_TYPES):
        raise _FoldFailure


def _fold_binop(op: ast.operator, left: Any, right: Any) -> Any:
    _require_scalar(left)
    _require_scalar(right)
    str_like = isinstance(left, (str, bytes))
    if isinstance(op, ast.Add):
        if str_like != isinstance(right, (str, bytes)):
            raise _FoldFailure
        return left + right
    if isinstance(op, ast.Mod) and str_like:
        try:
            return left % right
        except (TypeError, ValueError, KeyError):
            raise _FoldFailure from None
    if str_like or isinstance(right, (str, bytes)):
        raise _FoldFailure
    try:
        if isinstance(op, ast.Sub):
            return left - right
        if isinstance(op, ast.Mult):
            return left * right
        if isinstance(op, ast.FloorDiv):
            return left // right
        if isinstance(op, ast.Mod):
            return left % right
    except (TypeError, ZeroDivisionError):
        raise _FoldFailure from None
    raise _FoldFailure


# -- module environment ------------------------------------------------------

class ModuleEnv:
    """Module-level constants, numpy aliases and ``from``-imports.

    ``constants`` keeps only names assigned exactly once at module level
    to an expression that folds; a reassignment evicts the name (the
    value is no longer a single constant).
    """

    def __init__(self) -> None:
        self.constants: Dict[str, Any] = {}
        self.numpy_aliases: Set[str] = set(DEFAULT_NUMPY_ALIASES)
        #: (module, name, local alias) triples of ``from m import n [as a]``
        self.imports_from: List[Tuple[str, str, str]] = []

    def lookup(self, name: str) -> Any:
        return self.constants[name]


def build_module_env(tree: ast.Module) -> ModuleEnv:
    """Scan a module body for constant bindings and import aliases."""
    env = ModuleEnv()
    assigned: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    env.numpy_aliases.add(alias.asname or "numpy")
        elif isinstance(node, ast.ImportFrom):
            if node.module and not node.level:
                for alias in node.names:
                    if alias.name != "*":
                        env.imports_from.append(
                            (node.module, alias.name, alias.asname or alias.name)
                        )
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if target.id in assigned:
                env.constants.pop(target.id, None)
                continue
            assigned.add(target.id)
            ok, value = fold_expr(node.value, env.lookup)
            if ok:
                env.constants[target.id] = value
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if node.value is not None and node.target.id not in assigned:
                assigned.add(node.target.id)
                ok, value = fold_expr(node.value, env.lookup)
                if ok:
                    env.constants[node.target.id] = value
    return env


# -- the statement-level CFG -------------------------------------------------

class _CFG:
    """Successor edges between the statements of one function body."""

    def __init__(self) -> None:
        self.stmts: List[ast.stmt] = []
        self.succ: Dict[int, List[ast.stmt]] = {}
        self.entries: List[ast.stmt] = []

    def _edge(self, src: Optional[ast.stmt], dst: ast.stmt) -> None:
        if src is None:
            self.entries.append(dst)
        else:
            self.succ.setdefault(id(src), []).append(dst)

    def build(self, body: Sequence[ast.stmt]) -> None:
        self._seq(body, [None], [], [])

    def _seq(
        self,
        stmts: Sequence[ast.stmt],
        frontier: List[Optional[ast.stmt]],
        breaks: List[ast.stmt],
        continues: List[ast.stmt],
    ) -> List[Optional[ast.stmt]]:
        """Link ``stmts`` after ``frontier``; returns the new frontier."""
        for stmt in stmts:
            self.stmts.append(stmt)
            for pred in frontier:
                self._edge(pred, stmt)
            frontier = [stmt]
            if isinstance(stmt, ast.If):
                body_exit = self._seq(stmt.body, [stmt], breaks, continues)
                if stmt.orelse:
                    else_exit = self._seq(stmt.orelse, [stmt], breaks, continues)
                else:
                    else_exit = [stmt]
                frontier = body_exit + else_exit
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                inner_breaks: List[ast.stmt] = []
                inner_continues: List[ast.stmt] = []
                body_exit = self._seq(
                    stmt.body, [stmt], inner_breaks, inner_continues
                )
                for tail in body_exit + inner_continues:
                    self._edge(tail, stmt)  # back edge to the loop head
                if stmt.orelse:
                    else_exit = self._seq(stmt.orelse, [stmt], breaks, continues)
                else:
                    else_exit = [stmt]
                frontier = else_exit + inner_breaks
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                frontier = self._seq(stmt.body, [stmt], breaks, continues)
            elif isinstance(stmt, ast.Try):
                body_exit = self._seq(stmt.body, [stmt], breaks, continues)
                handler_exits: List[Optional[ast.stmt]] = []
                for handler in stmt.handlers:
                    handler_exits += self._seq(
                        handler.body, [stmt] + body_exit, breaks, continues
                    )
                if stmt.orelse:
                    body_exit = self._seq(stmt.orelse, body_exit, breaks, continues)
                frontier = body_exit + handler_exits
                if stmt.finalbody:
                    frontier = self._seq(stmt.finalbody, frontier, breaks, continues)
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                frontier = []
            elif isinstance(stmt, ast.Break):
                breaks.append(stmt)
                frontier = []
            elif isinstance(stmt, ast.Continue):
                continues.append(stmt)
                frontier = []
        return frontier


# -- constant propagation over one function ----------------------------------

_State = Dict[str, Any]


def _merge(into: _State, other: _State) -> Tuple[_State, bool]:
    """Variable-wise lattice join; returns (merged, changed vs ``into``)."""
    merged = dict(into)
    changed = False
    for name, value in other.items():
        if name not in merged:
            merged[name] = value
            changed = True
        elif merged[name] is not value and merged[name] != value:
            if merged[name] is not NONCONST:
                merged[name] = NONCONST
                changed = True
    return merged, changed


class FunctionAnalysis:
    """Constant propagation over one function's statement-level CFG.

    Parameter defaults (folded against the module environment) seed the
    entry state — the right reading for schedule extraction, where a
    library-internal helper is almost always invoked with its defaults
    and explicit call-site values are layered on by
    :mod:`repro.analysis.commstatic`'s call-graph propagation.
    """

    def __init__(self, fn: ast.FunctionDef, env: ModuleEnv) -> None:
        self.fn = fn
        self.env = env
        self._cfg = _CFG()
        self._cfg.build(fn.body)
        #: innermost enclosing statement of every AST node in the body
        self._stmt_of: Dict[int, ast.stmt] = {}
        for stmt in self._cfg.stmts:
            for sub in ast.walk(stmt):
                self._stmt_of[id(sub)] = stmt
        self._state_in: Dict[int, _State] = {}
        self._run()

    # -- the worklist --------------------------------------------------------
    def _entry_state(self) -> _State:
        state: _State = {}
        args = self.fn.args
        positional = list(getattr(args, "posonlyargs", [])) + list(args.args)
        defaults: List[Optional[ast.expr]] = (
            [None] * (len(positional) - len(args.defaults)) + list(args.defaults)
        )
        for arg, default in zip(positional, defaults):
            state[arg.arg] = self._fold_default(default)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            state[arg.arg] = self._fold_default(default)
        if args.vararg is not None:
            state[args.vararg.arg] = NONCONST
        if args.kwarg is not None:
            state[args.kwarg.arg] = NONCONST
        return state

    def _fold_default(self, default: Optional[ast.expr]) -> Any:
        if default is None:
            return NONCONST
        ok, value = fold_expr(default, self.env.lookup)
        return value if ok else NONCONST

    def _run(self) -> None:
        entry = self._entry_state()
        worklist: List[ast.stmt] = []
        for stmt in self._cfg.entries:
            self._state_in[id(stmt)] = dict(entry)
            worklist.append(stmt)
        iterations = 0
        limit = max(64, 16 * len(self._cfg.stmts) * (len(entry) + 8))
        while worklist:
            iterations += 1
            if iterations > limit:
                raise AnalysisError(
                    f"constant propagation did not converge in function "
                    f"{self.fn.name!r} (statement CFG of {len(self._cfg.stmts)})"
                )
            stmt = worklist.pop()
            out = self._transfer(stmt, self._state_in.get(id(stmt), {}))
            for succ in self._cfg.succ.get(id(stmt), ()):  # noqa: B020
                if id(succ) not in self._state_in:
                    self._state_in[id(succ)] = dict(out)
                    worklist.append(succ)
                else:
                    merged, changed = _merge(self._state_in[id(succ)], out)
                    if changed:
                        self._state_in[id(succ)] = merged
                        worklist.append(succ)

    # -- transfer function ---------------------------------------------------
    def _transfer(self, stmt: ast.stmt, state: _State) -> _State:
        out = dict(state)
        if isinstance(stmt, ast.Assign):
            value = self._rhs_value(stmt.value, out)
            for target in stmt.targets:
                self._bind_target(target, value, out)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind_target(
                    stmt.target, self._rhs_value(stmt.value, out), out
                )
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                current = out.get(stmt.target.id, NONCONST)
                ok, rhs = fold_expr(stmt.value, _state_lookup(out, self.env))
                if current is not NONCONST and ok:
                    try:
                        out[stmt.target.id] = _fold_binop(stmt.op, current, rhs)
                    except _FoldFailure:
                        out[stmt.target.id] = NONCONST
                else:
                    out[stmt.target.id] = NONCONST
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind_target(stmt.target, NONCONST, out)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, NONCONST, out)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                if alias.name != "*":
                    out[alias.asname or alias.name.split(".")[0]] = NONCONST
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            out[stmt.name] = NONCONST
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    out.pop(target.id, None)
        elif isinstance(stmt, (ast.Global, ast.Nonlocal)):
            for name in stmt.names:
                out[name] = NONCONST
        return out

    def _rhs_value(self, expr: ast.expr, state: _State) -> Any:
        ok, value = fold_expr(expr, _state_lookup(state, self.env))
        if ok:
            return value
        allocation = self._array_allocation(expr)
        if allocation is not None:
            return allocation
        return NONCONST

    def _array_allocation(self, expr: ast.expr) -> Optional[ArrayValue]:
        """An :class:`ArrayValue` when ``expr`` is a numpy allocator call."""
        if not (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _ALLOCATORS
            and isinstance(expr.func.value, ast.Name)
            and expr.func.value.id in self.env.numpy_aliases
        ):
            return None
        dtype_src: Optional[str] = None
        for kw in expr.keywords:
            if kw.arg == "dtype":
                dtype_src = ast.unparse(kw.value)
        if dtype_src is None:
            dtype_pos = _ALLOCATORS[expr.func.attr]
            if dtype_pos is not None and len(expr.args) > dtype_pos:
                dtype_src = ast.unparse(expr.args[dtype_pos])
        return ArrayValue(site=expr.lineno, dtype=dtype_src)

    def _bind_target(self, target: ast.expr, value: Any, state: _State) -> None:
        if isinstance(target, ast.Name):
            state[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements: Sequence[Any]
            if isinstance(value, tuple) and len(value) == len(target.elts):
                elements = value
            else:
                elements = [NONCONST] * len(target.elts)
            for elt, sub in zip(target.elts, elements):
                self._bind_target(elt, sub, state)
        # Subscript/Attribute stores mutate an object, not a binding.

    # -- queries -------------------------------------------------------------
    def state_before(self, node: ast.AST) -> _State:
        """The constant state flowing into ``node``'s enclosing statement."""
        stmt = self._stmt_of.get(id(node))
        if stmt is None:
            return {}
        return self._state_in.get(id(stmt), {})

    def resolve(self, expr: ast.expr) -> Tuple[bool, Any]:
        """Fold ``expr`` in the state reaching its enclosing statement."""
        state = self.state_before(expr)
        return fold_expr(expr, _state_lookup(state, self.env))


def _state_lookup(state: _State, env: ModuleEnv) -> Callable[[str], Any]:
    def lookup(name: str) -> Any:
        if name in state:
            return state[name]
        return env.lookup(name)

    return lookup


# -- whole-module façade -----------------------------------------------------

class ModuleAnalysis:
    """Lazy per-function :class:`FunctionAnalysis` over one parsed module."""

    def __init__(self, tree: ast.Module, env: Optional[ModuleEnv] = None) -> None:
        self.tree = tree
        self.env = env if env is not None else build_module_env(tree)
        #: innermost enclosing function def of every AST node
        self._fn_of: Dict[int, ast.FunctionDef] = {}
        for fn in iter_functions(tree):
            for sub in ast.walk(fn):
                if sub is not fn:
                    self._fn_of[id(sub)] = fn
        self._analyses: Dict[int, FunctionAnalysis] = {}

    def function_analysis(self, fn: ast.FunctionDef) -> FunctionAnalysis:
        if id(fn) not in self._analyses:
            self._analyses[id(fn)] = FunctionAnalysis(fn, self.env)
        return self._analyses[id(fn)]

    def enclosing_function(self, node: ast.AST) -> Optional[ast.FunctionDef]:
        """The innermost function definition containing ``node`` (or None)."""
        return self._fn_of.get(id(node))

    def resolve(self, expr: ast.expr) -> Tuple[bool, Any]:
        """Fold ``expr`` wherever it sits: function body or module level."""
        fn = self._fn_of.get(id(expr))
        if fn is not None:
            return self.function_analysis(fn).resolve(expr)
        return fold_expr(expr, self.env.lookup)


def iter_functions(tree: ast.Module) -> Iterable[ast.FunctionDef]:
    """Every (sync) function definition in the module, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            yield node
