"""Runtime invariant sanitizers for the PIC step (opt-in, ``REPRO_SANITIZE=1``).

Invariants the paper's production runs rely on, checked live:

======  ==================================================================
SAN001  fields stay finite after every solve (no silent NaN/Inf
        propagation through the Maxwell push)
SAN002  particles stay inside the domain after push + boundaries /
        redistribution
SAN003  guard cells on periodic axes hold the exact periodic image of
        the valid data after the halo/boundary exchange (guard-cell
        write discipline: nothing scribbled outside its valid region)
SAN004  the communicator is quiescent between steps: no undelivered
        messages and no unrecovered in-flight faults (lost or delayed
        messages left over by the resilient transport)
SAN005  gather/deposit stencils stay inside the padded field arrays:
        the flat-address arithmetic of the kernels would wrap a negative
        base index around to the far end of the array and silently
        corrupt fields for particles outside the guard region
======  ==================================================================

Violations raise :class:`~repro.exceptions.SanitizerError` with the step
and the offending field/species named.  The hooks are wired into
:class:`~repro.core.simulation.Simulation`,
:class:`~repro.core.mr_simulation.MRSimulation` and
:class:`~repro.parallel.distributed.DistributedSimulation`; they cost
one pass over the data per step and are disabled unless the
``REPRO_SANITIZE`` environment variable is set to a truthy value.
"""

from __future__ import annotations

import os
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import SanitizerError
from repro.grid.yee import FIELD_COMPONENTS, STAGGER, YeeGrid


def _axis_slice(ndim: int, axis: int, sl: slice):
    out = [slice(None)] * ndim
    out[axis] = sl
    return tuple(out)


class Sanitizer:
    """The runtime invariant checks, as one hookable object.

    Simulations hold ``self.sanitizer`` (``None`` when disabled) and call
    the ``check_*`` methods at the matching points of the step; tests may
    construct a :class:`Sanitizer` directly to check a grid or a species
    on demand.
    """

    ENV_VAR = "REPRO_SANITIZE"
    _FALSY = ("", "0", "false", "off", "no")

    @classmethod
    def enabled_in_env(cls, env: Optional[Mapping[str, str]] = None) -> bool:
        mapping = os.environ if env is None else env
        return mapping.get(cls.ENV_VAR, "").strip().lower() not in cls._FALSY

    @classmethod
    def from_env(
        cls, env: Optional[Mapping[str, str]] = None
    ) -> Optional["Sanitizer"]:
        """A :class:`Sanitizer` if ``REPRO_SANITIZE`` is truthy, else None."""
        return cls() if cls.enabled_in_env(env) else None

    # -- SAN001 ------------------------------------------------------------
    def check_fields_finite(
        self,
        grid: YeeGrid,
        step: int,
        components: Sequence[str] = FIELD_COMPONENTS,
        where: str = "field solve",
        label: str = "",
    ) -> None:
        """Raise if any listed component contains NaN/Inf."""
        for comp in components:
            arr = grid.fields[comp]
            finite = np.isfinite(arr)
            if not finite.all():
                bad = int(arr.size - np.count_nonzero(finite))
                raise SanitizerError(
                    f"SAN001 step {step}: non-finite values in field {comp}"
                    f"{label} after {where} ({bad} of {arr.size} samples)"
                )

    # -- SAN002 ------------------------------------------------------------
    def check_particles_in_domain(
        self,
        name: str,
        positions: np.ndarray,
        lo: Sequence[float],
        hi: Sequence[float],
        step: int,
        where: str = "particle boundaries",
    ) -> None:
        """Raise if any particle sits outside ``[lo, hi]`` on any axis.

        The upper bound is inclusive: a periodic wrap may round a tiny
        negative coordinate to exactly ``hi``, which the deposition
        kernels handle; anything strictly beyond is a lost particle.
        """
        if positions.shape[0] == 0:
            return
        for axis in range(positions.shape[1]):
            x = positions[:, axis]
            out = (x < lo[axis]) | (x > hi[axis])
            n_out = int(np.count_nonzero(out))
            if n_out:
                worst = float(x[out][np.argmax(np.abs(x[out] - lo[axis]))])
                raise SanitizerError(
                    f"SAN002 step {step}: {n_out} particle(s) of species "
                    f"{name!r} outside domain on axis {axis} after {where} "
                    f"(bounds [{lo[axis]!r}, {hi[axis]!r}], worst {worst!r})"
                )

    # -- SAN003 ------------------------------------------------------------
    def check_guard_consistency(
        self,
        grid: YeeGrid,
        axis: int,
        step: int,
        components: Sequence[str] = FIELD_COMPONENTS,
        label: str = "",
    ) -> None:
        """Raise unless guards along a periodic ``axis`` equal their image.

        Mirrors the slices of :func:`repro.grid.boundary.apply_periodic`
        exactly: after a halo/boundary exchange the low guards must equal
        the top of the valid region, the high guards the bottom, and the
        duplicated nodal plane its twin.  Any divergence means some
        kernel wrote into guard cells after the exchange.
        """
        g = grid.guards
        n = grid.n_cells[axis]
        for comp in components:
            arr = grid.fields[comp]
            stag = STAGGER[comp][axis]
            nd = arr.ndim
            checks = [
                ("low guards", slice(0, g), slice(n, n + g)),
            ]
            hi0 = g + n + 1 - stag
            checks.append(
                ("high guards", slice(hi0, hi0 + g + stag),
                 slice(g + 1 - stag, g + 1 + g))
            )
            if stag == 0:
                checks.append(
                    ("duplicated nodal plane", slice(g + n, g + n + 1),
                     slice(g, g + 1))
                )
            for what, guard_sl, image_sl in checks:
                guard = arr[_axis_slice(nd, axis, guard_sl)]
                image = arr[_axis_slice(nd, axis, image_sl)]
                if not np.array_equal(guard, image):
                    n_bad = int(np.count_nonzero(guard != image))
                    raise SanitizerError(
                        f"SAN003 step {step}: guard-cell write discipline "
                        f"violated for field {comp}{label} on axis {axis} "
                        f"({what} differ from their periodic image in "
                        f"{n_bad} sample(s))"
                    )

    # -- SAN004 ------------------------------------------------------------
    def check_comm_quiescent(self, comm, step: int) -> None:
        """Raise unless the communicator is drained between steps.

        Every message sent during a step must have been received by its
        end, and — under fault injection — no lost or delayed message may
        still be in flight: an unrecovered fault crossing a step boundary
        is exactly the silent-wrong-answer mode the resilience layer
        exists to rule out.
        """
        pending = comm.pending()
        if pending:
            raise SanitizerError(
                f"SAN004 step {step}: {pending} undelivered message(s) in "
                "the communicator at end of step"
            )
        lost = sum(len(v) for v in getattr(comm, "_lost", {}).values())
        delayed = sum(len(v) for v in getattr(comm, "_delayed", {}).values())
        if lost or delayed:
            raise SanitizerError(
                f"SAN004 step {step}: unrecovered in-flight fault(s) at end "
                f"of step ({lost} lost, {delayed} delayed message(s))"
            )

    # -- SAN005 ------------------------------------------------------------
    def check_stencil_bounds(
        self,
        kernel: str,
        component: str,
        base_indices: Sequence[np.ndarray],
        width: int,
        shape: Sequence[int],
    ) -> None:
        """Raise if any particle's stencil leaves the padded field array.

        ``base_indices`` holds the per-axis first stencil point of each
        particle; the stencil covers ``[base, base + width)``.  The
        gather/deposit kernels address the field through flattened-index
        arithmetic, where a negative base silently wraps to the far end
        of the array — this check turns that corruption into an error.
        """
        for axis, base in enumerate(base_indices):
            if base.size == 0:
                continue
            lo = int(base.min())
            hi = int(base.max()) + int(width)
            if lo < 0 or hi > int(shape[axis]):
                bad = np.count_nonzero(
                    (base < 0) | (base + width > shape[axis])
                )
                raise SanitizerError(
                    f"SAN005: {bad} particle stencil(s) out of range in "
                    f"{kernel} for {component} on axis {axis} (stencil "
                    f"span [{lo}, {hi}) vs array extent {shape[axis]}); "
                    "the flat-address arithmetic would wrap around and "
                    "corrupt far-away samples"
                )

    # -- convenience -------------------------------------------------------
    def check_species_map(
        self,
        species: Mapping[str, "object"],
        lo: Sequence[float],
        hi: Sequence[float],
        step: int,
        where: str = "particle boundaries",
    ) -> None:
        """SAN002 over a ``{name: Species}`` mapping."""
        for name, sp in species.items():
            positions = getattr(sp, "positions", None)
            if positions is not None and getattr(sp, "n", 0):
                self.check_particles_in_domain(
                    name, positions, lo, hi, step, where=where
                )
