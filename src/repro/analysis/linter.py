"""AST lint driver: rule registry, pragma suppression, tree walking.

Rules live in :mod:`repro.analysis.rules`; each is a :class:`LintRule`
subclass registered with :func:`register`.  The driver parses every
Python file under the given paths once, hands the module AST to each
rule, and filters the findings through ``# repro: allow(RULE-ID)``
pragmas (a pragma on a ``def`` line suppresses the rule in the whole
function body — the escape hatch for deliberately-scalar reference
kernels).
"""

from __future__ import annotations

import ast
import io
import os
import tokenize
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

from repro.analysis.findings import Finding, sort_findings
from repro.exceptions import AnalysisError

PRAGMA_PREFIX = "repro: allow("


class LintContext:
    """Everything a rule needs about one parsed module."""

    def __init__(self, path: str, rel_path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        #: path relative to the scan root, with forward slashes
        self.rel_path = rel_path
        self.source = source
        self.tree = tree

    @property
    def basename(self) -> str:
        return os.path.basename(self.path)

    def finding(
        self, rule: "LintRule", node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=rule.rule_id,
            message=message,
            path=self.path,
            line=getattr(node, "lineno", 0),
            severity=rule.severity,
        )


class LintRule:
    """Base class for lint rules.

    Subclasses set ``rule_id``/``description`` and implement
    :meth:`check_module`, yielding :class:`Finding` values.
    """

    rule_id: str = ""
    severity: str = "error"
    description: str = ""

    def check_module(self, ctx: LintContext) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[LintRule]] = {}


def register(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise AnalysisError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise AnalysisError(f"duplicate rule id {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def registered_rules(select: Optional[Sequence[str]] = None) -> List[LintRule]:
    """Instantiate the registered rules (optionally a subset by id)."""
    import repro.analysis.rules  # noqa: F401 - triggers rule registration

    if select is None:
        ids = sorted(_REGISTRY)
    else:
        unknown = [r for r in select if r not in _REGISTRY]
        if unknown:
            raise AnalysisError(
                f"unknown rule id(s) {unknown}; known: {sorted(_REGISTRY)}"
            )
        ids = list(select)
    return [_REGISTRY[i]() for i in ids]


# -- pragma handling -------------------------------------------------------

def collect_pragmas(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids allowed by ``# repro: allow(...)``."""
    pragmas: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            text = tok.string.lstrip("#").strip()
            if not text.startswith(PRAGMA_PREFIX) or not text.endswith(")"):
                continue
            inner = text[len(PRAGMA_PREFIX):-1]
            ids = {r.strip() for r in inner.split(",") if r.strip()}
            if ids:
                pragmas.setdefault(tok.start[0], set()).update(ids)
    except tokenize.TokenError:
        pass
    return pragmas


def _suppressed_ranges(
    tree: ast.Module, pragmas: Dict[int, Set[str]]
) -> List[Tuple[int, int, Set[str]]]:
    """(start, end, rule ids) ranges for pragmas sitting on ``def`` lines."""
    ranges: List[Tuple[int, int, Set[str]]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            ids = pragmas.get(node.lineno)
            if ids:
                ranges.append((node.lineno, node.end_lineno or node.lineno, ids))
    return ranges


def _is_suppressed(
    finding: Finding,
    pragmas: Dict[int, Set[str]],
    ranges: List[Tuple[int, int, Set[str]]],
) -> bool:
    line_ids = pragmas.get(finding.line, set())
    if finding.rule in line_ids:
        return True
    for start, end, ids in ranges:
        if start <= finding.line <= end and finding.rule in ids:
            return True
    return False


# -- driving ---------------------------------------------------------------

def iter_python_files(paths: Sequence[str]) -> Iterator[Tuple[str, str]]:
    """Yield (file path, path relative to its scan root) pairs."""
    for path in paths:
        if os.path.isfile(path):
            yield path, os.path.basename(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__"
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        full = os.path.join(dirpath, name)
                        rel = os.path.relpath(full, path).replace(os.sep, "/")
                        yield full, rel
        else:
            raise AnalysisError(f"no such file or directory: {path!r}")


def lint_file(
    path: str, rel_path: str, rules: Sequence[LintRule]
) -> List[Finding]:
    """Lint one file with the given rules, applying pragma suppression."""
    with open(path, "r", encoding="utf8") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="PIC000",
                message=f"syntax error: {exc.msg}",
                path=path,
                line=exc.lineno or 0,
            )
        ]
    ctx = LintContext(path, rel_path, source, tree)
    pragmas = collect_pragmas(source)
    ranges = _suppressed_ranges(tree, pragmas)
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check_module(ctx):
            if not _is_suppressed(finding, pragmas, ranges):
                findings.append(finding)
    return findings


def lint_paths(
    paths: Sequence[str], select: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint every Python file under ``paths`` with the registered rules."""
    rules = registered_rules(select)
    findings: List[Finding] = []
    for path, rel in iter_python_files(paths):
        findings.extend(lint_file(path, rel, rules))
    return sort_findings(findings)
