"""B-spline particle shape factors (orders 1-3).

The shape factor assigns a macroparticle's charge to nearby lattice points.
High-order (quadratic/cubic) shapes are one of the capabilities the paper's
Table I marks as *essential*: they let the dense plasma-mirror target be
modelled without the finite-grid instability forcing prohibitive
resolution.

Two entry points:

* :func:`bspline` — the centered B-spline ``B_o(s)`` itself (closed form),
  used by the Esirkepov deposition and by property tests.
* :func:`shape_weights` — per-particle stencil base index and weight table
  for gather/scatter on a sample lattice.
* :class:`ShapeWeightCache` — memoizes :func:`shape_weights` over the two
  distinct stagger offsets per axis, shared across field components.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError

SUPPORTED_ORDERS = (1, 2, 3)


def required_guards(order: int) -> int:
    """Guard cells needed so order-``order`` kernels never index out of range."""
    return (order + 3) // 2


def bspline(order: int, s: np.ndarray) -> np.ndarray:  # repro: allow(PIC007)
    """Centered B-spline ``B_o(s)`` evaluated elementwise.

    ``B_o`` has support ``|s| <= (order+1)/2``, unit integral, and satisfies
    the partition of unity ``sum_j B_o(j - x) = 1`` for any ``x``.
    """
    s = np.abs(np.asarray(s, dtype=np.float64))
    if order == 1:
        return np.where(s < 1.0, 1.0 - s, 0.0)
    if order == 2:
        inner = 0.75 - s**2
        outer = 0.5 * (1.5 - s) ** 2
        return np.where(s <= 0.5, inner, np.where(s < 1.5, outer, 0.0))
    if order == 3:
        inner = (4.0 - 6.0 * s**2 + 3.0 * s**3) / 6.0
        outer = (2.0 - s) ** 3 / 6.0
        return np.where(s <= 1.0, inner, np.where(s < 2.0, outer, 0.0))
    raise ConfigurationError(f"unsupported shape order {order}")


def shape_weights(x: np.ndarray, order: int) -> Tuple[np.ndarray, np.ndarray]:  # repro: allow(PIC007)
    """Stencil base indices and weights for particles at lattice coords ``x``.

    Parameters
    ----------
    x:
        Particle positions in lattice units (sample ``j`` sits at coordinate
        ``j``); shape (n,).
    order:
        Shape factor order (1, 2 or 3).

    Returns
    -------
    (i0, w):
        ``i0`` — integer array (n,), the first lattice point of each
        particle's stencil; ``w`` — float array (n, order+1), the weights
        applied at points ``i0, i0+1, ..., i0+order`` (each row sums to 1).
    """
    x = np.asarray(x, dtype=np.float64)
    if order == 1:
        i0 = np.floor(x).astype(np.intp)
        f = x - i0
        w = np.empty((x.size, 2), dtype=np.float64)
        w[:, 0] = 1.0 - f
        w[:, 1] = f
        return i0, w
    if order == 2:
        nearest = np.floor(x + 0.5).astype(np.intp)
        d = x - nearest
        i0 = nearest - 1
        w = np.empty((x.size, 3), dtype=np.float64)
        w[:, 0] = 0.5 * (0.5 - d) ** 2
        w[:, 1] = 0.75 - d**2
        w[:, 2] = 0.5 * (0.5 + d) ** 2
        return i0, w
    if order == 3:
        cell = np.floor(x).astype(np.intp)
        f = x - cell
        i0 = cell - 1
        w = np.empty((x.size, 4), dtype=np.float64)
        w[:, 0] = (1.0 - f) ** 3 / 6.0
        w[:, 1] = (3.0 * f**3 - 6.0 * f**2 + 4.0) / 6.0
        w[:, 2] = (-3.0 * f**3 + 3.0 * f**2 + 3.0 * f + 1.0) / 6.0
        w[:, 3] = f**3 / 6.0
        return i0, w
    raise ConfigurationError(f"unsupported shape order {order}")


class ShapeWeightCache:
    """Per-axis stencil weight tables memoized over the stagger offsets.

    A Yee lattice exposes exactly two sample lattices per axis — nodal
    (stagger 0) and half-cell shifted (stagger 1) — yet the six-component
    field gather evaluates :func:`shape_weights` once per component per
    axis (``6 * ndim`` calls).  The cache keys on ``(axis, stagger)``, so
    at most ``2 * ndim`` weight tables are ever computed per particle
    population; the remaining lookups are dictionary hits.

    The staggered coordinate is derived as ``nodal - 0.5`` — the same
    floating point operations :func:`repro.particles.gather.lattice_coords`
    performs — so cached gathers are bit-identical to uncached ones.
    """

    def __init__(self, nodal_coords: Sequence[np.ndarray], order: int) -> None:
        self._nodal = nodal_coords
        self.order = int(order)
        self._tables: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, axis: int, stagger: int) -> Tuple[np.ndarray, np.ndarray]:
        """(i0, w) of :func:`shape_weights` on the requested sample lattice."""
        key = (int(axis), int(stagger))
        table = self._tables.get(key)
        if table is None:
            x = self._nodal[axis]
            if stagger:
                x = x - 0.5
            table = shape_weights(x, self.order)
            self._tables[key] = table
            self.misses += 1
        else:
            self.hits += 1
        return table
