"""Particle sorting / binning for memory locality.

The paper credits periodic particle sorting for better cache performance as
one of the GPU-era optimizations (Sec. VII.C).  Here particles are binned
into tiles of ``tile_cells`` cells and ordered along a Morton (Z-order)
space-filling curve — the same curve the load balancer uses for box
placement, so spatially close particles end up contiguous in memory.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.grid.yee import YeeGrid
from repro.particles.species import Species


def _part1by1(v: np.ndarray) -> np.ndarray:
    """Spread the lower 16 bits of v so there is a 0 bit between each."""
    v = v.astype(np.uint64) & np.uint64(0x0000FFFF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x00FF00FF)
    v = (v | (v << np.uint64(4))) & np.uint64(0x0F0F0F0F)
    v = (v | (v << np.uint64(2))) & np.uint64(0x33333333)
    v = (v | (v << np.uint64(1))) & np.uint64(0x55555555)
    return v


def _part1by2(v: np.ndarray) -> np.ndarray:
    """Spread the lower 10 bits of v so there are 2 zero bits between each."""
    v = v.astype(np.uint64) & np.uint64(0x3FF)
    v = (v | (v << np.uint64(16))) & np.uint64(0x030000FF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x0300F00F)
    v = (v | (v << np.uint64(4))) & np.uint64(0x030C30C3)
    v = (v | (v << np.uint64(2))) & np.uint64(0x09249249)
    return v


def morton_encode(indices: Sequence[np.ndarray]) -> np.ndarray:
    """Morton (Z-order) code of integer tile coordinates (1, 2 or 3 axes)."""
    ndim = len(indices)
    if ndim == 1:
        return indices[0].astype(np.uint64)
    if ndim == 2:
        return _part1by1(indices[0]) | (_part1by1(indices[1]) << np.uint64(1))
    return (
        _part1by2(indices[0])
        | (_part1by2(indices[1]) << np.uint64(1))
        | (_part1by2(indices[2]) << np.uint64(2))
    )


def morton_bin_particles(
    species: Species, grid: YeeGrid, tile_cells: int = 4
) -> np.ndarray:
    """Morton bin code per particle, on tiles of ``tile_cells`` cells."""
    tiles = []
    for d in range(grid.ndim):
        cell = np.floor(
            (species.positions[:, d] - grid.lo[d]) / grid.dx[d]
        ).astype(np.int64)
        np.clip(cell, 0, grid.n_cells[d] - 1, out=cell)
        tiles.append(cell // tile_cells)
    return morton_encode(tiles)


def sort_species_by_bin(
    species: Species, grid: YeeGrid, tile_cells: int = 4
) -> np.ndarray:
    """Reorder the species in Morton-bin order; returns the permutation."""
    codes = morton_bin_particles(species, grid, tile_cells)
    perm = np.argsort(codes, kind="stable")
    species.reorder(perm)
    return perm


def binning_locality_score(
    species: Species, grid: YeeGrid, tile_cells: int = 4
) -> float:
    """Fraction of consecutive particle pairs that share a tile (0..1).

    A proxy for gather/scatter cache friendliness; 1.0 means perfectly
    tiled traversal.  Used by the sorting ablation benchmark.
    """
    if species.n < 2:
        return 1.0
    codes = morton_bin_particles(species, grid, tile_cells)
    return float(np.mean(codes[1:] == codes[:-1]))
