"""Particle sorting / binning for memory locality.

The paper credits periodic particle sorting for better cache performance as
one of the GPU-era optimizations (Sec. VII.C).  Here particles are binned
into tiles of ``tile_cells`` cells and ordered along a Morton (Z-order)
space-filling curve — the same curve the load balancer uses for box
placement, so spatially close particles end up contiguous in memory.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.grid.yee import YeeGrid
from repro.particles.species import Species

#: interleavable bits per axis: 64-bit codes hold 2 x 32 bits in 2D and
#: 3 x 21 bits in 3D (1D codes are the raw 64-bit index)
MORTON_AXIS_BITS = {1: 64, 2: 32, 3: 21}


def _part1by1(v: np.ndarray) -> np.ndarray:
    """Spread the lower 32 bits of v so there is a 0 bit between each."""
    v = v.astype(np.uint64) & np.uint64(0xFFFFFFFF)
    v = (v | (v << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    v = (v | (v << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v << np.uint64(2))) & np.uint64(0x3333333333333333)
    v = (v | (v << np.uint64(1))) & np.uint64(0x5555555555555555)
    return v


def _part1by2(v: np.ndarray) -> np.ndarray:
    """Spread the lower 21 bits of v so there are 2 zero bits between each."""
    v = v.astype(np.uint64) & np.uint64(0x1FFFFF)
    v = (v | (v << np.uint64(32))) & np.uint64(0x001F00000000FFFF)
    v = (v | (v << np.uint64(16))) & np.uint64(0x001F0000FF0000FF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    v = (v | (v << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    v = (v | (v << np.uint64(2))) & np.uint64(0x1249249249249249)
    return v


def _check_morton_range(indices: Sequence[np.ndarray], bits: int) -> None:
    """Reject tile indices the interleave masks would silently alias."""
    limit = 1 << bits
    for axis, idx in enumerate(indices):
        if idx.size == 0:
            continue
        lo = int(idx.min())
        hi = int(idx.max())
        if lo < 0 or hi >= limit:
            raise ConfigurationError(
                f"Morton tile index out of range on axis {axis}: "
                f"[{lo}, {hi}] does not fit the {bits}-bit interleave "
                f"({len(indices)}D codes support at most {limit} tiles "
                f"per axis)"
            )


def morton_encode(indices: Sequence[np.ndarray]) -> np.ndarray:
    """Morton (Z-order) code of integer tile coordinates (1, 2 or 3 axes).

    Codes are 64-bit wide: 21 bits per axis in 3D, 32 in 2D.  Indices
    beyond that range raise :class:`ConfigurationError` instead of being
    silently masked (aliased bins destroy the sort locality the fast
    deposition path relies on).
    """
    ndim = len(indices)
    indices = [np.asarray(idx) for idx in indices]
    _check_morton_range(indices, MORTON_AXIS_BITS[ndim])
    if ndim == 1:
        return indices[0].astype(np.uint64)
    if ndim == 2:
        return _part1by1(indices[0]) | (_part1by1(indices[1]) << np.uint64(1))
    return (
        _part1by2(indices[0])
        | (_part1by2(indices[1]) << np.uint64(1))
        | (_part1by2(indices[2]) << np.uint64(2))
    )


def morton_bin_particles(
    species: Species, grid: YeeGrid, tile_cells: int = 4
) -> np.ndarray:
    """Morton bin code per particle, on tiles of ``tile_cells`` cells."""
    tiles = []
    for d in range(grid.ndim):
        cell = np.floor(
            (species.positions[:, d] - grid.lo[d]) / grid.dx[d]
        ).astype(np.int64)
        np.clip(cell, 0, grid.n_cells[d] - 1, out=cell)
        tiles.append(cell // tile_cells)
    return morton_encode(tiles)


def sort_species_by_bin(
    species: Species, grid: YeeGrid, tile_cells: int = 4
) -> np.ndarray:
    """Reorder the species in Morton-bin order; returns the permutation."""
    codes = morton_bin_particles(species, grid, tile_cells)
    perm = np.argsort(codes, kind="stable")
    species.reorder(perm)
    return perm


def binning_locality_score(
    species: Species, grid: YeeGrid, tile_cells: int = 4
) -> float:
    """Fraction of consecutive particle pairs that share a tile (0..1).

    A proxy for gather/scatter cache friendliness; 1.0 means perfectly
    tiled traversal.  Used by the sorting ablation benchmark.
    """
    if species.n < 2:
        return 1.0
    codes = morton_bin_particles(species, grid, tile_cells)
    return float(np.mean(codes[1:] == codes[:-1]))
