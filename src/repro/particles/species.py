"""Structure-of-arrays macroparticle container.

Macroparticles are samples of the plasma distribution function: a position
(``ndim`` coordinates), a normalized momentum ``u = gamma * beta`` (always
three components — the 2D simulations of the paper are "2D3V"), a weight
(number of physical particles represented), and a persistent id.

The container is deliberately array-oriented: every kernel in
:mod:`repro.particles` operates on whole arrays, which is the Python analog
of the paper's vectorize-over-particles strategy (Sec. V.A.1).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.constants import c, m_e, q_e
from repro.exceptions import ConfigurationError


class Species:
    """A named particle species with SoA storage.

    Parameters
    ----------
    name:
        Label used by diagnostics.
    charge, mass:
        Physical charge [C] and mass [kg] of one *real* particle.
    ndim:
        Number of position coordinates (1, 2 or 3).
    dtype:
        Floating point type of the particle arrays.
    """

    def __init__(
        self,
        name: str,
        charge: float = -q_e,
        mass: float = m_e,
        ndim: int = 3,
        dtype=np.float64,
    ) -> None:
        if ndim not in (1, 2, 3):
            raise ConfigurationError(f"ndim must be 1, 2 or 3, got {ndim}")
        if mass <= 0:
            raise ConfigurationError("mass must be positive")
        self.name = name
        self.charge = float(charge)
        self.mass = float(mass)
        self.ndim = int(ndim)
        self.dtype = np.dtype(dtype)
        self.positions = np.empty((0, ndim), dtype=self.dtype)
        self.momenta = np.empty((0, 3), dtype=self.dtype)  # u = gamma*beta
        self.weights = np.empty((0,), dtype=self.dtype)
        self.ids = np.empty((0,), dtype=np.int64)
        self._next_id = 0

    # -- basic container protocol ----------------------------------------
    def __len__(self) -> int:
        return self.positions.shape[0]

    @property
    def n(self) -> int:
        """Number of macroparticles currently stored."""
        return len(self)

    def add_particles(
        self,
        positions: np.ndarray,
        momenta: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Append particles; returns the ids assigned to them."""
        positions = np.atleast_2d(np.asarray(positions, dtype=self.dtype))
        if positions.shape[1] != self.ndim:
            raise ConfigurationError(
                f"positions must have {self.ndim} columns, got {positions.shape[1]}"
            )
        n_new = positions.shape[0]
        if momenta is None:
            momenta = np.zeros((n_new, 3), dtype=self.dtype)
        else:
            momenta = np.atleast_2d(np.asarray(momenta, dtype=self.dtype))
            if momenta.shape != (n_new, 3):
                raise ConfigurationError("momenta must be (n, 3)")
        if weights is None:
            weights = np.ones(n_new, dtype=self.dtype)
        else:
            weights = np.asarray(weights, dtype=self.dtype).reshape(n_new)
        new_ids = np.arange(self._next_id, self._next_id + n_new, dtype=np.int64)
        self._next_id += n_new
        self.positions = np.concatenate([self.positions, positions])
        self.momenta = np.concatenate([self.momenta, momenta])
        self.weights = np.concatenate([self.weights, weights])
        self.ids = np.concatenate([self.ids, new_ids])
        return new_ids

    def remove(self, mask: np.ndarray) -> "Species":
        """Remove particles where ``mask`` is True; returns them as a new
        species object (used for migration between domain-decomposition
        boxes and for diagnostics of escaped particles)."""
        mask = np.asarray(mask, dtype=bool)
        removed = self.select(mask)
        keep = ~mask
        self.positions = self.positions[keep]
        self.momenta = self.momenta[keep]
        self.weights = self.weights[keep]
        self.ids = self.ids[keep]
        return removed

    def select(self, mask: np.ndarray) -> "Species":
        """A new species holding copies of the particles where ``mask``.

        The selection inherits the source's id counter, so particles
        added to it later can never collide with the copied ids.
        """
        out = Species(self.name, self.charge, self.mass, self.ndim, self.dtype)
        out.positions = self.positions[mask].copy()
        out.momenta = self.momenta[mask].copy()
        out.weights = self.weights[mask].copy()
        out.ids = self.ids[mask].copy()
        out._next_id = self._next_id
        return out

    def extend(self, other: "Species") -> None:
        """Absorb the particles of ``other`` (ids are preserved).

        The id counter advances past every absorbed id: a rank that
        receives migrated particles and then injects fresh plasma (the
        moving window) must not reuse the ids it just absorbed.
        """
        if other.ndim != self.ndim:
            raise ConfigurationError("cannot extend across dimensionalities")
        self.positions = np.concatenate([self.positions, other.positions])
        self.momenta = np.concatenate([self.momenta, other.momenta])
        self.weights = np.concatenate([self.weights, other.weights])
        self.ids = np.concatenate([self.ids, other.ids])
        self._next_id = max(self._next_id, other._next_id)
        if other.ids.size:
            self._next_id = max(self._next_id, int(other.ids.max()) + 1)

    def reorder(self, permutation: np.ndarray) -> None:
        """Apply an index permutation in place (used by particle sorting)."""
        self.positions = self.positions[permutation]
        self.momenta = self.momenta[permutation]
        self.weights = self.weights[permutation]
        self.ids = self.ids[permutation]

    # -- derived quantities ------------------------------------------------
    def gamma(self) -> np.ndarray:
        """Relativistic Lorentz factor per particle."""
        u2 = np.einsum("ij,ij->i", self.momenta, self.momenta)
        return np.sqrt(1.0 + u2)

    def velocities(self) -> np.ndarray:
        """3-velocities [m/s], shape (n, 3)."""
        return self.momenta * (c / self.gamma())[:, None]

    def kinetic_energy(self) -> float:
        """Total kinetic energy of the represented physical particles [J]."""
        return float(np.sum((self.gamma() - 1.0) * self.weights)) * self.mass * c**2

    def kinetic_energies(self) -> np.ndarray:
        """Per-macroparticle kinetic energy of one physical particle [J]."""
        return (self.gamma() - 1.0) * self.mass * c**2

    def total_charge(self) -> float:
        """Total physical charge represented [C]."""
        return self.charge * float(np.sum(self.weights))

    def copy(self) -> "Species":
        out = self.select(np.ones(self.n, dtype=bool))
        out._next_id = self._next_id
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Species({self.name!r}, n={self.n}, q={self.charge:.3e}, "
            f"m={self.mass:.3e}, ndim={self.ndim})"
        )
