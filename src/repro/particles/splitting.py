"""Adaptive particle splitting and merging.

The paper's final section names "adaptive particle splitting and merging"
as the companion of adaptive refinement patches: refining a patch without
splitting leaves too few macroparticles per fine cell (noise), and
particles leaving a refined region without merging carry needless cost.

* :func:`split_particles` — replace selected macroparticles with
  ``n_children`` lighter copies, jittered in position; conserves charge,
  momentum and energy exactly.
* :func:`merge_particles` — coalesce groups of same-cell, similar-momentum
  macroparticles into one; conserves charge and momentum exactly (kinetic
  energy decreases by the removed intra-group spread, which is reported).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.particles.sorting import morton_encode
from repro.particles.species import Species


def split_particles(
    species: Species,
    mask: np.ndarray,
    n_children: int = 2,
    position_spread: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> int:
    """Split the particles selected by ``mask`` into ``n_children`` each.

    Children inherit the parent momentum and ``weight / n_children``; with
    ``position_spread > 0`` they are jittered by a uniform offset of that
    amplitude [m] per axis (pairs of children get opposite offsets, so the
    charge centroid is exactly preserved).

    Returns the number of particles added (children minus parents).
    """
    if n_children < 2:
        raise ConfigurationError("n_children must be >= 2")
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != (species.n,):
        raise ConfigurationError("mask must have one entry per particle")
    if not np.any(mask):
        return 0
    rng = rng if rng is not None else np.random.default_rng(0)
    parents = species.remove(mask)
    n_par = parents.n
    pos = np.repeat(parents.positions, n_children, axis=0)
    mom = np.repeat(parents.momenta, n_children, axis=0)
    w = np.repeat(parents.weights / n_children, n_children)
    if position_spread > 0.0:
        half = rng.uniform(
            -position_spread, position_spread, size=(n_par, n_children // 2, species.ndim)
        )
        offsets = np.concatenate([half, -half], axis=1)
        if offsets.shape[1] < n_children:  # odd child count: one stays put
            offsets = np.concatenate(
                [offsets, np.zeros((n_par, 1, species.ndim), dtype=np.float64)], axis=1
            )
        pos = pos + offsets.reshape(-1, species.ndim)
    species.add_particles(pos, mom, w)
    return n_par * (n_children - 1)


def merge_particles(
    species: Species,
    grid,
    tile_cells: int = 1,
    momentum_bins: int = 2,
    max_group: int = 8,
    min_group: int = 2,
) -> Tuple[int, float]:
    """Merge same-cell, similar-momentum macroparticles.

    Particles are binned by Morton tile and by the octant/quadrant of
    their momentum split into ``momentum_bins`` per component; each bin's
    groups of ``min_group``..``max_group`` particles collapse into one
    macroparticle at the charge-weighted centroid with the summed weight
    and the weighted mean momentum.

    Returns ``(n_removed, energy_loss_fraction)`` — the kinetic energy
    removed with the intra-group momentum spread, relative to the total.
    """
    if species.n < min_group:
        return 0, 0.0
    ke_before = species.kinetic_energy()
    tiles = []
    for d in range(grid.ndim):
        cell = np.floor(
            (species.positions[:, d] - grid.lo[d]) / grid.dx[d]
        ).astype(np.int64)
        np.clip(cell, 0, grid.n_cells[d] - 1, out=cell)
        tiles.append(cell // tile_cells)
    codes = morton_encode(tiles).astype(np.int64)
    # momentum signature: coarse bin of each u component
    u = species.momenta
    u_scale = np.maximum(np.abs(u).max(axis=0), 1e-12)
    sig = 0
    for i in range(3):
        comp_bin = np.clip(
            ((u[:, i] / u_scale[i] + 1.0) * 0.5 * momentum_bins).astype(np.int64),
            0,
            momentum_bins - 1,
        )
        sig = sig * momentum_bins + comp_bin
    key = codes * (momentum_bins**3) + sig

    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    boundaries = np.flatnonzero(np.diff(sorted_key)) + 1
    groups = np.split(order, boundaries)

    remove_mask = np.zeros(species.n, dtype=bool)
    new_pos, new_mom, new_w = [], [], []
    n_removed = 0
    for grp in groups:
        if len(grp) < min_group:
            continue
        for start in range(0, len(grp) - len(grp) % min_group, max_group):
            sub = grp[start : start + max_group]
            if len(sub) < min_group:
                continue
            w = species.weights[sub]
            w_sum = w.sum()
            new_pos.append(np.average(species.positions[sub], axis=0, weights=w))
            new_mom.append(np.average(species.momenta[sub], axis=0, weights=w))
            new_w.append(w_sum)
            remove_mask[sub] = True
            n_removed += len(sub) - 1
    if not new_pos:
        return 0, 0.0
    species.remove(remove_mask)
    species.add_particles(np.array(new_pos), np.array(new_mom), np.array(new_w))
    ke_after = species.kinetic_energy()
    loss = (ke_before - ke_after) / ke_before if ke_before > 0 else 0.0
    return n_removed, float(loss)
