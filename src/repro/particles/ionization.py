"""Field (tunneling) ionization — the ADK model.

The paper's targets ionize "quasi-instantly" in the ultra-intense field
(Sec. III.B), and several of the injection techniques its introduction
cites (refs. [11]-[13]) are *ionization injection*: inner-shell electrons
released only near the pulse peak are born at the right wake phase to be
trapped.  This module implements the standard Ammosov-Delone-Krainov
tunneling rate and a charge-state ladder that plugs into the PIC cycle.

Charge states are separate species (the WarpX "product species" pattern):
state ``k`` carries charge ``+k e``; ionization moves macroparticles one
rung up the ladder and adds their liberated electron to the electron
species at the same position — total charge is conserved exactly.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.constants import eV, m_e, m_p, q_e
from repro.exceptions import ConfigurationError
from repro.particles.gather import gather_fields
from repro.particles.species import Species

#: atomic unit of electric field [V/m]
E_ATOMIC = 5.14220674763e11
#: atomic unit of time [s]
T_ATOMIC = 2.4188843265857e-17
#: hydrogen ionization energy [eV]
U_HYDROGEN = 13.598434

#: successive ionization energies [eV] of a few workhorse gases
IONIZATION_ENERGIES: Dict[str, List[float]] = {
    "H": [13.598434],
    "He": [24.587389, 54.417765],
    "N": [14.53413, 29.60125, 47.4453, 77.4735, 97.8901, 552.06733, 667.04610],
}

ATOMIC_MASSES: Dict[str, float] = {"H": 1.008, "He": 4.0026, "N": 14.007}


def adk_rate(e_field: np.ndarray, u_ion_ev: float, z_after: int) -> np.ndarray:
    """ADK tunneling ionization rate [1/s].

    Parameters
    ----------
    e_field:
        Field magnitude at the atom [V/m].
    u_ion_ev:
        Ionization energy of the level [eV].
    z_after:
        Charge state *after* the ionization (1 for neutral -> singly).
    """
    e_au = np.maximum(np.asarray(e_field, dtype=np.float64) / E_ATOMIC, 1e-30)
    u_au = u_ion_ev * eV / (2.0 * 13.605693122994 * eV)  # in Hartree
    n_star = z_after / math.sqrt(2.0 * u_au)
    # |C_n*|^2 with the Stirling-free gamma form
    c2 = 2.0 ** (2 * n_star) / (
        n_star * math.gamma(n_star + 1.0) * math.gamma(n_star)
    )
    f = (2.0 * u_au) ** 1.5
    rate_au = (
        c2
        * u_au
        * (2.0 * f / e_au) ** (2.0 * n_star - 1.0)
        * np.exp(-2.0 * f / (3.0 * e_au))
    )
    return rate_au / T_ATOMIC


def barrier_suppression_field(u_ion_ev: float, z_after: int) -> float:
    """The classical barrier-suppression field [V/m]: above it the level
    ionizes essentially instantly."""
    u_au = u_ion_ev * eV / (2.0 * 13.605693122994 * eV)
    return u_au**2 / (4.0 * z_after) * E_ATOMIC


class ADKIonization:
    """A charge-state ladder with ADK transitions, for one element.

    Parameters
    ----------
    element:
        Key of :data:`IONIZATION_ENERGIES` (or pass ``energies_ev``).
    electron_species:
        The species that receives the liberated electrons.
    ndim:
        Position dimensionality (matching the simulation grid).
    max_state:
        Highest charge state to track (defaults to full stripping).
    """

    def __init__(
        self,
        element: str,
        electron_species: Species,
        ndim: int,
        energies_ev: Optional[Sequence[float]] = None,
        mass: Optional[float] = None,
        max_state: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if energies_ev is None:
            if element not in IONIZATION_ENERGIES:
                raise ConfigurationError(
                    f"unknown element {element!r}; give energies_ev"
                )
            energies_ev = IONIZATION_ENERGIES[element]
        self.element = element
        self.energies_ev = list(energies_ev)
        z_max = len(self.energies_ev)
        self.max_state = int(max_state) if max_state is not None else z_max
        if not (1 <= self.max_state <= z_max):
            raise ConfigurationError("max_state must be in [1, Z]")
        if mass is None:
            mass = ATOMIC_MASSES.get(element, 1.0) * m_p
        self.electron_species = electron_species
        self.rng = np.random.default_rng(seed)
        #: one species per charge state, 0 (neutral) .. max_state
        self.states: List[Species] = [
            Species(f"{element}{k}+", charge=k * q_e, mass=mass, ndim=ndim)
            for k in range(self.max_state + 1)
        ]

    def add_neutrals(self, positions: np.ndarray, weights: np.ndarray) -> None:
        """Seed the ladder with neutral atoms."""
        self.states[0].add_particles(positions, weights=weights)

    def total_atoms(self) -> float:
        return float(sum(s.weights.sum() for s in self.states))

    def total_charge(self) -> float:
        """Ion charge plus the electrons' (should be conserved) [C]."""
        ions = sum(s.total_charge() for s in self.states)
        return ions + self.electron_species.total_charge()

    def mean_charge_state(self) -> float:
        total = self.total_atoms()
        if total == 0:
            return 0.0
        weighted = sum(k * s.weights.sum() for k, s in enumerate(self.states))
        return float(weighted / total)

    def apply(self, grid, dt: float, order: int = 2) -> int:
        """One ionization step: promote atoms, release electrons.

        Processes the ladder top-down so an atom advances at most one
        state per step (the multi-step cascade across one dt is resolved
        over subsequent steps, adequate for dt << pulse duration).
        Returns the number of macro-ionization events.
        """
        n_events = 0
        for k in range(self.max_state - 1, -1, -1):
            sp = self.states[k]
            if sp.n == 0:
                continue
            e_f, _ = gather_fields(grid, sp.positions, order)
            e_mag = np.sqrt(np.einsum("ij,ij->i", e_f, e_f))
            rate = adk_rate(e_mag, self.energies_ev[k], k + 1)
            prob = 1.0 - np.exp(-rate * dt)
            mask = self.rng.random(sp.n) < prob
            if not np.any(mask):
                continue
            promoted = sp.remove(mask)
            self.states[k + 1].extend(promoted)
            self.electron_species.add_particles(
                promoted.positions.copy(),
                np.zeros((promoted.n, 3), dtype=np.float64),
                promoted.weights.copy(),
            )
            n_events += promoted.n
        return n_events

    def attach(self, sim, order: Optional[int] = None) -> None:
        """Register with a :class:`repro.core.simulation.Simulation`.

        The charge states join the simulation as ordinary species (so they
        push and deposit), and ionization runs as an end-of-step callback.
        """
        for sp in self.states:
            sim.add_species(sp)
        shape_order = order if order is not None else sim.shape_order

        def callback(s):
            self.apply(s.grid, s.dt, shape_order)

        sim.callbacks.append(callback)
