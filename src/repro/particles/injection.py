"""Plasma initialization: density profiles and macroparticle placement.

Profiles describe the *physical* electron (or ion) number density as a
function of position; :func:`inject_plasma` samples them with a fixed
number of particles per cell (ppc), assigning each macroparticle the weight
``n(x) V_cell / ppc`` so the deposited charge density reproduces the
profile for any ppc.

The profiles cover the paper's scenarios: uniform plasma (the scaling
benchmarks), a gas jet with ramps (LWFA), a solid slab (plasma mirror) and
the hybrid solid-gas target of the science case (Fig. 1b).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.constants import c
from repro.exceptions import ConfigurationError
from repro.particles.species import Species


class DensityProfile:
    """Base class: subclasses implement ``density(positions) -> n [1/m^3]``."""

    def density(self, positions: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, positions: np.ndarray) -> np.ndarray:
        return self.density(positions)

    def __add__(self, other: "DensityProfile") -> "DensityProfile":
        return _SumProfile(self, other)


class _SumProfile(DensityProfile):
    def __init__(self, a: DensityProfile, b: DensityProfile) -> None:
        self.a = a
        self.b = b

    def density(self, positions: np.ndarray) -> np.ndarray:
        return self.a.density(positions) + self.b.density(positions)


class UniformProfile(DensityProfile):
    """Constant density ``n0`` everywhere."""

    def __init__(self, n0: float) -> None:
        self.n0 = float(n0)

    def density(self, positions: np.ndarray) -> np.ndarray:
        return np.full(positions.shape[0], self.n0)


class SlabProfile(DensityProfile):
    """Density ``n0`` for ``lo <= x_axis < hi`` (the solid target),
    optionally with a linear pre-plasma ramp of length ``ramp`` on the
    upstream side."""

    def __init__(self, n0: float, lo: float, hi: float, axis: int = 0, ramp: float = 0.0) -> None:
        if hi <= lo:
            raise ConfigurationError("slab needs hi > lo")
        self.n0 = float(n0)
        self.lo = float(lo)
        self.hi = float(hi)
        self.axis = int(axis)
        self.ramp = float(ramp)

    def density(self, positions: np.ndarray) -> np.ndarray:
        x = positions[:, self.axis]
        n = np.where((x >= self.lo) & (x < self.hi), self.n0, 0.0)
        if self.ramp > 0.0:
            in_ramp = (x >= self.lo - self.ramp) & (x < self.lo)
            n = np.where(in_ramp, self.n0 * (x - (self.lo - self.ramp)) / self.ramp, n)
        return n


class BoxProfile(DensityProfile):
    """Density ``n0`` inside an axis-aligned box, zero outside.

    Models a target of finite transverse size (e.g. the solid plasma
    mirror, which must not extend into the refinement patch's absorbing
    layers).
    """

    def __init__(self, n0: float, lo: Sequence[float], hi: Sequence[float]) -> None:
        if len(lo) != len(hi) or any(h <= l for l, h in zip(lo, hi)):
            raise ConfigurationError("box profile needs hi > lo per axis")
        self.n0 = float(n0)
        self.lo = tuple(float(v) for v in lo)
        self.hi = tuple(float(v) for v in hi)

    def density(self, positions: np.ndarray) -> np.ndarray:
        inside = np.ones(positions.shape[0], dtype=bool)
        for d in range(min(positions.shape[1], len(self.lo))):
            inside &= (positions[:, d] >= self.lo[d]) & (positions[:, d] < self.hi[d])
        return np.where(inside, self.n0, 0.0)


class GasJetProfile(DensityProfile):
    """Longitudinal trapezoid (up-ramp, plateau, down-ramp) along ``axis``.

    The standard model of a supersonic gas jet used in LWFA experiments.
    """

    def __init__(
        self,
        n0: float,
        ramp_up: Tuple[float, float],
        plateau_end: float,
        ramp_down_end: float,
        axis: int = 0,
    ) -> None:
        self.n0 = float(n0)
        self.x0, self.x1 = float(ramp_up[0]), float(ramp_up[1])
        self.x2 = float(plateau_end)
        self.x3 = float(ramp_down_end)
        if not (self.x0 < self.x1 <= self.x2 < self.x3):
            raise ConfigurationError("gas jet breakpoints must be increasing")
        self.axis = int(axis)

    def density(self, positions: np.ndarray) -> np.ndarray:
        x = positions[:, self.axis]
        up = (x - self.x0) / (self.x1 - self.x0)
        down = (self.x3 - x) / (self.x3 - self.x2)
        n = np.minimum(np.minimum(up, 1.0), down)
        return self.n0 * np.clip(n, 0.0, 1.0)


class HybridTargetProfile(DensityProfile):
    """The paper's hybrid solid-gas target (Fig. 1b).

    A dense solid slab (the plasma mirror, ``n_solid`` in units of the
    physical density, typically tens of critical densities) with an
    underdense gas region of density ``n_gas`` in front of it, through
    which the laser first propagates and in which the reflected pulse
    drives the wakefield accelerator.
    """

    def __init__(
        self,
        n_solid: float,
        solid_lo: float,
        solid_hi: float,
        n_gas: float,
        gas_lo: float,
        gas_hi: float,
        axis: int = 0,
        gas_ramp: float = 0.0,
    ) -> None:
        self.solid = SlabProfile(n_solid, solid_lo, solid_hi, axis)
        self.gas = SlabProfile(n_gas, gas_lo, gas_hi, axis, ramp=gas_ramp)

    def density(self, positions: np.ndarray) -> np.ndarray:
        return self.solid.density(positions) + self.gas.density(positions)


def _ppc_offsets(ppc: Sequence[int], ndim: int) -> np.ndarray:
    """Regular sub-cell offsets in [0,1)^ndim for a ppc tuple."""
    axes = [
        (np.arange(ppc[d]) + 0.5) / ppc[d] for d in range(ndim)
    ]
    grids = np.meshgrid(*axes, indexing="ij")
    return np.stack([g.ravel() for g in grids], axis=1)


def inject_plasma(
    species: Species,
    grid,
    profile: DensityProfile,
    ppc,
    lo: Optional[Sequence[float]] = None,
    hi: Optional[Sequence[float]] = None,
    temperature_uth: float = 0.0,
    drift_u: Optional[Sequence[float]] = None,
    rng: Optional[np.random.Generator] = None,
    jitter: float = 0.0,
    density_cutoff: float = 0.0,
) -> int:
    """Fill ``[lo, hi)`` of ``grid`` with macroparticles sampling ``profile``.

    Parameters
    ----------
    ppc:
        Particles per cell: an int (same along every axis) or a per-axis
        tuple like the paper's ``3 x 2 x 3``.
    temperature_uth:
        Thermal momentum spread (std of each u component, in gamma*beta).
    drift_u:
        Mean normalized momentum added to every particle.
    jitter:
        Amplitude (in cell units, 0..1) of random displacement added to
        the regular sub-cell pattern.
    density_cutoff:
        Cells whose sampled density is <= this are skipped entirely.

    Returns the number of macroparticles injected.
    """
    ndim = grid.ndim
    if isinstance(ppc, int):
        ppc = (ppc,) * ndim
    if len(ppc) != ndim:
        raise ConfigurationError(f"ppc must have {ndim} entries")
    lo = tuple(grid.lo if lo is None else lo)
    hi = tuple(grid.hi if hi is None else hi)
    rng = rng if rng is not None else np.random.default_rng(0)

    # cell index ranges covered by [lo, hi)
    i_lo = [int(np.floor((lo[d] - grid.lo[d]) / grid.dx[d] + 1e-9)) for d in range(ndim)]
    i_hi = [int(np.ceil((hi[d] - grid.lo[d]) / grid.dx[d] - 1e-9)) for d in range(ndim)]
    i_lo = [max(0, v) for v in i_lo]
    i_hi = [min(grid.n_cells[d], i_hi[d]) for d in range(ndim)]
    if any(a >= b for a, b in zip(i_lo, i_hi)):
        return 0

    cell_axes = [np.arange(i_lo[d], i_hi[d]) for d in range(ndim)]
    mesh = np.meshgrid(*cell_axes, indexing="ij")
    cells = np.stack([m.ravel() for m in mesh], axis=1)  # (n_cells, ndim)

    offsets = _ppc_offsets(ppc, ndim)  # (n_ppc, ndim)
    n_ppc = offsets.shape[0]
    dx = np.array(grid.dx)
    origin = np.array(grid.lo)

    # positions: cell corner + sub-cell offset (+ jitter), one row per particle
    pos = (
        origin[None, None, :]
        + (cells[:, None, :] + offsets[None, :, :]) * dx[None, None, :]
    )
    if jitter > 0.0:
        pos = pos + (rng.random(pos.shape) - 0.5) * jitter * dx[None, None, :] / np.array(ppc)
    pos = pos.reshape(-1, ndim)

    # clip to the requested sub-region (cells straddling the edge)
    inside = np.ones(pos.shape[0], dtype=bool)
    for d in range(ndim):
        inside &= (pos[:, d] >= lo[d]) & (pos[:, d] < hi[d])
    pos = pos[inside]
    if pos.shape[0] == 0:
        return 0

    dens = profile.density(pos)
    keep = dens > density_cutoff
    pos = pos[keep]
    dens = dens[keep]
    if pos.shape[0] == 0:
        return 0

    cell_volume = float(np.prod(grid.dx))
    weights = dens * cell_volume / n_ppc

    momenta = np.zeros((pos.shape[0], 3), dtype=np.float64)
    if temperature_uth > 0.0:
        momenta += rng.normal(0.0, temperature_uth, size=momenta.shape)
    if drift_u is not None:
        momenta += np.asarray(drift_u, dtype=np.float64)[None, :]

    species.add_particles(pos, momenta, weights)
    return pos.shape[0]
