"""The compiled kernel tier: numba ``@njit`` or generated-C + ctypes.

The paper's headline FOM comes from hand-tuned gather/deposit inner
loops; the WarpX GPU port (arXiv:2101.12149) showed that the winning
recipe is *same kernel semantics, new backend behind a dispatch seam,
cross-validated against the reference*.  This module is that recipe for
the Python reproduction: a fourth registry tier (``kernels="compiled"``)
whose per-particle inner loops run as native code.

Backend selection (probed once at import, re-runnable for tests):

1. **numba** — the scalar twins below are ``@njit``-compiled when numba
   is importable.  The twins are plain Python functions first, so their
   logic is unit-testable even on machines without numba.
2. **generated C + ctypes** — when numba is missing but a C compiler
   (``cc``/``gcc``/``clang``) is on ``PATH``, a small C translation of
   the same kernels is generated, compiled into a cached shared library
   keyed by source hash, and driven through ctypes.
3. **graceful skip** — with neither available (or with
   ``REPRO_COMPILED_BACKEND=none``), the tier is *not* registered; the
   registry reports why (:func:`repro.particles.kernels.
   kernel_tier_status`) and dispatch falls through to ``tiled``.

Both backends emit a float64 and a float32 variant of every kernel
(the C source is instantiated twice over a ``real`` typedef; numba
specializes per dtype), so the mixed-precision policy — SP fields +
deposition, DP particle quantities and stencil arithmetic — costs no
extra code.  Field reads/accumulates happen in the grid dtype; shape
weights and coordinates stay double, matching the paper's Table III
"MP mode" (SP fields, DP particle ops).

Numerics contract: on float64 grids the compiled gather and deposits
match the ``vectorized`` kernels to machine precision (identical weight
formulas, per-particle accumulation in the same stencil order), and the
float32 variants stay within the documented error budget of
:data:`repro.particles.kernels.FLOAT32_ERROR_BUDGET` — both enforced by
``validate_kernel_set`` and the ``check_kernel_fastpath.py`` CI gate.
"""

from __future__ import annotations

import ctypes
import hashlib
import math
import os
import shutil
import subprocess
import tempfile
from typing import Callable, Optional, Tuple

import numpy as np

from repro.analysis.sanitize import Sanitizer
from repro.exceptions import ConfigurationError
from repro.grid.yee import FIELD_COMPONENTS, STAGGER, YeeGrid
from repro.particles.deposit import deposit_current_esirkepov_tiled, esirkepov_window
from repro.particles.shapes import shape_weights

#: widest Esirkepov window the compiled kernels handle on-stack; larger
#: displacements (deep-MR subcycling) fall back to the numpy tiled kernel
KMAX = 8

#: environment override: "numba", "c", "auto" (default) or "none"
BACKEND_ENV = "REPRO_COMPILED_BACKEND"


# =========================================================================
# scalar twins: the kernel logic, written once in plain Python
# -------------------------------------------------------------------------
# These are the functions numba compiles.  They are also the executable
# specification of the generated C below — the tests drive them directly
# (interpreted) on small workloads, so the code a numba machine JITs is
# verified even on machines without numba.  Layouts are flat and
# njit-friendly: coords/x0/x1 are (ndim, n) float64, fields are raveled
# views, strides are element strides.
# =========================================================================

def _bspline_scalar(order: int, s: float) -> float:
    s = abs(s)
    if order == 1:
        return 1.0 - s if s < 1.0 else 0.0
    if order == 2:
        if s <= 0.5:
            return 0.75 - s * s
        if s < 1.5:
            t = 1.5 - s
            return 0.5 * t * t
        return 0.0
    if s <= 1.0:
        return (4.0 - 6.0 * s * s + 3.0 * s * s * s) / 6.0
    if s < 2.0:
        t = 2.0 - s
        return t * t * t / 6.0
    return 0.0


def _shape_weights_scalar(x: float, order: int, w: np.ndarray) -> int:
    """Scalar :func:`repro.particles.shapes.shape_weights`: fill ``w``,
    return the stencil base index (identical formulas, double math)."""
    if order == 1:
        fl = math.floor(x)
        f = x - fl
        w[0] = 1.0 - f
        w[1] = f
        return int(fl)
    if order == 2:
        nearest = math.floor(x + 0.5)
        d = x - nearest
        w[0] = 0.5 * (0.5 - d) * (0.5 - d)
        w[1] = 0.75 - d * d
        w[2] = 0.5 * (0.5 + d) * (0.5 + d)
        return int(nearest) - 1
    cell = math.floor(x)
    f = x - cell
    omf = 1.0 - f
    w[0] = omf * omf * omf / 6.0
    w[1] = (3.0 * f * f * f - 6.0 * f * f + 4.0) / 6.0
    w[2] = (-3.0 * f * f * f + 3.0 * f * f + 3.0 * f + 1.0) / 6.0
    w[3] = f * f * f / 6.0
    return int(cell) - 1


def _gather_comp_py(  # repro: allow(PIC007)
    field: np.ndarray,
    strides: np.ndarray,
    ndim: int,
    order: int,
    coords: np.ndarray,
    out: np.ndarray,
) -> None:
    """Gather one component at (ndim, n) staggered lattice ``coords``."""
    n = coords.shape[1]
    K = order + 1
    i0 = np.zeros(3, dtype=np.int64)
    w = np.zeros((3, 4), dtype=np.float64)
    for p in range(n):
        for d in range(ndim):
            i0[d] = _shape_weights_scalar(coords[d, p], order, w[d])
        acc = 0.0
        if ndim == 3:
            for a in range(K):
                base_a = (i0[0] + a) * strides[0]
                for b in range(K):
                    base_b = base_a + (i0[1] + b) * strides[1]
                    wab = w[0, a] * w[1, b]
                    for cc in range(K):
                        acc += wab * w[2, cc] * field[
                            base_b + (i0[2] + cc) * strides[2]
                        ]
        elif ndim == 2:
            for a in range(K):
                base_a = (i0[0] + a) * strides[0]
                for b in range(K):
                    acc += w[0, a] * w[1, b] * field[
                        base_a + (i0[1] + b) * strides[1]
                    ]
        else:
            for a in range(K):
                acc += w[0, a] * field[(i0[0] + a) * strides[0]]
        out[p] = acc


def _deposit_nodal_py(  # repro: allow(PIC007)
    field: np.ndarray,
    strides: np.ndarray,
    ndim: int,
    order: int,
    coords: np.ndarray,
    vals: np.ndarray,
) -> None:
    """Scatter per-particle ``vals`` through an order-``order`` stencil."""
    n = coords.shape[1]
    K = order + 1
    i0 = np.zeros(3, dtype=np.int64)
    w = np.zeros((3, 4), dtype=np.float64)
    for p in range(n):
        for d in range(ndim):
            i0[d] = _shape_weights_scalar(coords[d, p], order, w[d])
        v = vals[p]
        if ndim == 3:
            for a in range(K):
                base_a = (i0[0] + a) * strides[0]
                for b in range(K):
                    base_b = base_a + (i0[1] + b) * strides[1]
                    vab = v * w[0, a] * w[1, b]
                    for cc in range(K):
                        field[base_b + (i0[2] + cc) * strides[2]] += (
                            vab * w[2, cc]
                        )
        elif ndim == 2:
            for a in range(K):
                base_a = (i0[0] + a) * strides[0]
                va = v * w[0, a]
                for b in range(K):
                    field[base_a + (i0[1] + b) * strides[1]] += va * w[1, b]
        else:
            for a in range(K):
                field[(i0[0] + a) * strides[0]] += v * w[0, a]


def _deposit_esirkepov_py(  # repro: allow(PIC007)
    jx: np.ndarray,
    jy: np.ndarray,
    jz: np.ndarray,
    strides: np.ndarray,
    ndim: int,
    order: int,
    K: int,
    tight: int,
    x0: np.ndarray,
    x1: np.ndarray,
    vel: np.ndarray,
    qw: np.ndarray,
    dt: float,
    dx: np.ndarray,
) -> None:
    """Per-particle Esirkepov deposition over a K-point window.

    Identical decomposition to :func:`repro.particles.deposit.
    _deposit_current_esirkepov_impl` (including the tight odd-order
    window re-centering), with the vectorized cumsums unrolled into
    per-particle running sums.
    """
    n = qw.shape[0]
    half = (K - 1) // 2
    base = np.zeros(3, dtype=np.int64)
    s0 = np.zeros((3, KMAX), dtype=np.float64)
    ds = np.zeros((3, KMAX), dtype=np.float64)
    t_a = np.zeros((KMAX, KMAX), dtype=np.float64)
    t_b = np.zeros((KMAX, KMAX), dtype=np.float64)
    t_c = np.zeros((KMAX, KMAX), dtype=np.float64)
    for p in range(n):
        for d in range(ndim):
            a = x0[d, p]
            b = x1[d, p]
            xm = 0.5 * (a + b)
            if tight != 0 and order % 2 == 1:
                bb = math.floor(xm + 0.5)
            else:
                bb = math.floor(xm)
            bi = int(bb) - half
            base[d] = bi
            for k in range(K):
                pt = float(bi + k)
                s0v = _bspline_scalar(order, pt - a)
                s0[d, k] = s0v
                ds[d, k] = _bspline_scalar(order, pt - b) - s0v
        q = qw[p]
        if ndim == 3:
            cx = -q / (dt * dx[1] * dx[2])
            cy = -q / (dt * dx[0] * dx[2])
            cz = -q / (dt * dx[0] * dx[1])
            for j in range(K):
                for k in range(K):
                    t_a[j, k] = (
                        s0[1, j] * s0[2, k]
                        + 0.5 * ds[1, j] * s0[2, k]
                        + 0.5 * s0[1, j] * ds[2, k]
                        + ds[1, j] * ds[2, k] / 3.0
                    )
            for i in range(K):
                for k in range(K):
                    t_b[i, k] = (
                        s0[0, i] * s0[2, k]
                        + 0.5 * ds[0, i] * s0[2, k]
                        + 0.5 * s0[0, i] * ds[2, k]
                        + ds[0, i] * ds[2, k] / 3.0
                    )
            for i in range(K):
                for j in range(K):
                    t_c[i, j] = (
                        s0[0, i] * s0[1, j]
                        + 0.5 * ds[0, i] * s0[1, j]
                        + 0.5 * s0[0, i] * ds[1, j]
                        + ds[0, i] * ds[1, j] / 3.0
                    )
            for j in range(K):
                for k in range(K):
                    addr_jk = (base[1] + j) * strides[1] + (
                        base[2] + k
                    ) * strides[2]
                    acc = 0.0
                    for i in range(K):
                        acc += ds[0, i] * t_a[j, k]
                        jx[(base[0] + i) * strides[0] + addr_jk] += cx * acc
            for i in range(K):
                for k in range(K):
                    addr_ik = (base[0] + i) * strides[0] + (
                        base[2] + k
                    ) * strides[2]
                    acc = 0.0
                    for j in range(K):
                        acc += ds[1, j] * t_b[i, k]
                        jy[addr_ik + (base[1] + j) * strides[1]] += cy * acc
            for i in range(K):
                for j in range(K):
                    addr_ij = (base[0] + i) * strides[0] + (
                        base[1] + j
                    ) * strides[1]
                    acc = 0.0
                    for k in range(K):
                        acc += ds[2, k] * t_c[i, j]
                        jz[addr_ij + (base[2] + k) * strides[2]] += cz * acc
        elif ndim == 2:
            cx = -q / (dt * dx[1])
            cy = -q / (dt * dx[0])
            cz = q * vel[p, 2] / (dx[0] * dx[1])
            for j in range(K):
                addr_j = (base[1] + j) * strides[1]
                ty = s0[1, j] + 0.5 * ds[1, j]
                acc = 0.0
                for i in range(K):
                    acc += ds[0, i] * ty
                    jx[(base[0] + i) * strides[0] + addr_j] += cx * acc
            for i in range(K):
                addr_i = (base[0] + i) * strides[0]
                tx = s0[0, i] + 0.5 * ds[0, i]
                acc = 0.0
                for j in range(K):
                    acc += ds[1, j] * tx
                    jy[addr_i + (base[1] + j) * strides[1]] += cy * acc
            for i in range(K):
                addr_i = (base[0] + i) * strides[0]
                for j in range(K):
                    wz = (
                        s0[0, i] * s0[1, j]
                        + 0.5 * ds[0, i] * s0[1, j]
                        + 0.5 * s0[0, i] * ds[1, j]
                        + ds[0, i] * ds[1, j] / 3.0
                    )
                    jz[addr_i + (base[1] + j) * strides[1]] += cz * wz
        else:
            cx = -q / dt
            cy = q * vel[p, 1] / dx[0]
            cz = q * vel[p, 2] / dx[0]
            acc = 0.0
            for i in range(K):
                addr = (base[0] + i) * strides[0]
                acc += ds[0, i]
                jx[addr] += cx * acc
                tx = s0[0, i] + 0.5 * ds[0, i]
                jy[addr] += cy * tx
                jz[addr] += cz * tx


# =========================================================================
# generated C: the same kernels over a `real` typedef, compiled once
# =========================================================================

_C_HEADER = r"""
#include <stdint.h>
#include <math.h>

typedef int64_t i64;

#define REPRO_KMAX 8

static double repro_bspline(int order, double s) {
    s = fabs(s);
    if (order == 1) return s < 1.0 ? 1.0 - s : 0.0;
    if (order == 2) {
        if (s <= 0.5) return 0.75 - s * s;
        if (s < 1.5)  { double t = 1.5 - s; return 0.5 * t * t; }
        return 0.0;
    }
    if (s <= 1.0) return (4.0 - 6.0 * s * s + 3.0 * s * s * s) / 6.0;
    if (s < 2.0)  { double t = 2.0 - s; return t * t * t / 6.0; }
    return 0.0;
}

static i64 repro_shape_weights(double x, int order, double *w) {
    if (order == 1) {
        double fl = floor(x);
        double f = x - fl;
        w[0] = 1.0 - f; w[1] = f;
        return (i64)fl;
    }
    if (order == 2) {
        double nearest = floor(x + 0.5);
        double d = x - nearest;
        w[0] = 0.5 * (0.5 - d) * (0.5 - d);
        w[1] = 0.75 - d * d;
        w[2] = 0.5 * (0.5 + d) * (0.5 + d);
        return (i64)nearest - 1;
    }
    {
        double cell = floor(x);
        double f = x - cell;
        double omf = 1.0 - f;
        w[0] = omf * omf * omf / 6.0;
        w[1] = (3.0 * f * f * f - 6.0 * f * f + 4.0) / 6.0;
        w[2] = (-3.0 * f * f * f + 3.0 * f * f + 3.0 * f + 1.0) / 6.0;
        w[3] = f * f * f / 6.0;
        return (i64)cell - 1;
    }
}
"""

_C_KERNELS = r"""
void gather_comp_@SUF@(const @REAL@ *field, const i64 *strides, int ndim,
                       int order, i64 n, const double *coords, double *out) {
    int K = order + 1;
    for (i64 p = 0; p < n; ++p) {
        i64 i0[3] = {0, 0, 0};
        double w[3][4];
        for (int d = 0; d < ndim; ++d)
            i0[d] = repro_shape_weights(coords[(i64)d * n + p], order, w[d]);
        double acc = 0.0;
        if (ndim == 3) {
            for (int a = 0; a < K; ++a) {
                i64 base_a = (i0[0] + a) * strides[0];
                for (int b = 0; b < K; ++b) {
                    i64 base_b = base_a + (i0[1] + b) * strides[1];
                    double wab = w[0][a] * w[1][b];
                    for (int c = 0; c < K; ++c)
                        acc += wab * w[2][c]
                             * (double)field[base_b + (i0[2] + c) * strides[2]];
                }
            }
        } else if (ndim == 2) {
            for (int a = 0; a < K; ++a) {
                i64 base_a = (i0[0] + a) * strides[0];
                for (int b = 0; b < K; ++b)
                    acc += w[0][a] * w[1][b]
                         * (double)field[base_a + (i0[1] + b) * strides[1]];
            }
        } else {
            for (int a = 0; a < K; ++a)
                acc += w[0][a] * (double)field[(i0[0] + a) * strides[0]];
        }
        out[p] = acc;
    }
}

void deposit_nodal_@SUF@(@REAL@ *field, const i64 *strides, int ndim,
                         int order, i64 n, const double *coords,
                         const double *vals) {
    int K = order + 1;
    for (i64 p = 0; p < n; ++p) {
        i64 i0[3] = {0, 0, 0};
        double w[3][4];
        for (int d = 0; d < ndim; ++d)
            i0[d] = repro_shape_weights(coords[(i64)d * n + p], order, w[d]);
        double v = vals[p];
        if (ndim == 3) {
            for (int a = 0; a < K; ++a) {
                i64 base_a = (i0[0] + a) * strides[0];
                for (int b = 0; b < K; ++b) {
                    i64 base_b = base_a + (i0[1] + b) * strides[1];
                    double vab = v * w[0][a] * w[1][b];
                    for (int c = 0; c < K; ++c)
                        field[base_b + (i0[2] + c) * strides[2]]
                            += (@REAL@)(vab * w[2][c]);
                }
            }
        } else if (ndim == 2) {
            for (int a = 0; a < K; ++a) {
                i64 base_a = (i0[0] + a) * strides[0];
                double va = v * w[0][a];
                for (int b = 0; b < K; ++b)
                    field[base_a + (i0[1] + b) * strides[1]]
                        += (@REAL@)(va * w[1][b]);
            }
        } else {
            for (int a = 0; a < K; ++a)
                field[(i0[0] + a) * strides[0]] += (@REAL@)(v * w[0][a]);
        }
    }
}

void deposit_esirkepov_@SUF@(@REAL@ *jx, @REAL@ *jy, @REAL@ *jz,
    const i64 *strides, int ndim, int order, int K, int tight, i64 n,
    const double *x0, const double *x1, const double *vel,
    const double *qw, double dt, const double *dx) {
    i64 base[3] = {0, 0, 0};
    double s0[3][REPRO_KMAX], ds[3][REPRO_KMAX];
    double t_a[REPRO_KMAX][REPRO_KMAX];
    double t_b[REPRO_KMAX][REPRO_KMAX];
    double t_c[REPRO_KMAX][REPRO_KMAX];
    int half = (K - 1) / 2;
    for (i64 p = 0; p < n; ++p) {
        for (int d = 0; d < ndim; ++d) {
            double a = x0[(i64)d * n + p], b = x1[(i64)d * n + p];
            double xm = 0.5 * (a + b);
            double bb = (tight && (order & 1)) ? floor(xm + 0.5) : floor(xm);
            i64 bi = (i64)bb - half;
            base[d] = bi;
            for (int k = 0; k < K; ++k) {
                double pt = (double)(bi + k);
                double s0v = repro_bspline(order, pt - a);
                s0[d][k] = s0v;
                ds[d][k] = repro_bspline(order, pt - b) - s0v;
            }
        }
        double q = qw[p];
        if (ndim == 3) {
            double cx = -q / (dt * dx[1] * dx[2]);
            double cy = -q / (dt * dx[0] * dx[2]);
            double cz = -q / (dt * dx[0] * dx[1]);
            for (int j = 0; j < K; ++j)
                for (int k = 0; k < K; ++k)
                    t_a[j][k] = s0[1][j] * s0[2][k]
                              + 0.5 * ds[1][j] * s0[2][k]
                              + 0.5 * s0[1][j] * ds[2][k]
                              + ds[1][j] * ds[2][k] / 3.0;
            for (int i = 0; i < K; ++i)
                for (int k = 0; k < K; ++k)
                    t_b[i][k] = s0[0][i] * s0[2][k]
                              + 0.5 * ds[0][i] * s0[2][k]
                              + 0.5 * s0[0][i] * ds[2][k]
                              + ds[0][i] * ds[2][k] / 3.0;
            for (int i = 0; i < K; ++i)
                for (int j = 0; j < K; ++j)
                    t_c[i][j] = s0[0][i] * s0[1][j]
                              + 0.5 * ds[0][i] * s0[1][j]
                              + 0.5 * s0[0][i] * ds[1][j]
                              + ds[0][i] * ds[1][j] / 3.0;
            for (int j = 0; j < K; ++j)
                for (int k = 0; k < K; ++k) {
                    i64 addr_jk = (base[1] + j) * strides[1]
                                + (base[2] + k) * strides[2];
                    double acc = 0.0;
                    for (int i = 0; i < K; ++i) {
                        acc += ds[0][i] * t_a[j][k];
                        jx[(base[0] + i) * strides[0] + addr_jk]
                            += (@REAL@)(cx * acc);
                    }
                }
            for (int i = 0; i < K; ++i)
                for (int k = 0; k < K; ++k) {
                    i64 addr_ik = (base[0] + i) * strides[0]
                                + (base[2] + k) * strides[2];
                    double acc = 0.0;
                    for (int j = 0; j < K; ++j) {
                        acc += ds[1][j] * t_b[i][k];
                        jy[addr_ik + (base[1] + j) * strides[1]]
                            += (@REAL@)(cy * acc);
                    }
                }
            for (int i = 0; i < K; ++i)
                for (int j = 0; j < K; ++j) {
                    i64 addr_ij = (base[0] + i) * strides[0]
                                + (base[1] + j) * strides[1];
                    double acc = 0.0;
                    for (int k = 0; k < K; ++k) {
                        acc += ds[2][k] * t_c[i][j];
                        jz[addr_ij + (base[2] + k) * strides[2]]
                            += (@REAL@)(cz * acc);
                    }
                }
        } else if (ndim == 2) {
            double cx = -q / (dt * dx[1]);
            double cy = -q / (dt * dx[0]);
            double cz = q * vel[p * 3 + 2] / (dx[0] * dx[1]);
            for (int j = 0; j < K; ++j) {
                i64 addr_j = (base[1] + j) * strides[1];
                double ty = s0[1][j] + 0.5 * ds[1][j];
                double acc = 0.0;
                for (int i = 0; i < K; ++i) {
                    acc += ds[0][i] * ty;
                    jx[(base[0] + i) * strides[0] + addr_j]
                        += (@REAL@)(cx * acc);
                }
            }
            for (int i = 0; i < K; ++i) {
                i64 addr_i = (base[0] + i) * strides[0];
                double tx = s0[0][i] + 0.5 * ds[0][i];
                double acc = 0.0;
                for (int j = 0; j < K; ++j) {
                    acc += ds[1][j] * tx;
                    jy[addr_i + (base[1] + j) * strides[1]]
                        += (@REAL@)(cy * acc);
                }
            }
            for (int i = 0; i < K; ++i) {
                i64 addr_i = (base[0] + i) * strides[0];
                for (int j = 0; j < K; ++j) {
                    double wz = s0[0][i] * s0[1][j]
                              + 0.5 * ds[0][i] * s0[1][j]
                              + 0.5 * s0[0][i] * ds[1][j]
                              + ds[0][i] * ds[1][j] / 3.0;
                    jz[addr_i + (base[1] + j) * strides[1]]
                        += (@REAL@)(cz * wz);
                }
            }
        } else {
            double cx = -q / dt;
            double cy = q * vel[p * 3 + 1] / dx[0];
            double cz = q * vel[p * 3 + 2] / dx[0];
            double acc = 0.0;
            for (int i = 0; i < K; ++i) {
                i64 addr = (base[0] + i) * strides[0];
                acc += ds[0][i];
                jx[addr] += (@REAL@)(cx * acc);
                double tx = s0[0][i] + 0.5 * ds[0][i];
                jy[addr] += (@REAL@)(cy * tx);
                jz[addr] += (@REAL@)(cz * tx);
            }
        }
    }
}
"""


def c_source() -> str:
    """The full generated C translation unit (double + float variants)."""
    parts = [_C_HEADER]
    for real, suf in (("double", "f64"), ("float", "f32")):
        parts.append(_C_KERNELS.replace("@REAL@", real).replace("@SUF@", suf))
    return "".join(parts)


def find_c_compiler() -> Optional[str]:
    """Path of the first of cc/gcc/clang on PATH, or None."""
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _cache_dir() -> str:
    uid = getattr(os, "getuid", lambda: 0)()
    return os.path.join(tempfile.gettempdir(), f"repro-kernels-{uid}")


def compile_c_library(compiler: str) -> ctypes.CDLL:
    """Compile (or reuse a cached build of) the generated kernels."""
    src = c_source()
    digest = hashlib.sha256(src.encode("utf8")).hexdigest()[:16]
    cache = _cache_dir()
    os.makedirs(cache, exist_ok=True)
    lib_path = os.path.join(cache, f"kernels-{digest}.so")
    if not os.path.exists(lib_path):
        src_path = os.path.join(cache, f"kernels-{digest}.c")
        with open(src_path, "w", encoding="utf8") as fh:
            fh.write(src)
        tmp_path = f"{lib_path}.{os.getpid()}.tmp"
        cmd = [compiler, "-O3", "-fPIC", "-shared", "-o", tmp_path, src_path]
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
        if proc.returncode != 0:
            raise ConfigurationError(
                f"C kernel build failed ({' '.join(cmd)}): "
                f"{proc.stderr.strip()[:500]}"
            )
        os.replace(tmp_path, lib_path)  # atomic vs concurrent builders
    return ctypes.CDLL(lib_path)


class CBackend:
    """ctypes driver of the generated-C kernels (f64 + f32 symbols)."""

    name = "c"

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._gather = {}
        self._nodal = {}
        self._esirkepov = {}
        vp, ci, c64 = ctypes.c_void_p, ctypes.c_int, ctypes.c_int64
        for suf, itemsize in (("f64", 8), ("f32", 4)):
            g = getattr(lib, f"gather_comp_{suf}")
            g.argtypes = [vp, vp, ci, ci, c64, vp, vp]
            g.restype = None
            self._gather[itemsize] = g
            d = getattr(lib, f"deposit_nodal_{suf}")
            d.argtypes = [vp, vp, ci, ci, c64, vp, vp]
            d.restype = None
            self._nodal[itemsize] = d
            e = getattr(lib, f"deposit_esirkepov_{suf}")
            e.argtypes = [vp, vp, vp, vp, ci, ci, ci, ci, c64, vp, vp, vp,
                          vp, ctypes.c_double, vp]
            e.restype = None
            self._esirkepov[itemsize] = e

    @staticmethod
    def _p(arr: np.ndarray) -> ctypes.c_void_p:
        return arr.ctypes.data_as(ctypes.c_void_p)

    def gather_comp(self, field, strides, ndim, order, coords, out) -> None:
        fn = self._gather[field.dtype.itemsize]
        fn(self._p(field), self._p(strides), ndim, order,
           coords.shape[1], self._p(coords), self._p(out))

    def deposit_nodal(self, field, strides, ndim, order, coords, vals) -> None:
        fn = self._nodal[field.dtype.itemsize]
        fn(self._p(field), self._p(strides), ndim, order,
           coords.shape[1], self._p(coords), self._p(vals))

    def deposit_esirkepov(
        self, jx, jy, jz, strides, ndim, order, K, tight, x0, x1, vel, qw,
        dt, dx,
    ) -> None:
        fn = self._esirkepov[jx.dtype.itemsize]
        fn(self._p(jx), self._p(jy), self._p(jz), self._p(strides),
           ndim, order, K, int(tight), qw.shape[0], self._p(x0),
           self._p(x1), self._p(vel), self._p(qw), float(dt), self._p(dx))


class NumbaBackend:
    """``@njit``-compiled scalar twins behind the same driver interface."""

    name = "numba"

    def __init__(self, gather_fn, nodal_fn, esirkepov_fn) -> None:
        self._gather_fn = gather_fn
        self._nodal_fn = nodal_fn
        self._esirkepov_fn = esirkepov_fn

    def gather_comp(self, field, strides, ndim, order, coords, out) -> None:
        self._gather_fn(field.ravel(), strides, ndim, order, coords, out)

    def deposit_nodal(self, field, strides, ndim, order, coords, vals) -> None:
        self._nodal_fn(field.ravel(), strides, ndim, order, coords, vals)

    def deposit_esirkepov(
        self, jx, jy, jz, strides, ndim, order, K, tight, x0, x1, vel, qw,
        dt, dx,
    ) -> None:
        # fields are C-contiguous so ravel() is a writable view
        self._esirkepov_fn(
            jx.ravel(), jy.ravel(), jz.ravel(), strides, ndim, order, K,
            int(tight), x0, x1, vel, qw, float(dt), dx,
        )


class PythonBackend(NumbaBackend):
    """The un-jitted twins — far too slow to register as a tier, but the
    exact logic numba compiles; used by tests to validate that logic."""

    name = "python"

    def __init__(self) -> None:
        super().__init__(_gather_comp_py, _deposit_nodal_py,
                         _deposit_esirkepov_py)


def _import_numba():
    try:
        import numba  # type: ignore
    except Exception:
        return None
    return numba


def build_numba_backend() -> Tuple[Optional[NumbaBackend], str]:
    """(backend, detail): ``@njit`` the scalar twins if numba imports."""
    numba = _import_numba()
    if numba is None:
        return None, "numba not importable"
    try:
        njit = numba.njit(cache=False, fastmath=False, nogil=True)
        # the twins call the scalar helpers through module globals, so
        # the helpers must be jitted first (numba resolves globals at
        # first compile)
        global _bspline_scalar, _shape_weights_scalar
        if not hasattr(_bspline_scalar, "py_func"):
            _bspline_scalar = njit(_bspline_scalar)
            _shape_weights_scalar = njit(_shape_weights_scalar)
        backend = NumbaBackend(
            njit(_gather_comp_py), njit(_deposit_nodal_py),
            njit(_deposit_esirkepov_py),
        )
    except Exception as exc:  # pragma: no cover - depends on numba install
        return None, f"numba backend failed to build: {exc}"
    return backend, f"numba {getattr(numba, '__version__', '?')}"


def build_c_backend() -> Tuple[Optional[CBackend], str]:
    """(backend, detail): compile the generated C if a compiler exists."""
    compiler = find_c_compiler()
    if compiler is None:
        return None, "no C compiler (cc/gcc/clang) on PATH"
    try:
        backend = CBackend(compile_c_library(compiler))
    except Exception as exc:
        return None, f"C backend build failed: {exc}"
    return backend, f"generated C via {os.path.basename(compiler)}"


# =========================================================================
# the compiled KernelSet: python wrappers around a backend
# =========================================================================

def _element_strides(arr: np.ndarray) -> np.ndarray:
    return np.array(
        [s // arr.itemsize for s in arr.strides], dtype=np.int64
    )


def _nodal_coords_matrix(grid: YeeGrid, positions: np.ndarray) -> np.ndarray:  # repro: allow(PIC007)
    """(ndim, n) float64 nodal lattice coordinates, C-contiguous."""
    ndim = grid.ndim
    coords = np.empty((ndim, positions.shape[0]), dtype=np.float64)
    for d in range(ndim):
        coords[d] = (positions[:, d] - grid.lo[d]) / grid.dx[d] + grid.guards
    return coords


def _staggered(nodal: np.ndarray, stagger) -> np.ndarray:  # repro: allow(PIC007)
    ndim = nodal.shape[0]
    shift = np.array(stagger[:ndim], dtype=np.float64)
    if not shift.any():
        return nodal
    return np.ascontiguousarray(nodal - 0.5 * shift[:, None])


def make_compiled_kernel_set(backend):
    """Bundle ``backend`` into a registry-ready compiled KernelSet."""
    from repro.particles.kernels import KernelSet

    def gather(grid: YeeGrid, positions: np.ndarray, order: int = 1):  # repro: allow(PIC007)
        ndim = grid.ndim
        n = positions.shape[0]
        san = Sanitizer.from_env()
        sample = grid.fields["Ex"]
        strides = _element_strides(sample)
        nodal = _nodal_coords_matrix(grid, positions)
        # gather output is always double — particle-side quantities stay
        # DP under the mixed-precision policy even when the field storage
        # being read is float32
        e_out = np.empty((n, 3), dtype=np.float64)
        b_out = np.empty((n, 3), dtype=np.float64)
        buf = np.empty(n, dtype=np.float64)
        cache = {}
        for i, comp in enumerate(FIELD_COMPONENTS):
            key = STAGGER[comp][:ndim]
            coords = cache.get(key)
            if coords is None:
                coords = _staggered(nodal, key)
                cache[key] = coords
            if san is not None:
                idx0 = [
                    shape_weights(coords[d], order)[0] for d in range(ndim)
                ]
                san.check_stencil_bounds(
                    "gather_fields_compiled", comp, idx0, order + 1,
                    sample.shape,
                )
            backend.gather_comp(
                grid.fields[comp], strides, ndim, order, coords, buf
            )
            out = e_out if i < 3 else b_out
            out[:, i % 3] = buf
        return e_out, b_out

    def _deposit_nodal(grid, positions, vals, order, target, kernel):  # repro: allow(PIC007)
        arr = grid.fields[target]
        ndim = grid.ndim
        coords = _staggered(
            _nodal_coords_matrix(grid, positions), STAGGER[target]
        )
        san = Sanitizer.from_env()
        if san is not None:
            idx0 = [shape_weights(coords[d], order)[0] for d in range(ndim)]
            san.check_stencil_bounds(kernel, target, idx0, order + 1, arr.shape)
        backend.deposit_nodal(
            arr, _element_strides(arr), ndim, order, coords,
            np.ascontiguousarray(vals, dtype=np.float64),
        )

    def deposit_charge(
        grid: YeeGrid,
        positions: np.ndarray,
        weights: np.ndarray,
        charge: float,
        order: int = 1,
        target: str = "rho",
    ) -> None:
        qw = charge * weights / float(np.prod(grid.dx))
        _deposit_nodal(
            grid, positions, qw, order, target, "deposit_charge_compiled"
        )

    def deposit_current_direct(
        grid: YeeGrid,
        positions_mid: np.ndarray,
        velocities: np.ndarray,
        weights: np.ndarray,
        charge: float,
        order: int = 1,
    ) -> None:
        cell_volume = float(np.prod(grid.dx))
        for ci, comp in enumerate(("Jx", "Jy", "Jz")):
            qwv = charge * weights * velocities[:, ci] / cell_volume
            _deposit_nodal(
                grid, positions_mid, qwv, order, comp,
                "deposit_current_direct_compiled",
            )

    def deposit_current(  # repro: allow(PIC007)
        grid: YeeGrid,
        positions_old: np.ndarray,
        positions_new: np.ndarray,
        velocities: np.ndarray,
        weights: np.ndarray,
        charge: float,
        dt: float,
        order: int = 1,
    ) -> None:
        ndim = grid.ndim
        n = positions_old.shape[0]
        if n == 0:
            return
        max_disp = max(
            float(
                np.max(np.abs(positions_new[:, d] - positions_old[:, d]))
            ) / grid.dx[d]
            for d in range(ndim)
        )
        K = esirkepov_window(order, max_disp, tight=True)
        if K > KMAX:
            # windows this wide (deep-MR subcycled displacements) are not
            # worth native stack buffers; the numpy tiled kernel handles
            # them with identical mathematics
            deposit_current_esirkepov_tiled(
                grid, positions_old, positions_new, velocities, weights,
                charge, dt, order,
            )
            return
        tight = K == order + 2
        if (K + 1) // 2 > grid.guards:
            raise ConfigurationError(
                f"particle displacement of {max_disp:.2f} cells needs a "
                f"{K}-point deposition window but only {grid.guards} guard "
                f"cells are available"
            )
        x0 = _nodal_coords_matrix(grid, positions_old)
        x1 = _nodal_coords_matrix(grid, positions_new)
        san = Sanitizer.from_env()
        j_arr = grid.fields["Jx"]
        if san is not None:
            xm = 0.5 * (x0 + x1)
            if tight and order % 2:
                base = np.floor(xm + 0.5).astype(np.intp) - (K - 1) // 2
            else:
                base = np.floor(xm).astype(np.intp) - (K - 1) // 2
            san.check_stencil_bounds(
                "deposit_current_esirkepov_compiled", "J", list(base), K,
                j_arr.shape,
            )
        dx = np.zeros(3, dtype=np.float64)
        dx[:ndim] = grid.dx
        backend.deposit_esirkepov(
            grid.fields["Jx"], grid.fields["Jy"], grid.fields["Jz"],
            _element_strides(j_arr), ndim, order, K, tight, x0, x1,
            np.ascontiguousarray(velocities, dtype=np.float64),
            np.ascontiguousarray(charge * weights, dtype=np.float64),
            dt, dx,
        )

    return KernelSet(
        name="compiled",
        gather=gather,
        deposit_charge=deposit_charge,
        deposit_current=deposit_current,
        deposit_current_direct=deposit_current_direct,
        sort_aware=False,
        backend=backend.name,
    )


def build_kernel_tier(choice: Optional[str] = None):
    """Probe backends and build the compiled tier.

    Returns ``(kernel_set, detail)``; ``kernel_set`` is None when no
    backend is usable, with ``detail`` explaining why (the string the
    registry surfaces for the unavailable tier).  ``choice`` overrides
    the ``REPRO_COMPILED_BACKEND`` environment selection.
    """
    if choice is None:
        choice = os.environ.get(BACKEND_ENV, "auto").strip().lower() or "auto"
    if choice not in ("auto", "numba", "c", "none"):
        raise ConfigurationError(
            f"unknown {BACKEND_ENV} value {choice!r}; "
            "expected auto, numba, c or none"
        )
    if choice == "none":
        return None, f"disabled via {BACKEND_ENV}=none"
    reasons = []
    if choice in ("auto", "numba"):
        backend, detail = build_numba_backend()
        if backend is not None:
            return make_compiled_kernel_set(backend), detail
        reasons.append(detail)
    if choice in ("auto", "c"):
        backend, detail = build_c_backend()
        if backend is not None:
            return make_compiled_kernel_set(backend), detail
        reasons.append(detail)
    return None, "; ".join(reasons)


def install_compiled_tier() -> None:
    """Register the compiled tier, or mark it unavailable with the reason.

    Called from :mod:`repro.particles.kernels` at import; safe to call
    again (tests re-run it after monkeypatching the probes).
    """
    from repro.particles.kernels import (
        available_kernel_variants,
        mark_tier_unavailable,
        register_kernel_set,
    )

    if "compiled" in available_kernel_variants():
        return
    kernel_set, detail = build_kernel_tier()
    if kernel_set is not None:
        register_kernel_set(kernel_set)
    else:
        mark_tier_unavailable("compiled", detail)
