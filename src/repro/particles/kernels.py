"""Kernel dispatch registry: the gather/deposit fast-path layer.

The paper's single biggest node-level win (Sec. V.A.1) came from
restructuring the gather and deposition kernels around memory locality
while keeping their mathematics fixed.  This module reproduces that
experiment as a first-class abstraction: each *kernel variant* bundles a
gather and the three deposits behind one name, and simulations select a
variant by name (``Simulation(..., kernels="tiled")``).

======  ==================================================================
variant  implementation
======  ==================================================================
``reference``   scalar per-particle loops (the Sec. V.A.1 baseline);
                charge/direct deposits fall back to the vectorized
                kernels, which only diagnostics exercise
``vectorized``  NumPy-vectorized over particles, scatters through the
                unbuffered ``np.add.at``
``tiled``       the fast path: sort-aware segmented-reduction scatters
                (``np.add.reduceat`` over per-tile contiguous runs +
                one ``np.bincount`` histogram pass) and a shape-weight
                cache shared across the six gather components
======  ==================================================================

Every variant computes the same physics; :func:`validate_kernel_set`
cross-checks any variant against ``vectorized`` on a randomized workload
and returns the worst relative deviation per kernel (tests pin it at
machine precision).  The active variant name is surfaced as a ``kernel``
attribute on the gather/deposit tracer spans, so the observability layer
shows which implementation ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.grid.yee import YeeGrid
from repro.particles.deposit import (
    deposit_charge,
    deposit_charge_tiled,
    deposit_current_direct,
    deposit_current_direct_tiled,
    deposit_current_esirkepov,
    deposit_current_esirkepov_tiled,
    deposit_current_reference,
)
from repro.particles.gather import (
    gather_fields,
    gather_fields_reference,
    gather_fields_tiled,
)


@dataclass(frozen=True)
class KernelSet:
    """One named, interchangeable implementation of the PIC hot path.

    ``gather`` maps ``(grid, positions, order) -> (E, B)``; the deposits
    share the signatures of their :mod:`repro.particles.deposit`
    namesakes.  ``sort_aware`` marks variants whose scatter gets faster
    when the species is kept in Morton-bin order (``sort_interval``).
    """

    name: str
    gather: Callable[..., Tuple[np.ndarray, np.ndarray]]
    deposit_charge: Callable[..., None]
    deposit_current: Callable[..., None]
    deposit_current_direct: Callable[..., None]
    sort_aware: bool = False


_REGISTRY: Dict[str, KernelSet] = {}


def register_kernel_set(kernel_set: KernelSet) -> KernelSet:
    """Add a variant to the registry (duplicate names are an error)."""
    if kernel_set.name in _REGISTRY:
        raise ConfigurationError(
            f"duplicate kernel variant {kernel_set.name!r}"
        )
    _REGISTRY[kernel_set.name] = kernel_set
    return kernel_set


def get_kernel_set(name: str) -> KernelSet:
    """Look up a kernel variant by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown kernel variant {name!r}; "
            f"available: {available_kernel_variants()}"
        ) from None


def available_kernel_variants() -> Tuple[str, ...]:
    """The registered variant names, registration-ordered."""
    return tuple(_REGISTRY)


register_kernel_set(
    KernelSet(
        name="reference",
        gather=gather_fields_reference,
        deposit_charge=deposit_charge,
        deposit_current=deposit_current_reference,
        deposit_current_direct=deposit_current_direct,
    )
)
register_kernel_set(
    KernelSet(
        name="vectorized",
        gather=gather_fields,
        deposit_charge=deposit_charge,
        deposit_current=deposit_current_esirkepov,
        deposit_current_direct=deposit_current_direct,
    )
)
register_kernel_set(
    KernelSet(
        name="tiled",
        gather=gather_fields_tiled,
        deposit_charge=deposit_charge_tiled,
        deposit_current=deposit_current_esirkepov_tiled,
        deposit_current_direct=deposit_current_direct_tiled,
        sort_aware=True,
    )
)


def validate_kernel_set(
    name: str,
    ndim: int = 2,
    order: int = 2,
    n_particles: int = 200,
    seed: int = 0,
) -> Dict[str, float]:
    """Cross-validate one variant against ``vectorized`` numerically.

    Runs gather, charge, Esirkepov and direct deposits of both variants
    on an identical randomized workload and returns the worst absolute
    deviation per kernel, normalized by the result's own scale.  The test
    suite pins every entry at machine precision, the contract that lets a
    run switch variants without changing physics.
    """
    candidate = get_kernel_set(name)
    baseline = get_kernel_set("vectorized")
    rng = np.random.default_rng(seed)
    n_cells = 12
    guards = 5
    grid_c = YeeGrid(
        (n_cells,) * ndim, (0.0,) * ndim, (float(n_cells),) * ndim, guards=guards
    )
    grid_b = YeeGrid(
        (n_cells,) * ndim, (0.0,) * ndim, (float(n_cells),) * ndim, guards=guards
    )
    for comp in ("Ex", "Ey", "Ez", "Bx", "By", "Bz"):
        vals = rng.normal(size=grid_c.shape)
        grid_c.fields[comp][...] = vals
        grid_b.fields[comp][...] = vals
    pos0 = rng.uniform(2.0, float(n_cells) - 2.0, size=(n_particles, ndim))
    pos1 = pos0 + rng.uniform(-0.9, 0.9, size=(n_particles, ndim))
    vel = rng.normal(size=(n_particles, 3)) * 1.0e7
    w = rng.uniform(0.5, 2.0, size=n_particles)
    charge, dt = -1.0e-19, 1.0e-9

    def _rel(a: np.ndarray, b: np.ndarray) -> float:
        scale = float(np.max(np.abs(b))) or 1.0
        return float(np.max(np.abs(a - b))) / scale

    errors: Dict[str, float] = {}
    e_c, b_c = candidate.gather(grid_c, pos0, order)
    e_b, b_b = baseline.gather(grid_b, pos0, order)
    errors["gather"] = max(_rel(e_c, e_b), _rel(b_c, b_b))

    candidate.deposit_charge(grid_c, pos0, w, charge, order)
    baseline.deposit_charge(grid_b, pos0, w, charge, order)
    errors["deposit_charge"] = _rel(grid_c.fields["rho"], grid_b.fields["rho"])

    candidate.deposit_current(grid_c, pos0, pos1, vel, w, charge, dt, order)
    baseline.deposit_current(grid_b, pos0, pos1, vel, w, charge, dt, order)
    err = 0.0
    for comp in ("Jx", "Jy", "Jz"):
        err = max(err, _rel(grid_c.fields[comp], grid_b.fields[comp]))
    errors["deposit_current"] = err

    grid_c.zero_sources()
    grid_b.zero_sources()
    candidate.deposit_current_direct(grid_c, pos0, vel, w, charge, order)
    baseline.deposit_current_direct(grid_b, pos0, vel, w, charge, order)
    err = 0.0
    for comp in ("Jx", "Jy", "Jz"):
        err = max(err, _rel(grid_c.fields[comp], grid_b.fields[comp]))
    errors["deposit_current_direct"] = err
    return errors
