"""Kernel dispatch registry: the gather/deposit fast-path layer.

The paper's single biggest node-level win (Sec. V.A.1) came from
restructuring the gather and deposition kernels around memory locality
while keeping their mathematics fixed.  This module reproduces that
experiment as a first-class abstraction: each *kernel variant* bundles a
gather and the three deposits behind one name, and simulations select a
variant by name (``Simulation(..., kernels="tiled")``).

======  ==================================================================
variant  implementation
======  ==================================================================
``reference``   scalar per-particle loops (the Sec. V.A.1 baseline);
                charge/direct deposits fall back to the vectorized
                kernels, which only diagnostics exercise
``vectorized``  NumPy-vectorized over particles, scatters through the
                unbuffered ``np.add.at``
``tiled``       the numpy fast path: sort-aware segmented-reduction
                scatters (``np.add.reduceat`` over per-tile contiguous
                runs + one ``np.bincount`` histogram pass) and a
                shape-weight cache shared across the six gathers
``compiled``    native per-particle loops — numba ``@njit`` when
                importable, generated C via ctypes when a compiler is
                present (:mod:`repro.particles.compiled`).  Registered
                only when a backend builds; otherwise the registry
                reports *why* (:func:`kernel_tier_status`) and
                :func:`resolve_kernel_set` falls back to ``tiled``
======  ==================================================================

Every variant computes the same physics; :func:`validate_kernel_set`
cross-checks any variant against ``vectorized`` on a randomized workload
and returns the worst relative deviation per kernel (tests pin it at
machine precision).  All variants are dtype-generic: on a float32 grid
the field reads and deposition accumulate in single precision while
particle quantities and shape weights stay double (the paper's "MP
mode"), and ``validate_kernel_set(..., precision="float32")`` asserts
the resulting error stays inside :data:`FLOAT32_ERROR_BUDGET`.  The
active variant name is surfaced as a ``kernel`` attribute on the
gather/deposit tracer spans, so the observability layer shows which
implementation ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, PrecisionError
from repro.grid.yee import YeeGrid
from repro.particles.deposit import (
    deposit_charge,
    deposit_charge_tiled,
    deposit_current_direct,
    deposit_current_direct_tiled,
    deposit_current_esirkepov,
    deposit_current_esirkepov_tiled,
    deposit_current_reference,
)
from repro.particles.gather import (
    gather_fields,
    gather_fields_reference,
    gather_fields_tiled,
)


@dataclass(frozen=True)
class KernelSet:
    """One named, interchangeable implementation of the PIC hot path.

    ``gather`` maps ``(grid, positions, order) -> (E, B)``; the deposits
    share the signatures of their :mod:`repro.particles.deposit`
    namesakes.  ``sort_aware`` marks variants whose scatter gets faster
    when the species is kept in Morton-bin order (``sort_interval``);
    ``backend`` names what executes the inner loops (``numpy``,
    ``numba``, ``c``).
    """

    name: str
    gather: Callable[..., Tuple[np.ndarray, np.ndarray]]
    deposit_charge: Callable[..., None]
    deposit_current: Callable[..., None]
    deposit_current_direct: Callable[..., None]
    sort_aware: bool = False
    backend: str = "numpy"


_REGISTRY: Dict[str, KernelSet] = {}

#: tiers that probed for a backend and found none: name -> human reason
_UNAVAILABLE: Dict[str, str] = {}

#: the variant :func:`resolve_kernel_set` falls back to when a known
#: tier is unavailable on this machine
FALLBACK_VARIANT = "tiled"

_KERNEL_FIELDS = (
    "gather", "deposit_charge", "deposit_current", "deposit_current_direct",
)


def register_kernel_set(*kernel_sets: KernelSet) -> Tuple[KernelSet, ...]:
    """Add variants to the registry, atomically.

    The whole batch is validated first — duplicate names (within the
    batch or against already-registered variants), empty names, and
    non-callable kernel slots all raise :class:`ConfigurationError` —
    and only then installed, so a failed registration leaves the
    registry and dispatch exactly as they were.  Registering a tier that
    was previously marked unavailable clears its unavailability record.
    """
    staged: Dict[str, KernelSet] = {}
    for kernel_set in kernel_sets:
        if not isinstance(kernel_set, KernelSet):
            raise ConfigurationError(
                f"register_kernel_set expects KernelSet instances, "
                f"got {type(kernel_set).__name__}"
            )
        name = kernel_set.name
        if not name or not isinstance(name, str):
            raise ConfigurationError(
                f"kernel variant name must be a non-empty string, got {name!r}"
            )
        if name in _REGISTRY or name in staged:
            raise ConfigurationError(f"duplicate kernel variant {name!r}")
        for field in _KERNEL_FIELDS:
            if not callable(getattr(kernel_set, field)):
                raise ConfigurationError(
                    f"kernel variant {name!r} field {field!r} is not callable"
                )
        staged[name] = kernel_set
    # validation done; installation cannot fail partway
    _REGISTRY.update(staged)
    for name in staged:
        _UNAVAILABLE.pop(name, None)
    return kernel_sets


def mark_tier_unavailable(name: str, reason: str) -> None:
    """Record that a known tier could not be built on this machine.

    The tier stays out of :func:`available_kernel_variants`, but
    :func:`kernel_tier_status` surfaces the reason and
    :func:`resolve_kernel_set` maps the name to ``tiled`` instead of
    raising.
    """
    if name in _REGISTRY:
        raise ConfigurationError(
            f"kernel variant {name!r} is registered; cannot mark unavailable"
        )
    _UNAVAILABLE[name] = str(reason)


def get_kernel_set(name: str) -> KernelSet:
    """Look up a kernel variant by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown kernel variant {name!r}; "
            f"available: {available_kernel_variants()}"
        ) from None


def resolve_kernel_set(name: str) -> Tuple[KernelSet, Optional[str]]:
    """Resolve a variant name, falling back when the tier is unavailable.

    Returns ``(kernel_set, fallback_reason)``: ``(set, None)`` for a
    registered name; ``(tiled, reason)`` for a tier that probed for a
    backend and found none (e.g. ``compiled`` without numba or a C
    compiler).  Unknown names still raise :class:`ConfigurationError` —
    only *known-but-unbuildable* tiers degrade gracefully.
    """
    kernel_set = _REGISTRY.get(name)
    if kernel_set is not None:
        return kernel_set, None
    reason = _UNAVAILABLE.get(name)
    if reason is not None:
        return get_kernel_set(FALLBACK_VARIANT), reason
    raise ConfigurationError(
        f"unknown kernel variant {name!r}; "
        f"available: {available_kernel_variants()}"
    )


def available_kernel_variants() -> Tuple[str, ...]:
    """The registered variant names, registration-ordered."""
    return tuple(_REGISTRY)


def kernel_tier_status() -> Dict[str, str]:
    """Every known tier and its availability on this machine.

    Registered variants report ``"available (<backend>)"``; tiers whose
    backend probe failed report the reason (e.g. ``"numba not
    importable; no C compiler (cc/gcc/clang) on PATH"``).
    """
    status = {
        name: f"available ({ks.backend})" for name, ks in _REGISTRY.items()
    }
    status.update(_UNAVAILABLE)
    return status


register_kernel_set(
    KernelSet(
        name="reference",
        gather=gather_fields_reference,
        deposit_charge=deposit_charge,
        deposit_current=deposit_current_reference,
        deposit_current_direct=deposit_current_direct,
    ),
    KernelSet(
        name="vectorized",
        gather=gather_fields,
        deposit_charge=deposit_charge,
        deposit_current=deposit_current_esirkepov,
        deposit_current_direct=deposit_current_direct,
    ),
    KernelSet(
        name="tiled",
        gather=gather_fields_tiled,
        deposit_charge=deposit_charge_tiled,
        deposit_current=deposit_current_esirkepov_tiled,
        deposit_current_direct=deposit_current_direct_tiled,
        sort_aware=True,
    ),
)


#: documented float32 error budget: worst allowed relative L2 deviation
#: of each kernel on a float32 grid vs the float64 vectorized reference
#: (the :func:`validate_kernel_set` workload).  Values are ~30x the
#: measured deviation — loose enough to be platform-stable, tight
#: enough that an accidental single-precision *intermediate* (which
#: costs several digits, not a fraction of one) trips them.
FLOAT32_ERROR_BUDGET: Dict[str, float] = {
    "gather": 2.0e-6,
    "deposit_charge": 2.0e-6,
    "deposit_current": 4.0e-6,
    "deposit_current_direct": 2.0e-6,
}


def _rel_l2(a: np.ndarray, b: np.ndarray) -> float:  # repro: allow(PIC007)
    """Relative L2 deviation ``||a - b|| / ||b||`` (0 if b is zero)."""
    scale = float(np.linalg.norm(np.asarray(b, dtype=np.float64)))
    if scale == 0.0:
        return float(np.linalg.norm(np.asarray(a, dtype=np.float64)))
    diff = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
    return float(np.linalg.norm(diff)) / scale


def validate_kernel_set(
    name: str,
    ndim: int = 2,
    order: int = 2,
    n_particles: int = 200,
    seed: int = 0,
    precision: str = "float64",
) -> Dict[str, float]:
    """Cross-validate one variant against ``vectorized`` numerically.

    Runs gather, charge, Esirkepov and direct deposits of both variants
    on an identical randomized workload.  With ``precision="float64"``
    (the default) both run in double and the returned dict holds the
    worst relative deviation per kernel — the test suite pins every
    entry at machine precision, the contract that lets a run switch
    variants without changing physics.

    With ``precision="float32"`` (alias ``"mixed"``) the candidate runs
    on a float32 grid while the baseline stays float64, the deviations
    are relative L2 norms, and any kernel exceeding its
    :data:`FLOAT32_ERROR_BUDGET` entry raises
    :class:`~repro.exceptions.PrecisionError` — the documented
    mixed-precision error budget, asserted.
    """
    if precision in ("float32", "mixed"):
        mixed = True
    elif precision == "float64":
        mixed = False
    else:
        raise ConfigurationError(
            f"unknown precision {precision!r}; expected float64, float32 "
            "or mixed"
        )
    candidate = get_kernel_set(name)
    baseline = get_kernel_set("vectorized")
    rng = np.random.default_rng(seed)
    n_cells = 12
    guards = 5
    cand_dtype = np.float32 if mixed else np.float64
    grid_c = YeeGrid(
        (n_cells,) * ndim, (0.0,) * ndim, (float(n_cells),) * ndim,
        guards=guards, dtype=cand_dtype,
    )
    grid_b = YeeGrid(
        (n_cells,) * ndim, (0.0,) * ndim, (float(n_cells),) * ndim, guards=guards
    )
    for comp in ("Ex", "Ey", "Ez", "Bx", "By", "Bz"):
        vals = rng.normal(size=grid_c.shape)
        grid_c.fields[comp][...] = vals.astype(cand_dtype)
        grid_b.fields[comp][...] = vals
    pos0 = rng.uniform(2.0, float(n_cells) - 2.0, size=(n_particles, ndim))
    pos1 = pos0 + rng.uniform(-0.9, 0.9, size=(n_particles, ndim))
    vel = rng.normal(size=(n_particles, 3)) * 1.0e7
    w = rng.uniform(0.5, 2.0, size=n_particles)
    charge, dt = -1.0e-19, 1.0e-9

    def _rel(a: np.ndarray, b: np.ndarray) -> float:
        if mixed:
            return _rel_l2(a, b)
        scale = float(np.max(np.abs(b))) or 1.0
        return float(np.max(np.abs(a - b))) / scale

    errors: Dict[str, float] = {}
    e_c, b_c = candidate.gather(grid_c, pos0, order)
    e_b, b_b = baseline.gather(grid_b, pos0, order)
    errors["gather"] = max(_rel(e_c, e_b), _rel(b_c, b_b))

    candidate.deposit_charge(grid_c, pos0, w, charge, order)
    baseline.deposit_charge(grid_b, pos0, w, charge, order)
    errors["deposit_charge"] = _rel(grid_c.fields["rho"], grid_b.fields["rho"])

    candidate.deposit_current(grid_c, pos0, pos1, vel, w, charge, dt, order)
    baseline.deposit_current(grid_b, pos0, pos1, vel, w, charge, dt, order)
    err = 0.0
    for comp in ("Jx", "Jy", "Jz"):
        err = max(err, _rel(grid_c.fields[comp], grid_b.fields[comp]))
    errors["deposit_current"] = err

    grid_c.zero_sources()
    grid_b.zero_sources()
    candidate.deposit_current_direct(grid_c, pos0, vel, w, charge, order)
    baseline.deposit_current_direct(grid_b, pos0, vel, w, charge, order)
    err = 0.0
    for comp in ("Jx", "Jy", "Jz"):
        err = max(err, _rel(grid_c.fields[comp], grid_b.fields[comp]))
    errors["deposit_current_direct"] = err

    if mixed:
        for kernel, budget in FLOAT32_ERROR_BUDGET.items():
            if errors[kernel] > budget:
                raise PrecisionError(
                    f"float32 {name!r} kernel {kernel!r} relative L2 error "
                    f"{errors[kernel]:.3e} exceeds the documented budget "
                    f"{budget:.1e}"
                )
    return errors


# the compiled tier registers itself (or records why it could not) at
# import; kept at the tail so the registry above exists first
from repro.particles.compiled import install_compiled_tier  # noqa: E402

install_compiled_tier()
