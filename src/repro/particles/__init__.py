"""Particle substrate: structure-of-arrays species containers, relativistic
pushers, B-spline shape factors, field gather and charge-conserving current
deposition kernels (vectorized and scalar-reference variants), particle
sorting and plasma injection."""

from repro.particles.species import Species
from repro.particles.shapes import (
    ShapeWeightCache,
    bspline,
    shape_weights,
    required_guards,
)
from repro.particles.pusher import push_boris, push_vay, push_positions, lorentz_factor
from repro.particles.gather import (
    gather_fields,
    gather_fields_reference,
    gather_fields_tiled,
)
from repro.particles.deposit import (
    deposit_current_esirkepov,
    deposit_current_esirkepov_tiled,
    deposit_current_direct,
    deposit_current_direct_tiled,
    deposit_charge,
    deposit_charge_tiled,
    deposit_current_reference,
)
from repro.particles.kernels import (
    FLOAT32_ERROR_BUDGET,
    KernelSet,
    available_kernel_variants,
    get_kernel_set,
    kernel_tier_status,
    mark_tier_unavailable,
    register_kernel_set,
    resolve_kernel_set,
    validate_kernel_set,
)
from repro.particles.sorting import morton_bin_particles, sort_species_by_bin
from repro.particles.splitting import split_particles, merge_particles
from repro.particles.ionization import ADKIonization, adk_rate, barrier_suppression_field
from repro.particles.injection import (
    DensityProfile,
    UniformProfile,
    SlabProfile,
    BoxProfile,
    GasJetProfile,
    HybridTargetProfile,
    inject_plasma,
)

__all__ = [
    "Species",
    "ShapeWeightCache",
    "bspline",
    "shape_weights",
    "required_guards",
    "push_boris",
    "push_vay",
    "push_positions",
    "lorentz_factor",
    "gather_fields",
    "gather_fields_reference",
    "gather_fields_tiled",
    "deposit_current_esirkepov",
    "deposit_current_esirkepov_tiled",
    "deposit_current_direct",
    "deposit_current_direct_tiled",
    "deposit_charge",
    "deposit_charge_tiled",
    "deposit_current_reference",
    "FLOAT32_ERROR_BUDGET",
    "KernelSet",
    "available_kernel_variants",
    "get_kernel_set",
    "kernel_tier_status",
    "mark_tier_unavailable",
    "register_kernel_set",
    "resolve_kernel_set",
    "validate_kernel_set",
    "morton_bin_particles",
    "sort_species_by_bin",
    "split_particles",
    "ADKIonization",
    "adk_rate",
    "barrier_suppression_field",
    "merge_particles",
    "DensityProfile",
    "UniformProfile",
    "SlabProfile",
    "BoxProfile",
    "GasJetProfile",
    "HybridTargetProfile",
    "inject_plasma",
]
