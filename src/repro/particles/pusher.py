"""Relativistic particle pushers.

Implements the two standard explicit leapfrog momentum updates used by the
codes in the paper's Table I:

* :func:`push_boris` — the Boris (1970) rotation scheme, the default
  "recipe" pusher of every production PIC code;
* :func:`push_vay` — the Vay (2008) scheme, which preserves the E x B
  drift velocity exactly for relativistic particles (important in the
  Lorentz-boosted-frame extension the paper discusses).

Momenta are the dimensionless ``u = gamma * beta``; fields are SI.
"""

from __future__ import annotations

import numpy as np

from repro.constants import c


def lorentz_factor(u: np.ndarray) -> np.ndarray:
    """Gamma from normalized momenta ``u`` (n, 3)."""
    return np.sqrt(1.0 + np.einsum("ij,ij->i", u, u))


def push_boris(
    u: np.ndarray,
    e_fields: np.ndarray,
    b_fields: np.ndarray,
    charge: float,
    mass: float,
    dt: float,
) -> np.ndarray:
    """Advance normalized momenta by one step with the Boris rotation.

    Half electric kick, magnetic rotation at the midpoint gamma, half
    electric kick.  Returns a new (n, 3) momentum array.
    """
    k = charge * dt / (2.0 * mass * c)
    u_minus = u + k * e_fields
    gamma_m = lorentz_factor(u_minus)
    # rotation vector t = q B dt / (2 m gamma)
    t = (charge * dt / (2.0 * mass)) * b_fields / gamma_m[:, None]
    t2 = np.einsum("ij,ij->i", t, t)
    s = 2.0 * t / (1.0 + t2)[:, None]
    u_prime = u_minus + np.cross(u_minus, t)
    u_plus = u_minus + np.cross(u_prime, s)
    return u_plus + k * e_fields


def push_vay(
    u: np.ndarray,
    e_fields: np.ndarray,
    b_fields: np.ndarray,
    charge: float,
    mass: float,
    dt: float,
) -> np.ndarray:
    """Advance normalized momenta with the Vay (2008) scheme.

    Unlike Boris, the full Lorentz force is evaluated at the half step,
    which makes the relativistic E x B drift force-free.  Returns a new
    (n, 3) momentum array.
    """
    k = charge * dt / (2.0 * mass * c)
    gamma_n = lorentz_factor(u)
    v = u * (c / gamma_n)[:, None]
    # first half push with the full Lorentz force at the known velocity
    u_half = u + k * (e_fields + np.cross(v, b_fields))
    u_prime = u_half + k * e_fields
    # dimensionless rotation vector tau = q B dt / (2 m)
    tau = (charge * dt / (2.0 * mass)) * b_fields
    tau2 = np.einsum("ij,ij->i", tau, tau)
    u_star = np.einsum("ij,ij->i", u_prime, tau)
    gamma_prime2 = 1.0 + np.einsum("ij,ij->i", u_prime, u_prime)
    sigma = gamma_prime2 - tau2
    gamma_new = np.sqrt(0.5 * (sigma + np.sqrt(sigma**2 + 4.0 * (tau2 + u_star**2))))
    t_vec = tau / gamma_new[:, None]
    s_fac = 1.0 / (1.0 + np.einsum("ij,ij->i", t_vec, t_vec))
    return s_fac[:, None] * (
        u_prime
        + np.einsum("ij,ij->i", u_prime, t_vec)[:, None] * t_vec
        + np.cross(u_prime, t_vec)
    )


def push_positions(
    positions: np.ndarray, u: np.ndarray, dt: float, ndim: int
) -> np.ndarray:
    """Advance positions by ``v dt`` using only the first ``ndim`` velocity
    components (2D3V: particles keep 3 momenta but move in the plane)."""
    gamma = lorentz_factor(u)
    return positions + (u[:, :ndim] / gamma[:, None]) * (c * dt)
