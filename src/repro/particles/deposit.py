"""Charge and current deposition: particle -> grid scatter.

The production kernel is the charge-conserving Esirkepov (2001) scheme,
generalized to shape orders 1-3 and to 1D/2D/3D.  It guarantees the
discrete continuity equation

    (rho^{n+1} - rho^n)/dt + div J = 0

to machine precision, so no Poisson clean-up is ever needed — the property
the paper relies on for long laser-propagation runs.  A simpler direct
(momentum-conserving, *not* charge-conserving) deposition and a scalar
reference implementation are provided for benchmarking and validation.

All deposits are *added* into the grid arrays (callers zero the sources at
the start of the step), and all routines process particles in chunks to
bound the size of the (n, K, K, K) intermediate weight products.

Two scatter strategies back every deposit (see
:mod:`repro.particles.kernels` for the dispatch registry):

* the ``vectorized`` kernels scatter with ``np.add.at`` — correct for
  repeated indices but unbuffered and notoriously slow;
* the ``tiled`` kernels (``*_tiled``) replace it with segmented
  reductions: contiguous runs of equal addresses (which
  :func:`~repro.particles.sorting.sort_species_by_bin` ordering makes
  long) are pre-summed with ``np.add.reduceat``, and the per-run totals
  are accumulated in one ``np.bincount`` histogram pass.  The result
  matches the vectorized kernels to machine precision (the additions are
  reassociated, never dropped) and is several times faster — the Python
  analog of the conflict-free tiled scatter the paper credits for its
  biggest node-level win (Sec. V.A.1).

Under ``REPRO_SANITIZE=1`` every deposit verifies (SAN005) that no
particle's stencil leaves the padded field array; the flat-address
arithmetic would otherwise wrap negative indices to the far end of the
array and silently corrupt fields.
"""

from __future__ import annotations

import itertools
from typing import Callable, Sequence, Tuple

import numpy as np

from repro.analysis.sanitize import Sanitizer
from repro.grid.yee import STAGGER, YeeGrid
from repro.particles.shapes import bspline, shape_weights

#: chunk size bounding the intermediate Esirkepov weight arrays
_CHUNK = 4096

#: prefix length sampled to decide whether address runs are worth scanning
_RUN_PROBE = 1024

#: chunk size of the tiled nodal deposits, whose temporaries are n-sized
_CHUNK_NODAL = 65536

#: scatter_add(flat, addr, vals) accumulates vals into flat at addr
ScatterAdd = Callable[[np.ndarray, np.ndarray, np.ndarray], None]


def _nodal_coords(grid: YeeGrid, positions: np.ndarray, axis: int) -> np.ndarray:
    return (positions[:, axis] - grid.lo[axis]) / grid.dx[axis] + grid.guards


def _flat_strides(arr: np.ndarray) -> Sequence[int]:
    return [int(s) for s in np.array(arr.strides) // arr.itemsize]


def _scatter_add_at(flat: np.ndarray, addr: np.ndarray, vals: np.ndarray) -> None:
    """Baseline scatter: unbuffered ``np.add.at`` (correct, slow)."""
    np.add.at(flat, addr, vals)


def _run_starts(addr: np.ndarray) -> np.ndarray:
    """Start offset of every run of equal consecutive addresses."""
    change = np.empty(addr.size, dtype=bool)
    change[0] = True
    np.not_equal(addr[1:], addr[:-1], out=change[1:])
    return np.flatnonzero(change)


def _scatter_add_segmented(
    flat: np.ndarray, addr: np.ndarray, vals: np.ndarray
) -> None:
    """Sort-aware scatter: reduceat over address runs + one histogram pass.

    When the particles were ordered by :func:`~repro.particles.sorting.
    sort_species_by_bin`, consecutive particles hit the same stencil
    points, so ``addr`` is dominated by runs of equal values:
    ``np.add.reduceat`` collapses each run to a single (address, sum)
    pair first.  The surviving pairs — and, for unsorted input, the raw
    (address, value) pairs — are accumulated with ``np.bincount``, a
    single buffered histogram pass that replaces the per-element
    read-modify-write of ``np.add.at``.
    """
    addr = addr.ravel()
    vals = vals.ravel()
    if addr.size == 0:
        return
    # cheap prefix probe: when the head of the address stream shows no
    # runs (unsorted species, or sorting at multi-cell granularity), skip
    # the full run scan and take the histogram pass directly
    head = addr[:_RUN_PROBE]
    if (
        head.size < 2
        or np.count_nonzero(head[1:] != head[:-1]) * 2 > head.size
    ):
        flat += np.bincount(addr, weights=vals, minlength=flat.size)
        return
    starts = _run_starts(addr)
    if starts.size <= addr.size // 2:
        vals = np.add.reduceat(vals, starts)
        addr = addr[starts]
    flat += np.bincount(addr, weights=vals, minlength=flat.size)


def _scatter_add_histogram(
    flat: np.ndarray, addr: np.ndarray, vals: np.ndarray
) -> None:
    """Buffered histogram scatter without run detection.

    The Esirkepov kernels scatter whole ``(n, K, ..., K)`` stencil
    tensors at once; along the last window axis consecutive flat
    addresses differ by one, so equal-address runs cannot occur and the
    run scan of :func:`_scatter_add_segmented` would be pure overhead.
    One ``np.bincount`` pass still beats ``np.add.at`` severalfold.
    """
    if addr.size == 0:
        return
    flat += np.bincount(
        addr.ravel(), weights=vals.ravel(), minlength=flat.size
    )


def _deposit_nodal_scatter(
    grid: YeeGrid,
    positions: np.ndarray,
    values: np.ndarray,
    order: int,
    target: str,
    stagger: Tuple[int, int, int],
    scatter_add: ScatterAdd,
    kernel: str,
    chunk: int = _CHUNK,
) -> None:
    """Scatter per-particle ``values`` through an order-``order`` stencil.

    Shared body of the charge and direct-current deposits: per-axis shape
    weights on the (possibly staggered) sample lattice of ``target``,
    then one scatter per stencil offset.  The temporaries here are only
    ``chunk`` floats per axis (no (n, K, .., K) tensor as in Esirkepov),
    so the tiled callers pass a larger chunk: fewer scatter calls, and
    per-tile address runs that span the whole sorted species.
    """
    arr = grid.fields[target]
    flat = arr.ravel()
    strides = _flat_strides(arr)
    ndim = grid.ndim
    n = positions.shape[0]
    san = Sanitizer.from_env()
    for start in range(0, n, chunk):
        sl = slice(start, min(start + chunk, n))
        idx0 = []
        wts = []
        for d in range(ndim):
            coords = _nodal_coords(grid, positions[sl], d)
            if stagger[d]:
                coords = coords - 0.5
            i0, w = shape_weights(coords, order)
            idx0.append(i0)
            wts.append(w)
        if san is not None:
            san.check_stencil_bounds(kernel, target, idx0, order + 1, arr.shape)
        vals = values[sl]
        for offsets in itertools.product(range(order + 1), repeat=ndim):
            wprod = vals * wts[0][:, offsets[0]]
            addr = (idx0[0] + offsets[0]) * strides[0]
            for d in range(1, ndim):
                wprod = wprod * wts[d][:, offsets[d]]
                addr = addr + (idx0[d] + offsets[d]) * strides[d]
            scatter_add(flat, addr, wprod)


def deposit_charge(
    grid: YeeGrid,
    positions: np.ndarray,
    weights: np.ndarray,
    charge: float,
    order: int = 1,
    target: str = "rho",
) -> None:
    """Deposit ``q * w`` onto the nodal charge-density array ``target``."""
    qw = charge * weights / float(np.prod(grid.dx))
    _deposit_nodal_scatter(
        grid, positions, qw, order, target, (0, 0, 0),
        _scatter_add_at, "deposit_charge",
    )


def deposit_charge_tiled(
    grid: YeeGrid,
    positions: np.ndarray,
    weights: np.ndarray,
    charge: float,
    order: int = 1,
    target: str = "rho",
) -> None:
    """:func:`deposit_charge` with the segmented-reduction scatter."""
    qw = charge * weights / float(np.prod(grid.dx))
    _deposit_nodal_scatter(
        grid, positions, qw, order, target, (0, 0, 0),
        _scatter_add_segmented, "deposit_charge_tiled", chunk=_CHUNK_NODAL,
    )


def esirkepov_window(
    order: int, max_displacement: float, tight: bool = False
) -> int:
    """Window width covering both shapes for moves up to ``max_displacement``
    cells.  ``order + 3`` suffices for the CFL-bounded one-cell move; each
    extra cell of displacement (particles on a *fine* MR grid pushed with
    the subcycled coarse time step move up to ``ratio`` fine cells) widens
    the window by one point on each side.  The Esirkepov decomposition is
    an algebraic identity, so charge conservation is exact at any width.

    ``tight`` requests the minimal ``order + 2``-point window for sub-cell
    moves: the union of the supports of the old and new shapes spans at
    most ``order + 2`` lattice points when the displacement stays under
    one cell, so the extra ``order + 3``-window point only ever carries an
    exactly-zero weight.  The tiled kernels use it — every window point
    dropped shrinks the (n, K, .., K) weight tensors, where the kernel
    spends most of its time.  Displacements of a cell or more fall back
    to the standard width.
    """
    extra = max(int(np.ceil(max_displacement)) - 1, 0)
    if tight and extra == 0:
        return order + 2
    return order + 3 + 2 * extra


def _esirkepov_shapes(
    x0: np.ndarray, x1: np.ndarray, order: int, window: int, tight: bool = False
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Base index and old/new shape tables over ``window`` lattice points.

    The tight odd-order window must be centered on ``round(xm)`` rather
    than ``floor(xm)``: an odd-order shape reaches ``(order + 1) / 2``
    cells to each side of the particle, so when the midpoint sits in the
    upper half of its cell the support extends one lattice point further
    right than the floor-centered window covers.  Even orders are already
    symmetric about ``floor(xm)`` and keep the standard base.
    """
    xm = 0.5 * (x0 + x1)
    if tight and order % 2:
        base = np.floor(xm + 0.5).astype(np.intp) - (window - 1) // 2
    else:
        base = np.floor(xm).astype(np.intp) - (window - 1) // 2
    pts = base[:, None] + np.arange(window)[None, :]
    s0 = bspline(order, pts - x0[:, None])
    s1 = bspline(order, pts - x1[:, None])
    return base, s0, s1


def _deposit_current_esirkepov_impl(
    grid: YeeGrid,
    positions_old: np.ndarray,
    positions_new: np.ndarray,
    velocities: np.ndarray,
    weights: np.ndarray,
    charge: float,
    dt: float,
    order: int,
    scatter_add: ScatterAdd,
    kernel: str,
    tight_window: bool = False,
) -> None:
    ndim = grid.ndim
    n = positions_old.shape[0]
    if n == 0:
        return
    dx = grid.dx
    j_arrays = [grid.fields[name] for name in ("Jx", "Jy", "Jz")]
    flats = [a.ravel() for a in j_arrays]
    strides = _flat_strides(j_arrays[0])
    max_disp = max(
        float(np.max(np.abs(positions_new[:, d] - positions_old[:, d])))
        / grid.dx[d]
        for d in range(ndim)
    )
    K = esirkepov_window(order, max_disp, tight=tight_window)
    tight = tight_window and K == order + 2
    if (K + 1) // 2 > grid.guards:
        from repro.exceptions import ConfigurationError

        raise ConfigurationError(
            f"particle displacement of {max_disp:.2f} cells needs a "
            f"{K}-point deposition window but only {grid.guards} guard "
            f"cells are available"
        )
    offs = np.arange(K)
    san = Sanitizer.from_env()

    for start in range(0, n, _CHUNK):
        sl = slice(start, min(start + _CHUNK, n))
        base = []
        s0 = []
        ds = []
        for d in range(ndim):
            b, s0d, s1d = _esirkepov_shapes(
                _nodal_coords(grid, positions_old[sl], d),
                _nodal_coords(grid, positions_new[sl], d),
                order,
                K,
                tight,
            )
            base.append(b)
            s0.append(s0d)
            ds.append(s1d - s0d)
        if san is not None:
            san.check_stencil_bounds(kernel, "J", base, K, j_arrays[0].shape)
        qw = charge * weights[sl]

        if ndim == 3:
            t_yz = (
                s0[1][:, :, None] * s0[2][:, None, :]
                + 0.5 * ds[1][:, :, None] * s0[2][:, None, :]
                + 0.5 * s0[1][:, :, None] * ds[2][:, None, :]
                + ds[1][:, :, None] * ds[2][:, None, :] / 3.0
            )
            t_xz = (
                s0[0][:, :, None] * s0[2][:, None, :]
                + 0.5 * ds[0][:, :, None] * s0[2][:, None, :]
                + 0.5 * s0[0][:, :, None] * ds[2][:, None, :]
                + ds[0][:, :, None] * ds[2][:, None, :] / 3.0
            )
            t_xy = (
                s0[0][:, :, None] * s0[1][:, None, :]
                + 0.5 * ds[0][:, :, None] * s0[1][:, None, :]
                + 0.5 * s0[0][:, :, None] * ds[1][:, None, :]
                + ds[0][:, :, None] * ds[1][:, None, :] / 3.0
            )
            addr = (
                (base[0][:, None, None, None] + offs[None, :, None, None]) * strides[0]
                + (base[1][:, None, None, None] + offs[None, None, :, None]) * strides[1]
                + (base[2][:, None, None, None] + offs[None, None, None, :]) * strides[2]
            )
            w_x = ds[0][:, :, None, None] * t_yz[:, None, :, :]
            coeff = -qw / (dt * dx[1] * dx[2])
            scatter_add(
                flats[0], addr, coeff[:, None, None, None] * np.cumsum(w_x, axis=1)
            )
            w_y = ds[1][:, None, :, None] * t_xz[:, :, None, :]
            coeff = -qw / (dt * dx[0] * dx[2])
            scatter_add(
                flats[1], addr, coeff[:, None, None, None] * np.cumsum(w_y, axis=2)
            )
            w_z = ds[2][:, None, None, :] * t_xy[:, :, :, None]
            coeff = -qw / (dt * dx[0] * dx[1])
            scatter_add(
                flats[2], addr, coeff[:, None, None, None] * np.cumsum(w_z, axis=3)
            )
        elif ndim == 2:
            addr = (
                (base[0][:, None, None] + offs[None, :, None]) * strides[0]
                + (base[1][:, None, None] + offs[None, None, :]) * strides[1]
            )
            t_y = s0[1] + 0.5 * ds[1]
            w_x = ds[0][:, :, None] * t_y[:, None, :]
            coeff = -qw / (dt * dx[1])
            scatter_add(flats[0], addr, coeff[:, None, None] * np.cumsum(w_x, axis=1))
            t_x = s0[0] + 0.5 * ds[0]
            w_y = t_x[:, :, None] * ds[1][:, None, :]
            coeff = -qw / (dt * dx[0])
            scatter_add(flats[1], addr, coeff[:, None, None] * np.cumsum(w_y, axis=2))
            # the invariant-axis current: time-averaged shape product
            w_z = (
                s0[0][:, :, None] * s0[1][:, None, :]
                + 0.5 * ds[0][:, :, None] * s0[1][:, None, :]
                + 0.5 * s0[0][:, :, None] * ds[1][:, None, :]
                + ds[0][:, :, None] * ds[1][:, None, :] / 3.0
            )
            coeff = qw * velocities[sl, 2] / (dx[0] * dx[1])
            scatter_add(flats[2], addr, coeff[:, None, None] * w_z)
        else:  # 1D
            addr = (base[0][:, None] + offs[None, :]) * strides[0]
            coeff = -qw / dt
            scatter_add(flats[0], addr, coeff[:, None] * np.cumsum(ds[0], axis=1))
            t_x = s0[0] + 0.5 * ds[0]
            for comp, flat in ((1, flats[1]), (2, flats[2])):
                coeff = qw * velocities[sl, comp] / dx[0]
                scatter_add(flat, addr, coeff[:, None] * t_x)


def deposit_current_esirkepov(
    grid: YeeGrid,
    positions_old: np.ndarray,
    positions_new: np.ndarray,
    velocities: np.ndarray,
    weights: np.ndarray,
    charge: float,
    dt: float,
    order: int = 1,
) -> None:
    """Charge-conserving current deposition (Esirkepov 2001, orders 1-3).

    ``velocities`` (n, 3) supplies the components along invariant axes
    (``vz`` in 2D, ``vy``/``vz`` in 1D), which are not constrained by the
    in-plane continuity equation.  The stencil window widens automatically
    for displacements beyond one cell (subcycled MR fine grids); the
    number of guard cells bounds the displacement that can be handled.
    """
    _deposit_current_esirkepov_impl(
        grid, positions_old, positions_new, velocities, weights,
        charge, dt, order, _scatter_add_at, "deposit_current_esirkepov",
    )


def deposit_current_esirkepov_tiled(
    grid: YeeGrid,
    positions_old: np.ndarray,
    positions_new: np.ndarray,
    velocities: np.ndarray,
    weights: np.ndarray,
    charge: float,
    dt: float,
    order: int = 1,
) -> None:
    """:func:`deposit_current_esirkepov` on the fast path: the unbuffered
    ``np.add.at`` scatter is replaced by one buffered ``np.bincount``
    histogram pass per component, and sub-cell moves use the minimal
    ``order + 2``-point window (see :func:`esirkepov_window`), shrinking
    every intermediate weight tensor.  Identical Esirkepov decomposition;
    matches the vectorized kernel to machine precision.
    """
    _deposit_current_esirkepov_impl(
        grid, positions_old, positions_new, velocities, weights,
        charge, dt, order, _scatter_add_histogram,
        "deposit_current_esirkepov_tiled", tight_window=True,
    )


def _deposit_current_direct_impl(
    grid: YeeGrid,
    positions_mid: np.ndarray,
    velocities: np.ndarray,
    weights: np.ndarray,
    charge: float,
    order: int,
    scatter_add: ScatterAdd,
    kernel: str,
    chunk: int = _CHUNK,
) -> None:
    cell_volume = float(np.prod(grid.dx))
    for ci, comp in enumerate(("Jx", "Jy", "Jz")):
        qwv = charge * weights * velocities[:, ci] / cell_volume
        _deposit_nodal_scatter(
            grid, positions_mid, qwv, order, comp, STAGGER[comp],
            scatter_add, kernel, chunk=chunk,
        )


def deposit_current_direct(
    grid: YeeGrid,
    positions_mid: np.ndarray,
    velocities: np.ndarray,
    weights: np.ndarray,
    charge: float,
    order: int = 1,
) -> None:
    """Direct (momentum-conserving) current deposition at the midpoint.

    Each J component is scattered on its own staggered lattice with the
    particle's ``q w v / V``.  Cheaper and simpler than Esirkepov but does
    *not* satisfy the discrete continuity equation — kept as the ablation
    baseline.
    """
    _deposit_current_direct_impl(
        grid, positions_mid, velocities, weights, charge, order,
        _scatter_add_at, "deposit_current_direct",
    )


def deposit_current_direct_tiled(
    grid: YeeGrid,
    positions_mid: np.ndarray,
    velocities: np.ndarray,
    weights: np.ndarray,
    charge: float,
    order: int = 1,
) -> None:
    """:func:`deposit_current_direct` with the segmented-reduction scatter."""
    _deposit_current_direct_impl(
        grid, positions_mid, velocities, weights, charge, order,
        _scatter_add_segmented, "deposit_current_direct_tiled",
        chunk=_CHUNK_NODAL,
    )


def deposit_current_reference(  # repro: allow(PIC001)
    grid: YeeGrid,
    positions_old: np.ndarray,
    positions_new: np.ndarray,
    velocities: np.ndarray,
    weights: np.ndarray,
    charge: float,
    dt: float,
    order: int = 1,
) -> None:
    """Scalar per-particle Esirkepov deposition (Sec. V.A.1 baseline).

    Mathematically identical to :func:`deposit_current_esirkepov`; used to
    cross-validate the vectorized kernel and as the reference side of the
    kernel-optimization benchmark.
    """
    for p in range(positions_old.shape[0]):
        deposit_current_esirkepov(
            grid,
            positions_old[p : p + 1],
            positions_new[p : p + 1],
            velocities[p : p + 1],
            weights[p : p + 1],
            charge,
            dt,
            order,
        )
