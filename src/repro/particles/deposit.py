"""Charge and current deposition: particle -> grid scatter.

The production kernel is the charge-conserving Esirkepov (2001) scheme,
generalized to shape orders 1-3 and to 1D/2D/3D.  It guarantees the
discrete continuity equation

    (rho^{n+1} - rho^n)/dt + div J = 0

to machine precision, so no Poisson clean-up is ever needed — the property
the paper relies on for long laser-propagation runs.  A simpler direct
(momentum-conserving, *not* charge-conserving) deposition and a scalar
reference implementation are provided for benchmarking and validation.

All deposits are *added* into the grid arrays (callers zero the sources at
the start of the step), and all routines process particles in chunks to
bound the size of the (n, K, K, K) intermediate weight products.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.grid.yee import STAGGER, YeeGrid
from repro.particles.shapes import bspline, shape_weights

#: chunk size bounding the intermediate Esirkepov weight arrays
_CHUNK = 4096


def _nodal_coords(grid: YeeGrid, positions: np.ndarray, axis: int) -> np.ndarray:
    return (positions[:, axis] - grid.lo[axis]) / grid.dx[axis] + grid.guards


def _flat_strides(arr: np.ndarray) -> Sequence[int]:
    return [int(s) for s in np.array(arr.strides) // arr.itemsize]


def deposit_charge(
    grid: YeeGrid,
    positions: np.ndarray,
    weights: np.ndarray,
    charge: float,
    order: int = 1,
    target: str = "rho",
) -> None:
    """Deposit ``q * w`` onto the nodal charge-density array ``target``."""
    arr = grid.fields[target]
    flat = arr.ravel()
    strides = _flat_strides(arr)
    cell_volume = float(np.prod(grid.dx))
    ndim = grid.ndim
    n = positions.shape[0]
    for start in range(0, n, _CHUNK):
        sl = slice(start, min(start + _CHUNK, n))
        idx0 = []
        wts = []
        for d in range(ndim):
            i0, w = shape_weights(_nodal_coords(grid, positions[sl], d), order)
            idx0.append(i0)
            wts.append(w)
        qw = charge * weights[sl] / cell_volume
        for offsets in itertools.product(range(order + 1), repeat=ndim):
            wprod = qw * wts[0][:, offsets[0]]
            addr = (idx0[0] + offsets[0]) * strides[0]
            for d in range(1, ndim):
                wprod = wprod * wts[d][:, offsets[d]]
                addr = addr + (idx0[d] + offsets[d]) * strides[d]
            np.add.at(flat, addr, wprod)


def esirkepov_window(order: int, max_displacement: float) -> int:
    """Window width covering both shapes for moves up to ``max_displacement``
    cells.  ``order + 3`` suffices for the CFL-bounded one-cell move; each
    extra cell of displacement (particles on a *fine* MR grid pushed with
    the subcycled coarse time step move up to ``ratio`` fine cells) widens
    the window by one point on each side.  The Esirkepov decomposition is
    an algebraic identity, so charge conservation is exact at any width.
    """
    extra = max(int(np.ceil(max_displacement)) - 1, 0)
    return order + 3 + 2 * extra


def _esirkepov_shapes(
    x0: np.ndarray, x1: np.ndarray, order: int, window: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Base index and old/new shape tables over ``window`` lattice points."""
    xm = 0.5 * (x0 + x1)
    base = np.floor(xm).astype(np.intp) - (window - 1) // 2
    pts = base[:, None] + np.arange(window)[None, :]
    s0 = bspline(order, pts - x0[:, None])
    s1 = bspline(order, pts - x1[:, None])
    return base, s0, s1


def deposit_current_esirkepov(
    grid: YeeGrid,
    positions_old: np.ndarray,
    positions_new: np.ndarray,
    velocities: np.ndarray,
    weights: np.ndarray,
    charge: float,
    dt: float,
    order: int = 1,
) -> None:
    """Charge-conserving current deposition (Esirkepov 2001, orders 1-3).

    ``velocities`` (n, 3) supplies the components along invariant axes
    (``vz`` in 2D, ``vy``/``vz`` in 1D), which are not constrained by the
    in-plane continuity equation.  The stencil window widens automatically
    for displacements beyond one cell (subcycled MR fine grids); the
    number of guard cells bounds the displacement that can be handled.
    """
    ndim = grid.ndim
    n = positions_old.shape[0]
    if n == 0:
        return
    dx = grid.dx
    j_arrays = [grid.fields[name] for name in ("Jx", "Jy", "Jz")]
    flats = [a.ravel() for a in j_arrays]
    strides = _flat_strides(j_arrays[0])
    max_disp = max(
        float(np.max(np.abs(positions_new[:, d] - positions_old[:, d])))
        / grid.dx[d]
        for d in range(ndim)
    )
    K = esirkepov_window(order, max_disp)
    if (K + 1) // 2 > grid.guards:
        from repro.exceptions import ConfigurationError

        raise ConfigurationError(
            f"particle displacement of {max_disp:.2f} cells needs a "
            f"{K}-point deposition window but only {grid.guards} guard "
            f"cells are available"
        )
    offs = np.arange(K)

    for start in range(0, n, _CHUNK):
        sl = slice(start, min(start + _CHUNK, n))
        base = []
        s0 = []
        ds = []
        for d in range(ndim):
            b, s0d, s1d = _esirkepov_shapes(
                _nodal_coords(grid, positions_old[sl], d),
                _nodal_coords(grid, positions_new[sl], d),
                order,
                K,
            )
            base.append(b)
            s0.append(s0d)
            ds.append(s1d - s0d)
        qw = charge * weights[sl]

        if ndim == 3:
            t_yz = (
                s0[1][:, :, None] * s0[2][:, None, :]
                + 0.5 * ds[1][:, :, None] * s0[2][:, None, :]
                + 0.5 * s0[1][:, :, None] * ds[2][:, None, :]
                + ds[1][:, :, None] * ds[2][:, None, :] / 3.0
            )
            t_xz = (
                s0[0][:, :, None] * s0[2][:, None, :]
                + 0.5 * ds[0][:, :, None] * s0[2][:, None, :]
                + 0.5 * s0[0][:, :, None] * ds[2][:, None, :]
                + ds[0][:, :, None] * ds[2][:, None, :] / 3.0
            )
            t_xy = (
                s0[0][:, :, None] * s0[1][:, None, :]
                + 0.5 * ds[0][:, :, None] * s0[1][:, None, :]
                + 0.5 * s0[0][:, :, None] * ds[1][:, None, :]
                + ds[0][:, :, None] * ds[1][:, None, :] / 3.0
            )
            addr = (
                (base[0][:, None, None, None] + offs[None, :, None, None]) * strides[0]
                + (base[1][:, None, None, None] + offs[None, None, :, None]) * strides[1]
                + (base[2][:, None, None, None] + offs[None, None, None, :]) * strides[2]
            )
            w_x = ds[0][:, :, None, None] * t_yz[:, None, :, :]
            coeff = -qw / (dt * dx[1] * dx[2])
            np.add.at(
                flats[0], addr, coeff[:, None, None, None] * np.cumsum(w_x, axis=1)
            )
            w_y = ds[1][:, None, :, None] * t_xz[:, :, None, :]
            coeff = -qw / (dt * dx[0] * dx[2])
            np.add.at(
                flats[1], addr, coeff[:, None, None, None] * np.cumsum(w_y, axis=2)
            )
            w_z = ds[2][:, None, None, :] * t_xy[:, :, :, None]
            coeff = -qw / (dt * dx[0] * dx[1])
            np.add.at(
                flats[2], addr, coeff[:, None, None, None] * np.cumsum(w_z, axis=3)
            )
        elif ndim == 2:
            addr = (
                (base[0][:, None, None] + offs[None, :, None]) * strides[0]
                + (base[1][:, None, None] + offs[None, None, :]) * strides[1]
            )
            t_y = s0[1] + 0.5 * ds[1]
            w_x = ds[0][:, :, None] * t_y[:, None, :]
            coeff = -qw / (dt * dx[1])
            np.add.at(flats[0], addr, coeff[:, None, None] * np.cumsum(w_x, axis=1))
            t_x = s0[0] + 0.5 * ds[0]
            w_y = t_x[:, :, None] * ds[1][:, None, :]
            coeff = -qw / (dt * dx[0])
            np.add.at(flats[1], addr, coeff[:, None, None] * np.cumsum(w_y, axis=2))
            # the invariant-axis current: time-averaged shape product
            w_z = (
                s0[0][:, :, None] * s0[1][:, None, :]
                + 0.5 * ds[0][:, :, None] * s0[1][:, None, :]
                + 0.5 * s0[0][:, :, None] * ds[1][:, None, :]
                + ds[0][:, :, None] * ds[1][:, None, :] / 3.0
            )
            coeff = qw * velocities[sl, 2] / (dx[0] * dx[1])
            np.add.at(flats[2], addr, coeff[:, None, None] * w_z)
        else:  # 1D
            addr = (base[0][:, None] + offs[None, :]) * strides[0]
            coeff = -qw / dt
            np.add.at(flats[0], addr, coeff[:, None] * np.cumsum(ds[0], axis=1))
            t_x = s0[0] + 0.5 * ds[0]
            for comp, flat in ((1, flats[1]), (2, flats[2])):
                coeff = qw * velocities[sl, comp] / dx[0]
                np.add.at(flat, addr, coeff[:, None] * t_x)


def deposit_current_direct(
    grid: YeeGrid,
    positions_mid: np.ndarray,
    velocities: np.ndarray,
    weights: np.ndarray,
    charge: float,
    order: int = 1,
) -> None:
    """Direct (momentum-conserving) current deposition at the midpoint.

    Each J component is scattered on its own staggered lattice with the
    particle's ``q w v / V``.  Cheaper and simpler than Esirkepov but does
    *not* satisfy the discrete continuity equation — kept as the ablation
    baseline.
    """
    ndim = grid.ndim
    n = positions_mid.shape[0]
    cell_volume = float(np.prod(grid.dx))
    for ci, comp in enumerate(("Jx", "Jy", "Jz")):
        arr = grid.fields[comp]
        flat = arr.ravel()
        strides = _flat_strides(arr)
        stag = STAGGER[comp]
        for start in range(0, n, _CHUNK):
            sl = slice(start, min(start + _CHUNK, n))
            idx0 = []
            wts = []
            for d in range(ndim):
                coords = (
                    (positions_mid[sl, d] - grid.lo[d]) / grid.dx[d]
                    + grid.guards
                    - 0.5 * stag[d]
                )
                i0, w = shape_weights(coords, order)
                idx0.append(i0)
                wts.append(w)
            qwv = charge * weights[sl] * velocities[sl, ci] / cell_volume
            for offsets in itertools.product(range(order + 1), repeat=ndim):
                wprod = qwv * wts[0][:, offsets[0]]
                addr = (idx0[0] + offsets[0]) * strides[0]
                for d in range(1, ndim):
                    wprod = wprod * wts[d][:, offsets[d]]
                    addr = addr + (idx0[d] + offsets[d]) * strides[d]
                np.add.at(flat, addr, wprod)


def deposit_current_reference(  # repro: allow(PIC001)
    grid: YeeGrid,
    positions_old: np.ndarray,
    positions_new: np.ndarray,
    velocities: np.ndarray,
    weights: np.ndarray,
    charge: float,
    dt: float,
    order: int = 1,
) -> None:
    """Scalar per-particle Esirkepov deposition (Sec. V.A.1 baseline).

    Mathematically identical to :func:`deposit_current_esirkepov`; used to
    cross-validate the vectorized kernel and as the reference side of the
    kernel-optimization benchmark.
    """
    for p in range(positions_old.shape[0]):
        deposit_current_esirkepov(
            grid,
            positions_old[p : p + 1],
            positions_new[p : p + 1],
            velocities[p : p + 1],
            weights[p : p + 1],
            charge,
            dt,
            order,
        )
