"""Field gathering: grid -> particle interpolation.

Three implementations of the same kernel are provided on purpose (see
:mod:`repro.particles.kernels` for the dispatch registry):

* :func:`gather_fields` — vectorized over particles with the stencil point
  fixed, exactly the strategy the paper found optimal on A64FX
  ("vectorizing the computation of the coefficient ijk for multiple
  particles"); in NumPy this is the only fast formulation.
* :func:`gather_fields_tiled` — the fast-path variant: identical stencil
  arithmetic, but the per-axis shape weights are computed once per
  distinct stagger offset (a :class:`~repro.particles.shapes.
  ShapeWeightCache`) instead of once per component, cutting the weight
  evaluations from ``6 * ndim`` to at most ``2 * ndim``.  Bit-identical
  to :func:`gather_fields`.
* :func:`gather_fields_reference` — a scalar per-particle loop, the
  "reference" baseline of the paper's Sec. V.A.1 tuning table.  It is used
  to cross-validate the vectorized kernel and in the kernel-optimization
  benchmark.

Under ``REPRO_SANITIZE=1`` every variant verifies (SAN005) that no
particle's stencil leaves the padded field array: the flat-address
arithmetic would otherwise wrap a negative base index to the far end of
the array and silently read garbage.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.sanitize import Sanitizer
from repro.grid.yee import FIELD_COMPONENTS, STAGGER, YeeGrid
from repro.particles.shapes import ShapeWeightCache, bspline, shape_weights


def lattice_coords(
    grid: YeeGrid, positions: np.ndarray, component: str
) -> Tuple[np.ndarray, ...]:
    """Positions in the sample-lattice units of ``component``, per axis.

    Sample ``i`` of a component with stagger ``s`` sits at
    ``lo + (i - guards + 0.5 s) dx``; the returned coordinate of a particle
    is therefore directly comparable to array indices.
    """
    stag = STAGGER[component]
    return tuple(
        (positions[:, d] - grid.lo[d]) / grid.dx[d] + grid.guards - 0.5 * stag[d]
        for d in range(grid.ndim)
    )


def _stencil_accumulate(  # repro: allow(PIC007)
    flat: np.ndarray,
    strides: Sequence[int],
    idx0: Sequence[np.ndarray],
    wts: Sequence[np.ndarray],
    order: int,
) -> np.ndarray:
    """Sum ``w_i * field[stencil_i]`` over the stencil, one offset at a time."""
    ndim = len(idx0)
    out = np.zeros(idx0[0].shape[0], dtype=np.float64)
    for offsets in itertools.product(range(order + 1), repeat=ndim):
        wprod = wts[0][:, offsets[0]].copy()
        addr = (idx0[0] + offsets[0]) * strides[0]
        for d in range(1, ndim):
            wprod *= wts[d][:, offsets[d]]
            addr = addr + (idx0[d] + offsets[d]) * strides[d]
        out += wprod * flat[addr]
    return out


def _gather_component(
    arr: np.ndarray,
    coords: Sequence[np.ndarray],
    order: int,
    sanitizer: Optional[Sanitizer] = None,
    component: str = "?",
) -> np.ndarray:
    """Gather one field component at particle lattice coordinates."""
    ndim = arr.ndim
    idx0 = []
    wts = []
    for d in range(ndim):
        i0, w = shape_weights(coords[d], order)
        idx0.append(i0)
        wts.append(w)
    if sanitizer is not None:
        sanitizer.check_stencil_bounds(
            "gather_fields", component, idx0, order + 1, arr.shape
        )
    strides = [int(s) for s in np.array(arr.strides) // arr.itemsize]
    return _stencil_accumulate(arr.ravel(), strides, idx0, wts, order)


def gather_fields(  # repro: allow(PIC007)
    grid: YeeGrid, positions: np.ndarray, order: int = 1
) -> Tuple[np.ndarray, np.ndarray]:
    """Interpolate (E, B) to particle positions.

    Returns two (n, 3) arrays.  Every component is gathered on its own
    staggered lattice with an order-``order`` B-spline.
    """
    n = positions.shape[0]
    san = Sanitizer.from_env()
    e_out = np.empty((n, 3), dtype=np.float64)
    b_out = np.empty((n, 3), dtype=np.float64)
    for i, comp in enumerate(("Ex", "Ey", "Ez")):
        coords = lattice_coords(grid, positions, comp)
        e_out[:, i] = _gather_component(grid.fields[comp], coords, order, san, comp)
    for i, comp in enumerate(("Bx", "By", "Bz")):
        coords = lattice_coords(grid, positions, comp)
        b_out[:, i] = _gather_component(grid.fields[comp], coords, order, san, comp)
    return e_out, b_out


def gather_fields_tiled(  # repro: allow(PIC007)
    grid: YeeGrid, positions: np.ndarray, order: int = 1
) -> Tuple[np.ndarray, np.ndarray]:
    """Fast-path (E, B) gather sharing shape weights across components.

    Same stencil arithmetic as :func:`gather_fields`, but the per-axis
    ``(i0, w)`` tables are memoized per stagger offset: a Yee lattice has
    only two distinct sample lattices per axis, so the six components
    need at most ``2 * ndim`` weight evaluations instead of ``6 * ndim``.
    The result is bit-identical to :func:`gather_fields`.
    """
    ndim = grid.ndim
    n = positions.shape[0]
    san = Sanitizer.from_env()
    nodal = [
        (positions[:, d] - grid.lo[d]) / grid.dx[d] + grid.guards
        for d in range(ndim)
    ]
    cache = ShapeWeightCache(nodal, order)
    sample = grid.fields["Ex"]
    strides = [int(s) for s in np.array(sample.strides) // sample.itemsize]
    e_out = np.empty((n, 3), dtype=np.float64)
    b_out = np.empty((n, 3), dtype=np.float64)
    for i, comp in enumerate(FIELD_COMPONENTS):
        stag = STAGGER[comp]
        idx0 = []
        wts = []
        for d in range(ndim):
            i0, w = cache.get(d, stag[d])
            idx0.append(i0)
            wts.append(w)
        arr = grid.fields[comp]
        if san is not None:
            san.check_stencil_bounds(
                "gather_fields_tiled", comp, idx0, order + 1, arr.shape
            )
        out = e_out if i < 3 else b_out
        out[:, i % 3] = _stencil_accumulate(
            arr.ravel(), strides, idx0, wts, order
        )
    return e_out, b_out


def gather_fields_reference(  # repro: allow(PIC001, PIC007)
    grid: YeeGrid, positions: np.ndarray, order: int = 1
) -> Tuple[np.ndarray, np.ndarray]:
    """Scalar per-particle gather (baseline of the Sec. V.A.1 experiment).

    Identical mathematics to :func:`gather_fields`, but iterating particles
    in Python with per-particle stencil evaluation — the analog of the
    unvectorized per-particle loop the paper started from on A64FX.
    """
    n = positions.shape[0]
    ndim = grid.ndim
    e_out = np.zeros((n, 3), dtype=np.float64)
    b_out = np.zeros((n, 3), dtype=np.float64)
    for i, comp in enumerate(("Ex", "Ey", "Ez", "Bx", "By", "Bz")):
        arr = grid.fields[comp]
        out = e_out if i < 3 else b_out
        col = i % 3
        stag = STAGGER[comp]
        for p in range(n):
            coords = [
                (positions[p, d] - grid.lo[d]) / grid.dx[d]
                + grid.guards
                - 0.5 * stag[d]
                for d in range(ndim)
            ]
            stencil = []
            for d in range(ndim):
                i0, w = shape_weights(np.array([coords[d]]), order)
                stencil.append((int(i0[0]), w[0]))
            acc = 0.0
            for offsets in itertools.product(range(order + 1), repeat=ndim):
                wprod = 1.0
                idx = []
                for d in range(ndim):
                    i0, w = stencil[d]
                    wprod *= w[offsets[d]]
                    idx.append(i0 + offsets[d])
                acc += wprod * arr[tuple(idx)]
            out[p, col] = acc
    return e_out, b_out
