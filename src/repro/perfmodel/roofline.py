"""Roofline node model: time per PIC step on one device / node.

A kernel's execution time on a device is the larger of its compute time
(flops over achieved peak) and its memory time (bytes over achieved
bandwidth).  PIC is firmly on the bandwidth side for every machine in the
paper (the measured 1-13 % of peak in Table III), so the achieved
bandwidth fraction — calibrated per machine from Table III — is the
dominant parameter.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import ConfigurationError
from repro.perfmodel.kernels import KernelCounts, mixed_precision_counts, pic_step_counts
from repro.perfmodel.machines import Machine


def device_time_for_counts(
    machine: Machine,
    counts: KernelCounts,
    n_units: float,
    precision: str = "dp",
    flop_fraction: float = 0.3,
    optimized: bool = True,
) -> float:
    """Roofline time [s] for ``n_units`` repetitions of ``counts`` on one device.

    ``flop_fraction`` is the achieved fraction of vendor peak for the
    compute leg (generous — it never binds for these kernels).  The
    calibration refers to the *generic* code path; ``optimized=True``
    removes the scalar-efficiency penalty of CPU machines (the A64FX
    SIMD tuning of Sec. V.A.1; a no-op on GPUs).
    """
    if precision not in ("dp", "sp"):
        raise ConfigurationError("precision must be 'dp' or 'sp'")
    bw_frac = machine.bw_fraction(_calibration_ai(machine))
    if optimized:
        bw_frac = min(bw_frac / machine.scalar_efficiency, 1.0)
    peak = machine.peak_tflops_dp if precision == "dp" else machine.peak_tflops_sp
    t_compute = counts.flops * n_units / (peak * 1e12 * flop_fraction)
    t_memory = counts.bytes * n_units / (machine.mem_tb_per_s * 1e12 * bw_frac)
    return max(t_compute, t_memory)


def _calibration_ai(machine: Machine) -> float:
    """The arithmetic intensity of the calibration workload.

    Table III was measured on the uniform-plasma weak-scaling runs;
    :data:`repro.perfmodel.kernels.CALIBRATION_WORKLOAD` fixes that
    workload (3D, quadratic shapes, 2 ppc) for every calibrated quantity.
    """
    from repro.perfmodel.kernels import CALIBRATION_WORKLOAD

    return pic_step_counts(**CALIBRATION_WORKLOAD).arithmetic_intensity


def node_time_per_step(
    machine: Machine,
    cells_per_device: float,
    ppc: float = 2.0,
    order: int = 2,
    ndim: int = 3,
    mode: str = "dp",
    smoothing_passes: int = 0,
    optimized: bool = True,
) -> float:
    """Compute time [s] of one PIC step on one device (no communication)."""
    if mode == "dp":
        counts = pic_step_counts(order, ndim, ppc, smoothing_passes)
        return device_time_for_counts(
            machine, counts, cells_per_device, "dp", optimized=optimized
        )
    if mode == "mp":
        parts = mixed_precision_counts(order, ndim, ppc, smoothing_passes)
        t_sp = device_time_for_counts(
            machine, parts["sp"], cells_per_device, "sp", optimized=optimized
        )
        t_dp = device_time_for_counts(
            machine, parts["dp"], cells_per_device, "dp", optimized=optimized
        )
        return t_sp + t_dp
    raise ConfigurationError("mode must be 'dp' or 'mp'")


def device_flops(
    machine: Machine,
    ppc: float = 2.0,
    order: int = 2,
    ndim: int = 3,
    mode: str = "dp",
    optimized: bool = True,
) -> dict:
    """Sustained TFlop/s per device, split by precision (the Table III rows).

    Derived quantities: flops of the workload divided by the modelled
    step time.  In DP mode the result reproduces the calibration input by
    construction; the MP split and the unoptimized-CPU variant are model
    *predictions* compared against the paper.
    """
    cells = 1.0e6  # arbitrary; rates are intensive
    t_step = node_time_per_step(
        machine, cells, ppc, order, ndim, mode, optimized=optimized
    )
    if mode == "dp":
        counts = pic_step_counts(order, ndim, ppc)
        return {"dp": counts.flops * cells / t_step / 1e12, "sp": 0.0}
    parts = mixed_precision_counts(order, ndim, ppc)
    return {
        "sp": parts["sp"].flops * cells / t_step / 1e12,
        "dp": parts["dp"].flops * cells / t_step / 1e12,
    }
