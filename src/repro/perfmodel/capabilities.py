"""The capability matrix of the paper's Table I, plus the mapping from
each capability to the module of this repository that implements it.

The starred capabilities are the ones the paper calls *essential* for the
hybrid-target science case; the benchmark asserts this repo implements
every one of them (by importing the named attribute).
"""

from __future__ import annotations

import importlib
from typing import Dict, List, Tuple

#: Table I verbatim: capability -> set of codes implementing it.
CAPABILITY_TABLE: Dict[str, Dict[str, object]] = {
    "High-order particle shape": {
        "essential": True,
        "codes": {"Epoch", "Osiris", "PICADOR", "PIConGPU", "Smilei", "WarpX"},
    },
    "Moving window": {
        "essential": True,
        "codes": {"Epoch", "Osiris", "PICADOR", "PIConGPU", "Smilei", "WarpX"},
    },
    "Single-Source CPU & GPU": {
        "essential": True,
        "codes": {"PICADOR", "PIConGPU", "VPIC", "WarpX"},
    },
    "Dyn. LB for CPU & GPU": {
        "essential": True,
        "codes": {"WarpX"},
    },
    "Mesh refinement": {
        "essential": True,
        "codes": {"WarpX"},
    },
    "Boosted frame": {
        "essential": False,
        "codes": {"Osiris", "WarpX"},
    },
    "PSATD Maxwell field solver": {
        "essential": False,
        "codes": {"WarpX"},
    },
}

ALL_CODES = ("Epoch", "Osiris", "PICADOR", "PIConGPU", "Smilei", "VPIC", "WarpX")

#: capability -> (module, attribute) implementing it in this repository.
#: "Single-source" maps to the twin scalar/vector gather kernels sharing
#: one mathematical definition — the Python analog of one source compiled
#: for CPU and GPU.  The two non-essential rows are the extensions the
#: paper's final section discusses; both are implemented here as well.
REPRO_IMPLEMENTATIONS: Dict[str, Tuple[str, str]] = {
    "High-order particle shape": ("repro.particles.shapes", "bspline"),
    "Moving window": ("repro.core.moving_window", "MovingWindow"),
    "Single-Source CPU & GPU": ("repro.particles.gather", "gather_fields"),
    "Dyn. LB for CPU & GPU": ("repro.core.load_balance", "distribute_knapsack"),
    "Mesh refinement": ("repro.core.mr_level", "MRPatch"),
    "Boosted frame": ("repro.core.boosted_frame", "BoostedFrame"),
    "PSATD Maxwell field solver": ("repro.grid.psatd", "PSATDMaxwellSolver"),
}


#: Beyond-Table-I capabilities this reproduction ships (the combinations
#: the paper's final section singles out for the boosted-frame science
#: runs).  Kept out of CAPABILITY_TABLE so that table stays verbatim;
#: resolved into extra feature-map rows the same way.
EXTENSION_IMPLEMENTATIONS: Dict[str, Tuple[str, str]] = {
    "Galilean PSATD (comoving current)": (
        "repro.grid.psatd",
        "galilean_coefficients",
    ),
    "Distributed PSATD (local-FFT wide guards)": (
        "repro.parallel.distributed",
        "DistributedSimulation",
    ),
    "Boosted-frame LWFA scenario": (
        "repro.scenarios.boosted_lwfa",
        "BoostedLWFASetup",
    ),
}


def repro_feature_map() -> List[dict]:
    """Resolve every essential capability to its implementation.

    Raises ``ImportError``/``AttributeError`` if a claimed implementation
    is missing — the benchmark turns this into a hard failure.  Rows for
    the WarpX-only extensions beyond Table I are appended after the
    verbatim table rows, flagged with ``"extension": True``.
    """
    rows = []
    for capability, info in CAPABILITY_TABLE.items():
        impl = REPRO_IMPLEMENTATIONS.get(capability)
        resolved = None
        if impl is not None:
            module = importlib.import_module(impl[0])
            resolved = getattr(module, impl[1])  # raises if absent
        rows.append(
            {
                "capability": capability,
                "essential": info["essential"],
                "codes": sorted(info["codes"]),
                "implemented_by": f"{impl[0]}.{impl[1]}" if impl else None,
                "resolved": resolved is not None,
            }
        )
    for capability, impl in EXTENSION_IMPLEMENTATIONS.items():
        module = importlib.import_module(impl[0])
        resolved = getattr(module, impl[1])  # raises if absent
        rows.append(
            {
                "capability": capability,
                "essential": False,
                "codes": ["WarpX"],
                "implemented_by": f"{impl[0]}.{impl[1]}",
                "resolved": resolved is not None,
                "extension": True,
            }
        )
    return rows
