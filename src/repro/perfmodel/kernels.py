"""Analytic flop / byte counts of the PIC kernels.

Each function counts the floating point operations and DRAM traffic of one
kernel per particle or per cell, parameterized by shape order and
dimensionality — mirroring how the paper measured per-opcode Flop counts
with Nsight/ROCm/fapp.  The counts are audited against the actual NumPy
kernels by the test suite (operation counting on tiny inputs).

Conventions: an FMA counts as 2 Flop (as in the paper); ``field_bytes``
count each stencil value once, divided by a cross-particle cache-reuse
factor: WarpX sorts particles periodically precisely so that neighbouring
particles hit the same stencil cells in cache (Sec. VII.C), and the tiled
traversal makes an effective reuse of ~2-3 realistic.  The resulting
arithmetic intensity (~1 Flop/byte) keeps every machine of Table II
memory-bound, consistent with the measured 1-13 % of peak.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

#: cross-particle cache reuse of gather/deposit field traffic
CACHE_REUSE = 2.5

#: the kernel variants of :mod:`repro.particles.kernels` the counts model
KERNEL_VARIANTS = ("vectorized", "tiled")

#: effective scatter-traffic compression of the tiled deposition: the
#: segmented reduction collapses per-tile runs of equal addresses before
#: touching DRAM, so each grid point is read-modified-written roughly
#: once per *run* (~ppc contributions) instead of once per contribution
TILED_RUN_COMPRESSION = 2.0

#: the workload whose Table III rates calibrate the model: the uniform
#: plasma weak-scaling benchmark (3D, quadratic shapes, 2 ppc)
CALIBRATION_WORKLOAD = {"order": 2, "ndim": 3, "ppc": 2.0}


@dataclass
class KernelCounts:
    """Flops and bytes of one kernel invocation unit (particle or cell)."""

    flops: float
    bytes: float

    @property
    def arithmetic_intensity(self) -> float:
        return self.flops / self.bytes if self.bytes else 0.0

    def __add__(self, other: "KernelCounts") -> "KernelCounts":
        return KernelCounts(self.flops + other.flops, self.bytes + other.bytes)

    def scaled(self, factor: float) -> "KernelCounts":
        return KernelCounts(self.flops * factor, self.bytes * factor)


def _check(order: int, ndim: int, variant: str = "vectorized") -> None:
    if order not in (1, 2, 3):
        raise ConfigurationError(f"unsupported shape order {order}")
    if ndim not in (1, 2, 3):
        raise ConfigurationError(f"unsupported ndim {ndim}")
    if variant not in KERNEL_VARIANTS:
        raise ConfigurationError(
            f"unsupported kernel variant {variant!r}; "
            f"modelled: {KERNEL_VARIANTS}"
        )


def gather_counts(
    order: int, ndim: int, itemsize: int = 8, variant: str = "vectorized"
) -> KernelCounts:
    """Field gather per particle: 6 components, (order+1)^ndim points each.

    The ``tiled`` variant shares the per-axis shape weights across the six
    components (two distinct stagger offsets per axis), cutting the weight
    evaluation from ``6 * ndim`` to ``2 * ndim`` per particle; traffic is
    unchanged.
    """
    _check(order, ndim, variant)
    pts = (order + 1) ** ndim
    # per-axis weight evaluation: ~8 flops per weight entry; the tiled
    # shape-weight cache evaluates each of the 2 stagger lattices once
    weight_evals = 2 * ndim if variant == "tiled" else 6 * ndim
    weight_flops = weight_evals * 8 * (order + 1)
    # accumulation: one FMA per stencil point per component, plus the
    # per-point weight product (ndim-1 multiplies)
    accum_flops = 6 * pts * (2 + (ndim - 1))
    field_bytes = 6 * pts * itemsize / CACHE_REUSE
    particle_bytes = (ndim + 6) * itemsize  # read x, write E,B per particle
    return KernelCounts(weight_flops + accum_flops, field_bytes + particle_bytes)


def push_counts(itemsize: int = 8) -> KernelCounts:
    """Boris momentum + position push per particle."""
    # half kick (6) + gamma (8) + t,s vectors (12) + two cross products (2*9)
    # + half kick (6) + position update (3*4) ~ 62 flops
    flops = 62.0
    # read u, E, B; write u; read/write x
    bytes_ = (3 + 3 + 3 + 3 + 2 * 3) * itemsize
    return KernelCounts(flops, bytes_)


def deposit_counts(
    order: int, ndim: int, itemsize: int = 8, variant: str = "vectorized"
) -> KernelCounts:
    """Esirkepov current deposition per particle.

    The ``tiled`` variant models the fast path: the minimal
    ``order + 2``-point window (the dropped ``order + 3`` column is
    always exactly zero) shrinks every per-axis count, and the
    segmented-reduction scatter pre-sums sorted per-tile runs in
    registers/cache, dividing the grid read-modify-write traffic by
    :data:`TILED_RUN_COMPRESSION` (additions are reassociated, never
    dropped).
    """
    _check(order, ndim, variant)
    k = order + 2 if variant == "tiled" else order + 3  # window per axis
    pts = k**ndim
    # S0/S1 evaluation: 2 * ndim * K spline evaluations, ~10 flops each
    spline_flops = 2 * ndim * k * 10
    # W products + cumulative sums: ~4 flops per window point per axis
    w_flops = ndim * pts * 4
    # scatter: 1 add per point per current component
    scatter_flops = ndim * pts
    field_bytes = ndim * pts * 2 * itemsize / CACHE_REUSE  # read-modify-write
    if variant == "tiled":
        field_bytes /= TILED_RUN_COMPRESSION
    particle_bytes = (2 * ndim + 3 + 1) * itemsize  # x_old, x_new, v, w
    return KernelCounts(
        spline_flops + w_flops + scatter_flops, field_bytes + particle_bytes
    )


def maxwell_counts(ndim: int, itemsize: int = 8) -> KernelCounts:
    """FDTD field update per cell: 6 components, 2-term curls + J term."""
    # per component: 2 diffs (2 flops each incl. 1/dx) + axpy (2) ~ 6-8
    active_terms = {1: 4, 2: 10, 3: 12}[ndim]  # curl terms that survive
    flops = active_terms * 4 + 3 * 4  # curl work + J source terms
    # each component read + written once, sources read
    bytes_ = (6 * 2 + 3) * itemsize
    return KernelCounts(float(flops), float(bytes_))


def smoothing_counts(ndim: int, passes: int, itemsize: int = 8) -> KernelCounts:
    """Binomial current filter per cell."""
    flops = 3.0 * ndim * passes * 4
    bytes_ = 3.0 * ndim * passes * 2 * itemsize
    return KernelCounts(flops, bytes_)


def pic_step_counts(
    order: int = 3,
    ndim: int = 3,
    ppc: float = 1.0,
    smoothing_passes: int = 0,
    itemsize: int = 8,
    variant: str = "vectorized",
) -> KernelCounts:
    """Total flops/bytes of one PIC step *per cell*, with ``ppc`` particles.

    This is the quantity the roofline model multiplies by cells/device.
    """
    per_particle = gather_counts(order, ndim, itemsize, variant) + push_counts(
        itemsize
    )
    per_particle = per_particle + deposit_counts(order, ndim, itemsize, variant)
    per_cell = maxwell_counts(ndim, itemsize)
    if smoothing_passes:
        per_cell = per_cell + smoothing_counts(ndim, smoothing_passes, itemsize)
    return per_cell + per_particle.scaled(ppc)


def mixed_precision_counts(
    order: int = 2, ndim: int = 3, ppc: float = 2.0, smoothing_passes: int = 0
) -> dict:
    """Counts for WarpX's mixed-precision mode.

    Field arrays and field-side arithmetic run in single precision (4-byte
    traffic, SP flops); every operation touching raw particle positions —
    the pusher, the shape-weight and Esirkepov spline evaluations — stays
    double, "the numerically sensitive particle-related operations" of
    Sec. VI.  The split is computed from the same per-kernel counts as the
    DP mode: the weight/spline evaluation flops move to the DP bucket, the
    stencil accumulation/scatter flops and all field traffic to SP.
    """
    k = order + 3
    pts_gather = (order + 1) ** ndim
    pts_dep = k**ndim
    # DP bucket: pusher + per-axis weight/spline evaluations (position math)
    dp_flops = (
        push_counts().flops
        + 6 * ndim * 8 * (order + 1)  # gather weight evaluation
        + 2 * ndim * k * 10  # Esirkepov S0/S1 spline evaluation
    )
    dp_bytes = push_counts().bytes + (3 * ndim + 4) * 8  # particle reads stay DP
    # SP bucket: stencil accumulation, W products, scatter, field solve
    sp_flops = (
        6 * pts_gather * (2 + (ndim - 1))
        + ndim * pts_dep * 4
        + ndim * pts_dep
    )
    sp_bytes = (6 * pts_gather + ndim * pts_dep * 2) * 4 / CACHE_REUSE
    per_cell_sp = maxwell_counts(ndim, itemsize=4)
    if smoothing_passes:
        per_cell_sp = per_cell_sp + smoothing_counts(ndim, smoothing_passes, itemsize=4)
    return {
        "sp": per_cell_sp + KernelCounts(sp_flops, sp_bytes).scaled(ppc),
        "dp": KernelCounts(dp_flops, dp_bytes).scaled(ppc),
    }
