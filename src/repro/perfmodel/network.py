"""Alpha-beta network model for halo exchange and collectives.

Per step, a rank exchanges guard shells with its Cartesian neighbors
(alpha-beta cost per message) and participates in a handful of small
collectives (diagnostics reductions), which grow logarithmically with the
rank count.  Two mechanisms the paper observes fall out directly:

* below 27 ranks a 3D decomposition has fewer than the full 26 neighbor
  pairs, so per-rank communication *grows* as the machine fills its first
  few nodes — Summit's 15 % efficiency drop from 2 to 8 nodes;
* at scale, the log-growing collective term plus network contention set
  the end-point weak-scaling efficiency, calibrated per machine against
  the Fig. 5 anchors.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence, Tuple

from repro.perfmodel.machines import (
    Machine,
    WEAK_SCALING_ANCHORS,
)
from repro.perfmodel.roofline import node_time_per_step


def measured_halo_time(
    machine: Machine,
    pair_bytes: Mapping[Tuple[int, int], int],
    messages_per_pair: int = 1,
) -> float:
    """Alpha-beta time of one *measured* halo exchange on ``machine``.

    ``pair_bytes`` maps ``(src_rank, dst_rank)`` to bytes actually shipped
    — e.g. ``SimComm.pair_bytes_for_tag("halo")`` from a run, or a
    per-phase delta of ``SimComm.pair_bytes``.  Each rank drives its
    outgoing messages through its NIC share concurrently, so the exchange
    completes when the bottleneck sender finishes: max over sources of
    (bytes / bandwidth + messages * latency).  With the pairwise exchange
    aggregating everything between a rank pair into one message per
    phase, ``messages_per_pair`` is the number of phases the byte map
    spans (2 per step: fold + field fill).
    """
    out_bytes, out_msgs = {}, {}
    for (src, dst), nbytes in pair_bytes.items():
        if src == dst:
            continue
        out_bytes[src] = out_bytes.get(src, 0) + int(nbytes)
        out_msgs[src] = out_msgs.get(src, 0) + int(messages_per_pair)
    if not out_bytes:
        return 0.0
    bw = machine.net_gb_per_s * 1e9 / machine.devices_per_node
    return max(
        b / bw + out_msgs[r] * machine.net_latency
        for r, b in out_bytes.items()
    )


def halo_surface_bytes(
    cells_per_device: float,
    guards: int = 4,
    n_components: int = 9,
    itemsize: int = 8,
    ndim: int = 3,
) -> float:
    """Guard-shell traffic of one device per step [bytes].

    A cubic block of V cells has side V^(1/ndim); the guard shell volume
    is the grown block minus the block.
    """
    side = cells_per_device ** (1.0 / ndim)
    shell = (side + 2 * guards) ** ndim - side**ndim
    return shell * n_components * itemsize


def neighbor_fraction(n_ranks: int, ndim: int = 3) -> float:
    """Fraction of the full 3^ndim - 1 neighbor set present at ``n_ranks``.

    For a near-cubic rank grid, ranks on the domain hull (with periodic
    wrap every pair still exists but pairs coincide for tiny grids): with
    fewer than 3 ranks per axis, distinct neighbor pairs are missing and
    synchronization partners per rank are reduced.
    """
    per_axis = max(n_ranks ** (1.0 / ndim), 1.0)
    frac = min(per_axis / 3.0, 1.0)
    return frac**ndim


class NetworkModel:
    """Communication time per step for one machine.

    The collective coefficient is calibrated so the modelled weak-scaling
    efficiency matches the paper's Fig. 5 anchor for the machine.
    """

    def __init__(self, machine: Machine, cells_per_device: float = 1.0e7,
                 ppc: float = 2.0, mode: str = "dp", optimized: bool = True) -> None:
        self.machine = machine
        self.cells_per_device = float(cells_per_device)
        self.ppc = float(ppc)
        self.mode = mode
        self.t_compute = node_time_per_step(
            machine, self.cells_per_device, ppc=ppc, mode=mode, optimized=optimized
        )
        self._collective_coeff = self._calibrate()

    # -- mechanics -----------------------------------------------------------
    def halo_time(self, n_ranks: int) -> float:
        """Guard exchange: bytes over injection bandwidth + message latency."""
        m = self.machine
        nbytes = halo_surface_bytes(self.cells_per_device) * neighbor_fraction(
            n_ranks
        )
        n_msgs = 26.0 * neighbor_fraction(n_ranks)
        bw = m.net_gb_per_s * 1e9 / m.devices_per_node  # share of the NIC
        return nbytes / bw + n_msgs * m.net_latency

    def collective_time(self, n_ranks: int) -> float:
        """Log-growing collective / contention overhead."""
        return self._collective_coeff * math.log2(max(n_ranks, 2))

    def step_time(self, n_nodes: int) -> float:
        n_ranks = n_nodes * self.machine.devices_per_node
        return self.t_compute + self.halo_time(n_ranks) + self.collective_time(n_ranks)

    # -- calibration ------------------------------------------------------------
    def _calibrate(self) -> float:
        """Solve the collective coefficient from the Fig. 5 anchor point.

        efficiency = t(1 node) / t(N nodes); everything but the collective
        coefficient is known, so it follows in closed form.
        """
        anchor = WEAK_SCALING_ANCHORS.get(self.machine.name.lower())
        if anchor is None:
            return 0.0
        n_nodes = anchor["nodes"]
        eff = anchor["efficiency"]
        d = self.machine.devices_per_node
        self._collective_coeff = 0.0
        a = self.t_compute + self.halo_time(1 * d)
        b = self.t_compute + self.halo_time(n_nodes * d)
        l1 = math.log2(max(d, 2))
        l2 = math.log2(max(n_nodes * d, 2))
        # solve (a + c l1) / (b + c l2) = eff for the coefficient c
        denom = l1 - eff * l2
        if abs(denom) < 1e-30:
            return 0.0
        coeff = (eff * b - a) / denom
        return max(coeff, 0.0)
