"""Sustained Flop/s per device and machine (the paper's Table III)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.perfmodel.machines import MACHINES, Machine, get_machine
from repro.perfmodel.roofline import device_flops
from repro.perfmodel.scaling import weak_scaling


def machine_scale_pflops(
    machine: Machine, tflops_per_device: float, efficiency: float
) -> float:
    """Sustained PFlop/s of the largest weak-scaling run: per-device rate
    times the devices actually used times the efficiency at that size
    (the paper's "Achieved PFlop/s is the largest weak-scaling run")."""
    devices_used = machine.max_nodes_used * machine.devices_per_node
    return tflops_per_device * devices_used * efficiency / 1.0e3


def flops_table(ppc: float = 2.0, order: int = 2) -> List[dict]:
    """Model reproduction of Table III.

    For every machine: DP and MP per-device TFlop/s (model), percent of
    vendor peak, achieved full-machine PFlop/s (per-device rate x devices
    x weak-scaling efficiency), and percent of the published HPCG result.
    For Fugaku both the generic and the A64FX-optimized code paths are
    reported, matching the paper's dagger rows.
    """
    rows = []
    for key, machine in MACHINES.items():
        # the paper reports DP and MP for every machine, plus the
        # A64FX-optimized MP path (the dagger row) on Fugaku
        variants = [("dp", False), ("mp", False)]
        if machine.scalar_efficiency < 1.0:
            variants.append(("mp", True))
        eff_record = weak_scaling(
            key, node_counts=[1, machine.max_nodes_used], ppc=ppc
        )
        efficiency = eff_record[-1]["efficiency"]
        for mode, optimized in variants:
            rates = device_flops(
                machine, ppc=ppc, order=order, mode=mode, optimized=optimized
            )
            total_tf = rates["dp"] + rates["sp"]
            peak = (
                machine.peak_tflops_dp
                if mode == "dp"
                else machine.peak_tflops_sp
            )
            achieved_pf = machine_scale_pflops(machine, total_tf, efficiency)
            pct_hpcg = (
                100.0 * achieved_pf / machine.hpcg_pflops
                if machine.hpcg_pflops
                else None
            )
            label = mode
            if machine.scalar_efficiency < 1.0:
                label += " (A64FX-optimized)" if optimized else " (generic)"
            rows.append(
                {
                    "machine": machine.name,
                    "mode": label,
                    "tflops_dp": rates["dp"],
                    "tflops_sp": rates["sp"],
                    "pct_peak": 100.0 * total_tf / peak,
                    "achieved_pflops": achieved_pf,
                    "pct_hpcg": pct_hpcg,
                }
            )
    return rows
