"""Weak- and strong-scaling curves (the paper's Fig. 5).

Weak scaling: constant cells/particles per device, efficiency relative to
the smallest run.  Strong scaling: a fixed global problem spread over more
nodes, with the AMReX granularity floor (at least one block of cells per
device) cutting the curve off — exactly the protocol of Sec. VI.A.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.perfmodel.machines import Machine, get_machine
from repro.perfmodel.network import NetworkModel
from repro.perfmodel.roofline import node_time_per_step

#: block (box) sizes used per machine in the paper's strong scaling runs
STRONG_SCALING_BLOCKS: Dict[str, int] = {
    "frontier": 256,
    "fugaku": 80,  # 64^3 - 96^3 in the paper; use the midpoint
    "summit": 128,
    "perlmutter": 128,
}


def default_node_counts(machine: Machine, n_points: int = 12) -> List[int]:
    """Log-spaced node counts from 1 to the machine's largest used size."""
    counts = np.unique(
        np.logspace(0, np.log10(machine.max_nodes_used), n_points).astype(int)
    )
    counts[-1] = machine.max_nodes_used  # guard against float round-down
    return [int(c) for c in np.unique(counts)]


def weak_scaling(
    machine_name: str,
    node_counts: Optional[Sequence[int]] = None,
    cells_per_device: float = 1.0e7,
    ppc: float = 2.0,
    mode: str = "dp",
) -> List[dict]:
    """Weak-scaling efficiency over ``node_counts``.

    Returns one record per node count: nodes, time per step [s], and
    efficiency relative to the smallest run (the paper's normalization).
    """
    machine = get_machine(machine_name)
    if node_counts is None:
        node_counts = default_node_counts(machine)
    model = NetworkModel(machine, cells_per_device, ppc, mode)
    times = [model.step_time(n) for n in node_counts]
    t0 = times[0]
    return [
        {"nodes": int(n), "time_per_step": t, "efficiency": t0 / t}
        for n, t in zip(node_counts, times)
    ]


def strong_scaling(
    machine_name: str,
    total_cells: float,
    node_counts: Optional[Sequence[int]] = None,
    ppc: float = 2.0,
    mode: str = "dp",
    block_cells: Optional[int] = None,
) -> List[dict]:
    """Strong-scaling efficiency for a fixed ``total_cells`` problem.

    Node counts beyond the granularity floor (fewer cells per device than
    one block) are marked ``feasible=False`` — past that point there are
    no blocks left to distribute, the effect the paper describes.
    """
    machine = get_machine(machine_name)
    if total_cells <= 0:
        raise ConfigurationError("total_cells must be positive")
    if node_counts is None:
        node_counts = default_node_counts(machine)
    if block_cells is None:
        block_cells = STRONG_SCALING_BLOCKS[machine_name.lower()] ** 3
    records = []
    base_time = None
    base_nodes = None
    for n in node_counts:
        devices = n * machine.devices_per_node
        cells_dev = total_cells / devices
        feasible = cells_dev >= block_cells
        model = NetworkModel(machine, cells_dev, ppc, mode)
        t = model.step_time(n)
        if base_time is None and feasible:
            base_time = t
            base_nodes = n
        eff = (
            (base_time * base_nodes) / (t * n)
            if base_time is not None
            else float("nan")
        )
        records.append(
            {
                "nodes": int(n),
                "cells_per_device": cells_dev,
                "time_per_step": t,
                "efficiency": eff,
                "feasible": feasible,
            }
        )
    return records


def efficiency_at(records: Sequence[dict], nodes: int) -> float:
    """Efficiency of the record closest to ``nodes``."""
    best = min(records, key=lambda r: abs(r["nodes"] - nodes))
    return best["efficiency"]
