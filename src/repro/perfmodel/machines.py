"""Machine catalog: the paper's Table II plus calibration data.

Vendor peak numbers and HPCG results are the published values quoted in
the paper.  ``measured_tflops_dp`` is the paper's own Table III
measurement of WarpX per device, used to calibrate the achieved-memory-
bandwidth fraction of each architecture (PIC is memory-bound, so the
achieved bandwidth fraction is the one free parameter per machine).
Everything else the model produces is derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Machine:
    """One machine of the paper's Table II."""

    name: str
    compute_hardware: str
    n_nodes: int
    devices_per_node: int
    #: vendor peak TFlop/s per device, double / single precision
    peak_tflops_dp: float
    peak_tflops_sp: float
    #: memory bandwidth per device [TByte/s]
    mem_tb_per_s: float
    #: published full-machine HPCG result [PFlop/s] (None: not yet available)
    hpcg_pflops: Optional[float]
    hpcg_nodes: Optional[int]
    #: injection bandwidth per node [GByte/s] and per-message latency [s]
    net_gb_per_s: float
    net_latency: float
    #: paper Table III: measured WarpX DP TFlop/s per device (calibration)
    measured_tflops_dp: float
    #: nodes actually available / used in the paper's largest runs
    max_nodes_used: int
    #: relative scalar (unvectorized) throughput for CPU machines: the
    #: A64FX baseline achieved only a few percent SIMD utilisation
    scalar_efficiency: float = 1.0

    @property
    def n_devices(self) -> int:
        return self.n_nodes * self.devices_per_node

    def bw_fraction(self, arithmetic_intensity_dp: float) -> float:
        """Achieved fraction of vendor memory bandwidth, from calibration.

        With PIC memory-bound, measured Flop/s = AI * BW_achieved, so the
        single calibrated parameter is BW_achieved / BW_vendor.
        """
        achieved_tb = self.measured_tflops_dp / arithmetic_intensity_dp
        frac = achieved_tb / self.mem_tb_per_s
        return min(frac, 1.0)


MACHINES: Dict[str, Machine] = {
    "frontier": Machine(
        name="Frontier",
        compute_hardware="MI250X",
        n_nodes=9472,
        devices_per_node=4,
        peak_tflops_dp=47.9,
        peak_tflops_sp=95.7,
        mem_tb_per_s=3.3,
        hpcg_pflops=None,
        hpcg_nodes=None,
        net_gb_per_s=100.0,
        net_latency=2.0e-6,
        measured_tflops_dp=1.58,
        max_nodes_used=9316,
    ),
    "fugaku": Machine(
        name="Fugaku",
        compute_hardware="A64FX",
        n_nodes=158976,
        devices_per_node=1,
        peak_tflops_dp=3.38,
        peak_tflops_sp=6.76,
        mem_tb_per_s=1.0,
        hpcg_pflops=16.0,
        hpcg_nodes=158976,
        net_gb_per_s=40.8,
        net_latency=1.0e-6,
        # the generic (non-tuned) code path: Table III reports 0.037 TF/s;
        # the A64FX-optimized path reaches 0.12 TF/s in MP mode
        measured_tflops_dp=0.037,
        max_nodes_used=152064,
        scalar_efficiency=0.31,  # 0.037 / 0.12: unvectorized vs tuned
    ),
    "summit": Machine(
        name="Summit",
        compute_hardware="V100 SXM2 (16GB)",
        n_nodes=4608,
        devices_per_node=6,
        peak_tflops_dp=7.5,
        peak_tflops_sp=15.0,
        mem_tb_per_s=0.9,
        hpcg_pflops=2.93,
        hpcg_nodes=4608,
        net_gb_per_s=25.0,
        net_latency=3.0e-6,
        measured_tflops_dp=0.62,
        max_nodes_used=4608,
    ),
    "perlmutter": Machine(
        name="Perlmutter",
        compute_hardware="A100 SXM2 (40GB)",
        n_nodes=1526,
        devices_per_node=4,
        peak_tflops_dp=9.7,
        peak_tflops_sp=19.5,
        mem_tb_per_s=1.6,
        hpcg_pflops=1.91,
        hpcg_nodes=1424,
        net_gb_per_s=25.0,  # Slingshot 10 at the time of the paper's runs
        net_latency=2.0e-6,
        measured_tflops_dp=1.26,
        max_nodes_used=1100,
    ),
}

#: the paper's Fig. 5 end-point weak-scaling efficiencies, used to
#: calibrate each machine's collective-overhead coefficient
WEAK_SCALING_ANCHORS: Dict[str, Dict[str, float]] = {
    "frontier": {"nodes": 8576, "efficiency": 0.80},
    "fugaku": {"nodes": 152064, "efficiency": 0.84},
    "summit": {"nodes": 4263, "efficiency": 0.74},
    "perlmutter": {"nodes": 1088, "efficiency": 0.62},
}


def get_machine(name: str) -> Machine:
    key = name.lower()
    if key not in MACHINES:
        raise ConfigurationError(
            f"unknown machine {name!r}; choose from {sorted(MACHINES)}"
        )
    return MACHINES[key]
