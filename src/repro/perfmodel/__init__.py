"""Performance models of the paper's evaluation.

The paper's numbers were measured on Frontier, Fugaku, Summit and
Perlmutter.  This package substitutes a mechanistic model for the
machines: a machine catalog (Table II), analytic per-kernel flop/byte
counts audited against the real kernels, a roofline node model, an
alpha-beta network model, and the figure-of-merit of Eq. (1).  Per-device
sustained Flop/s are *calibrated* against the paper's Table III
measurements (documented in :mod:`repro.perfmodel.machines`); everything
built on top — mixed-precision predictions, full-machine rates, scaling
curves, FOM values — is derived from the model and compared against the
paper."""

from repro.perfmodel.machines import Machine, MACHINES, get_machine
from repro.perfmodel.kernels import KernelCounts, pic_step_counts
from repro.perfmodel.roofline import node_time_per_step, device_flops
from repro.perfmodel.network import NetworkModel, halo_surface_bytes
from repro.perfmodel.scaling import weak_scaling, strong_scaling
from repro.perfmodel.fom import figure_of_merit, FOM_HISTORY, model_fom
from repro.perfmodel.flops import flops_table
from repro.perfmodel.capabilities import CAPABILITY_TABLE, repro_feature_map

__all__ = [
    "Machine",
    "MACHINES",
    "get_machine",
    "KernelCounts",
    "pic_step_counts",
    "node_time_per_step",
    "device_flops",
    "NetworkModel",
    "halo_surface_bytes",
    "weak_scaling",
    "strong_scaling",
    "figure_of_merit",
    "FOM_HISTORY",
    "model_fom",
    "flops_table",
    "CAPABILITY_TABLE",
    "repro_feature_map",
]
