"""The WarpX figure of merit, Eq. (1) of the paper, and its history.

    FOM = (alpha N_c + beta N_p) / (avg time per step * percent of system)

with alpha = 0.1, beta = 0.9.  :data:`FOM_HISTORY` records the paper's
Table IV measurements verbatim; :func:`model_fom` recomputes the final
per-machine entries from the performance model for comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.exceptions import ConfigurationError
from repro.perfmodel.machines import Machine, get_machine
from repro.perfmodel.network import NetworkModel

ALPHA = 0.1
BETA = 0.9


def figure_of_merit(
    n_cells: float,
    n_particles: float,
    avg_time_per_step: float,
    percent_of_system: float,
    alpha: float = ALPHA,
    beta: float = BETA,
) -> float:
    """Eq. (1): weighted problem size over time-per-step and system share."""
    if avg_time_per_step <= 0 or not (0 < percent_of_system <= 1):
        raise ConfigurationError(
            "need positive time per step and 0 < system share <= 1"
        )
    return (alpha * n_cells + beta * n_particles) / (
        avg_time_per_step * percent_of_system
    )


#: Table IV verbatim: (date, machine key, cells per node, nodes, mode, FOM)
FOM_HISTORY: List[dict] = [
    {"date": "3/19", "machine": "cori", "nc_per_node": 0.4e7, "nodes": 6625, "mode": "dp", "fom": 1.0e11},
    {"date": "6/19", "machine": "summit", "nc_per_node": 2.8e7, "nodes": 1000, "mode": "dp", "fom": 7.8e11},
    {"date": "9/19", "machine": "summit", "nc_per_node": 2.3e7, "nodes": 2560, "mode": "dp", "fom": 6.8e11},
    {"date": "1/20", "machine": "summit", "nc_per_node": 2.3e7, "nodes": 2560, "mode": "dp", "fom": 1.0e12},
    {"date": "2/20", "machine": "summit", "nc_per_node": 2.5e7, "nodes": 4263, "mode": "dp", "fom": 1.2e12},
    {"date": "6/20", "machine": "summit", "nc_per_node": 2.0e7, "nodes": 4263, "mode": "dp", "fom": 1.4e12},
    {"date": "7/20", "machine": "summit", "nc_per_node": 2.0e8, "nodes": 4263, "mode": "dp", "fom": 2.5e12},
    {"date": "3/21", "machine": "summit", "nc_per_node": 2.0e8, "nodes": 4263, "mode": "dp", "fom": 2.9e12},
    {"date": "6/21", "machine": "summit", "nc_per_node": 2.0e8, "nodes": 4263, "mode": "dp", "fom": 2.7e12},
    {"date": "7/21", "machine": "perlmutter", "nc_per_node": 2.7e8, "nodes": 960, "mode": "dp", "fom": 1.1e12},
    {"date": "12/21", "machine": "summit", "nc_per_node": 2.0e8, "nodes": 4263, "mode": "dp", "fom": 3.3e12},
    {"date": "4/22", "machine": "perlmutter", "nc_per_node": 4.0e8, "nodes": 928, "mode": "dp", "fom": 1.0e12},
    {"date": "4/22", "machine": "perlmutter", "nc_per_node": 4.0e8, "nodes": 928, "mode": "mp", "fom": 1.4e12},
    {"date": "4/22", "machine": "summit", "nc_per_node": 2.0e8, "nodes": 4263, "mode": "dp", "fom": 3.4e12},
    {"date": "4/22", "machine": "fugaku", "nc_per_node": 3.1e6, "nodes": 98304, "mode": "mp", "fom": 8.1e12},
    {"date": "6/22", "machine": "perlmutter", "nc_per_node": 4.4e8, "nodes": 1088, "mode": "dp", "fom": 1.0e12},
    {"date": "7/22", "machine": "fugaku", "nc_per_node": 3.1e6, "nodes": 98304, "mode": "dp", "fom": 2.2e12},
    {"date": "7/22", "machine": "fugaku", "nc_per_node": 3.1e6, "nodes": 152064, "mode": "mp", "fom": 9.3e12},
    {"date": "7/22", "machine": "frontier", "nc_per_node": 8.1e8, "nodes": 8576, "mode": "dp", "fom": 1.1e13},
]


def model_fom(
    machine_name: str,
    nc_per_node: float,
    nodes: int,
    ppc: float = 2.0,
    mode: str = "dp",
    extrapolate_full_machine: bool = True,
    optimized: bool = True,
) -> float:
    """FOM predicted by the performance model for one Table IV entry.

    Time per step comes from the roofline + network model; like the paper,
    the FOM is extrapolated from the measured node count to the full
    machine (the percent-of-system denominator does that by construction).
    """
    machine = get_machine(machine_name)
    cells_per_device = nc_per_node / machine.devices_per_node
    model = NetworkModel(machine, cells_per_device, ppc, mode, optimized=optimized)
    t_step = model.step_time(nodes)
    n_cells = nc_per_node * nodes
    n_particles = ppc * n_cells
    percent = nodes / machine.n_nodes if extrapolate_full_machine else 1.0
    return figure_of_merit(n_cells, n_particles, t_step, percent)


def final_history_entries() -> List[dict]:
    """The most recent Table IV entry per machine (excluding retired Cori)."""
    latest: Dict[str, dict] = {}
    for entry in FOM_HISTORY:
        if entry["machine"] == "cori":
            continue
        latest[(entry["machine"], entry["mode"])] = entry
    return list(latest.values())
