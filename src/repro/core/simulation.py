"""The explicit electromagnetic PIC cycle (paper Fig. 3) on one level.

One :class:`Simulation` owns a Yee grid, a set of species, optional laser
antennas and an optional moving window, and advances them with the
standard leapfrog ordering:

1. gather E, B at particle positions (fields and positions at step n),
2. momentum push (u: n-1/2 -> n+1/2), position push (x: n -> n+1),
3. charge-conserving current deposition over the motion (J at n+1/2),
4. laser antenna currents, current smoothing, boundary folds,
5. Maxwell field advance (E, B: n -> n+1),
6. field and particle boundaries, moving window shift.

Mesh refinement is layered on top by :class:`repro.core.mr_simulation.
MRSimulation`, which overrides the gather/deposit/field-advance hooks.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.sanitize import Sanitizer
from repro.constants import c
from repro.diagnostics.timers import Timers
from repro.exceptions import ConfigurationError
from repro.grid.boundary import (
    accumulate_periodic_sources,
    apply_damping,
    apply_periodic,
)
from repro.grid.maxwell import MaxwellSolver, cfl_dt
from repro.grid.pml import PMLMaxwellSolver
from repro.grid.yee import FIELD_COMPONENTS, SOURCE_COMPONENTS, YeeGrid
from repro.core.moving_window import MovingWindow
from repro.observability.tracer import NULL_TRACER, phase_span
from repro.laser.antenna import LaserAntenna
from repro.particles.injection import DensityProfile, inject_plasma
from repro.particles.kernels import resolve_kernel_set
from repro.particles.pusher import lorentz_factor, push_boris, push_positions, push_vay
from repro.particles.shapes import required_guards
from repro.particles.sorting import sort_species_by_bin
from repro.particles.species import Species

VALID_BOUNDARIES = ("periodic", "pml", "damped", "open")


def smooth_binomial(arr: np.ndarray, axis: int, passes: int = 1) -> None:
    """In-place (1,2,1)/4 binomial smoothing along ``axis``.

    The standard current filter of electromagnetic PIC codes: damps the
    short-wavelength noise that drives the finite-grid instability in
    dense plasmas.
    """
    for _ in range(passes):
        lo = [slice(None)] * arr.ndim
        hi = [slice(None)] * arr.ndim
        mid = [slice(None)] * arr.ndim
        lo[axis] = slice(0, -2)
        mid[axis] = slice(1, -1)
        hi[axis] = slice(2, None)
        arr[tuple(mid)] = (
            0.25 * arr[tuple(lo)] + 0.5 * arr[tuple(mid)] + 0.25 * arr[tuple(hi)]
        )


class SpeciesEntry:
    """A species plus its continuous-injection configuration."""

    def __init__(
        self,
        species: Species,
        profile: Optional[DensityProfile] = None,
        ppc=None,
        continuous: bool = False,
        temperature_uth: float = 0.0,
    ) -> None:
        self.species = species
        self.profile = profile
        self.ppc = ppc
        self.continuous = continuous
        self.temperature_uth = temperature_uth


class Simulation:
    """Single-level electromagnetic PIC simulation.

    Parameters
    ----------
    grid:
        The :class:`YeeGrid` to simulate on.
    dt:
        Time step [s]; defaults to ``cfl`` times the Courant limit.
    cfl:
        Courant fraction used when ``dt`` is not given.
    shape_order:
        B-spline order for gather and deposition (1-3).
    pusher:
        ``"boris"`` or ``"vay"``.
    deposition:
        ``"esirkepov"`` (charge-conserving, default) or ``"direct"``.
    kernels:
        Gather/deposit kernel variant from :mod:`repro.particles.kernels`
        (``"vectorized"`` default, ``"tiled"`` for the sort-aware fast
        path, ``"compiled"`` for the native numba/C tier, ``"reference"``
        for the scalar baseline).  All variants compute identical
        physics; the active name is recorded on the gather/deposit
        tracer spans.  Requesting a tier whose backend is unavailable on
        this machine (e.g. ``"compiled"`` without numba or a C compiler)
        falls back to ``"tiled"``; ``self.kernels`` always names the
        variant actually running and ``self.kernel_fallback_reason``
        says why, if a fallback happened.
    precision:
        ``"float64"`` (default) or ``"mixed"`` (alias ``"float32"``):
        the paper's MP mode — field storage, deposition and the Maxwell
        solve in single precision, particle quantities, shape weights
        and geometry in double.  The grid's field arrays are converted
        in place; the per-kernel error budget is documented and asserted
        by ``validate_kernel_set(..., precision="float32")``.
    boundaries:
        Per-axis boundary family from ``("periodic", "pml", "damped",
        "open")``; a single string applies to every axis.
    n_absorber:
        Thickness (cells) of the PML / damping layers.
    smoothing_passes:
        Binomial current-filter passes per step (0 disables).
    sort_interval:
        Steps between Morton re-sorts of the particles (0 disables).
    maxwell_solver:
        ``"yee"`` (explicit FDTD, the paper's production solver) or
        ``"psatd"`` (spectral; requires fully periodic boundaries).
    v_galilean:
        Galilean velocity [m/s] of the comoving-current PSATD closure
        (NCI suppression in boosted frames; see
        :meth:`repro.core.boosted_frame.BoostedFrame.galilean_velocity`).
        Only valid with ``maxwell_solver="psatd"``.
    """

    def __init__(
        self,
        grid: YeeGrid,
        dt: Optional[float] = None,
        cfl: float = 0.95,
        shape_order: int = 2,
        pusher: str = "boris",
        deposition: str = "esirkepov",
        kernels: str = "vectorized",
        boundaries="periodic",
        n_absorber: int = 8,
        smoothing_passes: int = 1,
        sort_interval: int = 0,
        timers: Optional[Timers] = None,
        maxwell_solver: str = "yee",
        tracer=None,
        precision: Optional[str] = None,
        v_galilean=None,
    ) -> None:
        self.grid = grid
        if precision is not None:
            if precision in ("mixed", "float32"):
                # convert before any solver captures grid.dtype
                grid.set_precision(np.float32)
            elif precision == "float64":
                grid.set_precision(np.float64)
            else:
                raise ConfigurationError(
                    f"unknown precision {precision!r}; expected float64, "
                    "mixed or float32"
                )
        #: the active field-precision policy ("mixed" = float32 fields +
        #: float64 particle ops); None in the constructor inherits the
        #: grid's dtype as built
        self.precision = "mixed" if grid.dtype == np.float32 else "float64"
        self.dt = float(dt) if dt is not None else cfl_dt(grid.dx, cfl)
        self.shape_order = int(shape_order)
        if grid.guards < required_guards(self.shape_order) + 1:
            raise ConfigurationError(
                f"shape order {shape_order} needs at least "
                f"{required_guards(self.shape_order) + 1} guard cells"
            )
        if pusher not in ("boris", "vay"):
            raise ConfigurationError(f"unknown pusher {pusher!r}")
        self._push_momenta = push_boris if pusher == "boris" else push_vay
        if deposition not in ("esirkepov", "direct"):
            raise ConfigurationError(f"unknown deposition {deposition!r}")
        self.deposition = deposition
        #: gather/deposit kernel variant, resolved against the registry;
        #: a requested-but-unavailable tier (e.g. "compiled" with no
        #: backend) degrades to the tiled fast path and records why
        self.kernel_set, self.kernel_fallback_reason = resolve_kernel_set(
            kernels
        )
        self.kernels = self.kernel_set.name
        if isinstance(boundaries, str):
            boundaries = (boundaries,) * grid.ndim
        if len(boundaries) != grid.ndim:
            raise ConfigurationError("need one boundary family per axis")
        for b in boundaries:
            if b not in VALID_BOUNDARIES:
                raise ConfigurationError(f"unknown boundary {b!r}")
        self.boundaries = tuple(boundaries)
        self.n_absorber = int(n_absorber)
        self.smoothing_passes = int(smoothing_passes)
        self.sort_interval = int(sort_interval)
        self.timers = timers if timers is not None else Timers()
        #: span recorder; the shared no-op unless observability is attached
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: metrics registry set by repro.observability.attach_observability
        self.metrics = None

        if maxwell_solver not in ("yee", "psatd"):
            raise ConfigurationError(f"unknown Maxwell solver {maxwell_solver!r}")
        self.maxwell_solver = maxwell_solver
        pml_axes = tuple(
            d for d, b in enumerate(self.boundaries) if b == "pml"
        )
        if maxwell_solver != "psatd" and v_galilean is not None:
            raise ConfigurationError(
                "v_galilean is a property of the spectral solver; "
                "use maxwell_solver='psatd'"
            )
        if maxwell_solver == "psatd":
            if any(b != "periodic" for b in self.boundaries):
                raise ConfigurationError(
                    "the PSATD solver requires fully periodic boundaries"
                )
            from repro.grid.psatd import PSATDMaxwellSolver

            self.solver = PSATDMaxwellSolver(grid, self.dt, v_galilean=v_galilean)
        elif pml_axes:
            self.solver = PMLMaxwellSolver(
                grid, self.dt, n_pml=self.n_absorber, axes=pml_axes
            )
        else:
            self.solver = MaxwellSolver(grid, self.dt)

        self.entries: Dict[str, SpeciesEntry] = {}
        self.antennas: List[LaserAntenna] = []
        self.moving_window: Optional[MovingWindow] = None
        #: window (pending, cells_shifted) parked by a checkpoint restore
        #: that ran before the window was attached
        self._deferred_window_state: Optional[Tuple[float, int]] = None
        self.time = 0.0
        self.step_count = 0
        #: opt-in runtime invariant checks (None unless REPRO_SANITIZE=1)
        self.sanitizer: Optional[Sanitizer] = Sanitizer.from_env()
        #: hooks called as f(sim) after each completed step
        self.callbacks: List[Callable[["Simulation"], None]] = []

    # -- configuration ----------------------------------------------------
    @property
    def species(self) -> Dict[str, Species]:
        return {name: e.species for name, e in self.entries.items()}

    def add_species(
        self,
        species: Species,
        profile: Optional[DensityProfile] = None,
        ppc=None,
        continuous_injection: bool = False,
        temperature_uth: float = 0.0,
        lo=None,
        hi=None,
        rng: Optional[np.random.Generator] = None,
    ) -> Species:
        """Register a species; optionally fill the grid from ``profile``."""
        if species.ndim != self.grid.ndim:
            raise ConfigurationError("species and grid dimensionality differ")
        if species.name in self.entries:
            raise ConfigurationError(f"duplicate species {species.name!r}")
        self.entries[species.name] = SpeciesEntry(
            species, profile, ppc, continuous_injection, temperature_uth
        )
        if profile is not None and ppc is not None:
            inject_plasma(
                species,
                self.grid,
                profile,
                ppc,
                lo=lo,
                hi=hi,
                temperature_uth=temperature_uth,
                rng=rng,
            )
        return species

    def add_laser(self, antenna: LaserAntenna) -> None:
        self.antennas.append(antenna)

    def set_moving_window(self, window: MovingWindow) -> None:
        if self.boundaries[0] == "pml":
            raise ConfigurationError(
                "the moving window requires non-PML x boundaries "
                "(use 'damped' or 'open'); split PML state cannot be shifted"
            )
        self.moving_window = window
        if self._deferred_window_state is not None:
            # a checkpoint restored before the window existed parked the
            # window phase here; apply it so the restart is still exact
            window.pending, window.cells_shifted = self._deferred_window_state
            self._deferred_window_state = None

    # -- hooks overridden by the MR simulation ------------------------------
    def _gather(self, species: Species) -> Tuple[np.ndarray, np.ndarray]:
        return self.kernel_set.gather(
            self.grid, species.positions, self.shape_order
        )

    def _deposit(
        self,
        species: Species,
        x_old: np.ndarray,
        x_new: np.ndarray,
        velocities: np.ndarray,
    ) -> None:
        if self.deposition == "esirkepov":
            self.kernel_set.deposit_current(
                self.grid,
                x_old,
                x_new,
                velocities,
                species.weights,
                species.charge,
                self.dt,
                self.shape_order,
            )
        else:
            self.kernel_set.deposit_current_direct(
                self.grid,
                0.5 * (x_old + x_new),
                velocities,
                species.weights,
                species.charge,
                self.shape_order,
            )

    def _finalize_deposits(self) -> None:
        """Hook: combine per-level deposits (used by the MR simulation)."""

    def _advance_fields(self) -> None:
        # dispatch on the solver's declared capability, not its config
        # string: solvers that advance E and B together (PSATD) have no
        # leapfrog halves to interleave
        if getattr(self.solver, "advances_together", False):
            self.solver.step()
            return
        self.solver.push_b(0.5)
        self.solver.push_e(1.0)
        self.solver.push_b(0.5)

    # -- the PIC cycle ------------------------------------------------------
    def step(self, n: int = 1) -> None:
        """Advance the simulation ``n`` steps."""
        for _ in range(n):
            self._single_step()

    def _phase(self, name: str, **attrs):
        """Timer accumulation for one PIC phase, plus a span when tracing.

        With the tracer disabled this is exactly ``timers.timer(name)``
        (one attribute check of overhead); enabled, the same interval is
        also recorded as a span nested under the current step.
        """
        if self.tracer.enabled:
            return phase_span(self.timers, self.tracer, name, **attrs)
        return self.timers.timer(name)

    def _single_step(self) -> None:
        with self.tracer.span("step", cat="step", step=self.step_count):
            self._step_body()

    def _step_body(self) -> None:
        g = self.grid
        self.timers.reset_lap()
        with self._phase("zero_sources"):
            g.zero_sources()

        for entry in self.entries.values():
            sp = entry.species
            if sp.n == 0:
                continue
            with self._phase("gather", species=sp.name, kernel=self.kernels):
                e_f, b_f = self._gather(sp)
            if self.metrics is not None:
                self.metrics.counter(
                    "kernel.dispatch", variant=self.kernels, phase="gather"
                ).add(1)
            with self._phase("push", species=sp.name):
                sp.momenta = self._push_momenta(
                    sp.momenta, e_f, b_f, sp.charge, sp.mass, self.dt
                )
                x_old = sp.positions
                sp.positions = push_positions(x_old, sp.momenta, self.dt, g.ndim)
            with self._phase("deposit", species=sp.name, kernel=self.kernels):
                vel = sp.momenta * (c / lorentz_factor(sp.momenta))[:, None]
                self._deposit(sp, x_old, sp.positions, vel)
            if self.metrics is not None:
                self.metrics.counter(
                    "kernel.dispatch", variant=self.kernels, phase="deposit"
                ).add(1)

        with self._phase("finalize_deposits"):
            self._finalize_deposits()

        with self._phase("antenna"):
            for antenna in self.antennas:
                antenna.add_current(g, self.time + 0.5 * self.dt)

        with self._phase("source_boundaries"):
            if self.smoothing_passes > 0:
                for comp in ("Jx", "Jy", "Jz"):
                    for axis in range(g.ndim):
                        smooth_binomial(
                            g.fields[comp], axis, self.smoothing_passes
                        )
            for axis, b in enumerate(self.boundaries):
                if b == "periodic":
                    accumulate_periodic_sources(g, axis)

        with self._phase("maxwell"):
            self._advance_fields()

        with self._phase("field_boundaries"):
            for axis, b in enumerate(self.boundaries):
                if b == "periodic":
                    apply_periodic(g, axis)
                elif b == "damped":
                    apply_damping(g, axis, self.n_absorber, strength=0.04)

        with self._phase("particle_boundaries"):
            self._apply_particle_boundaries()

        if self.moving_window is not None:
            with self._phase("moving_window"):
                shifts = self.moving_window.cells_to_shift(
                    self.time, self.dt, g.dx[0]
                )
                for _ in range(shifts):
                    self._shift_window_one_cell()

        if (
            self.sort_interval > 0
            and self.step_count % self.sort_interval == self.sort_interval - 1
        ):
            with self._phase("sort"):
                for entry in self.entries.values():
                    if entry.species.n:
                        sort_species_by_bin(entry.species, g)

        self.time += self.dt
        self.step_count += 1
        lap = self.timers.lap()
        if self.metrics is not None:
            self.metrics.counter("particles.pushed").add(self.total_particles())
            self.metrics.histogram("step.seconds").observe(lap)
        for cb in self.callbacks:
            cb(self)

        # last, so anything the whole step (callbacks included) left behind
        # is caught before the next gather consumes it
        if self.sanitizer is not None:
            with self._phase("sanitize"):
                self._run_sanitizers()

    def _run_sanitizers(self) -> None:
        """Per-step invariant checks (opt-in via ``REPRO_SANITIZE=1``).

        SAN001: fields finite after the solve.  SAN002: particles inside
        the domain after push + boundaries.  SAN003: guard cells on
        periodic axes hold the periodic image of the valid data (skipped
        on the moving-window axis, whose roll legitimately shifts guards).
        """
        g = self.grid
        step = self.step_count
        san = self.sanitizer
        san.check_fields_finite(g, step)
        san.check_species_map(self.species, g.lo, g.hi, step)
        window_axis = 0 if self.moving_window is not None else None
        for axis, b in enumerate(self.boundaries):
            if b == "periodic" and axis != window_axis:
                san.check_guard_consistency(g, axis, step)

    # -- boundaries / window -------------------------------------------------
    def _apply_particle_boundaries(self) -> None:
        g = self.grid
        for entry in self.entries.values():
            sp = entry.species
            if sp.n == 0:
                continue
            for axis in range(g.ndim):
                length = g.hi[axis] - g.lo[axis]
                x = sp.positions[:, axis]
                if self.boundaries[axis] == "periodic":
                    np.mod(x - g.lo[axis], length, out=x)
                    x += g.lo[axis]
                else:
                    out = (x < g.lo[axis]) | (x >= g.hi[axis])
                    if np.any(out):
                        sp.remove(out)

    def _shift_window_one_cell(self) -> None:
        """Move the domain one cell along the window direction: roll
        fields, cull trailing particles, inject fresh plasma in the
        leading cells."""
        g = self.grid
        sign = self.moving_window.direction
        for name in FIELD_COMPONENTS + SOURCE_COMPONENTS:
            arr = g.fields[name]
            arr[...] = np.roll(arr, -sign, axis=0)
            if sign > 0:
                arr[-1, ...] = 0.0
            else:
                arr[0, ...] = 0.0
        g.lo = (g.lo[0] + sign * g.dx[0],) + g.lo[1:]
        g.hi = (g.hi[0] + sign * g.dx[0],) + g.hi[1:]
        for entry in self.entries.values():
            sp = entry.species
            if sp.n:
                if sign > 0:
                    sp.remove(sp.positions[:, 0] < g.lo[0])
                else:
                    sp.remove(sp.positions[:, 0] >= g.hi[0])
            if entry.continuous and entry.profile is not None:
                if sign > 0:
                    lead_lo = (g.hi[0] - g.dx[0],) + g.lo[1:]
                    lead_hi = g.hi
                else:
                    lead_lo = g.lo
                    lead_hi = (g.lo[0] + g.dx[0],) + g.hi[1:]
                inject_plasma(
                    sp,
                    g,
                    entry.profile,
                    entry.ppc,
                    lo=lead_lo,
                    hi=lead_hi,
                    temperature_uth=entry.temperature_uth,
                )

    # -- convenience ---------------------------------------------------------
    def run_until(self, t_end: float) -> None:
        while self.time < t_end - 1e-30:
            self._single_step()

    def total_particles(self) -> int:
        return sum(e.species.n for e in self.entries.values())
