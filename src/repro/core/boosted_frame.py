"""Lorentz-boosted-frame utilities (paper Table I, row "Boosted frame").

The paper's final section highlights boosted-frame modeling as the key to
chaining meter-scale accelerator stages: observing an LWFA from a frame
moving with the wake compresses the range of space/time scales by
``(1 + beta)^2 gamma^2 ~ 4 gamma^2`` (Vay 2007, paper ref. [50]), turning
month-long lab-frame runs into hours.

This module provides the frame transformation of every quantity a PIC
setup needs — particle kinematics, plasma density, laser parameters — plus
the classic speedup estimate.  The boost axis is +x, matching the
propagation axis convention of the rest of the package.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.constants import c
from repro.exceptions import ConfigurationError
from repro.laser.profiles import GaussianLaser


class BoostedFrame:
    """A frame moving with normalized velocity ``beta`` along +x.

    Construct from either ``gamma`` or ``beta``.
    """

    def __init__(self, gamma: float = None, beta: float = None) -> None:
        if (gamma is None) == (beta is None):
            raise ConfigurationError("give exactly one of gamma or beta")
        if gamma is not None:
            if gamma < 1.0:
                raise ConfigurationError("gamma must be >= 1")
            self.gamma = float(gamma)
            self.beta = math.sqrt(1.0 - 1.0 / self.gamma**2)
        else:
            if not (0.0 <= beta < 1.0):
                raise ConfigurationError("beta must be in [0, 1)")
            self.beta = float(beta)
            self.gamma = 1.0 / math.sqrt(1.0 - self.beta**2)

    # -- kinematics -------------------------------------------------------
    def transform_momenta(self, u: np.ndarray) -> np.ndarray:
        """Normalized momenta (n, 3) from the lab to the boosted frame.

        ``u'_x = gamma (u_x - beta gamma_p)``; transverse components are
        invariant.  The mass-shell relation ``gamma_p^2 - |u|^2 = 1`` is
        preserved exactly.
        """
        u = np.atleast_2d(np.asarray(u, dtype=np.float64))
        gamma_p = np.sqrt(1.0 + np.einsum("ij,ij->i", u, u))
        out = u.copy()
        out[:, 0] = self.gamma * (u[:, 0] - self.beta * gamma_p)
        return out

    def transform_gamma(self, u: np.ndarray) -> np.ndarray:
        """Particle Lorentz factors in the boosted frame."""
        u = np.atleast_2d(np.asarray(u, dtype=np.float64))
        gamma_p = np.sqrt(1.0 + np.einsum("ij,ij->i", u, u))
        return self.gamma * (gamma_p - self.beta * u[:, 0])

    def transform_snapshot_positions(self, positions: np.ndarray) -> np.ndarray:
        """A t = 0 lab snapshot seen from the boosted frame at t' = 0.

        Lab-frame lengths along x contract by ``1/gamma`` (the usual
        boosted-frame initialization of static structures like the gas
        column).
        """
        out = np.array(positions, dtype=np.float64, copy=True)
        out[:, 0] /= self.gamma
        return out

    # -- bulk plasma --------------------------------------------------------
    def transform_density(self, n_lab: float) -> float:
        """Proper density of lab-static plasma, seen boosted: n' = gamma n."""
        return self.gamma * n_lab

    def transform_length(self, length_lab: float) -> float:
        """A lab-static structure's extent along x: L' = L / gamma."""
        return length_lab / self.gamma

    # -- laser ---------------------------------------------------------------
    def transform_laser(self, laser: GaussianLaser) -> GaussianLaser:
        """A +x co-propagating pulse seen from the boosted frame.

        The frequency Doppler-downshifts (``omega' = omega gamma (1 -
        beta)``), so the wavelength and duration stretch by ``gamma (1 +
        beta)``; the normalized amplitude a0 and the waist are invariant.
        """
        stretch = self.gamma * (1.0 + self.beta)
        return GaussianLaser(
            wavelength=laser.wavelength * stretch,
            a0=laser.a0,
            waist=laser.waist,
            duration=laser.duration * stretch,
            polarization=laser.polarization,
            incidence_angle=laser.incidence_angle,
            t_peak=laser.t_peak * stretch,
            cep_phase=laser.cep_phase,
        )

    # -- solver coupling -----------------------------------------------------
    def galilean_velocity(self) -> Tuple[float, float, float]:
        """Galilean velocity for the comoving-current PSATD closure [m/s].

        In the boosted frame the lab-static plasma streams backward at
        ``-beta c x_hat``; handing this to
        ``PSATDMaxwellSolver(..., v_galilean=...)`` (or
        ``Simulation(..., v_galilean=...)``) makes the spectral solver
        integrate the current as uniformly advected with the plasma,
        which is the NCI-suppressing Galilean/comoving PSATD scheme
        (Lehe et al. 2016) the paper's boosted-frame runs rely on.
        """
        return (-self.beta * c, 0.0, 0.0)

    # -- the point of it all -----------------------------------------------------
    def scale_compression(self) -> float:
        """The Vay (2007) range-of-scales compression ``(1+beta)^2 gamma^2``.

        The laser wavelength stretches by ``gamma (1 + beta)`` while the
        propagation distance contracts by ``gamma (1 + beta)`` (length
        contraction plus the plasma rushing toward the pulse), so the
        ratio of largest to smallest scale — and with it the step count —
        drops by the square.
        """
        return (1.0 + self.beta) ** 2 * self.gamma**2

    def steps_estimate(
        self, interaction_length: float, wavelength: float, cells_per_wavelength: float = 16.0
    ) -> Tuple[float, float]:
        """(lab_steps, boosted_steps) to cross ``interaction_length``.

        A back-of-envelope count: steps ~ length / (c dt) with dt set by
        the laser resolution in each frame.
        """
        dt_lab = wavelength / cells_per_wavelength / c
        lab_steps = interaction_length / (c * dt_lab)
        return lab_steps, lab_steps / self.scale_compression()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BoostedFrame(gamma={self.gamma:.3f}, beta={self.beta:.6f})"
