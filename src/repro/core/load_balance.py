"""Load balancing strategies (paper Sec. V.C).

Domain decomposition assigns rectangular grid boxes to ranks.  WarpX
supports three strategies, all reproduced here:

* **round robin** — boxes dealt to ranks in order;
* **space-filling curve** — boxes sorted along a Morton (Z-order) curve
  and split into contiguous, cost-balanced segments, which keeps
  spatially close boxes on the same rank (low halo traffic);
* **knapsack** — the longest-processing-time greedy heuristic for the
  multiway partition problem, which balances cost with no regard for
  locality.

Costs per box come either from a heuristic (cells + weighted particle
count, see :class:`repro.core.costs.CostModel`) or from measured per-box
runtimes — the "measured runtime cost information" mode of the paper's
dynamic load balancer.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Set

import numpy as np

from repro.exceptions import DecompositionError
from repro.particles.sorting import morton_encode


def _validate(costs: Sequence[float], n_ranks: int) -> np.ndarray:
    costs = np.asarray(costs, dtype=np.float64)
    if n_ranks < 1:
        raise DecompositionError("need at least one rank")
    if costs.ndim != 1 or costs.size == 0:
        raise DecompositionError("costs must be a non-empty 1D sequence")
    if np.any(costs < 0):
        raise DecompositionError("costs must be non-negative")
    return costs


def _alive_ranks(n_ranks: int, exclude_ranks: Sequence[int]) -> List[int]:
    """Ranks eligible for work: ``[0, n_ranks)`` minus the excluded set."""
    excl: Set[int] = {int(r) for r in exclude_ranks}
    alive = [r for r in range(n_ranks) if r not in excl]
    if not alive:
        raise DecompositionError(
            f"all {n_ranks} ranks excluded; nothing left to assign work to"
        )
    return alive


def distribute_round_robin(
    costs: Sequence[float], n_ranks: int, exclude_ranks: Sequence[int] = ()
) -> np.ndarray:
    """Deal boxes to the eligible ranks in order (``i % n_alive``-th)."""
    costs = _validate(costs, n_ranks)
    alive = np.asarray(_alive_ranks(n_ranks, exclude_ranks), dtype=np.intp)
    return alive[np.arange(costs.size, dtype=np.intp) % alive.size]


def distribute_knapsack(
    costs: Sequence[float], n_ranks: int, exclude_ranks: Sequence[int] = ()
) -> np.ndarray:
    """Longest-processing-time greedy multiway partition.

    Boxes are taken in decreasing cost order and each goes to the
    currently least-loaded eligible rank — the classic 4/3-approximate
    heuristic for makespan minimization.  ``exclude_ranks`` (dead ranks
    after a failure) never receive a box.
    """
    costs = _validate(costs, n_ranks)
    order = np.argsort(costs)[::-1]
    assignment = np.empty(costs.size, dtype=np.intp)
    heap = [(0.0, r) for r in _alive_ranks(n_ranks, exclude_ranks)]
    heapq.heapify(heap)
    for i in order:
        load, rank = heapq.heappop(heap)
        assignment[i] = rank
        heapq.heappush(heap, (load + costs[i], rank))
    return assignment


def sfc_order(box_centers: np.ndarray) -> np.ndarray:
    """Morton (Z-)order of fractional box centers.

    Centers of integer boxes sit on half-integers, so they are encoded as
    *doubled* integer coordinates (``2 * center``, exact for ``.0`` and
    ``.5``) before interleaving.  Plain truncation aliased the centers of
    odd-extent boxes onto one code (e.g. ``(1.0, 1.5)`` and ``(1.5, 1.0)``
    both became ``(1, 1)``), silently corrupting the curve order into the
    input order.
    """
    centers = np.asarray(box_centers, dtype=np.float64)
    if centers.ndim == 1:
        centers = centers[:, None]
    doubled = np.rint(2.0 * centers).astype(np.int64)
    codes = morton_encode([doubled[:, d] for d in range(centers.shape[1])])
    return np.argsort(codes, kind="stable")


def distribute_sfc(
    costs: Sequence[float],
    n_ranks: int,
    box_centers: Optional[np.ndarray] = None,
    exclude_ranks: Sequence[int] = (),
) -> np.ndarray:
    """Morton-ordered contiguous split with balanced cumulative cost.

    ``box_centers`` (n_boxes, ndim) are box-center coordinates used to
    compute the Morton order via :func:`sfc_order`; if omitted, the boxes
    are assumed to be already curve-ordered.  Contiguous curve segments
    go to consecutive eligible ranks, cutting whenever the running cost
    reaches the per-rank target — WarpX's default strategy, minimizing
    guard-exchange partners.
    """
    costs = _validate(costs, n_ranks)
    alive = _alive_ranks(n_ranks, exclude_ranks)
    n = costs.size
    if box_centers is not None:
        order = sfc_order(box_centers)
    else:
        order = np.arange(n)
    assignment = np.empty(n, dtype=np.intp)
    total = float(costs.sum())
    target = total / len(alive) if total > 0 else 1.0
    seg = 0
    acc = 0.0
    for idx in order:
        # move to the next rank when the current one is full (never past the last)
        if acc >= target and seg < len(alive) - 1:
            seg += 1
            acc = 0.0
        assignment[idx] = alive[seg]
        acc += costs[idx]
    return assignment


def load_imbalance(
    costs: Sequence[float],
    assignment: np.ndarray,
    n_ranks: int,
    exclude_ranks: Sequence[int] = (),
) -> float:
    """Max rank load divided by mean rank load (1.0 = perfectly balanced).

    Both statistics run over the *alive* ranks only: a dead (or otherwise
    excluded) rank carries no work by construction, and counting its zero
    load in the mean inflates max/mean — after an evacuation that would
    re-trigger pointless rebalances forever.
    """
    costs = _validate(costs, n_ranks)
    loads = np.zeros(n_ranks, dtype=np.float64)
    np.add.at(loads, np.asarray(assignment, dtype=np.intp), costs)
    alive_loads = loads[_alive_ranks(n_ranks, exclude_ranks)]
    mean = alive_loads.mean()
    if mean == 0:
        return 1.0
    return float(alive_loads.max() / mean)


def rank_loads(costs: Sequence[float], assignment: np.ndarray, n_ranks: int) -> np.ndarray:
    """Total cost per rank."""
    costs = _validate(costs, n_ranks)
    loads = np.zeros(n_ranks, dtype=np.float64)
    np.add.at(loads, np.asarray(assignment, dtype=np.intp), costs)
    return loads


def should_rebalance(
    current_imbalance: float, threshold: float = 1.1
) -> bool:
    """The dynamic-LB trigger: rebalance when max/mean exceeds ``threshold``."""
    return current_imbalance > threshold


def evacuate_boxes(
    costs: Sequence[float],
    assignment: np.ndarray,
    dead_rank: int,
    alive_ranks: Sequence[int],
) -> np.ndarray:
    """Reassign the boxes of a failed rank to the surviving ranks.

    The recovery-time load balancer of ``restore_and_redistribute``:
    every box currently on ``dead_rank`` goes — in decreasing cost order
    — to the least-loaded survivor, and every other box keeps its rank
    (minimal data motion, the same reasoning as the paper's incremental
    dynamic LB).  Returns the new assignment array.
    """
    costs = _validate(costs, max(int(np.max(assignment)) + 1, len(alive_ranks)))
    alive = [int(r) for r in alive_ranks]
    if not alive:
        raise DecompositionError("no surviving ranks to evacuate to")
    if dead_rank in alive:
        raise DecompositionError(
            f"dead rank {dead_rank} cannot be in the surviving set"
        )
    assignment = np.asarray(assignment, dtype=np.intp).copy()
    heap = []
    for r in alive:
        load = float(costs[assignment == r].sum())
        heap.append((load, r))
    heapq.heapify(heap)
    orphans = np.flatnonzero(assignment == dead_rank)
    for i in orphans[np.argsort(costs[orphans])[::-1]]:
        load, rank = heapq.heappop(heap)
        assignment[i] = rank
        heapq.heappush(heap, (load + costs[i], rank))
    return assignment
