"""Load balancing strategies (paper Sec. V.C).

Domain decomposition assigns rectangular grid boxes to ranks.  WarpX
supports three strategies, all reproduced here:

* **round robin** — boxes dealt to ranks in order;
* **space-filling curve** — boxes sorted along a Morton (Z-order) curve
  and split into contiguous, cost-balanced segments, which keeps
  spatially close boxes on the same rank (low halo traffic);
* **knapsack** — the longest-processing-time greedy heuristic for the
  multiway partition problem, which balances cost with no regard for
  locality.

Costs per box come either from a heuristic (cells + weighted particle
count, see :class:`repro.core.costs.CostModel`) or from measured per-box
runtimes — the "measured runtime cost information" mode of the paper's
dynamic load balancer.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import DecompositionError
from repro.particles.sorting import morton_encode


def _validate(costs: Sequence[float], n_ranks: int) -> np.ndarray:
    costs = np.asarray(costs, dtype=np.float64)
    if n_ranks < 1:
        raise DecompositionError("need at least one rank")
    if costs.ndim != 1 or costs.size == 0:
        raise DecompositionError("costs must be a non-empty 1D sequence")
    if np.any(costs < 0):
        raise DecompositionError("costs must be non-negative")
    return costs


def distribute_round_robin(costs: Sequence[float], n_ranks: int) -> np.ndarray:
    """Assign box ``i`` to rank ``i % n_ranks``."""
    costs = _validate(costs, n_ranks)
    return np.arange(costs.size, dtype=np.intp) % n_ranks


def distribute_knapsack(costs: Sequence[float], n_ranks: int) -> np.ndarray:
    """Longest-processing-time greedy multiway partition.

    Boxes are taken in decreasing cost order and each goes to the
    currently least-loaded rank — the classic 4/3-approximate heuristic
    for makespan minimization.
    """
    costs = _validate(costs, n_ranks)
    order = np.argsort(costs)[::-1]
    assignment = np.empty(costs.size, dtype=np.intp)
    heap = [(0.0, r) for r in range(n_ranks)]
    heapq.heapify(heap)
    for i in order:
        load, rank = heapq.heappop(heap)
        assignment[i] = rank
        heapq.heappush(heap, (load + costs[i], rank))
    return assignment


def distribute_sfc(
    costs: Sequence[float],
    n_ranks: int,
    box_centers: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Morton-ordered contiguous split with balanced cumulative cost.

    ``box_centers`` (n_boxes, ndim) are integer-ish box coordinates used
    to compute the Morton order; if omitted, the boxes are assumed to be
    already curve-ordered.  Contiguous curve segments go to consecutive
    ranks, cutting whenever the running cost reaches the per-rank target —
    WarpX's default strategy, minimizing guard-exchange partners.
    """
    costs = _validate(costs, n_ranks)
    n = costs.size
    if box_centers is not None:
        centers = np.asarray(box_centers)
        codes = morton_encode(
            [centers[:, d].astype(np.int64) for d in range(centers.shape[1])]
        )
        order = np.argsort(codes, kind="stable")
    else:
        order = np.arange(n)
    assignment = np.empty(n, dtype=np.intp)
    total = float(costs.sum())
    target = total / n_ranks if total > 0 else 1.0
    rank = 0
    acc = 0.0
    for idx in order:
        # move to the next rank when the current one is full (never past the last)
        if acc >= target and rank < n_ranks - 1:
            rank += 1
            acc = 0.0
        assignment[idx] = rank
        acc += costs[idx]
    return assignment


def load_imbalance(costs: Sequence[float], assignment: np.ndarray, n_ranks: int) -> float:
    """Max rank load divided by mean rank load (1.0 = perfectly balanced)."""
    costs = _validate(costs, n_ranks)
    loads = np.zeros(n_ranks, dtype=np.float64)
    np.add.at(loads, np.asarray(assignment, dtype=np.intp), costs)
    mean = loads.mean()
    if mean == 0:
        return 1.0
    return float(loads.max() / mean)


def rank_loads(costs: Sequence[float], assignment: np.ndarray, n_ranks: int) -> np.ndarray:
    """Total cost per rank."""
    costs = _validate(costs, n_ranks)
    loads = np.zeros(n_ranks, dtype=np.float64)
    np.add.at(loads, np.asarray(assignment, dtype=np.intp), costs)
    return loads


def should_rebalance(
    current_imbalance: float, threshold: float = 1.1
) -> bool:
    """The dynamic-LB trigger: rebalance when max/mean exceeds ``threshold``."""
    return current_imbalance > threshold


def evacuate_boxes(
    costs: Sequence[float],
    assignment: np.ndarray,
    dead_rank: int,
    alive_ranks: Sequence[int],
) -> np.ndarray:
    """Reassign the boxes of a failed rank to the surviving ranks.

    The recovery-time load balancer of ``restore_and_redistribute``:
    every box currently on ``dead_rank`` goes — in decreasing cost order
    — to the least-loaded survivor, and every other box keeps its rank
    (minimal data motion, the same reasoning as the paper's incremental
    dynamic LB).  Returns the new assignment array.
    """
    costs = _validate(costs, max(int(np.max(assignment)) + 1, len(alive_ranks)))
    alive = [int(r) for r in alive_ranks]
    if not alive:
        raise DecompositionError("no surviving ranks to evacuate to")
    if dead_rank in alive:
        raise DecompositionError(
            f"dead rank {dead_rank} cannot be in the surviving set"
        )
    assignment = np.asarray(assignment, dtype=np.intp).copy()
    heap = []
    for r in alive:
        load = float(costs[assignment == r].sum())
        heap.append((load, r))
    heapq.heapify(heap)
    orphans = np.flatnonzero(assignment == dead_rank)
    for i in orphans[np.argsort(costs[orphans])[::-1]]:
        load, rank = heapq.heappop(heap)
        assignment[i] = rank
        heapq.heappush(heap, (load + costs[i], rank))
    return assignment
