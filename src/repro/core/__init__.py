"""Core mesh-refined PIC engine: the explicit PIC cycle (Fig. 3 of the
paper), the electromagnetic mesh-refinement coupling (Sec. V.B), the moving
window, subcycling, and the multi-level load balancing (Sec. V.C)."""

from repro.core.simulation import Simulation
from repro.core.moving_window import MovingWindow
from repro.core.mr_level import MRPatch
from repro.core.mr_simulation import MRSimulation
from repro.core.load_balance import (
    distribute_round_robin,
    distribute_sfc,
    distribute_knapsack,
    load_imbalance,
)
from repro.core.costs import CostModel
from repro.core.boosted_frame import BoostedFrame

__all__ = [
    "Simulation",
    "MovingWindow",
    "MRPatch",
    "MRSimulation",
    "distribute_round_robin",
    "distribute_sfc",
    "distribute_knapsack",
    "load_imbalance",
    "CostModel",
    "BoostedFrame",
]
