"""Per-box cost accounting for the dynamic load balancer.

Two cost sources, matching the paper's "number of heuristics and measured
runtime cost information":

* a heuristic model ``alpha * cells + beta * particles`` — the same
  weighting the WarpX figure-of-merit uses (mesh work vs particle work);
* exponentially smoothed measured runtimes per box.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np


class CostModel:
    """Heuristic + measured cost tracking for a set of boxes.

    Parameters
    ----------
    alpha, beta:
        Relative weight of one cell vs one macroparticle (the paper's FOM
        uses 0.1 / 0.9).
    smoothing:
        Exponential-moving-average factor applied to measured samples.
    """

    def __init__(self, alpha: float = 0.1, beta: float = 0.9, smoothing: float = 0.5) -> None:
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.smoothing = float(smoothing)
        self._measured: Dict[int, float] = {}

    def heuristic(self, n_cells: Sequence[int], n_particles: Sequence[int]) -> np.ndarray:
        """Cost per box from cell and particle counts."""
        cells = np.asarray(n_cells, dtype=np.float64)
        particles = np.asarray(n_particles, dtype=np.float64)
        return self.alpha * cells + self.beta * particles

    def record_measured(self, box_id: int, seconds: float) -> None:
        """Fold one measured runtime sample into the EMA for ``box_id``."""
        prev = self._measured.get(box_id)
        if prev is None:
            self._measured[box_id] = float(seconds)
        else:
            s = self.smoothing
            self._measured[box_id] = s * float(seconds) + (1.0 - s) * prev

    def measured(self, box_ids: Sequence[int], default: float = 0.0) -> np.ndarray:
        """Measured EMA cost per box (``default`` where no sample exists)."""
        return np.array(
            [self._measured.get(b, default) for b in box_ids], dtype=np.float64
        )

    def combined(
        self,
        box_ids: Sequence[int],
        n_cells: Sequence[int],
        n_particles: Sequence[int],
    ) -> np.ndarray:
        """Measured costs where available, heuristic elsewhere."""
        heur = self.heuristic(n_cells, n_particles)
        out = heur.copy()
        for i, b in enumerate(box_ids):
            if b in self._measured:
                out[i] = self._measured[b]
        return out
