"""One electromagnetic mesh-refinement patch (paper Sec. V.B, Fig. 4).

A patch owns three grids over the same physical region:

* the **fine** grid ``f`` — refinement ratio ``r`` times the parent
  resolution, terminated by a Berenger PML so waves generated inside leave
  without reflecting off the patch boundary;
* the **coarse companion** grid ``c`` — the *parent's* resolution, also
  PML-terminated, driven by exactly the same (restricted) sources as the
  fine grid;
* the **auxiliary** grid ``a`` — fine resolution, assembled every step by
  the substitution

      F(a) = F(f) + I[ F(s) - F(c) ]

  where ``F(s)`` is the parent solution over the patch region and ``I``
  interpolates parent -> fine.  Because ``c`` contains exactly the
  patch-internal sources at coarse resolution, the bracket cancels them
  out of ``F(s)`` and the interpolation adds only the *external* field —
  the construction that avoids the spurious reflections plain
  interpolation MR suffers from in electromagnetic PIC.

Particles inside the patch (outside a transition zone of a few fine cells
at the patch edge) gather from ``a``; their current is deposited on ``f``,
restricted to the parent resolution, and added both to the parent grid and
to ``c``.

The patch is *fixed in the lab frame*: when the parent's moving window
shifts, only the patch's parent-index region is updated, and the patch is
removed once the region leaves the domain (or at a configured time) — the
moment the paper marks with a star in Fig. 6.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, StabilityError
from repro.grid.interpolation import prolong, region_sample_counts, restrict
from repro.grid.maxwell import cfl_dt
from repro.grid.pml import PMLMaxwellSolver
from repro.grid.yee import FIELD_COMPONENTS, STAGGER, YeeGrid


class MRPatch:
    """A two-grid (fine + coarse-companion) refinement patch.

    Parameters
    ----------
    parent:
        The parent :class:`YeeGrid`.
    region_lo, region_hi:
        Patch extent in parent *cell indices* (hi exclusive).
    ratio:
        Integer refinement ratio (2 is the paper's choice).
    dt:
        The parent time step [s].
    subcycle:
        If True the fine grid advances ``ratio`` substeps of ``dt/ratio``
        per parent step; otherwise one step of ``dt`` (which then must
        satisfy the fine-grid CFL).
    n_pml:
        PML thickness of the patch grids [cells of each grid].
    n_transition:
        Width of the transition zone in *fine* cells: particles closer
        than this to the patch edge gather the parent field only.
    remove_time:
        Simulation time [s] after which the patch reports itself removable.
    """

    def __init__(
        self,
        parent: YeeGrid,
        region_lo: Sequence[int],
        region_hi: Sequence[int],
        ratio: int = 2,
        dt: float = 0.0,
        subcycle: bool = False,
        n_pml: int = 4,
        n_transition: Optional[int] = None,
        shape_order: int = 2,
        remove_time: Optional[float] = None,
    ) -> None:
        self.parent = parent
        self.region_lo = list(int(v) for v in region_lo)
        self.region_hi = list(int(v) for v in region_hi)
        if len(self.region_lo) != parent.ndim or len(self.region_hi) != parent.ndim:
            raise ConfigurationError("patch region must match parent dimensionality")
        for d in range(parent.ndim):
            if not (0 <= self.region_lo[d] < self.region_hi[d] <= parent.n_cells[d]):
                raise ConfigurationError(
                    f"patch region {self.region_lo}..{self.region_hi} outside "
                    f"parent domain {parent.n_cells}"
                )
        if ratio < 2:
            raise ConfigurationError("refinement ratio must be >= 2")
        self.ratio = int(ratio)
        self.dt = float(dt)
        self.subcycle = bool(subcycle)
        self.shape_order = int(shape_order)
        self.n_transition = (
            int(n_transition) if n_transition is not None else shape_order + 1
        )
        self.n_pml = int(n_pml)
        self.remove_time = remove_time

        n_cells_region = tuple(
            h - l for l, h in zip(self.region_lo, self.region_hi)
        )
        # physical bounds are fixed for the life of the patch (lab frame)
        self.lo = tuple(
            parent.lo[d] + self.region_lo[d] * parent.dx[d]
            for d in range(parent.ndim)
        )
        self.hi = tuple(
            parent.lo[d] + self.region_hi[d] * parent.dx[d]
            for d in range(parent.ndim)
        )
        self.fine = YeeGrid(
            tuple(n * self.ratio for n in n_cells_region),
            self.lo,
            self.hi,
            guards=parent.guards,
            dtype=parent.dtype,
        )
        self.coarse = YeeGrid(
            n_cells_region, self.lo, self.hi, guards=parent.guards, dtype=parent.dtype
        )
        self.aux = YeeGrid(
            self.fine.n_cells, self.lo, self.hi, guards=parent.guards, dtype=parent.dtype
        )

        fine_dt = self.dt / self.ratio if self.subcycle else self.dt
        self.fine_dt = fine_dt
        limit = cfl_dt(self.fine.dx, cfl=1.0)
        if fine_dt > limit * (1.0 + 1e-12):
            raise StabilityError(
                f"patch fine grid needs dt <= {limit:.3e}s "
                f"(got {fine_dt:.3e}s); enable subcycling or reduce dt"
            )
        self.fine_solver = PMLMaxwellSolver(self.fine, fine_dt, n_pml=n_pml)
        # the coarse companion always advances with the PARENT time step:
        # the substitution cancels in-patch sources out of F(s) - F(c) only
        # if both grids apply the *identical* discrete operator (same
        # resolution, same dt) to the identical restricted sources
        self.coarse_solver = PMLMaxwellSolver(self.coarse, self.dt, n_pml=n_pml)
        #: running average of the restricted substep currents (subcycling)
        self._accumulated_j: Dict[str, np.ndarray] = {}
        self._init_fields_from_parent()

    # -- setup -------------------------------------------------------------
    def _parent_section(self, component: str) -> np.ndarray:
        """View of the parent's samples of ``component`` over the region."""
        g = self.parent.guards
        stag = STAGGER[component]
        slices = tuple(
            slice(g + self.region_lo[d], g + self.region_hi[d] + 1 - stag[d])
            for d in range(self.parent.ndim)
        )
        return self.parent.fields[component][slices]

    def _init_fields_from_parent(self) -> None:
        """Start the patch from the parent solution: fine fields are the
        prolongation, the coarse companion is the parent section, so the
        initial substitution returns exactly the interpolated parent."""
        for comp in FIELD_COMPONENTS:
            section = self._parent_section(comp)
            self.coarse.interior_view(comp)[...] = section
            fine_counts = region_sample_counts(self.fine.n_cells, STAGGER[comp])
            self.fine.interior_view(comp)[...] = prolong(
                section, self.ratio, STAGGER[comp], fine_counts
            )
        # the PML split state carries the initial field in its first part;
        # re-seed the solvers so their splits match the injected fields
        self.fine_solver = PMLMaxwellSolver(
            self.fine, self.fine_solver.dt, n_pml=self.fine_solver.n_pml
        )
        self.coarse_solver = PMLMaxwellSolver(
            self.coarse, self.coarse_solver.dt, n_pml=self.coarse_solver.n_pml
        )
        self.assemble_aux()

    # -- subcycling support ---------------------------------------------------
    def begin_step(self) -> None:
        """Reset the per-step accumulator of restricted substep currents."""
        self._accumulated_j = {}

    def accumulate_restricted_currents(self, weight: float) -> None:
        """Fold ``weight`` times the restriction of the current fine J into
        the running average that will drive the parent and the coarse
        companion for this parent step."""
        for comp in ("Jx", "Jy", "Jz"):
            coarse_counts = region_sample_counts(self.coarse.n_cells, STAGGER[comp])
            j_coarse = restrict(
                self.fine.interior_view(comp), self.ratio, STAGGER[comp], coarse_counts
            )
            if comp in self._accumulated_j:
                self._accumulated_j[comp] += weight * j_coarse
            else:
                self._accumulated_j[comp] = weight * j_coarse

    def apply_accumulated_currents_to_parent(self) -> None:
        """Feed the substep-averaged restricted current to the parent grid
        *and* to the coarse companion, so both advance from exactly the
        same in-patch sources."""
        for comp, j in self._accumulated_j.items():
            self._parent_section(comp)[...] += j
            self.coarse.interior_view(comp)[...] = j

    def substep_fields(self) -> None:
        """One fine-grid field substep (subcycling mode).

        Only the fine grid advances inside the substep loop; the coarse
        companion advances once per parent step, in lockstep with the
        parent operator.
        """
        self.fine_solver.step()

    def frozen_external(self) -> Dict[str, np.ndarray]:
        """The external contribution I[F(s) - F(c)] at the current time,
        on the fine lattice — held fixed during the substeps of one parent
        step (the paper's full algorithm interpolates it in time)."""
        out = {}
        for comp in FIELD_COMPONENTS:
            diff = self._parent_section(comp) - self.coarse.interior_view(comp)
            fine_counts = region_sample_counts(self.fine.n_cells, STAGGER[comp])
            out[comp] = prolong(diff, self.ratio, STAGGER[comp], fine_counts)
        return out

    def assemble_aux_with_external(self, external: Dict[str, np.ndarray]) -> None:
        """Rebuild the auxiliary field from the current fine solution plus a
        precomputed (frozen) external contribution."""
        for comp in FIELD_COMPONENTS:
            aux = self.aux.fields[comp]
            aux.fill(0.0)
            aux[self.aux.valid_slices(comp)] = (
                self.fine.interior_view(comp) + external[comp]
            )

    # -- geometry helpers ----------------------------------------------------
    def contains(self, positions: np.ndarray, margin: float = 0.0) -> np.ndarray:
        """Mask of particles inside the patch, shrunk by ``margin`` [m]."""
        mask = np.ones(positions.shape[0], dtype=bool)
        for d in range(positions.shape[1]):
            mask &= (positions[:, d] >= self.lo[d] + margin) & (
                positions[:, d] < self.hi[d] - margin
            )
        return mask

    def interior_mask(self, positions: np.ndarray) -> np.ndarray:
        """Particles that gather from the auxiliary grid (inside the patch,
        outside the transition zone)."""
        margin = self.n_transition * self.fine.dx[0]
        return self.contains(positions, margin=margin)

    # -- the MR coupling -------------------------------------------------------
    def restrict_currents_to_parent(self) -> None:
        """Restrict the fine-grid J to the parent and the coarse companion.

        Must run after all species have deposited and before the field
        advance.  Only particles a transition-zone margin inside the patch
        deposit on the fine grid (margin >= stencil reach, so nothing
        lands in the fine guards); particles in the margin deposit on the
        parent directly and reach the patch interior as *external* sources
        through the substitution.
        """
        for comp in ("Jx", "Jy", "Jz"):
            fine_arr = self.fine.interior_view(comp)
            coarse_counts = region_sample_counts(self.coarse.n_cells, STAGGER[comp])
            j_coarse = restrict(fine_arr, self.ratio, STAGGER[comp], coarse_counts)
            self.coarse.interior_view(comp)[...] = j_coarse
            self._parent_section(comp)[...] += j_coarse

    def advance_fields(self) -> None:
        """Advance the patch grids one parent step (non-subcycled mode).

        Subcycled patches advance via :meth:`substep_fields` inside the
        particle substep loop of the MR simulation instead.
        """
        self.fine_solver.step()
        self.coarse_solver.step()

    def extraction_margin(self) -> float:
        """Margin [m] inside which particles join the subcycled loop.

        Wide enough that an extracted particle moving at c for one parent
        step (``ratio`` fine cells) still deposits its whole stencil
        outside the patch PML — plasma currents inside an absorbing layer
        violate Gauss's law and destabilize dense plasmas.  Subcycled
        patches should therefore enclose their high-density region with at
        least this much underdense margin (the paper's patches conform to
        the target for the same reason).
        """
        window_half = (self.shape_order + 2) // 2 + 1
        return (self.n_pml + self.ratio + window_half) * self.fine.dx[0]

    def assemble_aux(self) -> None:
        """Build the auxiliary field F(a) = F(f) + I[F(s) - F(c)]."""
        for comp in FIELD_COMPONENTS:
            section = self._parent_section(comp)
            coarse = self.coarse.interior_view(comp)
            diff = section - coarse
            fine_counts = region_sample_counts(self.fine.n_cells, STAGGER[comp])
            interp = prolong(diff, self.ratio, STAGGER[comp], fine_counts)
            aux = self.aux.fields[comp]
            aux.fill(0.0)
            aux[self.aux.valid_slices(comp)] = (
                self.fine.interior_view(comp) + interp
            )

    def zero_sources(self) -> None:
        self.fine.zero_sources()
        self.coarse.zero_sources()

    # -- moving window ----------------------------------------------------------
    def shift_region(self, cells: int = 1) -> None:
        """The parent window moved ``cells`` cells: the lab-fixed patch now
        sits ``cells`` earlier in the parent's index space."""
        self.region_lo[0] -= cells
        self.region_hi[0] -= cells

    def is_outside_parent(self) -> bool:
        """True once any part of the region has left the parent domain."""
        return self.region_lo[0] < 0 or any(
            self.region_hi[d] > self.parent.n_cells[d]
            for d in range(self.parent.ndim)
        )

    def should_remove(self, time: float) -> bool:
        if self.remove_time is not None and time >= self.remove_time:
            return True
        return self.is_outside_parent()

    def n_fine_cells(self) -> int:
        return int(np.prod(self.fine.n_cells))
