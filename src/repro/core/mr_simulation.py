"""Mesh-refined PIC simulation: :class:`Simulation` plus MR patches.

Overrides the gather/deposit/field-advance hooks of the single-level PIC
cycle with the level-aware versions of the paper's Sec. V.B:

* particles well inside a patch gather the substituted auxiliary field;
  particles in the transition zone or outside gather the parent field;
* the same partition decides where current is deposited (fine grid vs.
  parent); fine currents are restricted onto the parent and the coarse
  companion before the field advance;
* all grids advance each step, after which the auxiliary fields are
  reassembled;
* patches follow the moving window in the lab frame and are removed when
  their removal time passes or they fall off the domain — the point where
  the time-to-solution drops in the paper's Fig. 6.

Subcycling (Sec. V.B "an option has been implemented to subcycle the
operations at the refined levels"): a subcycled patch advances *both* its
fields and its resident particles ``ratio`` substeps of ``dt/ratio`` per
parent step.  This keeps the refined level on its own Courant and
plasma-frequency limits (a dense solid inside the patch would be unstable
if its particles were pushed with the coarse step) while the parent runs
at the coarse CFL — the source of the post-removal speedup in Fig. 6.
The in-patch particles are extracted from their species for the substep
loop and re-inserted afterwards; the external (parent) contribution to the
auxiliary field is held at the beginning-of-step value during substeps,
the one-sided time coupling the paper's omitted algorithm refines with
time interpolation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import c
from repro.core.mr_level import MRPatch
from repro.core.simulation import Simulation, smooth_binomial
from repro.exceptions import ConfigurationError
from repro.particles.pusher import lorentz_factor, push_positions
from repro.particles.species import Species


class MRSimulation(Simulation):
    """A :class:`Simulation` with electromagnetic mesh-refinement patches."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.patches: List[MRPatch] = []
        #: history of (time, n_patches) patch-removal events
        self.removal_log: List[Tuple[float, int]] = []
        #: holders of extracted in-patch particles during a subcycled step
        self._holders: List[Tuple[MRPatch, Dict[str, Species]]] = []

    def add_patch(
        self,
        region_lo: Sequence[int],
        region_hi: Sequence[int],
        ratio: int = 2,
        subcycle: bool = False,
        n_pml: int = 4,
        n_transition: Optional[int] = None,
        remove_time: Optional[float] = None,
    ) -> MRPatch:
        """Create and register a refinement patch over parent cells
        ``[region_lo, region_hi)``."""
        if self.deposition != "esirkepov":
            raise ConfigurationError(
                "mesh refinement requires the charge-conserving "
                "Esirkepov deposition"
            )
        if getattr(self.solver, "advances_together", False):
            raise ConfigurationError(
                "mesh refinement requires a split-push (FDTD-family) "
                "solver, not the spectral PSATD tier: the substitution "
                "cancels in-patch sources only when the parent and the "
                "coarse companion apply the identical discrete operator"
            )
        patch = MRPatch(
            self.grid,
            region_lo,
            region_hi,
            ratio=ratio,
            dt=self.dt,
            subcycle=subcycle,
            n_pml=n_pml,
            n_transition=n_transition,
            shape_order=self.shape_order,
            remove_time=remove_time,
        )
        self.patches.append(patch)
        return patch

    # -- level-aware hooks ---------------------------------------------------
    def _gather(self, species: Species):
        gather = self.kernel_set.gather
        e_f, b_f = gather(self.grid, species.positions, self.shape_order)
        for patch in self.patches:
            if patch.subcycle:
                continue  # in-patch particles were extracted for substeps
            mask = patch.interior_mask(species.positions)
            if not np.any(mask):
                continue
            e_p, b_p = gather(
                patch.aux, species.positions[mask], self.shape_order
            )
            e_f[mask] = e_p
            b_f[mask] = b_p
        return e_f, b_f

    def _deposit(self, species, x_old, x_new, velocities) -> None:
        remaining = np.ones(x_old.shape[0], dtype=bool)
        for patch in self.patches:
            if patch.subcycle:
                continue
            margin = patch.n_transition * patch.fine.dx[0]
            mask = (
                patch.contains(x_old, margin)
                & patch.contains(x_new, margin)
                & remaining
            )
            if np.any(mask):
                self.kernel_set.deposit_current(
                    patch.fine,
                    x_old[mask],
                    x_new[mask],
                    velocities[mask],
                    species.weights[mask],
                    species.charge,
                    self.dt,
                    self.shape_order,
                )
                remaining &= ~mask
        if np.any(remaining):
            if np.all(remaining):
                super()._deposit(species, x_old, x_new, velocities)
            else:
                self.kernel_set.deposit_current(
                    self.grid,
                    x_old[remaining],
                    x_new[remaining],
                    velocities[remaining],
                    species.weights[remaining],
                    species.charge,
                    self.dt,
                    self.shape_order,
                )

    def _smooth_fine(self, patch: MRPatch) -> None:
        if self.smoothing_passes > 0:
            for comp in ("Jx", "Jy", "Jz"):
                for axis in range(patch.fine.ndim):
                    smooth_binomial(
                        patch.fine.fields[comp], axis, self.smoothing_passes
                    )

    def _advance_subcycled_patches(self) -> None:
        """Extract in-patch particles and run the substep loop of every
        subcycled patch (particles + fine/coarse fields at dt/ratio).

        Membership uses hysteresis: a particle *joins* the subcycled
        population only once it is well inside the patch, but *stays* in
        it until it crosses the (closer-to-the-edge) deposit-safe margin.
        Without this, electrons quivering in the laser field at the patch
        boundary would switch populations every step, and each switch
        teleports their charge between grids — a noise source that was
        observed to destabilize the fine grid.
        """
        self._holders = []
        for patch_index, patch in enumerate(self.patches):
            if not patch.subcycle:
                continue
            dt_sub = self.dt / patch.ratio
            margin_stay = patch.extraction_margin()
            # join threshold: deeper inside by more than a quiver amplitude
            margin_join = margin_stay + 8 * patch.fine.dx[0]
            if not hasattr(patch, "_member_ids"):
                patch._member_ids = {}
            holders: Dict[str, Species] = {}
            for name, entry in self.entries.items():
                sp = entry.species
                if sp.n == 0:
                    continue
                mask = patch.contains(sp.positions, margin_join)
                members = patch._member_ids.get(name)
                if members is not None and members.size:
                    was_member = np.isin(sp.ids, members, assume_unique=False)
                    mask |= was_member & patch.contains(sp.positions, margin_stay)
                if np.any(mask):
                    holders[name] = sp.remove(mask)
            patch._member_ids = {
                name: np.sort(holder.ids.copy())
                for name, holder in holders.items()
            }
            with self._phase(
                "mr_subcycle", level=1, patch=patch_index, ratio=patch.ratio
            ):
                # external field at substep times: linear extrapolation
                # from the last two parent steps (the paper's algorithm
                # interpolates the coarse fields in time)
                ext_now = patch.frozen_external()
                ext_prev = getattr(patch, "_external_prev", None)
                if ext_prev is None:
                    ext_prev = ext_now
                for k in range(patch.ratio):
                    s = k / patch.ratio
                    ext_k = {
                        comp: ext_now[comp]
                        + s * (ext_now[comp] - ext_prev[comp])
                        for comp in ext_now
                    }
                    patch.assemble_aux_with_external(ext_k)
                    patch.fine.zero_sources()
                    for holder in holders.values():
                        if holder.n == 0:
                            continue
                        e_f, b_f = self.kernel_set.gather(
                            patch.aux, holder.positions, self.shape_order
                        )
                        holder.momenta = self._push_momenta(
                            holder.momenta, e_f, b_f, holder.charge,
                            holder.mass, dt_sub,
                        )
                        x_old = holder.positions
                        holder.positions = push_positions(
                            x_old, holder.momenta, dt_sub, holder.ndim
                        )
                        vel = holder.momenta * (
                            c / lorentz_factor(holder.momenta)
                        )[:, None]
                        self.kernel_set.deposit_current(
                            patch.fine,
                            x_old,
                            holder.positions,
                            vel,
                            holder.weights,
                            holder.charge,
                            dt_sub,
                            self.shape_order,
                        )
                    self._smooth_fine(patch)
                    patch.accumulate_restricted_currents(1.0 / patch.ratio)
                    patch.substep_fields()
                patch._external_prev = ext_now
            self._holders.append((patch, holders))

    def _finalize_deposits(self) -> None:
        """Combine per-level deposits before the parent field advance.

        Non-subcycled patches: smooth the fine current and restrict it to
        the parent and coarse companion.  Subcycled patches: add the
        substep-averaged restricted current and re-insert the extracted
        particles into their species.
        """
        for k, patch in enumerate(self.patches):
            with self.tracer.span("mr_restrict", cat="level", level=1, patch=k):
                if patch.subcycle:
                    patch.apply_accumulated_currents_to_parent()
                else:
                    self._smooth_fine(patch)
                    patch.restrict_currents_to_parent()
        for patch, holders in self._holders:
            for name, holder in holders.items():
                self.entries[name].species.extend(holder)
        self._holders = []

    def _advance_fields(self) -> None:
        super()._advance_fields()
        for k, patch in enumerate(self.patches):
            with self.tracer.span("mr_fields", cat="level", level=1, patch=k):
                if patch.subcycle:
                    # the fine grid already took its substeps; advance the
                    # coarse companion in lockstep with the parent operator
                    patch.coarse_solver.step()
                else:
                    patch.advance_fields()
                # reassemble against the advanced parent solution (for
                # subcycled patches this refreshes the external contribution)
                patch.assemble_aux()

    # -- step bookkeeping ------------------------------------------------------
    def _step_body(self) -> None:
        # overriding _step_body (not _single_step) keeps the patch prep,
        # subcycling and removal inside the step span of the tracer
        for patch in self.patches:
            patch.zero_sources()
            patch.begin_step()
        self._advance_subcycled_patches()
        super()._step_body()
        survivors = []
        for patch in self.patches:
            if patch.should_remove(self.time):
                self.removal_log.append((self.time, len(self.patches) - 1))
                self.tracer.instant(
                    "mr_patch_removed", t=self.time, remaining=len(self.patches) - 1
                )
            else:
                survivors.append(patch)
        self.patches = survivors

    def _shift_window_one_cell(self) -> None:
        super()._shift_window_one_cell()
        for patch in self.patches:
            patch.shift_region(self.moving_window.direction)

    def _run_sanitizers(self) -> None:
        """Parent-level checks plus NaN/Inf scans of every patch grid."""
        super()._run_sanitizers()
        san = self.sanitizer
        step = self.step_count
        for k, patch in enumerate(self.patches):
            for label, grid in (
                ("fine", patch.fine),
                ("coarse", patch.coarse),
                ("aux", patch.aux),
            ):
                san.check_fields_finite(
                    grid, step, label=f" (patch {k} {label})"
                )

    def total_fine_cells(self) -> int:
        return sum(p.n_fine_cells() for p in self.patches)
