"""Moving simulation window.

After the laser reflects off the solid target it propagates millimetres
through the gas — covering that distance with a static grid would make the
domain ~7x longer (paper, Sec. IV b).  Instead the grid follows the pulse
at (up to) the speed of light: field arrays are shifted one cell at a
time, particles that fall off the trailing edge are dropped, and fresh
plasma is injected in the leading cells.

The window can travel toward +x or -x; the hybrid-target geometry of the
science case follows the *reflected* pulse, which moves backward through
the gas after bouncing off the plasma mirror.
"""

from __future__ import annotations

from repro.constants import c
from repro.exceptions import ConfigurationError


class MovingWindow:
    """Configuration of the moving window along the x axis.

    Parameters
    ----------
    speed:
        Window speed [m/s]; the speed of light by default.
    start_time:
        Simulation time [s] at which the window starts moving (in the
        science case: once the laser has reflected off the solid target,
        shortly after the MR patch is removed).
    direction:
        +1 (toward +x) or -1 (toward -x, following a reflected pulse).
    """

    def __init__(
        self, speed: float = c, start_time: float = 0.0, direction: int = +1
    ) -> None:
        if direction not in (+1, -1):
            raise ConfigurationError("window direction must be +1 or -1")
        if speed <= 0:
            raise ConfigurationError("window speed must be positive")
        self.speed = float(speed)
        self.start_time = float(start_time)
        self.direction = int(direction)
        #: accumulated fractional cell shift not yet applied
        self.pending = 0.0
        #: total cells shifted so far
        self.cells_shifted = 0

    def cells_to_shift(self, time: float, dt: float, dx: float) -> int:
        """Whole cells the window must advance during this step."""
        if time + dt <= self.start_time:
            return 0
        active_dt = min(dt, time + dt - self.start_time)
        self.pending += self.speed * active_dt / dx
        n = int(self.pending)
        self.pending -= n
        self.cells_shifted += n
        return n
