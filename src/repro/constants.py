"""Physical constants (SI, CODATA-2018) and derived plasma quantities.

Every module in :mod:`repro` works in SI units.  The helpers at the bottom
convert between laser/plasma quantities that appear throughout the paper
(critical density, normalized vector potential ``a0``, plasma frequency).
"""

from __future__ import annotations

import math

#: Speed of light in vacuum [m/s].
c = 299_792_458.0

#: Elementary charge [C].
q_e = 1.602_176_634e-19

#: Electron mass [kg].
m_e = 9.109_383_7015e-31

#: Proton mass [kg].
m_p = 1.672_621_923_69e-27

#: Vacuum permittivity [F/m].
eps0 = 8.854_187_8128e-12

#: Vacuum permeability [H/m].
mu0 = 1.256_637_062_12e-6

#: Boltzmann constant [J/K].
k_B = 1.380_649e-23

#: 1 electron-volt in joules.
eV = q_e
MeV = 1.0e6 * eV
GeV = 1.0e9 * eV

#: 1 picocoulomb / nanocoulomb in coulombs.
pC = 1.0e-12
nC = 1.0e-9

#: Common length/time scales.
um = 1.0e-6
fs = 1.0e-15


def critical_density(wavelength: float) -> float:
    """Critical plasma density ``n_c`` [1/m^3] for laser ``wavelength`` [m].

    A plasma denser than ``n_c`` is opaque (reflective) for light of that
    wavelength — the regime the paper's plasma-mirror (solid) target
    operates in.
    """
    omega = 2.0 * math.pi * c / wavelength
    return eps0 * m_e * omega**2 / q_e**2


def plasma_frequency(density: float) -> float:
    """Electron plasma (angular) frequency ``omega_pe`` [rad/s]."""
    return math.sqrt(density * q_e**2 / (eps0 * m_e))


def plasma_wavelength(density: float) -> float:
    """Plasma wavelength ``lambda_p = 2 pi c / omega_pe`` [m]."""
    return 2.0 * math.pi * c / plasma_frequency(density)


def a0_to_intensity(a0: float, wavelength: float) -> float:
    """Peak intensity [W/m^2] of a linearly polarized laser with given ``a0``."""
    e_peak = a0_to_field(a0, wavelength)
    return 0.5 * eps0 * c * e_peak**2


def a0_to_field(a0: float, wavelength: float) -> float:
    """Peak electric field [V/m] corresponding to normalized amplitude ``a0``."""
    omega = 2.0 * math.pi * c / wavelength
    return a0 * m_e * c * omega / q_e


def field_to_a0(e_field: float, wavelength: float) -> float:
    """Normalized vector potential ``a0`` for a peak field [V/m]."""
    omega = 2.0 * math.pi * c / wavelength
    return e_field * q_e / (m_e * c * omega)
