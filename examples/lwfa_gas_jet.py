"""Laser-wakefield acceleration in a gas jet (paper Sec. III.B).

A short intense pulse is focused into an underdense gas jet; it expels
electrons from its path and drives a plasma wave ("bubble") with ~100 GV/m
longitudinal fields.  A moving window follows the pulse down the jet.

The script prints the wakefield amplitude, an ASCII snapshot of the
on-axis longitudinal field, and the trapped-electron statistics.

Run:  python examples/lwfa_gas_jet.py        (about a minute)
"""

import numpy as np

from repro.constants import MeV, c, fs, um
from repro.diagnostics.beam import beam_statistics
from repro.scenarios.lwfa import build_lwfa


def ascii_plot(values: np.ndarray, width: int = 72, height: int = 10) -> str:
    """A rough terminal plot of a 1D signal."""
    idx = np.linspace(0, len(values) - 1, width).astype(int)
    v = values[idx]
    vmax = np.abs(v).max() or 1.0
    rows = []
    for level in range(height, 0, -1):
        thresh = (level - 0.5) / height * vmax
        rows.append(
            "".join("#" if val >= thresh else " " for val in v)
        )
    for level in range(1, height + 1):
        thresh = -(level - 0.5) / height * vmax
        rows.append(
            "".join("#" if val <= thresh else " " for val in v)
        )
    return "\n".join(rows[:height] + ["-" * width] + rows[height:])


def main() -> None:
    sim, electrons, laser = build_lwfa(
        gas_density=3.0e24,
        a0=2.5,
        domain_size=(36 * um, 24 * um),
        cells_per_wavelength=10,
        waist=4 * um,
        duration=7 * fs,
    )
    print(f"grid               : {sim.grid.n_cells}")
    print(f"gas electrons      : {electrons.n}")
    print(f"laser a0 / waist   : {laser.a0} / {laser.waist * 1e6:.1f} um")

    t_end = laser.t_peak + 30 * um / c
    sim.run_until(t_end)

    ex = sim.grid.interior_view("Ex")
    mid = ex.shape[1] // 2
    on_axis = ex[:, mid]
    print(f"\nwakefield E_x max  : {np.abs(on_axis).max():.3e} V/m "
          f"({np.abs(on_axis).max() / 1e9:.1f} GV/m)")
    print(f"window position    : {sim.grid.lo[0] * 1e6:.1f} .. "
          f"{sim.grid.hi[0] * 1e6:.1f} um")
    print("\non-axis E_x through the bubble:")
    print(ascii_plot(on_axis))

    stats = beam_statistics(electrons, energy_threshold=0.5 * MeV)
    print(f"\ntrapped electrons  : {stats['n']} macroparticles")
    print(f"beam charge        : {stats['charge']:.3e} C/m (2D: per unit width)")
    if stats["n"]:
        print(f"mean energy        : {stats['mean_energy'] / MeV:.2f} MeV")
        print(f"energy spread      : {stats['energy_spread']:.1%}")
    print("\n" + sim.timers.report())


if __name__ == "__main__":
    main()
