"""The parallel substrate in action: boxes, ranks, halos, load balancing.

Runs the same Langmuir oscillation twice — monolithic, and decomposed into
AMReX-style boxes over simulated ranks — and shows:

* the two runs agree to machine precision (the correctness contract),
* the per-step communication volume the accounting records,
* what the dynamic load balancer does when the particle load is skewed.

Run:  python examples/distributed_demo.py
"""

import numpy as np

from repro.constants import m_e, plasma_wavelength, q_e
from repro.core.simulation import Simulation
from repro.grid.yee import YeeGrid
from repro.parallel.distributed import DistributedSimulation
from repro.particles.injection import UniformProfile
from repro.particles.species import Species


def main() -> None:
    n0 = 1e24
    length = plasma_wavelength(n0)
    n_cells = 16
    u0 = 1e-3
    k = 2 * np.pi / length

    mono_grid = YeeGrid((n_cells,) * 2, (0.0, 0.0), (length, length), guards=4)
    mono = Simulation(mono_grid, cfl=0.9, shape_order=2, smoothing_passes=0)
    e_mono = Species("electrons", charge=-q_e, mass=m_e, ndim=2)
    mono.add_species(e_mono, profile=UniformProfile(n0), ppc=(2, 2))
    e_mono.momenta[:, 0] = u0 * np.sin(k * e_mono.positions[:, 0])

    dist = DistributedSimulation(
        (n_cells,) * 2, (0.0, 0.0), (length, length),
        n_ranks=4, max_grid_size=8, cfl=0.9, shape_order=2,
    )
    proto = Species("electrons", charge=-q_e, mass=m_e, ndim=2)

    def perturb(sp):
        sp.momenta[:, 0] = u0 * np.sin(k * sp.positions[:, 0])

    dist.add_species(proto, profile=UniformProfile(n0), ppc=(2, 2),
                     momentum_init=perturb)

    print(f"decomposition: {len(dist.boxes)} boxes over {dist.comm.n_ranks} ranks")
    for i, b in enumerate(dist.boxes):
        print(f"  box {i}: cells {b.lo}..{b.hi} -> rank {dist.dm.rank_of(i)}")

    steps = 40
    mono.step(steps)
    dist.step(steps)

    ex_mono = mono.grid.interior_view("Ex")
    ex_dist = dist.global_field_view("Ex")
    err = np.max(np.abs(ex_dist - ex_mono)) / np.max(np.abs(ex_mono))
    print(f"\nafter {steps} steps:")
    print(f"  max |Ex_dist - Ex_mono| / |Ex|: {err:.2e}  (machine precision)")
    print(f"  bytes exchanged               : {dist.comm.total_bytes():.3e}")
    print(f"  messages                      : {dist.comm.total_messages()}")
    print(f"  bytes/step/rank               : "
          f"{dist.comm.total_bytes() / steps / 4:.3e}")

    print("\ndynamic load balancing on a skewed load (finer decomposition):")
    from repro.parallel.box import chop_domain
    from repro.parallel.distribution import DistributionMapping

    boxes = chop_domain((n_cells,) * 2, 4)  # 16 boxes over 4 ranks
    dm = DistributionMapping(boxes, 4, strategy="sfc")
    costs = np.ones(len(boxes))
    costs[:4] *= 20.0  # the solid target fills one corner
    imb_before = dm.imbalance(costs)
    moved = dm.rebalance(costs, strategy="knapsack")
    imb_after = dm.imbalance(costs)
    print(f"  imbalance {imb_before:.2f} -> {imb_after:.2f}, "
          f"{moved} boxes migrated")


if __name__ == "__main__":
    main()
