"""Quickstart: a Langmuir (plasma) oscillation in five minutes.

Builds a 1D uniform electron plasma with a small sinusoidal velocity
perturbation, advances the PIC cycle, and measures the oscillation
frequency of the longitudinal electric field — which must come out at the
plasma frequency omega_pe = sqrt(n e^2 / (eps0 m)).  This is the "hello
world" of kinetic plasma simulation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.constants import m_e, plasma_frequency, plasma_wavelength, q_e
from repro.core.simulation import Simulation
from repro.grid.yee import YeeGrid
from repro.particles.injection import UniformProfile
from repro.particles.species import Species


def main() -> None:
    density = 1.0e24  # electrons / m^3
    length = plasma_wavelength(density)

    grid = YeeGrid(n_cells=(64,), lo=(0.0,), hi=(length,), guards=4)
    sim = Simulation(grid, shape_order=2, boundaries="periodic",
                     smoothing_passes=0)

    electrons = Species("electrons", charge=-q_e, mass=m_e, ndim=1)
    sim.add_species(electrons, profile=UniformProfile(density), ppc=16)

    # a gentle standing-wave velocity perturbation
    k = 2 * np.pi / length
    electrons.momenta[:, 0] = 1e-3 * np.sin(k * electrons.positions[:, 0])

    print(f"density            : {density:.2e} m^-3")
    print(f"plasma wavelength  : {length * 1e6:.2f} um")
    print(f"macroparticles     : {electrons.n}")
    print(f"time step          : {sim.dt:.3e} s")

    steps = 600
    probe_index = (grid.guards + 16,)
    ex_history = np.empty(steps)
    for i in range(steps):
        sim.step()
        ex_history[i] = grid.fields["Ex"][probe_index]

    spectrum = np.abs(np.fft.rfft(ex_history - ex_history.mean()))
    freqs = np.fft.rfftfreq(steps, d=sim.dt) * 2 * np.pi
    omega_measured = freqs[np.argmax(spectrum)]
    omega_theory = plasma_frequency(density)

    print(f"\nmeasured omega     : {omega_measured:.4e} rad/s")
    print(f"theoretical omega  : {omega_theory:.4e} rad/s")
    print(f"relative error     : {abs(omega_measured / omega_theory - 1):.2%}")
    print("\n" + sim.timers.report())


if __name__ == "__main__":
    main()
