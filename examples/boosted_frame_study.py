"""Boosted-frame modeling study (the paper's final-section extension).

Quantifies why the Lorentz-boosted frame is the route to the paper's
"chains of meter-long plasma accelerator stages": the range of scales —
and with it the number of PIC steps — shrinks by (1+beta)^2 gamma^2
(Vay 2007).  The script transforms a realistic LWFA stage into frames of
increasing gamma and prints the step counts, then demonstrates the
transformed quantities on the paper's science-case laser.

Run:  python examples/boosted_frame_study.py
"""

from repro.constants import fs, um
from repro.core.boosted_frame import BoostedFrame
from repro.laser.profiles import GaussianLaser


def main() -> None:
    wavelength = 0.8 * um
    stage_length = 0.1  # a 10 cm plasma stage
    print("LWFA stage: 10 cm of plasma, lambda = 0.8 um, 16 cells/lambda\n")
    print(f"{'gamma':>6} {'beta':>10} {'compression':>12} "
          f"{'lab steps':>12} {'boosted steps':>14}")
    for gamma in (1.0, 2.0, 5.0, 10.0, 20.0, 50.0):
        bf = BoostedFrame(gamma=gamma)
        lab, boosted = bf.steps_estimate(stage_length, wavelength)
        print(
            f"{gamma:6.0f} {bf.beta:10.6f} {bf.scale_compression():11.0f}x "
            f"{lab:12.2e} {boosted:14.2e}"
        )

    print("\nThe paper: 'several orders of magnitude speedups over standard")
    print("laboratory-frame modeling' — reproduced by the gamma >= 20 rows.\n")

    laser = GaussianLaser(
        wavelength=wavelength, a0=4.0, waist=19.5 * um, duration=30.8 * fs
    )
    bf = BoostedFrame(gamma=10.0)
    boosted = bf.transform_laser(laser)
    print("the science-case laser, lab vs gamma=10 boosted frame:")
    print(f"  wavelength : {laser.wavelength * 1e6:.2f} um -> "
          f"{boosted.wavelength * 1e6:.2f} um")
    print(f"  duration   : {laser.duration / fs:.1f} fs -> "
          f"{boosted.duration / fs:.1f} fs")
    print(f"  a0         : {laser.a0} -> {boosted.a0}  (invariant)")
    n_gas = 2.34e24
    print(f"  gas density: {n_gas:.2e} -> {bf.transform_density(n_gas):.2e} m^-3")
    print(f"  1 mm of gas: -> {bf.transform_length(1e-3) * 1e6:.1f} um "
          "(and it rushes toward the pulse)")
    print("\nIn the boosted frame the plasma streams at u ="
          f" {bf.transform_momenta([[0, 0, 0]])[0][0]:.2f} — the regime where")
    print("FDTD suffers the numerical Cherenkov instability; the PSATD")
    print("solver (repro.grid.psatd) with exact vacuum dispersion is the")
    print("paper's answer (its ref. [51]).")


if __name__ == "__main__":
    main()
