"""Machine-scale performance study (paper Secs. VI-VII).

Drives the calibrated roofline + network model over the four machines of
the paper's Table II and prints:

* the weak- and strong-scaling curves of Fig. 5,
* the per-device and full-machine Flop/s of Table III,
* the figure-of-merit comparison of Table IV.

Run:  python examples/scaling_study.py
"""

from repro.perfmodel.flops import flops_table
from repro.perfmodel.fom import FOM_HISTORY, model_fom
from repro.perfmodel.machines import MACHINES
from repro.perfmodel.scaling import strong_scaling, weak_scaling


def print_weak_scaling() -> None:
    print("=" * 70)
    print("Weak scaling (Fig. 5 left): efficiency vs nodes")
    print("=" * 70)
    for key, machine in MACHINES.items():
        records = weak_scaling(key)
        print(f"\n{machine.name}")
        for r in records:
            bar = "#" * int(50 * r["efficiency"])
            print(f"  {r['nodes']:>8d} nodes  {r['efficiency']:6.1%}  {bar}")


def print_strong_scaling() -> None:
    print("\n" + "=" * 70)
    print("Strong scaling (Fig. 5 right)")
    print("=" * 70)
    base_nodes = {"frontier": 512, "fugaku": 6144, "summit": 512, "perlmutter": 15}
    for key, machine in MACHINES.items():
        n0 = base_nodes[key]
        from repro.perfmodel.scaling import STRONG_SCALING_BLOCKS

        block = STRONG_SCALING_BLOCKS[key] ** 3
        total = block * n0 * machine.devices_per_node * 4  # 4 blocks/device
        counts = [n0, 2 * n0, 4 * n0, 8 * n0, 16 * n0]
        counts = [n for n in counts if n <= machine.max_nodes_used]
        records = strong_scaling(key, total, node_counts=counts)
        print(f"\n{machine.name} (fixed problem: {total:.2e} cells)")
        for r in records:
            flag = "" if r["feasible"] else "   [below 1 block/device]"
            print(
                f"  {r['nodes']:>8d} nodes  t={r['time_per_step']:.3f}s  "
                f"eff={r['efficiency']:6.1%}{flag}"
            )


def print_flops_table() -> None:
    print("\n" + "=" * 70)
    print("Sustained Flop/s (Table III) — model, calibrated on DP rows")
    print("=" * 70)
    print(f"{'machine':<12}{'mode':<24}{'TF/s dp':>9}{'TF/s sp':>9}"
          f"{'% peak':>8}{'PFlop/s':>9}{'% HPCG':>8}")
    for row in flops_table():
        hpcg = f"{row['pct_hpcg']:.0f}%" if row["pct_hpcg"] else "n/a"
        print(
            f"{row['machine']:<12}{row['mode']:<24}{row['tflops_dp']:>9.3f}"
            f"{row['tflops_sp']:>9.3f}{row['pct_peak']:>7.1f}%"
            f"{row['achieved_pflops']:>9.2f}{hpcg:>8}"
        )


def print_fom() -> None:
    print("\n" + "=" * 70)
    print("Figure of merit (Table IV): paper history + model reproduction")
    print("=" * 70)
    print(f"{'date':<7}{'machine':<12}{'Nc/node':>10}{'nodes':>9}"
          f"{'mode':>6}{'paper FOM':>12}{'model FOM':>12}")
    for e in FOM_HISTORY:
        if e["machine"] == "cori":
            model = "   (retired)"
        else:
            fom = model_fom(
                e["machine"], e["nc_per_node"], e["nodes"], mode=e["mode"],
                optimized=(e["mode"] == "mp"),
            )
            model = f"{fom:>12.2e}"
        print(
            f"{e['date']:<7}{e['machine']:<12}{e['nc_per_node']:>10.1e}"
            f"{e['nodes']:>9d}{e['mode']:>6}{e['fom']:>12.1e}{model}"
        )
    print("\nNote: the model carries no code-maturity history, so early "
          "entries\n(2019-2021) naturally sit below its prediction; the "
          "final per-machine\nentries are the reproduction targets.")


if __name__ == "__main__":
    print_weak_scaling()
    print_strong_scaling()
    print_flops_table()
    print_fom()
