"""Anatomy of the electromagnetic mesh refinement (paper Sec. V.B, Fig. 4).

Demonstrates the three-grid construction on a transparent test problem:
a pulse launched OUTSIDE the refinement patch crosses it, and a pulse
launched INSIDE leaves it, while we measure

* how faithfully the auxiliary field F(a) = F(f) + I[F(s) - F(c)]
  reproduces the reference solution inside the patch, and
* how little energy reflects back off the patch boundary (the reason the
  patch grids are PML-terminated).

Run:  python examples/mesh_refinement_demo.py
"""

import numpy as np

from repro.constants import c
from repro.core.mr_level import MRPatch
from repro.grid.boundary import apply_periodic
from repro.grid.interpolation import prolong, region_sample_counts
from repro.grid.maxwell import MaxwellSolver, cfl_dt
from repro.grid.pml import PMLMaxwellSolver
from repro.grid.yee import STAGGER, YeeGrid


def crossing_pulse_demo() -> None:
    print("=" * 64)
    print("1. external pulse crossing the refined region")
    print("=" * 64)
    parent = YeeGrid((192,), (0.0,), (192.0,), guards=4)
    lam = 24.0
    k = 2 * np.pi / lam
    x_e = parent.axis_coords(0, "Ey")
    x_b = parent.axis_coords(0, "Bz")
    env = lambda s: np.exp(-(((s - 40.0) / 10.0) ** 2))
    parent.interior_view("Ey")[...] = env(x_e) * np.sin(k * x_e)
    parent.interior_view("Bz")[...] = env(x_b) * np.sin(k * x_b) / c

    dt = cfl_dt((0.5,), 0.45)  # fine-grid CFL
    solver = MaxwellSolver(parent, dt)
    patch = MRPatch(parent, (80,), (144,), ratio=2, dt=dt)

    for step in range(int(100.0 / (c * dt))):
        apply_periodic(parent, 0)
        solver.step()
        patch.advance_fields()
        patch.assemble_aux()
        if step % 200 == 0:
            expected = prolong(
                patch._parent_section("Ey"),
                2,
                STAGGER["Ey"],
                region_sample_counts(patch.fine.n_cells, STAGGER["Ey"]),
            )
            aux = patch.aux.interior_view("Ey")
            ref = np.max(np.abs(parent.interior_view("Ey"))) or 1.0
            err = np.max(np.abs(aux - expected)) / ref
            print(f"  step {step:5d}: |aux - interp(parent)| / |wave| = {err:.2e}")
    print("  -> the substitution transports the external wave into the")
    print("     refined region with percent-level fidelity.")


def escaping_pulse_demo() -> None:
    print("\n" + "=" * 64)
    print("2. internal pulse leaving the refined region")
    print("=" * 64)
    parent = YeeGrid((192,), (0.0,), (192.0,), guards=4)
    dt = cfl_dt((0.5,), 0.45)
    solver = MaxwellSolver(parent, dt)
    patch = MRPatch(parent, (64,), (128,), ratio=2, dt=dt, n_pml=8)

    # a pulse that exists only on the patch grids (as an internal source
    # would create it)
    from repro.grid.interpolation import restrict

    xf = patch.fine.axis_coords(0, "Ey")
    xb = patch.fine.axis_coords(0, "Bz")
    pulse = lambda s: np.exp(-(((s - 96.0) / 3.0) ** 2))
    patch.fine.interior_view("Ey")[...] = pulse(xf)
    patch.fine.interior_view("Bz")[...] = pulse(xb) / c
    for comp in ("Ey", "Bz"):
        counts = region_sample_counts(patch.coarse.n_cells, STAGGER[comp])
        vals = restrict(patch.fine.interior_view(comp), 2, STAGGER[comp], counts)
        patch.coarse.interior_view(comp)[...] = vals
        patch._parent_section(comp)[...] = vals
    patch.fine_solver = PMLMaxwellSolver(patch.fine, dt, n_pml=8)
    patch.coarse_solver = PMLMaxwellSolver(patch.coarse, dt, n_pml=8)

    e0 = patch.fine.field_energy()
    print(f"  initial fine-grid energy : {e0:.3e} J")
    for step in range(int(80.0 / (c * dt))):
        apply_periodic(parent, 0)
        solver.step()
        patch.advance_fields()
        patch.assemble_aux()
    print(f"  residual fine energy     : {patch.fine.field_energy() / e0:.2e} of initial")
    print(f"  energy now on the parent : {parent.field_energy() / e0:.2f} of initial")
    print("  -> the pulse left through the patch PML and continues on the")
    print("     parent grid: no spurious reflection off the MR interface.")


if __name__ == "__main__":
    crossing_pulse_demo()
    escaping_pulse_demo()
