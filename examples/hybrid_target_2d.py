"""The paper's science case: hybrid solid-gas target with mesh refinement.

A reduced 2D version of the simulation in the paper's Fig. 7 (the paper's
own Fig. 6 uses exactly this reduction): an intense pulse crosses the gas,
reflects off the solid-density plasma mirror covered by an MR patch,
extracts a high-charge electron bunch, the patch is removed, and a moving
window follows the reflected pulse as the wakefield accelerates the bunch.

Prints the beam-charge history (Fig. 7a), the electron spectrum (Fig. 7b)
and the timeline of MR events.

Run:  python examples/hybrid_target_2d.py        (a few minutes)
"""

import numpy as np

from repro.constants import MeV, fs, um
from repro.diagnostics.beam import BeamHistory
from repro.diagnostics.spectrum import energy_spectrum, spectral_peak_and_spread
from repro.scenarios.hybrid_target import HybridTargetSetup, build_hybrid_target


def main() -> None:
    setup = HybridTargetSetup(
        cells_per_wavelength=8,
        x_max=28 * um,
        y_half=7 * um,
        gas_lo=4 * um,
        gas_hi=19 * um,
        solid_lo=19 * um,
        solid_hi=21 * um,
        solid_nc=12.0,
        a0=5.0,
        duration=8 * fs,
        waist=3.5 * um,
    )
    sim, solid, gas = build_hybrid_target(setup, mode="mr", subcycle=False)
    print(f"grid                 : {sim.grid.n_cells} "
          f"(+ MR patch {sim.patches[0].fine.n_cells} at ratio "
          f"{setup.mr_ratio})")
    print(f"solid density        : {setup.solid_nc} n_c")
    print(f"solid / gas particles: {solid.n} / {gas.n}")
    print(f"reflection at        : {setup.reflection_time() / fs:.0f} fs")
    print(f"patch removal at     : {setup.patch_removal_time() / fs:.0f} fs")
    print(f"window starts at     : {setup.window_start_time() / fs:.0f} fs")

    history = BeamHistory(energy_threshold=0.5 * MeV)
    t_end = setup.window_start_time() + 25 * fs

    while sim.time < t_end:
        sim.step(10)
        history.record(sim.time, solid)
        if sim.removal_log and len(history.times) and \
                abs(sim.time - sim.removal_log[0][0]) < 10 * sim.dt:
            print(f"  * MR patch removed at t = {sim.time / fs:.0f} fs "
                  f"(the star in Fig. 6)")

    print("\nbeam charge history (electrons from the solid, > 0.5 MeV):")
    for t, q in zip(history.times[::4], history.charge[::4]):
        bar = "#" * int(60 * q / (max(history.charge) or 1.0))
        print(f"  t = {t / fs:6.0f} fs | {q:.3e} C/m {bar}")

    print(f"\nfinal injected charge: {history.final_charge():.3e} C/m")
    if solid.n:
        centers, dn_de = energy_spectrum(solid, bins=40, e_min=0.5 * MeV)
        peak, spread = spectral_peak_and_spread(centers, dn_de)
        print(f"spectral peak        : {peak / MeV:.1f} MeV")
        print(f"relative spread      : {spread:.1%}")
        print("\nspectrum dN/dE:")
        top = dn_de.max() or 1.0
        for c_, v in zip(centers[::2], dn_de[::2]):
            print(f"  {c_ / MeV:7.1f} MeV | {'#' * int(50 * v / top)}")
    print("\n" + sim.timers.report())


if __name__ == "__main__":
    main()
