"""The resilience substrate in action: faults injected, faults survived.

Runs the same distributed Langmuir oscillation twice — fault-free, and
under a canned :class:`FaultSchedule` that drops, duplicates, corrupts
and delays messages and then kills a rank outright — and shows:

* every message fault is repaired by the resilient transport (retries,
  dedups, redeliveries, all accounted),
* the rank failure is recovered by restore_and_redistribute from the
  last checkpoint,
* the final physics is bit-identical to the fault-free run,
* the commcheck replay confirms no fault went unrecovered.

Run:  python examples/fault_injection_demo.py
(CI runs it with REPRO_SANITIZE=1: the step sanitizers stay silent even
under injection, because recovery completes within the faulted step.)
"""

import numpy as np

from repro.analysis.commcheck import check_comm
from repro.constants import m_e, plasma_wavelength, q_e
from repro.parallel.distributed import DistributedSimulation
from repro.particles.injection import UniformProfile
from repro.particles.species import Species
from repro.resilience import FaultSchedule, FaultSpec, RecoveryPolicy


def build(schedule=None, policy=None, interval=0):
    n0 = 1e24
    length = plasma_wavelength(n0)
    sim = DistributedSimulation(
        (16, 16), (0.0, 0.0), (length, length), n_ranks=4, max_grid_size=8,
        fault_schedule=schedule, recovery=policy,
        checkpoint_interval=interval,
    )
    e = Species("electrons", charge=-q_e, mass=m_e, ndim=2)
    k = 2 * np.pi / length

    def perturb(sp):
        sp.momenta[:, 0] += 1e-3 * np.sin(k * sp.positions[:, 0])

    sim.add_species(
        e, profile=UniformProfile(n0), ppc=(2, 2), momentum_init=perturb,
        temperature_uth=0.05, rng_seed=7,
    )
    return sim


def main() -> None:
    steps = 12

    clean = build()
    clean.step(steps)
    e_clean = clean.field_energy()

    schedule = FaultSchedule(
        [
            FaultSpec(kind="drop", step=2),
            FaultSpec(kind="duplicate", step=3),
            FaultSpec(kind="corrupt", step=4, tag="particles"),
            FaultSpec(kind="delay", step=5, delay=2),
            FaultSpec(kind="rank_failure", step=7, rank=1),
        ],
        seed=42,
    )
    policy = RecoveryPolicy()
    sim = build(schedule, policy, interval=3)
    sim.step(steps)

    print(f"fault schedule: {len(schedule)} faults, "
          f"{len(schedule.fired())} fired")
    for spec in schedule.specs:
        target = f"rank {spec.rank}" if spec.rank is not None else (
            spec.tag or "any tag")
        print(f"  step {spec.step}: {spec.kind:<12} ({target}) "
              f"{'fired' if spec.fired else 'armed'}")

    s = policy.stats
    print("\nrecovery actions:")
    print(f"  retransmissions : {s.retries}")
    print(f"  redeliveries    : {s.redeliveries}")
    print(f"  dedups          : {s.dedups}")
    print(f"  restores        : {s.restores} "
          f"({s.restored_bytes:.3e} bytes re-read)")
    print(f"  modelled backoff: {s.backoff_time:.2e} s")

    print(f"\ndead ranks: {sorted(sim.dead_ranks)} "
          f"(their boxes evacuated to the survivors)")
    e_faulty = sim.field_energy()
    diff = abs(e_faulty - e_clean)
    print(f"field energy fault-free : {e_clean:.15e} J")
    print(f"field energy recovered  : {e_faulty:.15e} J")
    print(f"difference              : {diff:.1e}  (bit-identical)")
    assert diff == 0.0, "recovered run diverged from fault-free run"

    report = check_comm(sim.comm)
    print(f"\ncommcheck replay: {report.format()}")
    report.raise_if_failed()


if __name__ == "__main__":
    main()
