"""Ionization injection: releasing electrons at the pulse peak.

The paper's introduction cites ionization injection (its refs. [11]-[13])
among the techniques that localize electron injection into the wake: a
dopant's inner shell ionizes only near the intensity peak, so its
electrons are born at exactly the right wake phase.

This script drives a nitrogen-doped gas with a focused pulse and shows the
charge-state ladder in action: the L shell strips over a wide volume, the
K shell (552 eV) only right at the peak — the released K-shell electrons
are the injection candidates.

Run:  python examples/ionization_injection.py        (about a minute)
"""

import numpy as np

from repro.constants import a0_to_field, c, fs, um
from repro.core.simulation import Simulation
from repro.grid.yee import YeeGrid
from repro.laser.antenna import LaserAntenna
from repro.laser.profiles import GaussianLaser
from repro.particles.ionization import (
    ADKIonization,
    barrier_suppression_field,
)
from repro.particles.species import Species


def main() -> None:
    g = YeeGrid((192, 48), (0.0, -8 * um), (48 * um, 8 * um), guards=4)
    sim = Simulation(g, boundaries="damped", smoothing_passes=1)
    laser = GaussianLaser(
        0.8 * um, a0=1.2, waist=3 * um, duration=8 * fs, t_peak=16 * fs
    )
    sim.add_laser(LaserAntenna(laser, position=2 * um))

    print(f"peak field          : {laser.e_peak:.2e} V/m")
    for level, u in (("N L-shell (1st)", 14.53), ("N K-shell (6th)", 552.07)):
        print(f"BSI field, {level:16s}: "
              f"{barrier_suppression_field(u, 1):.2e} V/m")

    electrons = Species("electrons", ndim=2)
    nitrogen = ADKIonization("N", electrons, ndim=2, seed=11)
    rng = np.random.default_rng(12)
    n_atoms = 4000
    pos = np.column_stack([
        rng.uniform(10 * um, 40 * um, n_atoms),
        rng.uniform(-6 * um, 6 * um, n_atoms),
    ])
    nitrogen.add_neutrals(pos, np.full(n_atoms, 1e5))
    nitrogen.attach(sim)

    sim.run_until(laser.t_peak + 36 * um / c)

    print(f"\nafter the pulse ({sim.step_count} steps):")
    print(f"  mean charge state : {nitrogen.mean_charge_state():.2f}")
    print(f"  free electrons    : {electrons.n} macroparticles")
    for k, sp in enumerate(nitrogen.states):
        if sp.n:
            bar = "#" * max(int(50 * sp.n / n_atoms), 1)
            print(f"  N{k}+ : {sp.n:5d} {bar}")
    # where were the highest states created?
    high = nitrogen.states[5]
    if high.n:
        y = np.abs(high.positions[:, 1])
        print(f"\n  N5+ ions sit within |y| < {y.max() / um:.1f} um of the axis")
        print("  (the K-shell survivors mark the intensity peak - the")
        print("   ionization-injection volume)")
    print(f"\n  charge conservation: ions + electrons = "
          f"{nitrogen.total_charge():.2e} C (exactly zero up to round-off)")


if __name__ == "__main__":
    main()
