"""Observability in action: a traced LWFA run and a traced distributed run.

Part 1 traces a (short) laser-wakefield run of the monolithic simulation
and writes both export formats:

* ``lwfa_trace.json`` — Chrome ``trace_event`` format; open it in
  ``chrome://tracing`` or https://ui.perfetto.dev to see the
  step → phase → kernel span hierarchy on a timeline;
* ``lwfa_trace.jsonl`` — the compact stream that
  ``python -m repro.observability lwfa_trace.jsonl`` summarizes.

Part 2 runs a domain-decomposed uniform plasma with tracing + metrics
attached and prints the full run report: per-step percentiles, the
per-rank load bars, and the rank-pair communication matrix — the
measurements behind the paper's Figs. 5-7.

Run:  python examples/tracing_demo.py [output-dir]
"""

import sys

import numpy as np

from repro.constants import m_e, plasma_wavelength, q_e
from repro.observability import RunReport, attach_observability
from repro.observability.cli import render_summary
from repro.observability.tracer import read_jsonl
from repro.parallel.distributed import DistributedSimulation
from repro.particles.injection import UniformProfile
from repro.particles.species import Species
from repro.scenarios.lwfa import build_lwfa


def traced_lwfa(out_dir: str) -> str:
    sim, electrons, laser = build_lwfa(
        domain_size=(18e-6, 16e-6),
        cells_per_wavelength=8.0,
        ppc=(1, 1),
    )
    tracer, metrics = attach_observability(sim)
    steps = 30
    sim.step(steps)

    chrome_path = f"{out_dir}/lwfa_trace.json"
    jsonl_path = f"{out_dir}/lwfa_trace.jsonl"
    tracer.to_chrome(chrome_path)
    tracer.to_jsonl(jsonl_path)
    print(f"LWFA: {steps} steps, {electrons.n} electrons, "
          f"{len(tracer.records)} spans recorded")
    print(f"  chrome trace: {chrome_path}  (open in chrome://tracing)")
    print(f"  jsonl trace:  {jsonl_path}   "
          f"(python -m repro.observability {jsonl_path})")
    print()
    print(RunReport.from_timers(sim.timers).render(top=8))
    return jsonl_path


def traced_distributed(out_dir: str) -> str:
    n0 = 1e24
    length = plasma_wavelength(n0)
    sim = DistributedSimulation(
        (16, 16), (0.0, 0.0), (length, length),
        n_ranks=4, max_grid_size=8, cfl=0.9, shape_order=2,
        dynamic_lb=True, lb_interval=8,
    )
    proto = Species("electrons", charge=-q_e, mass=m_e, ndim=2)
    k = 2 * np.pi / length

    def perturb(sp):
        sp.momenta[:, 0] = 1e-3 * np.sin(k * sp.positions[:, 0])

    sim.add_species(proto, profile=UniformProfile(n0), ppc=(2, 2),
                    momentum_init=perturb)
    tracer, metrics = attach_observability(sim, snapshot_interval=5)
    sim.step(20)

    jsonl_path = f"{out_dir}/distributed_trace.jsonl"
    tracer.to_jsonl(jsonl_path)
    tracer.to_chrome(f"{out_dir}/distributed_trace.json")
    print()
    print("=" * 64)
    print(f"distributed: {len(sim.boxes)} boxes / {sim.comm.n_ranks} ranks, "
          f"{sim.comm.total_bytes() / 1024:.0f} KiB exchanged")
    print()
    print(RunReport.from_distributed(sim).render(top=8))
    print()
    print("CLI summary of the recorded trace:")
    spans, mrecs = read_jsonl(jsonl_path)
    print(render_summary(spans, mrecs, top=6))
    return jsonl_path


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "."
    traced_lwfa(out_dir)
    traced_distributed(out_dir)


if __name__ == "__main__":
    main()
