"""Boosted-frame LWFA on the Galilean spectral solver.

The paper's final section motivates the spectral tier with exactly this
regime: a Lorentz-boosted frame compresses the scale range of an LWFA by
``(1+beta)^2 gamma^2`` (Vay 2007), at the price of the whole plasma
streaming through the grid — where FDTD goes numerically Cherenkov
unstable and the Galilean/comoving PSATD closure is the production
answer.  Three views:

* the scale-compression arithmetic of the frame transform itself;
* total field-energy drift, Galilean vs standard PSATD closure, on the
  streaming-plasma scenario (the NCI surrogate observable);
* the distributed guard sweep: error vs monolithic and wall time as the
  local-FFT guard region deepens.
"""

import time

import numpy as np

from repro.constants import c, eps0, mu0
from repro.scenarios.boosted_lwfa import (
    BoostedLWFASetup,
    build_monolithic,
    make_distributed_build,
)

SETUP = BoostedLWFASetup(n_cells=64, ppc=2)


def field_energy(grid) -> float:
    """Total EM energy density sum over the interior [J/m^3 * cells]."""
    e2 = sum(
        np.sum(grid.interior_view(comp).astype(np.float64) ** 2)  # repro: allow(PIC007)
        for comp in ("Ex", "Ey", "Ez")
    )
    b2 = sum(
        np.sum(grid.interior_view(comp).astype(np.float64) ** 2)  # repro: allow(PIC007)
        for comp in ("Bx", "By", "Bz")
    )
    return float(0.5 * eps0 * e2 + 0.5 / mu0 * b2)


def test_boosted_frame_scale_compression(benchmark, table):
    benchmark.pedantic(lambda: None, rounds=1)
    rows = []
    compressions = []
    for gamma in (1.0, 2.0, 5.0, 10.0):
        s = BoostedLWFASetup(gamma_boost=gamma)
        f = s.frame
        compression = (1.0 + f.beta) ** 2 * f.gamma**2
        compressions.append(compression)
        rows.append(
            [
                f"{gamma:.0f}",
                f"{s.wavelength * 1e6:.3f}",
                f"{s.density:.2e}",
                f"{s.length * 1e6:.1f}",
                f"{s.dt * 1e15:.2f}",
                f"{compression:.1f}",
            ]
        )
    table(
        "Boosted-frame LWFA: scale compression (1+beta)^2 gamma^2 (Vay 2007)",
        [
            "gamma",
            "lambda' [um]",
            "n' [m^-3]",
            "L' [um]",
            "dt' [fs]",
            "compression",
        ],
        rows,
    )
    assert all(b > a for a, b in zip(compressions, compressions[1:]))
    assert compressions[0] == 1.0


def test_galilean_vs_standard_energy_drift(benchmark, table):
    """The comoving-current closure keeps the streaming plasma quiet.

    Total field energy of the boosted LWFA after many steps, normalized
    to the initial pulse energy: neither closure may blow up (this small
    1D case is below the NCI threshold), and the Galilean run must hold
    the energy closer to its initial value — the advected-current
    sampling is exact for structures comoving with the plasma drift,
    which is where the wake physics lives.
    """
    benchmark.pedantic(lambda: None, rounds=1)
    steps = 300
    drift = {}
    for label, galilean in (("Galilean PSATD", True), ("standard PSATD", False)):
        sim, _ = build_monolithic(SETUP, guards=4, galilean=galilean)
        e0 = field_energy(sim.grid)
        sim.step(steps)
        drift[label] = field_energy(sim.grid) / e0
    table(
        f"Field-energy drift after {steps} steps, plasma streaming at "
        f"-{SETUP.frame.beta:.3f}c",
        ["closure", "W(t)/W(0)", "|W/W0 - 1|"],
        [[label, f"{g:.4f}", f"{abs(g - 1.0):.2e}"] for label, g in drift.items()],
    )
    assert all(np.isfinite(g) and abs(g - 1.0) < 0.5 for g in drift.values())
    assert abs(drift["Galilean PSATD"] - 1.0) < abs(drift["standard PSATD"] - 1.0)


def test_distributed_guard_sweep(benchmark, table):
    """Error vs monolithic and wall time as guards deepen (2 ranks)."""
    benchmark.pedantic(lambda: None, rounds=1)
    steps = 30
    mono, _ = build_monolithic(SETUP, guards=4)
    t0 = time.perf_counter()
    mono.step(steps)
    t_mono = time.perf_counter() - t0
    rows = []
    errors = []
    for guards in (4, 8, 12, 16):
        dist = make_distributed_build(
            SETUP, n_ranks=2, max_grid_size=32, psatd_guards=guards
        )()
        t0 = time.perf_counter()
        dist.step(steps)
        t_dist = time.perf_counter() - t0
        err = max(
            float(
                np.max(np.abs(dist.global_field_view(comp) - mono.grid.interior_view(comp)))
                / np.max(np.abs(mono.grid.interior_view(comp)))
            )
            for comp in ("Ex", "Ey", "Bz")
        )
        errors.append(err)
        rows.append([guards, f"{err:.2e}", f"{t_dist:.3f}", f"{t_mono:.3f}"])
    table(
        f"Distributed Galilean PSATD, {steps} steps on 2 ranks: "
        "guard sweep vs monolithic",
        ["guards", "max rel field err", "wall dist [s]", "wall mono [s]"],
        rows,
    )
    assert all(b < a for a, b in zip(errors, errors[1:]))


def test_bench_galilean_psatd_step(benchmark):
    sim, _ = build_monolithic(SETUP, guards=4)
    benchmark(sim.solver.step)
