"""The WarpX figure of merit, *measured* on this machine's Python engine.

Table IV tracks FOM across machines; this bench adds the honest local
datum: Eq. (1) evaluated on a real uniform-plasma run of this package
(one "node", 100% of the "machine").  It makes no claim of competing with
Frontier — it anchors where a NumPy PIC engine sits on the same axis and
checks that the FOM accounting plumbing works on measured data."""

import numpy as np
import pytest

from repro.particles.kernels import available_kernel_variants
from repro.perfmodel.fom import figure_of_merit
from repro.scenarios.uniform_plasma import build_uniform_plasma


def run_workload(n_cells=(48, 48), ppc=2, steps=20, **sim_kwargs):
    sim, electrons = build_uniform_plasma(
        n_cells, ppc=ppc, shape_order=2, temperature_uth=0.01, **sim_kwargs
    )
    sim.step(2)  # warm-up
    sim.timers.step_times.clear()
    sim.step(steps)
    avg = float(np.mean(sim.timers.step_times))
    n_c = float(np.prod(n_cells))
    n_p = float(electrons.n)
    return n_c, n_p, avg


def test_local_fom(benchmark, table):
    n_c, n_p, avg = benchmark.pedantic(run_workload, rounds=1)
    fom = figure_of_merit(n_c, n_p, avg, percent_of_system=1.0)
    rows = [
        ["cells", f"{n_c:.0f}"],
        ["macroparticles", f"{n_p:.0f}"],
        ["avg time/step [s]", f"{avg:.4f}"],
        ["FOM (tiled, float64)", f"{fom:.3e}"],
    ]
    if "compiled" in available_kernel_variants():
        # the engine's own Table-III-style rows: native kernels, then
        # native kernels + float32 field storage
        _, _, avg_c = run_workload(kernels="compiled")
        fom_c = figure_of_merit(n_c, n_p, avg_c, percent_of_system=1.0)
        _, _, avg_mp = run_workload(kernels="compiled", precision="mixed")
        fom_mp = figure_of_merit(n_c, n_p, avg_mp, percent_of_system=1.0)
        rows += [
            ["avg time/step [s] (compiled)", f"{avg_c:.4f}"],
            ["FOM (compiled, float64)", f"{fom_c:.3e}  ({fom_c / fom:.2f}x)"],
            ["avg time/step [s] (compiled, MP)", f"{avg_mp:.4f}"],
            ["FOM (compiled, mixed)", f"{fom_mp:.3e}  ({fom_mp / fom:.2f}x)"],
        ]
        assert fom_c > fom  # the compiled tier must move the local FOM
    rows.append(["Frontier 7/22 (paper)", "1.1e13"])
    table(
        "Local FOM: Eq. (1) on this machine's Python engine (measured)",
        ["quantity", "value"],
        rows,
    )
    print(f"\nFrontier outruns this laptop-class NumPy engine by "
          f"{1.1e13 / fom:.1e}x on the FOM axis — the gap the paper's "
          "three-level parallelization strategy exists to close.")
    assert fom > 0
    assert fom < 1.1e13  # we are, confidently, not Frontier
