"""CI gate: the tiled kernel fast path must beat the np.add.at baseline.

The dispatch registry (:mod:`repro.particles.kernels`) only earns its keep
if selecting ``kernels="tiled"`` is both *safe* and *profitable*.  This
script enforces the two halves of that contract on the Sec. V.A.1
benchmark workload (2D uniform plasma, order-3 shapes, Morton-sorted at
cell granularity):

1. cross-validates every registered variant against ``vectorized`` with
   :func:`~repro.particles.kernels.validate_kernel_set` across all
   dimensionalities — any deviation beyond machine precision fails;
2. re-validates every variant on float32 field storage against the
   per-kernel :data:`~repro.particles.kernels.FLOAT32_ERROR_BUDGET`
   (``validate_kernel_set`` raises ``PrecisionError`` on a breach);
3. times the Esirkepov current deposition (the production deposit, where
   ``np.add.at`` hurts most) and the field gather for both variants, and
   fails (exit 1) if the tiled deposition is not measurably faster than
   the ``np.add.at`` baseline;
4. when the compiled tier is registered (numba or a C compiler found),
   times it on the same workload and fails if it does not beat the tiled
   fast path by :data:`REQUIRED_COMPILED_SPEEDUP`; when no backend is
   usable the tier is reported with its reason and the gate still passes
   (exit 0) — the numpy tiers remain the contract.

Run:  PYTHONPATH=src python benchmarks/check_kernel_fastpath.py
"""

import sys
import time

import numpy as np

from repro.constants import q_e
from repro.particles.deposit import (
    deposit_current_esirkepov,
    deposit_current_esirkepov_tiled,
)
from repro.particles.gather import gather_fields, gather_fields_tiled
from repro.particles.kernels import (
    available_kernel_variants,
    get_kernel_set,
    kernel_tier_status,
    validate_kernel_set,
)
from repro.particles.sorting import sort_species_by_bin
from repro.scenarios.uniform_plasma import build_uniform_plasma

#: worst scale-normalized deviation any variant may show vs. vectorized
NUMERIC_TOLERANCE = 1e-12
#: required margin of the tiled deposition over np.add.at (1.05 = 5%)
REQUIRED_DEPOSIT_SPEEDUP = 1.05
#: required margin of the compiled tier over tiled when it is available
#: (measured ~12x with the C backend; 3x keeps slack for loaded CI boxes)
REQUIRED_COMPILED_SPEEDUP = 3.0
ORDER = 3
WORKLOAD = dict(n_cells=(24, 24), ppc=4, shape_order=ORDER, temperature_uth=0.05)


def best_of(fn, rounds: int = 7) -> float:
    fn()  # warm-up
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def main() -> int:
    failures = 0
    print("kernel variant cross-validation (worst deviation vs vectorized):")
    for name in available_kernel_variants():
        if name == "vectorized":
            continue
        for ndim in (1, 2, 3):
            errors = validate_kernel_set(name, ndim=ndim, order=ORDER)
            worst = max(errors.values())
            status = "ok" if worst < NUMERIC_TOLERANCE else "FAIL"
            if worst >= NUMERIC_TOLERANCE:
                failures += 1
            print(f"  {name:11s} ndim={ndim}: {worst:9.2e}  {status}")

    print("float32 storage vs per-kernel error budget:")
    for name in available_kernel_variants():
        for ndim in (1, 2, 3):
            try:
                errors = validate_kernel_set(
                    name, ndim=ndim, order=ORDER, precision="float32")
            except Exception as exc:  # PrecisionError carries the breach
                failures += 1
                print(f"  {name:11s} ndim={ndim}: FAIL ({exc})")
                continue
            worst = max(errors.values())
            print(f"  {name:11s} ndim={ndim}: {worst:9.2e}  ok")

    sim, electrons = build_uniform_plasma(**WORKLOAD)
    sort_species_by_bin(electrons, sim.grid, tile_cells=1)
    rng = np.random.default_rng(0)
    for comp in ("Ex", "Ey", "Ez", "Bx", "By", "Bz"):
        sim.grid.fields[comp][...] = rng.normal(size=sim.grid.shape)
    grid, dt = sim.grid, sim.dt
    pos = electrons.positions
    pos_new = pos + 0.2 * grid.dx[0]
    vel = electrons.velocities()
    w = electrons.weights

    t_vec = best_of(lambda: deposit_current_esirkepov(
        grid, pos, pos_new, vel, w, -q_e, dt, ORDER))
    t_tiled = best_of(lambda: deposit_current_esirkepov_tiled(
        grid, pos, pos_new, vel, w, -q_e, dt, ORDER))
    dep_speedup = t_vec / t_tiled
    g_vec = best_of(lambda: gather_fields(grid, pos, ORDER))
    g_tiled = best_of(lambda: gather_fields_tiled(grid, pos, ORDER))
    gather_speedup = g_vec / g_tiled

    print(f"\ntiled fast path vs np.add.at baseline ({electrons.n} particles, "
          f"order {ORDER}):")
    print(f"  deposition: {t_vec * 1e3:8.3f} ms -> {t_tiled * 1e3:8.3f} ms  "
          f"({dep_speedup:.2f}x)")
    print(f"  gather:     {g_vec * 1e3:8.3f} ms -> {g_tiled * 1e3:8.3f} ms  "
          f"({gather_speedup:.2f}x, informational)")

    compiled_speedup = None
    if "compiled" in available_kernel_variants():
        ks = get_kernel_set("compiled")
        c_dep = best_of(lambda: ks.deposit_current(
            grid, pos, pos_new, vel, w, -q_e, dt, ORDER))
        c_gath = best_of(lambda: ks.gather(grid, pos, ORDER))
        compiled_speedup = t_tiled / c_dep
        print(f"\ncompiled tier ({ks.backend} backend) vs tiled:")
        print(f"  deposition: {t_tiled * 1e3:8.3f} ms -> {c_dep * 1e3:8.3f} ms  "
              f"({compiled_speedup:.2f}x)")
        print(f"  gather:     {g_tiled * 1e3:8.3f} ms -> {c_gath * 1e3:8.3f} ms  "
              f"({g_tiled / c_gath:.2f}x, informational)")
    else:
        reason = kernel_tier_status().get("compiled", "not registered")
        print(f"\ncompiled tier unavailable, skipping its timing gate "
              f"({reason})")

    if failures:
        print(f"FAIL: {failures} variant/ndim combination(s) deviate beyond "
              f"{NUMERIC_TOLERANCE:.0e}")
        return 1
    if dep_speedup < REQUIRED_DEPOSIT_SPEEDUP:
        print(f"FAIL: tiled deposition speedup {dep_speedup:.2f}x is under "
              f"the required {REQUIRED_DEPOSIT_SPEEDUP:.2f}x")
        return 1
    if compiled_speedup is not None and compiled_speedup < REQUIRED_COMPILED_SPEEDUP:
        print(f"FAIL: compiled deposition speedup {compiled_speedup:.2f}x over "
              f"tiled is under the required {REQUIRED_COMPILED_SPEEDUP:.2f}x")
        return 1
    print(f"OK: tiled deposition beats np.add.at by {dep_speedup:.2f}x "
          f"(>= {REQUIRED_DEPOSIT_SPEEDUP:.2f}x) at machine precision")
    return 0


if __name__ == "__main__":
    sys.exit(main())
