"""Fig. 5 (right): strong scaling with the AMReX block-granularity floor.

A fixed problem is spread over more nodes until there are fewer cells per
device than one block — the paper's scaling floor.  The expected shape:
roughly 30 % efficiency loss per decade of nodes.

These curves are *modelled*; for measured wall-clock scaling over real
worker processes see ``bench_fig5_measured_local.py``."""

import pytest

from repro.perfmodel.machines import MACHINES
from repro.perfmodel.scaling import STRONG_SCALING_BLOCKS, strong_scaling

#: the paper's strong-scaling start points per machine
BASE_NODES = {"frontier": 512, "fugaku": 6144, "summit": 512, "perlmutter": 15}


def run_all():
    out = {}
    for key, machine in MACHINES.items():
        n0 = BASE_NODES[key]
        block = STRONG_SCALING_BLOCKS[key] ** 3
        total = block * n0 * machine.devices_per_node * 4  # 4 blocks/device
        counts = [n0 * f for f in (1, 2, 4, 8, 16) if n0 * f <= machine.max_nodes_used]
        out[key] = strong_scaling(key, total, node_counts=counts)
    return out


def test_fig5_strong_scaling(benchmark, table):
    curves = benchmark(run_all)
    rows = []
    for key, records in curves.items():
        for r in records:
            rows.append(
                [
                    MACHINES[key].name,
                    r["nodes"],
                    f"{r['cells_per_device']:.2e}",
                    f"{r['time_per_step']:.4f}",
                    f"{r['efficiency']:.1%}",
                    "yes" if r["feasible"] else "NO (past 1 block/device)",
                ]
            )
    table(
        "Fig. 5 (right): strong scaling of a fixed problem",
        ["Machine", "Nodes", "cells/device", "t/step [s]", "Efficiency",
         "feasible"],
        rows,
    )

    for key, records in curves.items():
        feasible = [r for r in records if r["feasible"]]
        if len(feasible) < 2:
            continue
        first, last = feasible[0], feasible[-1]
        decades = (last["nodes"] / first["nodes"])
        # time-to-solution must still improve with more nodes...
        assert last["time_per_step"] < first["time_per_step"]
        # ...while efficiency decays roughly like the paper's ~30 % per decade
        if decades >= 8:
            assert 0.35 < last["efficiency"] < 0.95, key
