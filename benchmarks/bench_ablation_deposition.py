"""Ablation: Esirkepov (charge-conserving) vs direct current deposition.

The charge-conserving scheme costs more per particle; the direct scheme
violates the continuity equation, which accumulates unphysical fields over
long runs.  This bench quantifies both sides of the trade."""

import numpy as np
import pytest

from repro.constants import q_e
from repro.grid.stencils import diff_backward
from repro.grid.yee import YeeGrid
from repro.particles.deposit import (
    deposit_charge,
    deposit_current_direct,
    deposit_current_esirkepov,
)


@pytest.fixture(scope="module")
def workload():
    g = YeeGrid((32, 32), (0, 0), (32.0, 32.0), guards=4)
    rng = np.random.default_rng(5)
    n = 20000
    pos0 = rng.uniform(4.0, 28.0, size=(n, 2))
    pos1 = pos0 + rng.uniform(-0.4, 0.4, size=(n, 2))
    vel = (pos1 - pos0) / 1e-9
    vel3 = np.zeros((n, 3))
    vel3[:, :2] = vel
    w = rng.uniform(0.5, 2.0, size=n)
    return g, pos0, pos1, vel3, w


def test_bench_esirkepov(benchmark, workload):
    g, pos0, pos1, vel, w = workload

    def run():
        g.zero_sources()
        deposit_current_esirkepov(g, pos0, pos1, vel, w, -q_e, 1e-9, order=2)

    benchmark(run)


def test_bench_direct(benchmark, workload):
    g, pos0, pos1, vel, w = workload

    def run():
        g.zero_sources()
        deposit_current_direct(g, 0.5 * (pos0 + pos1), vel, w, -q_e, order=2)

    benchmark(run)


def test_continuity_violation_of_direct(benchmark, table, workload):
    benchmark.pedantic(lambda: None, rounds=1)
    g, pos0, pos1, vel, w = workload
    dt = 1e-9

    def residual(deposit):
        grid = YeeGrid((32, 32), (0, 0), (32.0, 32.0), guards=4)
        rho0 = YeeGrid((32, 32), (0, 0), (32.0, 32.0), guards=4)
        rho1 = YeeGrid((32, 32), (0, 0), (32.0, 32.0), guards=4)
        deposit_charge(rho0, pos0, w, -q_e, order=2)
        deposit_charge(rho1, pos1, w, -q_e, order=2)
        deposit(grid)
        div = np.zeros(grid.shape)
        for d, comp in enumerate(("Jx", "Jy")):
            div += diff_backward(grid.fields[comp], d, grid.dx[d])
        res = (rho1.fields["rho"] - rho0.fields["rho"]) / dt + div
        scale = np.max(np.abs(grid.fields["Jx"])) / grid.dx[0]
        return np.max(np.abs(res)) / scale

    r_esir = residual(
        lambda g2: deposit_current_esirkepov(g2, pos0, pos1, vel, w, -q_e, dt, 2)
    )
    r_direct = residual(
        lambda g2: deposit_current_direct(g2, 0.5 * (pos0 + pos1), vel, w, -q_e, 2)
    )
    table(
        "Ablation: continuity-equation residual |d rho/dt + div J| (normalized)",
        ["scheme", "residual"],
        [["Esirkepov", f"{r_esir:.2e}"], ["direct", f"{r_direct:.2e}"]],
    )
    assert r_esir < 1e-10
    assert r_direct > 1e3 * r_esir  # the direct scheme is *not* conserving
