"""Fig. 6: time-to-solution with and without mesh refinement.

Three runs of the same reduced 2D hybrid-target scenario (the paper's own
Fig. 6 construction):

  a) "with MR"               — coarse grid + fine patch over the solid,
                               patch removed after reflection (the star),
                               moving window afterwards (the dashed line);
  b) "no MR, 2x res, ppc/4"  — uniform fine resolution, total macro-
                               particles matched to case (a);
  c) "no MR, 2x res"         — uniform fine resolution, same ppc as (a).

We record cumulative wall-clock time against simulation time and verify
the paper's shape: the three cases cost about the same while the patch is
active, and once the patch is removed the MR run pulls ahead, ending
1.5x-4x cheaper (the paper's reported band)."""

import numpy as np
import pytest

from repro.constants import fs, um
from repro.scenarios.hybrid_target import HybridTargetSetup, build_hybrid_target


def make_setup():
    return HybridTargetSetup(
        cells_per_wavelength=5,
        x_max=16 * um,
        y_half=4 * um,
        gas_lo=3 * um,
        gas_hi=10 * um,
        solid_lo=10 * um,
        solid_hi=11.5 * um,
        solid_nc=20.0,
        a0=2.5,
        duration=6 * fs,
        waist=2.5 * um,
    )


def run_case(mode: str, t_end: float):
    """Run one Fig. 6 case; returns (sim_times, cumulative_wall_times)."""
    setup = make_setup()
    sim, _, _ = build_hybrid_target(setup, mode=mode)
    sim_times = [0.0]
    wall = [0.0]
    while sim.time < t_end:
        sim.step()
        sim_times.append(sim.time)
        wall.append(wall[-1] + sim.timers.step_times[-1])
    return np.array(sim_times), np.array(wall)


@pytest.fixture(scope="module")
def fig6_runs():
    setup = make_setup()
    t_end = setup.window_start_time() + 15 * fs
    return {
        mode: run_case(mode, t_end)
        for mode in ("mr", "highres_ppc4", "highres")
    }, setup, t_end


def wall_at(times, wall, t):
    return float(np.interp(t, times, wall))


def test_fig6_time_to_solution(benchmark, table, fig6_runs):
    runs, setup, t_end = fig6_runs
    benchmark.pedantic(lambda: None, rounds=1)  # timing captured in fig6_runs

    t_star = setup.patch_removal_time()
    t_window = setup.window_start_time()
    labels = {
        "mr": "a) with MR",
        "highres_ppc4": "b) no MR, 2x res., ppc/4",
        "highres": "c) no MR, 2x res.",
    }
    rows = []
    samples = np.linspace(0, t_end, 9)
    for mode, (times, wall) in runs.items():
        rows.append(
            [labels[mode]]
            + [f"{wall_at(times, wall, t):.1f}" for t in samples]
        )
    table(
        "Fig. 6: cumulative wall-clock [s] vs simulation time "
        f"(star = patch removal at {t_star / fs:.0f} fs, dashed = moving "
        f"window at {t_window / fs:.0f} fs)",
        ["case"] + [f"{t / fs:.0f}fs" for t in samples],
        rows,
    )

    mr_t, mr_w = runs["mr"]
    b_t, b_w = runs["highres_ppc4"]
    c_t, c_w = runs["highres"]

    # per-unit-simulation-time cost late in the run (after the star):
    late0, late1 = t_window, t_end
    rate_mr = (wall_at(mr_t, mr_w, late1) - wall_at(mr_t, mr_w, late0)) / (late1 - late0)
    rate_b = (wall_at(b_t, b_w, late1) - wall_at(b_t, b_w, late0)) / (late1 - late0)
    rate_c = (wall_at(c_t, c_w, late1) - wall_at(c_t, c_w, late0)) / (late1 - late0)
    speedup_b = rate_b / rate_mr
    speedup_c = rate_c / rate_mr
    print(f"\nlate-time cost ratio vs MR:  case b = {speedup_b:.2f}x,  "
          f"case c = {speedup_c:.2f}x   (paper band: 1.5x - 4x)")

    # the paper's claim: after patch removal the MR case is 1.5-4x cheaper
    assert speedup_b > 1.3
    assert speedup_c > speedup_b  # more particles cost more
    assert speedup_c < 12.0

    # while the patch is active the costs are comparable (same order)
    early = 0.8 * t_star
    ratio_early = wall_at(b_t, b_w, early) / wall_at(mr_t, mr_w, early)
    print(f"early-time cost ratio (patch active): {ratio_early:.2f}x")
    assert 0.3 < ratio_early < 3.5

    # total time-to-solution advantage at the end of the run
    total_b = wall_at(b_t, b_w, t_end) / wall_at(mr_t, mr_w, t_end)
    total_c = wall_at(c_t, c_w, t_end) / wall_at(mr_t, mr_w, t_end)
    print(f"end-to-end advantage: {total_b:.2f}x (b), {total_c:.2f}x (c)")
    assert total_b > 1.0
