"""Shared helpers for the benchmark harness.

Every table and figure of the paper's evaluation has a bench module here;
run them all with ``pytest benchmarks/ --benchmark-only -s`` (the ``-s``
lets the regenerated tables print).

Every table a benchmark prints is also persisted, machine-readable, as
``benchmarks/results/BENCH_<test-name>.json`` (timestamped, with the
title/header/rows of the printed table), so the perf trajectory of the
repo accumulates instead of evaporating with the terminal scrollback.
"""

from __future__ import annotations

import json
import os
import re
from datetime import datetime, timezone
from typing import Iterable, Sequence

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print an aligned table with a title banner."""
    rows = [tuple(str(c) for c in r) for r in rows]
    widths = [len(h) for h in header]
    for r in rows:
        for i, cell in enumerate(r):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print("\n" + "=" * len(line))
    print(title)
    print("=" * len(line))
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(c.ljust(w) for c, w in zip(r, widths)))


def persist_table(
    name: str, title: str, header: Sequence[str], rows: Iterable[Sequence]
) -> str:
    """Write one benchmark table as ``results/BENCH_<name>.json``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", name)
    path = os.path.join(RESULTS_DIR, f"BENCH_{safe}.json")
    payload = {
        "bench": name,
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "title": title,
        "header": list(header),
        "rows": [[str(c) for c in r] for r in rows],
    }
    with open(path, "w", encoding="utf8") as fh:
        json.dump(payload, fh, indent=2)
    return path


@pytest.fixture
def table(request):
    """Print a table *and* persist it under ``benchmarks/results/``."""
    test_name = re.sub(r"^test_", "", request.node.name)

    def _table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
        rows = [tuple(str(c) for c in r) for r in rows]
        print_table(title, header, rows)
        persist_table(test_name, title, header, rows)

    return _table
