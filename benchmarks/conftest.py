"""Shared helpers for the benchmark harness.

Every table and figure of the paper's evaluation has a bench module here;
run them all with ``pytest benchmarks/ --benchmark-only -s`` (the ``-s``
lets the regenerated tables print).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import pytest


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print an aligned table with a title banner."""
    rows = [tuple(str(c) for c in r) for r in rows]
    widths = [len(h) for h in header]
    for r in rows:
        for i, cell in enumerate(r):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print("\n" + "=" * len(line))
    print(title)
    print("=" * len(line))
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(c.ljust(w) for c, w in zip(r, widths)))


@pytest.fixture
def table():
    return print_table
