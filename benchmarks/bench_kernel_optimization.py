"""Sec. V.A.1: gather / deposition kernel optimization speedups.

The paper tuned the two PIC hotspots on A64FX by switching from a scalar
per-particle formulation to one vectorized over particles with the stencil
point fixed, reporting 2.63x (gather) and 4.60x (deposition).  The same
experiment one abstraction level up, across the kernel dispatch registry's
three rungs (:mod:`repro.particles.kernels`):

* ``reference`` — one particle per call (vector length 1);
* ``vectorized`` — whole population per stencil point, scattering through
  the unbuffered ``np.add.at``;
* ``tiled`` — the fast path: histogram/segmented-reduction scatters, the
  minimal Esirkepov window, and the shared shape-weight cache;
* ``compiled`` — the native tier (numba ``@njit`` or generated C via
  ctypes), when a backend is usable in this environment: the per-particle
  scalar loops the paper actually runs, minus the interpreter.

The *direction and mechanism* match the paper; the reference-to-vectorized
magnitude is larger because the Python interpreter exaggerates per-element
overheads the way an unvectorized in-order core does.  The tiled-over-
``np.add.at`` margin is the number the CI perf gate
(``benchmarks/check_kernel_fastpath.py``) enforces.
"""

import time

import numpy as np
import pytest

from repro.constants import q_e
from repro.particles.deposit import (
    deposit_current_esirkepov,
    deposit_current_esirkepov_tiled,
    deposit_current_reference,
)
from repro.particles.gather import (
    gather_fields,
    gather_fields_reference,
    gather_fields_tiled,
)
from repro.particles.kernels import available_kernel_variants, get_kernel_set
from repro.particles.sorting import sort_species_by_bin
from repro.scenarios.uniform_plasma import build_uniform_plasma

ORDER = 3  # the paper's experiment uses order-3 shapes (64-point stencils)
N_REFERENCE = 400  # particles given to the scalar reference kernels


@pytest.fixture(scope="module")
def workload():
    sim, electrons = build_uniform_plasma(
        (24, 24), ppc=4, shape_order=ORDER, temperature_uth=0.05
    )
    # cell-granularity Morton order: the layout the sort-aware tiled
    # scatters are designed for (sort_interval in production runs)
    sort_species_by_bin(electrons, sim.grid, tile_cells=1)
    rng = np.random.default_rng(0)
    for comp in ("Ex", "Ey", "Ez", "Bx", "By", "Bz"):
        sim.grid.fields[comp][...] = rng.normal(size=sim.grid.shape)
    return sim, electrons


def _measure(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_kernel_optimization(benchmark, workload, table):
    benchmark.pedantic(lambda: None, rounds=1)  # timings measured below
    sim, electrons = workload
    grid = sim.grid
    pos = electrons.positions
    n = electrons.n
    dt = sim.dt

    # gather: per-particle time of each registry rung
    t_ref_gather = _measure(
        lambda: gather_fields_reference(grid, pos[:N_REFERENCE], ORDER)
    ) / N_REFERENCE
    t_vec_gather = _measure(lambda: gather_fields(grid, pos, ORDER)) / n
    t_tiled_gather = _measure(lambda: gather_fields_tiled(grid, pos, ORDER)) / n

    # deposition
    vel = electrons.velocities()
    pos_new = pos + 0.2 * grid.dx[0]
    t_ref_dep = _measure(
        lambda: deposit_current_reference(
            grid, pos[:N_REFERENCE], pos_new[:N_REFERENCE], vel[:N_REFERENCE],
            electrons.weights[:N_REFERENCE], -q_e, dt, ORDER,
        )
    ) / N_REFERENCE
    t_vec_dep = _measure(
        lambda: deposit_current_esirkepov(
            grid, pos, pos_new, vel, electrons.weights, -q_e, dt, ORDER
        )
    ) / n
    t_tiled_dep = _measure(
        lambda: deposit_current_esirkepov_tiled(
            grid, pos, pos_new, vel, electrons.weights, -q_e, dt, ORDER
        )
    ) / n

    compiled_rows = []
    compiled_dep_vs_tiled = None
    if "compiled" in available_kernel_variants():
        ks = get_kernel_set("compiled")
        t_c_gather = _measure(lambda: ks.gather(grid, pos, ORDER)) / n
        t_c_dep = _measure(
            lambda: ks.deposit_current(
                grid, pos, pos_new, vel, electrons.weights, -q_e, dt, ORDER
            )
        ) / n
        compiled_dep_vs_tiled = t_tiled_dep / t_c_dep
        compiled_rows = [
            ["Gather", f"compiled ({ks.backend})", f"{t_c_gather * 1e6:.3f}",
             f"{t_tiled_gather / t_c_gather:.2f}x vs tiled", ""],
            ["Deposition", f"compiled ({ks.backend})", f"{t_c_dep * 1e6:.3f}",
             f"{compiled_dep_vs_tiled:.2f}x vs tiled", ""],
        ]

    speedup_gather = t_ref_gather / t_vec_gather
    speedup_dep = t_ref_dep / t_vec_dep
    tiled_gather_vs_vec = t_vec_gather / t_tiled_gather
    tiled_dep_vs_vec = t_vec_dep / t_tiled_dep
    table(
        "Sec. V.A.1: kernel optimization (reference = vector length 1; "
        "tiled speedups are over the vectorized np.add.at kernels)",
        ["Routine", "Variant", "us/particle", "Speed up", "paper (A64FX)"],
        [
            ["Gather", "reference", f"{t_ref_gather * 1e6:.2f}", "1.0x", ""],
            ["Gather", "vectorized", f"{t_vec_gather * 1e6:.3f}",
             f"{speedup_gather:.1f}x vs reference", "2.63x"],
            ["Gather", "tiled", f"{t_tiled_gather * 1e6:.3f}",
             f"{tiled_gather_vs_vec:.2f}x vs vectorized", ""],
            ["Deposition", "reference", f"{t_ref_dep * 1e6:.2f}", "1.0x", ""],
            ["Deposition", "vectorized", f"{t_vec_dep * 1e6:.3f}",
             f"{speedup_dep:.1f}x vs reference", "4.60x"],
            ["Deposition", "tiled", f"{t_tiled_dep * 1e6:.3f}",
             f"{tiled_dep_vs_vec:.2f}x vs vectorized", ""],
        ] + compiled_rows,
    )
    # the optimized kernels must win, by at least the paper's margins ...
    assert speedup_gather > 2.63
    assert speedup_dep > 4.60
    # ... and the tiled fast path must beat the np.add.at baseline
    assert tiled_dep_vs_vec > 1.0
    # ... and the native tier, when registered, must clearly beat tiled
    if compiled_dep_vs_tiled is not None:
        assert compiled_dep_vs_tiled > 3.0


def test_bench_gather_optimized(benchmark, workload):
    sim, electrons = workload
    benchmark(gather_fields, sim.grid, electrons.positions, ORDER)


def test_bench_deposit_optimized(benchmark, workload):
    sim, electrons = workload
    vel = electrons.velocities()
    pos_new = electrons.positions + 0.2 * sim.grid.dx[0]

    def run():
        sim.grid.zero_sources()
        deposit_current_esirkepov(
            sim.grid, electrons.positions, pos_new, vel,
            electrons.weights, -q_e, sim.dt, ORDER,
        )

    benchmark(run)


def test_bench_deposit_tiled(benchmark, workload):
    sim, electrons = workload
    vel = electrons.velocities()
    pos_new = electrons.positions + 0.2 * sim.grid.dx[0]

    def run():
        sim.grid.zero_sources()
        deposit_current_esirkepov_tiled(
            sim.grid, electrons.positions, pos_new, vel,
            electrons.weights, -q_e, sim.dt, ORDER,
        )

    benchmark(run)


def test_bench_gather_tiled(benchmark, workload):
    sim, electrons = workload
    benchmark(gather_fields_tiled, sim.grid, electrons.positions, ORDER)


def test_bench_gather_reference(benchmark, workload):
    sim, electrons = workload
    benchmark(
        gather_fields_reference, sim.grid, electrons.positions[:N_REFERENCE], ORDER
    )


_COMPILED_MISSING = "compiled" not in available_kernel_variants()


@pytest.mark.skipif(_COMPILED_MISSING, reason="no compiled backend usable")
def test_bench_deposit_compiled(benchmark, workload):
    sim, electrons = workload
    ks = get_kernel_set("compiled")
    vel = electrons.velocities()
    pos_new = electrons.positions + 0.2 * sim.grid.dx[0]

    def run():
        sim.grid.zero_sources()
        ks.deposit_current(
            sim.grid, electrons.positions, pos_new, vel,
            electrons.weights, -q_e, sim.dt, ORDER,
        )

    benchmark(run)


@pytest.mark.skipif(_COMPILED_MISSING, reason="no compiled backend usable")
def test_bench_gather_compiled(benchmark, workload):
    sim, electrons = workload
    ks = get_kernel_set("compiled")
    benchmark(ks.gather, sim.grid, electrons.positions, ORDER)
