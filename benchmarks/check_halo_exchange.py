"""CI gate: the pairwise halo exchange is correct and weak-scalable.

The pairwise exchange (:mod:`repro.parallel.halo`) replaced the global
assemble/scatter path in the distributed step; this gate enforces the
two properties that justify the replacement:

1. **correctness** — a 4-rank Langmuir run on the pairwise path matches
   the monolithic single-grid run to machine precision (1e-9 of the
   field scale after 40 steps, the same bar as the tier-1 substrate
   test);
2. **surface scaling** — halo traffic per box per step is a *surface*
   term: growing the domain at fixed ``max_grid_size`` must leave the
   per-box guard-sample count exactly constant (the global-assembly
   path it replaced moved the whole volume, growing linearly with the
   domain).

It also prints the alpha-beta wire time of the measured per-pair bytes
on a reference machine (informational).

Run:  PYTHONPATH=src python benchmarks/check_halo_exchange.py
"""

import sys

import numpy as np

from repro.constants import m_e, plasma_wavelength, q_e
from repro.core.simulation import Simulation
from repro.grid.yee import YeeGrid
from repro.parallel.distributed import DistributedSimulation
from repro.particles.injection import UniformProfile
from repro.particles.species import Species
from repro.perfmodel.machines import get_machine
from repro.perfmodel.network import measured_halo_time

#: relative-to-scale tolerance of the correctness leg (matches tier 1)
CORRECTNESS_TOL = 1e-9
N_STEPS = 40
MAX_GRID = 8


def build_distributed(n_cells, n0, ppc, u0, steps):
    length = plasma_wavelength(n0) * n_cells / 16.0
    dist = DistributedSimulation(
        (n_cells,) * 2, (0.0, 0.0), (length, length),
        n_ranks=4, max_grid_size=MAX_GRID,
        cfl=0.9, shape_order=2, smoothing_passes=0,
    )
    e = Species("electrons", charge=-q_e, mass=m_e, ndim=2)
    k = 2 * np.pi / length

    def perturb(sp):
        sp.momenta[:, 0] = u0 * np.sin(k * sp.positions[:, 0])

    dist.add_species(e, profile=UniformProfile(n0), ppc=ppc,
                     momentum_init=perturb)
    dist.step(steps)
    return dist


def main() -> int:
    failures = 0
    n0, ppc, u0 = 1e24, (2, 2), 1e-3
    length = plasma_wavelength(n0)

    # 1. correctness: pairwise-exchange run vs the monolithic grid
    mono = Simulation(
        YeeGrid((16, 16), (0.0, 0.0), (length, length), guards=4),
        cfl=0.9, shape_order=2, smoothing_passes=0,
    )
    e = Species("electrons", charge=-q_e, mass=m_e, ndim=2)
    mono.add_species(e, profile=UniformProfile(n0), ppc=ppc)
    k = 2 * np.pi / length
    e.momenta[:, 0] = u0 * np.sin(k * e.positions[:, 0])
    mono.step(N_STEPS)

    dist = build_distributed(16, n0, ppc, u0, N_STEPS)
    ex_mono = mono.grid.interior_view("Ex")
    ex_dist = dist.global_field_view("Ex")
    scale = float(np.max(np.abs(ex_mono)))
    worst = float(np.max(np.abs(ex_dist - ex_mono))) / scale
    status = "ok" if worst < CORRECTNESS_TOL else "FAIL"
    print(f"pairwise vs monolithic after {N_STEPS} steps: "
          f"max |dEx|/scale = {worst:.2e}  {status}")
    if worst >= CORRECTNESS_TOL:
        failures += 1

    # 2. surface scaling: per-box-per-step guard samples constant as the
    #    domain grows at fixed box size (pure surface, not volume)
    per_box = {}
    for n_cells in (16, 32):
        run = build_distributed(n_cells, n0, ppc, u0, steps=5)
        n_boxes = len(run.boxes)
        per_box[n_cells] = run.halo_samples / (n_boxes * 5)
        print(f"  n_cells={n_cells:3d}: {n_boxes:3d} boxes of {MAX_GRID}^2, "
              f"{per_box[n_cells]:.1f} guard samples/box/step, "
              f"{run.halo_payload_bytes} payload bytes total")
    if per_box[16] != per_box[32]:
        print(f"FAIL: halo samples per box changed with domain size "
              f"({per_box[16]:.1f} -> {per_box[32]:.1f}); "
              "the exchange is not a pure surface term")
        failures += 1
    else:
        print(f"OK: halo traffic per box is domain-size independent "
              f"({per_box[16]:.1f} samples/box/step)")

    # 3. informational: alpha-beta wire time of the measured traffic
    machine = get_machine("frontier")
    t_wire = measured_halo_time(
        machine, dist.comm.pair_bytes, messages_per_pair=2 * N_STEPS
    )
    print(f"measured halo wire time on {machine.name}: "
          f"{t_wire * 1e6:.1f} us for the whole {N_STEPS}-step run")

    if failures:
        print(f"FAIL: {failures} halo-exchange gate(s) failed")
        return 1
    print("OK: pairwise halo exchange is machine-precision correct and "
          "surface-scaling")
    return 0


if __name__ == "__main__":
    sys.exit(main())
