"""Ablation: periodic particle sorting (Sec. VII.C's cache optimization).

Sorting particles along the Morton curve groups their stencil accesses;
the paper lists periodic sorting among the GPU-era FOM improvements.  We
measure the gather/deposit throughput on shuffled vs Morton-sorted
particles and the locality score that explains the difference."""

import numpy as np
import pytest

from repro.constants import q_e
from repro.grid.yee import YeeGrid
from repro.particles.deposit import deposit_current_esirkepov
from repro.particles.gather import gather_fields
from repro.particles.sorting import binning_locality_score, sort_species_by_bin
from repro.particles.species import Species


def make_population(sorted_particles: bool, n=60000, cells=64):
    g = YeeGrid((cells, cells), (0, 0), (float(cells),) * 2, guards=4)
    rng = np.random.default_rng(9)
    for comp in ("Ex", "Ey", "Ez", "Bx", "By", "Bz"):
        g.fields[comp][...] = rng.normal(size=g.shape)
    s = Species("e", ndim=2)
    pos = rng.uniform(2.0, cells - 2.0, size=(n, 2))
    s.add_particles(pos, rng.normal(0, 0.1, (n, 3)))
    if sorted_particles:
        sort_species_by_bin(s, g, tile_cells=4)
    return g, s


def test_sorting_locality_and_throughput(benchmark, table):
    import time

    rows = []
    times = {}
    for is_sorted in (False, True):
        g, s = make_population(is_sorted)
        score = binning_locality_score(s, g, tile_cells=4)
        t0 = time.perf_counter()
        for _ in range(5):
            gather_fields(g, s.positions, order=3)
        t_gather = (time.perf_counter() - t0) / 5
        pos1 = s.positions + 0.2
        vel = np.zeros((s.n, 3))
        t0 = time.perf_counter()
        for _ in range(5):
            g.zero_sources()
            deposit_current_esirkepov(
                g, s.positions, pos1, vel, s.weights, -q_e, 1e-9, 3
            )
        t_dep = (time.perf_counter() - t0) / 5
        times[is_sorted] = (t_gather, t_dep)
        rows.append(
            ["Morton-sorted" if is_sorted else "shuffled",
             f"{score:.3f}", f"{t_gather * 1e3:.1f}", f"{t_dep * 1e3:.1f}"]
        )
    benchmark.pedantic(lambda: None, rounds=1)
    table(
        "Ablation: particle sorting (order-3 kernels, 60k particles)",
        ["layout", "locality score", "gather [ms]", "deposit [ms]"],
        rows,
    )
    # sorting must raise the locality score dramatically; the runtime gain
    # in NumPy (gather/scatter through fancy indexing) is modest but the
    # locality mechanism is the paper's
    g, s_shuf = make_population(False)
    g2, s_sort = make_population(True)
    assert binning_locality_score(s_sort, g2) > 5 * max(
        binning_locality_score(s_shuf, g), 0.01
    )


def test_bench_gather_sorted(benchmark):
    g, s = make_population(True)
    benchmark(gather_fields, g, s.positions, 3)


def test_bench_gather_shuffled(benchmark):
    g, s = make_population(False)
    benchmark(gather_fields, g, s.positions, 3)
