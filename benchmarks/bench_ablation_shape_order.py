"""Ablation: particle shape-factor order (paper Sec. IV a).

High-order shapes cost more per particle but suppress the finite-grid
instability, letting the dense target run at lower resolution — Table I
marks them essential.  We measure the kernel cost scaling with order and
the self-heating rate of a warm dense plasma at each order."""

import numpy as np
import pytest

from repro.constants import q_e
from repro.grid.yee import YeeGrid
from repro.particles.deposit import deposit_current_esirkepov
from repro.particles.gather import gather_fields
from repro.scenarios.uniform_plasma import build_uniform_plasma


@pytest.fixture(scope="module")
def kernel_workload():
    g = YeeGrid((48, 48), (0, 0), (48.0, 48.0), guards=4)
    rng = np.random.default_rng(3)
    for comp in ("Ex", "Ey", "Ez", "Bx", "By", "Bz"):
        g.fields[comp][...] = rng.normal(size=g.shape)
    n = 40000
    pos0 = rng.uniform(4.0, 44.0, size=(n, 2))
    pos1 = pos0 + rng.uniform(-0.3, 0.3, size=(n, 2))
    vel = np.zeros((n, 3))
    w = np.ones(n)
    return g, pos0, pos1, vel, w


@pytest.mark.parametrize("order", [1, 2, 3])
def test_bench_gather_by_order(benchmark, kernel_workload, order):
    g, pos0, _, _, _ = kernel_workload
    benchmark(gather_fields, g, pos0, order)


@pytest.mark.parametrize("order", [1, 2, 3])
def test_bench_deposit_by_order(benchmark, kernel_workload, order):
    g, pos0, pos1, vel, w = kernel_workload

    def run():
        g.zero_sources()
        deposit_current_esirkepov(g, pos0, pos1, vel, w, -q_e, 1e-9, order)

    benchmark(run)


def test_self_heating_vs_order(benchmark, table):
    """A warm plasma self-heats through grid noise; higher-order shapes
    slow the heating — the reason the dense-target science case needs
    them (or prohibitively higher resolution)."""
    benchmark.pedantic(lambda: None, rounds=1)
    rows = []
    heating = {}
    for order in (1, 2, 3):
        sim, e = build_uniform_plasma(
            (24, 24), density=4e25, ppc=2, shape_order=order,
            temperature_uth=0.02, smoothing_passes=0, seed=4,
        )
        ke0 = e.kinetic_energy()
        sim.step(150)
        growth = e.kinetic_energy() / ke0
        heating[order] = growth
        rows.append([order, f"{growth:.3f}"])
    table(
        "Ablation: numerical self-heating (KE growth over 150 steps, dense "
        "warm plasma)",
        ["shape order", "KE(end)/KE(0)"],
        rows,
    )
    # heating must not increase with order; order 3 is the quietest
    assert heating[3] <= heating[1] * 1.05
    assert heating[3] < 2.0
