"""Fig. 7: the hybrid solid-gas target science result, MR vs no-MR.

The paper validates the MR run against a no-MR run at uniform fine
resolution: injected beam charge (7a), electron spectrum (7b) and the
field/density snapshots (7c/d) must agree.  We run the reduced 2D version
in both modes and check the same agreements:

* charge injected from the solid (> threshold) is nonzero and agrees
  between MR and no-MR within a factor 2 at every recorded time;
* the spectra peak at comparable energies;
* the post-reflection laser field patterns agree where both grids overlap.
"""

import numpy as np
import pytest

from repro.constants import MeV, fs, um
from repro.diagnostics.beam import BeamHistory, beam_statistics
from repro.diagnostics.spectrum import energy_spectrum, spectral_peak_and_spread
from repro.scenarios.hybrid_target import HybridTargetSetup, build_hybrid_target

THRESHOLD = 0.25 * MeV


def make_setup():
    return HybridTargetSetup(
        cells_per_wavelength=8,
        x_max=16 * um,
        y_half=4 * um,
        gas_lo=3 * um,
        gas_hi=10 * um,
        solid_lo=10 * um,
        solid_hi=11.5 * um,
        solid_nc=12.0,
        a0=5.0,
        duration=6 * fs,
        waist=2.5 * um,
    )


def run_case(mode: str):
    setup = make_setup()
    # physics validation runs without subcycling: the paper's full
    # time-interpolated subcycling algorithm is "omitted for brevity";
    # our one-sided variant adds boundary noise during the violent
    # reflection, so the Fig. 7 comparison uses the synchronous MR mode
    sim, solid, gas = build_hybrid_target(setup, mode=mode, subcycle=False)
    history = BeamHistory(energy_threshold=THRESHOLD)
    t_end = setup.window_start_time() + 10 * fs
    while sim.time < t_end:
        sim.step(5)
        history.record(sim.time, solid)
    ey = sim.grid.interior_view("Ey").copy()
    return setup, sim, solid, history, ey


@pytest.fixture(scope="module")
def fig7_runs():
    return {mode: run_case(mode) for mode in ("mr", "highres")}


def test_fig7a_beam_charge_history(benchmark, table, fig7_runs):
    benchmark.pedantic(lambda: None, rounds=1)
    _, _, _, hist_mr, _ = fig7_runs["mr"]
    _, _, _, hist_hr, _ = fig7_runs["highres"]
    rows = []
    for i in range(0, len(hist_mr.times), max(len(hist_mr.times) // 12, 1)):
        t = hist_mr.times[i]
        q_mr = hist_mr.charge[i]
        q_hr = float(np.interp(t, hist_hr.times, hist_hr.charge))
        rows.append([f"{t / fs:.0f}", f"{q_mr:.3e}", f"{q_hr:.3e}"])
    table(
        "Fig. 7a: beam charge [C/m] in the window (solid electrons above "
        f"{THRESHOLD / MeV:.2f} MeV)",
        ["t [fs]", "with MR", "no MR (2x res)"],
        rows,
    )
    q_mr = hist_mr.final_charge()
    q_hr = hist_hr.final_charge()
    assert q_mr > 0 and q_hr > 0
    # MR and the uniform-fine reference agree on the injected charge
    # (reduced-scale extraction is sensitive; the paper's full-resolution
    # runs agree more tightly)
    assert 0.3 < q_mr / q_hr < 3.5
    # injection is localized at the reflection: nothing before the pulse
    # reaches the solid
    setup = fig7_runs["mr"][0]
    i_before = np.searchsorted(hist_mr.times, 0.6 * setup.reflection_time())
    if i_before > 0:
        assert hist_mr.charge[i_before - 1] < 0.25 * q_mr


def test_fig7b_spectrum(benchmark, table, fig7_runs):
    benchmark.pedantic(lambda: None, rounds=1)
    rows = []
    peaks = {}
    for mode in ("mr", "highres"):
        _, _, solid, _, _ = fig7_runs[mode]
        energies = solid.kinetic_energies()
        sel = energies > THRESHOLD
        assert np.count_nonzero(sel) > 10
        beam = solid.select(sel)
        centers, dn_de = energy_spectrum(beam, bins=24)
        peak, spread = spectral_peak_and_spread(centers, dn_de)
        stats = beam_statistics(solid, energy_threshold=THRESHOLD)
        peaks[mode] = stats["mean_energy"]
        rows.append(
            [mode, f"{stats['mean_energy'] / MeV:.2f}",
             f"{peak / MeV:.2f}", f"{stats['energy_spread']:.1%}",
             f"{stats['n']}"]
        )
    table(
        "Fig. 7b: electron spectrum of the injected beam",
        ["case", "mean E [MeV]", "peak E [MeV]", "rms spread", "macroparticles"],
        rows,
    )
    # the two runs agree on the energy scale
    assert 0.4 < peaks["mr"] / peaks["highres"] < 2.5


def test_fig7cd_field_snapshot_agreement(benchmark, fig7_runs):
    benchmark.pedantic(lambda: None, rounds=1)
    _, sim_mr, _, _, ey_mr = fig7_runs["mr"]
    _, sim_hr, _, _, ey_hr = fig7_runs["highres"]
    # compare the coarse run against the fine run averaged 2x2 down,
    # over the overlapping window region
    from repro.grid.interpolation import restrict
    from repro.grid.yee import STAGGER

    ny_c = ey_mr.shape[1]
    ey_hr_coarse = restrict(ey_hr, 2, STAGGER["Ey"], ey_mr.shape)
    # the two windows may sit a cell apart after independent shifting;
    # compare amplitude envelopes rather than pointwise phase
    amp_mr = np.sqrt(np.mean(ey_mr**2))
    amp_hr = np.sqrt(np.mean(ey_hr_coarse**2))
    print(f"\nrms laser field: MR {amp_mr:.3e} V/m, no-MR {amp_hr:.3e} V/m")
    assert amp_mr > 0 and amp_hr > 0
    assert 0.4 < amp_mr / amp_hr < 2.5
