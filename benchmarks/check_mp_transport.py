"""CI gate: the multiprocessing transport is equivalent and faster.

Two legs, mirroring the cross-transport differential matrix in
``tests/test_transport_matrix.py``:

1. **equivalence** — the golden Langmuir scenario on 4 worker processes
   must be *bit-identical* to the in-process loopback run: every box's
   fields and particles, the merged per-rank communication counters and
   the halo totals.  Not machine precision — equality.
2. **measured speedup** — a compute-heavy configuration is timed on both
   transports.  The wall-clock ratio is always printed and recorded; the
   ``>= 2x on 4 ranks`` assertion only arms when the machine actually
   has 4 or more usable cores (a single-core CI box cannot speed
   anything up by forking, and pretending otherwise would make the gate
   dishonest exactly where it matters).

Run:  PYTHONPATH=src python benchmarks/check_mp_transport.py
"""

import json
import os
import sys
import time
from datetime import datetime, timezone

import numpy as np

from repro.constants import m_e, plasma_wavelength, q_e
from repro.parallel.distributed import DistributedSimulation
from repro.parallel.mp_transport import (
    run_distributed_local,
    run_distributed_mp,
)
from repro.particles.injection import UniformProfile
from repro.particles.species import Species

N_RANKS = 4
PARITY_STEPS = 10
SPEEDUP_STEPS = 6
#: measured-speedup floor, armed only with >= 4 usable cores
SPEEDUP_FLOOR = 2.0
RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "results",
    "BENCH_check_mp_transport.json",
)


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def make_build(n_cells=16, ppc=(2, 2), uy=0.3, smoothing_passes=1):
    """The golden parity scenario (see tests/conftest.py)."""
    n0 = 1e24
    length = plasma_wavelength(n0)

    def build(transport=None):
        sim = DistributedSimulation(
            (n_cells,) * 2, (0.0, 0.0), (length, length),
            n_ranks=N_RANKS, max_grid_size=n_cells // 2,
            cfl=0.9, shape_order=2, smoothing_passes=smoothing_passes,
            transport=transport,
        )
        e = Species("electrons", charge=-q_e, mass=m_e, ndim=2)
        k = 2 * np.pi / length

        def perturb(sp):
            sp.momenta[:, 0] = 1e-3 * np.sin(k * sp.positions[:, 0])
            if uy:
                sp.momenta[:, 1] = uy

        sim.add_species(e, profile=UniformProfile(n0), ppc=ppc,
                        momentum_init=perturb)
        return sim

    return build


def check_equivalence() -> int:
    build = make_build()
    want = run_distributed_local(build, PARITY_STEPS)
    got = run_distributed_mp(build, PARITY_STEPS, N_RANKS)
    bad = 0
    for i, comps in want.fields.items():
        for comp, arr in comps.items():
            if not np.array_equal(got.fields[i][comp], arr):
                print(f"FAIL: field {comp} of box {i} differs")
                bad += 1
    for name, per_box in want.species.items():
        for i, arrs in per_box.items():
            g = got.species[name][i]
            og, ow = np.argsort(g["ids"]), np.argsort(arrs["ids"])
            for key in ("ids", "positions", "momenta", "weights"):
                if not np.array_equal(g[key][og], arrs[key][ow]):
                    print(f"FAIL: particle {key} in box {i} differ")
                    bad += 1
    if not np.array_equal(got.counters.bytes_sent, want.counters.bytes_sent):
        print("FAIL: per-rank bytes_sent diverge")
        bad += 1
    if got.counters.pair_bytes != want.counters.pair_bytes:
        print("FAIL: pair-byte matrices diverge")
        bad += 1
    if got.halo != want.halo:
        print(f"FAIL: halo totals diverge ({got.halo} vs {want.halo})")
        bad += 1
    if bad == 0:
        print(
            f"OK: {PARITY_STEPS}-step golden run bit-identical across "
            f"transports ({len(want.fields)} boxes, "
            f"{got.total_particles()} particles, "
            f"{got.counters.total_bytes()} wire bytes)"
        )
    return bad


def measure_speedup():
    """Wall-clock ratio loopback/multiprocessing on a heavier problem."""
    build = make_build(n_cells=32, ppc=(3, 3), smoothing_passes=0)
    t0 = time.perf_counter()
    run_distributed_local(build, SPEEDUP_STEPS)
    t_loop = time.perf_counter() - t0
    mp_res = run_distributed_mp(
        build, SPEEDUP_STEPS, N_RANKS, run_timeout=600.0
    )
    t_mp = mp_res.wall_time
    return t_loop, t_mp


def main() -> int:
    failures = check_equivalence()
    cores = usable_cores()
    t_loop, t_mp = measure_speedup()
    speedup = t_loop / t_mp if t_mp > 0 else float("inf")
    armed = cores >= N_RANKS
    print(
        f"measured wall-clock on {cores} usable core(s): "
        f"loopback {t_loop:.2f}s, multiprocessing({N_RANKS} ranks) "
        f"{t_mp:.2f}s -> speedup {speedup:.2f}x"
    )
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "generated": datetime.now(timezone.utc).isoformat(),
                "usable_cores": cores,
                "n_ranks": N_RANKS,
                "loopback_wall_s": t_loop,
                "multiprocessing_wall_s": t_mp,
                "measured_speedup": speedup,
                "speedup_gate_armed": armed,
                "speedup_floor": SPEEDUP_FLOOR,
            },
            fh,
            indent=2,
        )
    if armed and speedup < SPEEDUP_FLOOR:
        print(
            f"FAIL: measured speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x "
            f"floor with {cores} cores available"
        )
        failures += 1
    elif not armed:
        print(
            f"note: speedup floor not armed ({cores} < {N_RANKS} cores); "
            "ratio recorded as measured"
        )
    if failures:
        print(f"FAIL: {failures} mp-transport gate(s) failed")
        return 1
    print("OK: multiprocessing transport equivalent to loopback"
          + (f" and {speedup:.2f}x faster" if armed else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
