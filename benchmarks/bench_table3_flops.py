"""Table III: sustained Flop/s per device and at machine scale.

DP rows are calibration (they reproduce the paper by construction); the
MP split, the A64FX-optimized path, the percent-of-peak and the
percent-of-HPCG columns are model outputs compared against the paper."""

import pytest

from repro.perfmodel.flops import flops_table
from repro.perfmodel.machines import get_machine

#: the paper's Table III, for side-by-side comparison
PAPER_TABLE3 = {
    ("Frontier", "dp"): {"dp": 1.58, "pct_peak": 3.3, "pflops": 43.45},
    ("Frontier", "mp"): {"sp": 1.43, "dp": 0.56},
    ("Fugaku", "dp"): {"dp": 0.037, "pct_peak": 1.1, "pflops": 5.31, "pct_hpcg": 34.7},
    ("Fugaku", "mp"): {"sp": 0.036, "dp": 0.003},
    ("Fugaku", "mp-opt"): {"sp": 0.12, "pflops": 17.3},
    ("Summit", "dp"): {"dp": 0.62, "pct_peak": 8.3, "pflops": 11.785, "pct_hpcg": 435.0},
    ("Summit", "mp"): {"sp": 0.64, "dp": 0.22},
    ("Perlmutter", "dp"): {"dp": 1.26, "pct_peak": 12.9, "pflops": 3.38, "pct_hpcg": 223.0},
    ("Perlmutter", "mp"): {"sp": 1.33, "dp": 0.31},
}


def test_table3_flops(benchmark, table):
    rows_data = benchmark(flops_table)
    rows = []
    for r in rows_data:
        key_mode = "mp-opt" if "optimized" in r["mode"] else r["mode"].split()[0]
        paper = PAPER_TABLE3.get((r["machine"], key_mode), {})
        paper_str = ", ".join(f"{k}={v}" for k, v in paper.items()) or "-"
        hpcg = f"{r['pct_hpcg']:.0f}%" if r["pct_hpcg"] else "n/a"
        rows.append(
            [
                r["machine"],
                r["mode"],
                f"{r['tflops_dp']:.3f}",
                f"{r['tflops_sp']:.3f}",
                f"{r['pct_peak']:.1f}%",
                f"{r['achieved_pflops']:.2f}",
                hpcg,
                paper_str,
            ]
        )
    table(
        "Table III: Flop/s per device (model) and full-machine PFlop/s",
        ["Machine", "Mode", "TF/s dp", "TF/s sp", "% peak", "PFlop/s",
         "% HPCG", "paper"],
        rows,
    )

    by_key = {(r["machine"], r["mode"]): r for r in rows_data}
    # DP rows reproduce the calibration inputs
    for name in ("Frontier", "Summit", "Perlmutter"):
        label = "dp"
        row = by_key[(name, label)]
        assert row["tflops_dp"] == pytest.approx(
            PAPER_TABLE3[(name, "dp")]["dp"], rel=1e-6
        )
    # percent-of-peak lands in the paper's 1-13 % memory-bound band
    for r in rows_data:
        assert 0.1 < r["pct_peak"] < 20.0
    # machine-scale DP PFlop/s within 35 % of the paper
    for name, paper_pf in (("Frontier", 43.45), ("Summit", 11.785),
                           ("Perlmutter", 3.38), ("Fugaku", 5.31)):
        label = "dp" if name != "Fugaku" else "dp (generic)"
        model_pf = by_key[(name, label)]["achieved_pflops"]
        assert model_pf == pytest.approx(paper_pf, rel=0.35), name
    # the HPCG comparison keeps its striking shape: GPU machines exceed
    # HPCG by 2-5x, Fugaku stays well below it
    assert by_key[("Summit", "dp")]["pct_hpcg"] > 200
    assert by_key[("Fugaku", "dp (generic)")]["pct_hpcg"] < 50
