"""Fig. 5 (left): weak scaling on Frontier, Fugaku, Summit, Perlmutter.

Regenerates the efficiency-vs-nodes series from the calibrated network
model and checks the paper's anchor points: Frontier 80 % at 8576 nodes,
Fugaku 84 % at 152 064, Summit 74 % at 4263 (with the 15 % early drop from
2 to 8 nodes), Perlmutter 62 % at 1088.

These curves are *modelled* (alpha-beta network model); the measured
counterpart on the machine running this suite — real worker processes
over the multiprocessing transport, timed with a wall clock — lives in
``bench_fig5_measured_local.py``."""

import pytest

from repro.perfmodel.machines import MACHINES, WEAK_SCALING_ANCHORS
from repro.perfmodel.scaling import weak_scaling


def run_all_curves():
    return {key: weak_scaling(key) for key in MACHINES}


def test_fig5_weak_scaling(benchmark, table):
    curves = benchmark(run_all_curves)
    rows = []
    for key, records in curves.items():
        name = MACHINES[key].name
        for r in records:
            rows.append(
                [name, r["nodes"], f"{r['time_per_step']:.4f}",
                 f"{r['efficiency']:.1%}"]
            )
    table(
        "Fig. 5 (left): weak scaling — time per step and efficiency vs nodes",
        ["Machine", "Nodes", "t/step [s]", "Efficiency"],
        rows,
    )

    anchor_rows = []
    for key, anchor in WEAK_SCALING_ANCHORS.items():
        records = weak_scaling(key, node_counts=[1, anchor["nodes"]])
        eff = records[-1]["efficiency"]
        anchor_rows.append(
            [MACHINES[key].name, anchor["nodes"], f"{anchor['efficiency']:.0%}",
             f"{eff:.1%}"]
        )
        assert eff == pytest.approx(anchor["efficiency"], abs=0.02)
    table(
        "Fig. 5 anchors: paper vs model",
        ["Machine", "Nodes", "paper", "model"],
        anchor_rows,
    )

    # Summit's early 2 -> 8 node drop (the <27-rank neighbor effect)
    early = weak_scaling("summit", node_counts=[2, 8])
    drop = 1.0 - early[-1]["efficiency"]
    print(f"\nSummit 2->8 node efficiency drop: {drop:.1%} (paper: ~15%)")
    assert 0.05 < drop < 0.25
