"""Table I: advanced capabilities of leading electromagnetic PIC codes.

Regenerates the capability matrix and asserts that this repository
implements every capability the paper marks as essential for the science
case (resolving each to a live module attribute)."""

from repro.perfmodel.capabilities import (
    ALL_CODES,
    CAPABILITY_TABLE,
    repro_feature_map,
)


def test_table1_capability_matrix(benchmark, table):
    rows_data = benchmark(repro_feature_map)

    rows = []
    for cap, info in CAPABILITY_TABLE.items():
        marks = ["x" if code in info["codes"] else "" for code in ALL_CODES]
        star = "*" if info["essential"] else " "
        rows.append([cap + star] + marks)
    table(
        "Table I: capabilities of leading parallel electromagnetic PIC codes"
        " (* = essential here)",
        ["Capability"] + list(ALL_CODES),
        rows,
    )

    impl_rows = [
        [r["capability"], "yes" if r["resolved"] else "no",
         r["implemented_by"] or "-"]
        for r in rows_data
    ]
    table(
        "This repository's implementation of each capability",
        ["Capability", "implemented", "module"],
        impl_rows,
    )

    for r in rows_data:
        if r["essential"]:
            assert r["resolved"], f"missing essential capability {r['capability']}"
