"""Table IV: the figure-of-merit (Eq. 1) history and its model reproduction.

The recorded history is the paper's data; the model column recomputes each
entry's FOM from the roofline + network model.  The reproduction targets
are the *final* per-machine entries (the 2019-2021 rows predate code
optimizations the model cannot know about)."""

import pytest

from repro.perfmodel.fom import FOM_HISTORY, figure_of_merit, model_fom


def compute_models():
    out = []
    for e in FOM_HISTORY:
        if e["machine"] == "cori":
            out.append(None)
            continue
        out.append(
            model_fom(
                e["machine"],
                e["nc_per_node"],
                e["nodes"],
                mode=e["mode"],
                optimized=(e["mode"] == "mp"),
            )
        )
    return out


def test_table4_fom(benchmark, table):
    models = benchmark(compute_models)
    rows = []
    for e, m in zip(FOM_HISTORY, models):
        rows.append(
            [
                e["date"],
                e["machine"],
                f"{e['nc_per_node']:.1e}",
                e["nodes"],
                e["mode"],
                f"{e['fom']:.1e}",
                f"{m:.2e}" if m is not None else "(retired)",
                f"{m / e['fom']:.2f}" if m is not None else "",
            ]
        )
    table(
        "Table IV: FOM progress (paper) vs performance model",
        ["Date", "Machine", "Nc/node", "Nodes", "Mode", "paper FOM",
         "model FOM", "ratio"],
        rows,
    )

    # reproduction targets: the final entries per machine, within 2x
    finals = {
        ("frontier", "dp"): 1.1e13,
        ("fugaku", "mp"): 9.3e12,
        ("summit", "dp"): 3.4e12,
        ("perlmutter", "dp"): 1.0e12,
    }
    modeled = {}
    for (machine, mode), paper in finals.items():
        entry = [
            e for e in FOM_HISTORY
            if e["machine"] == machine and e["mode"] == mode
        ][-1]
        m = model_fom(
            machine, entry["nc_per_node"], entry["nodes"], mode=mode,
            optimized=(mode == "mp"),
        )
        modeled[machine] = m
        assert 0.5 < m / paper < 2.0, (machine, m, paper)

    # and the paper's machine ordering is preserved
    assert (
        modeled["frontier"] > modeled["fugaku"] > modeled["summit"]
        > modeled["perlmutter"]
    )


def test_fom_formula_units(benchmark):
    fom = benchmark(
        figure_of_merit, 8.1e8 * 9472, 2 * 8.1e8 * 9472, 1.0, 1.0
    )
    assert fom == pytest.approx(1.9 * 8.1e8 * 9472)
