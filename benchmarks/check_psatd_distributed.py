"""CI gate: distributed Galilean PSATD tracks the monolithic solve.

A local-FFT spectral box is *not* bit-identical to the monolithic FFT —
the analytic PSATD propagator has tails beyond any finite guard region —
so the contract this gate enforces is the documented one (DESIGN.md,
``tests/test_psatd_distributed.py``):

1. **guard-width tolerance** — the decomposed boosted-frame LWFA on two
   ranks matches the monolithic Galilean-PSATD run within a per-guard-
   depth tolerance on every recorded field component and on the total
   kinetic energy, and the error *shrinks monotonically* as the guard
   region deepens (the property that justifies guard width being a
   solver-declared constant rather than a grid default).
2. **cross-transport bitwise** — across *transports* the computation is
   identical arithmetic, so the loopback and multiprocessing runs of the
   same decomposition must be bit-identical: every box's fields and
   every particle array, equality not machine precision.

Run:  PYTHONPATH=src python benchmarks/check_psatd_distributed.py
"""

import json
import os
import sys
from datetime import datetime, timezone

import numpy as np

from repro.parallel.mp_transport import (
    run_distributed_local,
    run_distributed_mp,
)
from repro.scenarios.boosted_lwfa import (
    BoostedLWFASetup,
    build_monolithic,
    make_distributed_build,
)

SETUP = BoostedLWFASetup(n_cells=64, ppc=2)
N_RANKS = 2
TOLERANCE_STEPS = 30
PARITY_STEPS = 6
COMPONENTS = ("Ex", "Ey", "Bz")
#: guard depth -> (max relative field error, relative kinetic-energy
#: error) of the 30-step scenario; must mirror GUARD_TOLERANCES in
#: tests/test_psatd_distributed.py
GUARD_TOLERANCES = {6: (3e-2, 2e-2), 12: (8e-3, 3e-3)}
RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "results",
    "BENCH_psatd_distributed.json",
)


def run_pair(guards):
    """Per-component relative field errors + KE error at one guard depth."""
    mono, electrons = build_monolithic(SETUP, guards=max(4, guards))
    dist = make_distributed_build(
        SETUP, n_ranks=N_RANKS, max_grid_size=16, psatd_guards=guards
    )()
    mono.step(TOLERANCE_STEPS)
    dist.step(TOLERANCE_STEPS)
    errs = {}
    for comp in COMPONENTS:
        got = dist.global_field_view(comp)
        want = mono.grid.interior_view(comp)
        errs[comp] = float(np.max(np.abs(got - want)) / np.max(np.abs(want)))
    ke_mono = electrons.kinetic_energy()
    ke_dist = dist.species["electrons"].gather_all().kinetic_energy()
    return errs, abs(ke_dist - ke_mono) / ke_mono


def check_guard_tolerances(results) -> int:
    bad = 0
    for guards, (field_tol, ke_tol) in sorted(GUARD_TOLERANCES.items()):
        errs, ke_err = results[guards]
        for comp, err in errs.items():
            if err >= field_tol:
                print(
                    f"FAIL: guards={guards}: {comp} error {err:.2e} "
                    f">= tolerance {field_tol:.0e}"
                )
                bad += 1
        if ke_err >= ke_tol:
            print(
                f"FAIL: guards={guards}: kinetic-energy error {ke_err:.2e} "
                f">= tolerance {ke_tol:.0e}"
            )
            bad += 1
    depths = sorted(results)
    shallow, deep = results[depths[0]][0], results[depths[-1]][0]
    for comp in COMPONENTS:
        if deep[comp] >= shallow[comp]:
            print(
                f"FAIL: {comp} error did not shrink with guard depth "
                f"({depths[0]}: {shallow[comp]:.2e} -> "
                f"{depths[-1]}: {deep[comp]:.2e})"
            )
            bad += 1
    if bad == 0:
        worst = max(err for errs, _ in results.values() for err in errs.values())
        print(
            f"OK: {TOLERANCE_STEPS}-step decomposed run within tolerance at "
            f"guard depths {depths} (worst field error {worst:.2e}), "
            "monotonically improving"
        )
    return bad


def check_cross_transport() -> int:
    build = make_distributed_build(
        SETUP, n_ranks=N_RANKS, max_grid_size=32, psatd_guards=6
    )
    want = run_distributed_local(build, PARITY_STEPS)
    got = run_distributed_mp(build, PARITY_STEPS, N_RANKS, run_timeout=600.0)
    bad = 0
    for i, comps in want.fields.items():
        for comp, arr in comps.items():
            if not np.array_equal(got.fields[i][comp], arr):
                print(f"FAIL: field {comp} of box {i} differs across transports")
                bad += 1
    for name, per_box in want.species.items():
        for i, arrs in per_box.items():
            g = got.species[name][i]
            og, ow = np.argsort(g["ids"]), np.argsort(arrs["ids"])
            for key in ("ids", "positions", "momenta", "weights"):
                if not np.array_equal(g[key][og], arrs[key][ow]):
                    print(
                        f"FAIL: particle {key} in box {i} differ "
                        "across transports"
                    )
                    bad += 1
    if got.halo != want.halo:
        print(f"FAIL: halo totals diverge ({got.halo} vs {want.halo})")
        bad += 1
    if bad == 0:
        print(
            f"OK: {PARITY_STEPS}-step spectral run bit-identical across "
            f"transports ({len(want.fields)} boxes, "
            f"{got.total_particles()} particles)"
        )
    return bad


def main() -> int:
    results = {g: run_pair(g) for g in sorted(GUARD_TOLERANCES)}
    failures = check_guard_tolerances(results)
    parity_failures = check_cross_transport()
    failures += parity_failures
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "generated": datetime.now(timezone.utc).isoformat(),
                "n_ranks": N_RANKS,
                "n_cells": SETUP.n_cells,
                "steps": TOLERANCE_STEPS,
                "guard_sweep": {
                    str(g): {
                        "field_errors": errs,
                        "kinetic_energy_error": ke,
                        "field_tolerance": GUARD_TOLERANCES[g][0],
                        "kinetic_energy_tolerance": GUARD_TOLERANCES[g][1],
                    }
                    for g, (errs, ke) in results.items()
                },
                "cross_transport_bitwise": parity_failures == 0,
            },
            fh,
            indent=2,
        )
    if failures:
        print(f"FAIL: {failures} distributed-PSATD gate(s) failed")
        return 1
    print("OK: distributed Galilean PSATD within documented tolerance "
          "and transport-independent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
