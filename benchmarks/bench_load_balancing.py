"""Sec. V.C: dynamic load balancing and PML co-location.

Two claims are reproduced:

* dynamic LB gives large speedups on laser-solid interactions, where the
  particle load concentrates in few boxes (the paper cites 3.8x from
  Rowan et al. 2021) — measured here as the max-rank-load improvement of
  the knapsack rebalance over a locality-only SFC layout on a solid-slab
  cost distribution;
* co-locating PML patches with the parent boxes they exchange guard data
  with cut 25 % off WarpX runs that use PMLs — modelled here with the
  communicator's accounting: the same exchange pattern with and without
  co-location.
"""

import numpy as np
import pytest

from repro.core.load_balance import (
    distribute_knapsack,
    distribute_sfc,
    load_imbalance,
    rank_loads,
)
from repro.parallel.box import Box, chop_domain
from repro.parallel.comm import SimComm


def solid_slab_costs(n_boxes_side=8, slab_cols=(4, 5), ppc_solid=64, ppc_gas=1):
    """Per-box costs of a laser-solid decomposition: a dense slab fills two
    box columns, tenuous gas the rest — the distribution that breaks
    locality-based balancing.  The slab spans one Morton column pair, so
    contiguous curve segments land entirely inside the dense region (the
    worst — and typical — case for a locality-only layout)."""
    boxes = chop_domain((n_boxes_side * 8,) * 2, 8)
    costs = []
    for b in boxes:
        col = b.lo[0] // 8
        particles = ppc_solid if col in slab_cols else ppc_gas
        costs.append(b.n_cells * (0.1 + 0.9 * particles))
    return boxes, np.array(costs)


def test_dynamic_lb_speedup(benchmark, table):
    boxes, costs = solid_slab_costs()
    n_ranks = 16

    def run():
        centers = np.array([b.center() for b in boxes])
        # the paper's default: SFC "with no consideration of the number of
        # particles in each box" — split by cell counts only
        cell_costs = np.array([b.n_cells for b in boxes], dtype=float)
        sfc = distribute_sfc(cell_costs, n_ranks, centers)
        ks = distribute_knapsack(costs, n_ranks)
        return sfc, ks

    sfc, ks = benchmark(run)
    # step time is set by the most loaded rank
    t_sfc = rank_loads(costs, sfc, n_ranks).max()
    t_ks = rank_loads(costs, ks, n_ranks).max()
    speedup = t_sfc / t_ks
    table(
        "Sec. V.C: dynamic load balancing on a laser-solid decomposition",
        ["strategy", "max rank load", "imbalance", "modelled speedup"],
        [
            ["space-filling curve (static)", f"{t_sfc:.0f}",
             f"{load_imbalance(costs, sfc, n_ranks):.2f}", "1.00x"],
            ["knapsack (dynamic LB)", f"{t_ks:.0f}",
             f"{load_imbalance(costs, ks, n_ranks):.2f}", f"{speedup:.2f}x"],
        ],
    )
    print(f"\nmodelled dynamic-LB speedup: {speedup:.2f}x "
          "(paper cites 3.8x on GPU laser-solid runs)")
    # the solid-slab distribution must show a multi-x win
    assert speedup > 2.0
    assert load_imbalance(costs, ks, n_ranks) < 1.15


def test_pml_colocation_saving(benchmark, table):
    """PML patches exchange guard data with their parent boxes every step;
    placing them on the same rank removes that traffic from the network."""
    domain_boxes = chop_domain((32, 32), 8)  # 16 boxes
    n_ranks = 8
    # PML patches: one per domain-edge box
    edge_boxes = [
        i for i, b in enumerate(domain_boxes)
        if 0 in b.lo or 32 in b.hi
    ]
    rank_of_box = [i % n_ranks for i in range(len(domain_boxes))]
    pml_bytes = 8 * 6 * 8 * 8 * 4  # guard planes of a 8x8 box, 6 components

    def traffic(colocate: bool):
        comm = SimComm(n_ranks)
        for k, i in enumerate(edge_boxes):
            parent_rank = rank_of_box[i]
            pml_rank = parent_rank if colocate else (parent_rank + 1) % n_ranks
            if pml_rank != parent_rank:
                comm.send(pml_rank, parent_rank, np.empty(pml_bytes // 8))
                comm.recv(pml_rank, parent_rank)
                comm.send(parent_rank, pml_rank, np.empty(pml_bytes // 8))
                comm.recv(parent_rank, pml_rank)
        return comm.total_bytes(), comm.total_messages()

    res = benchmark(lambda: (traffic(False), traffic(True)))
    (bytes_far, msgs_far), (bytes_near, msgs_near) = res
    table(
        "Sec. V.C: PML co-location (per-step PML<->parent guard traffic)",
        ["placement", "bytes/step", "messages/step"],
        [
            ["PML on neighbouring rank", bytes_far, msgs_far],
            ["PML co-located with parent", bytes_near, msgs_near],
        ],
    )
    assert bytes_near == 0
    assert bytes_far > 0
    # with PML exchange ~ a quarter of total comm, removing it entirely is
    # consistent with the paper's observed 25 % end-to-end gain
    total_other = 3 * bytes_far
    saving = bytes_far / (bytes_far + total_other)
    print(f"\nmodelled share of comm removed by co-location: {saving:.0%} "
          "(paper: ~25% end-to-end gain in PML-heavy runs)")
