"""Table II: the machines of the study, hardware peaks and HPCG anchors."""

from repro.perfmodel.machines import MACHINES, get_machine


def test_table2_machine_catalog(benchmark, table):
    machines = benchmark(lambda: [get_machine(k) for k in MACHINES])
    rows = []
    for m in machines:
        hpcg = (
            f"{m.hpcg_pflops} ({m.hpcg_nodes} nodes)"
            if m.hpcg_pflops is not None
            else "not yet available"
        )
        rows.append(
            [
                m.name,
                m.compute_hardware,
                f"DP: {m.peak_tflops_dp} / SP: {m.peak_tflops_sp}",
                f"{m.mem_tb_per_s}",
                hpcg,
            ]
        )
    table(
        "Table II: machines, vendor peak TFlop/s and TByte/s per device, "
        "published HPCG PFlop/s",
        ["Machine", "Hardware", "TFlop/s per device", "TB/s", "HPCG"],
        rows,
    )
    assert len(machines) == 4
    frontier = machines[0]
    assert frontier.peak_tflops_dp == 47.9
