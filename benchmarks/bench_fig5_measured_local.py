"""Fig. 5 companion: *measured* multi-process scaling of the local run.

The two ``bench_fig5_*`` modules replay the paper's Frontier/Fugaku
weak- and strong-scaling curves through the alpha-beta performance
model — modelled numbers.  This module is the measured counterpart on
the machine actually running the suite: the Sec. V.A.1-style uniform
plasma is stepped through the real one-worker-process-per-rank
multiprocessing transport at 1, 2 and 4 ranks and timed with the clock
on the wall, loopback as the serial baseline.

On a single-core container the multi-process runs are *slower* than
loopback (fork + queue overhead with nothing to parallelize) — the
table records that honestly; the speedup expectation only arms with at
least 4 usable cores, mirroring ``benchmarks/check_mp_transport.py``.
"""

import os
import time

import numpy as np

from repro.constants import m_e, plasma_wavelength, q_e
from repro.parallel.distributed import DistributedSimulation
from repro.parallel.mp_transport import (
    run_distributed_local,
    run_distributed_mp,
)
from repro.particles.injection import UniformProfile
from repro.particles.species import Species

N_STEPS = 6
RANK_COUNTS = (1, 2, 4)


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def make_build(n_ranks):
    n0 = 1e24
    length = plasma_wavelength(n0)

    def build(transport=None):
        sim = DistributedSimulation(
            (32, 32), (0.0, 0.0), (length, length),
            n_ranks=n_ranks, max_grid_size=16,
            cfl=0.9, shape_order=2, smoothing_passes=0,
            transport=transport,
        )
        e = Species("electrons", charge=-q_e, mass=m_e, ndim=2)
        k = 2 * np.pi / length

        def perturb(sp):
            sp.momenta[:, 0] = 1e-3 * np.sin(k * sp.positions[:, 0])

        sim.add_species(e, profile=UniformProfile(n0), ppc=(3, 3),
                        momentum_init=perturb)
        return sim

    return build


def run_all():
    t0 = time.perf_counter()
    base = run_distributed_local(make_build(4), N_STEPS)
    t_serial = time.perf_counter() - t0
    records = [{
        "transport": "loopback", "ranks": 4, "wall": t_serial,
        "speedup": 1.0, "bytes": base.counters.total_bytes(),
    }]
    for n_ranks in RANK_COUNTS:
        res = run_distributed_mp(
            make_build(n_ranks), N_STEPS, n_ranks, run_timeout=600.0
        )
        records.append({
            "transport": "multiprocessing", "ranks": n_ranks,
            "wall": res.wall_time, "speedup": t_serial / res.wall_time,
            "bytes": res.counters.total_bytes(),
        })
    return records


def test_fig5_measured_local_scaling(table):
    cores = usable_cores()
    records = run_all()
    table(
        f"Fig. 5 companion: measured local scaling "
        f"({cores} usable core(s), {N_STEPS} steps)",
        ["Transport", "Ranks", "wall [s]", "speedup vs serial",
         "wire bytes"],
        [
            [r["transport"], r["ranks"], f"{r['wall']:.3f}",
             f"{r['speedup']:.2f}x", r["bytes"]]
            for r in records
        ],
    )
    # measured runs completed on every rank count and moved real traffic
    by_ranks = {r["ranks"]: r for r in records
                if r["transport"] == "multiprocessing"}
    assert set(by_ranks) == set(RANK_COUNTS)
    assert by_ranks[4]["bytes"] > 0
    assert by_ranks[1]["bytes"] == 0  # one rank: nothing crosses the wire
    if cores >= 4:
        # with real cores the measured 4-rank run must actually scale
        assert by_ranks[4]["speedup"] >= 2.0
