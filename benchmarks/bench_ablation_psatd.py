"""Ablation: PSATD spectral solver vs FDTD (paper Table I, last row).

The PSATD solver is the extension the paper's final section builds on for
boosted-frame runs: exact vacuum dispersion at any time step, which
removes the numerical-Cherenkov trouble of FDTD in flowing plasmas.  This
bench measures the dispersion error and the per-step cost of both solvers
on the same grid."""

import numpy as np
import pytest

from repro.constants import c
from repro.grid.boundary import apply_periodic
from repro.grid.maxwell import MaxwellSolver, cfl_dt
from repro.grid.psatd import PSATDMaxwellSolver
from repro.grid.yee import YeeGrid


def wave_grid(n=48, wavelengths=6):
    g = YeeGrid((n,), (0.0,), (1.0,), guards=2)
    k = 2 * np.pi * wavelengths
    x_e = g.axis_coords(0, "Ey")
    x_b = g.axis_coords(0, "Bz")
    g.interior_view("Ey")[...] = np.sin(k * x_e)
    g.interior_view("Bz")[...] = np.sin(k * x_b) / c
    apply_periodic(g, 0)
    return g, k


def propagate(solver_name: str, steps=200):
    g, k = wave_grid()
    dt = cfl_dt(g.dx, 0.9)
    if solver_name == "fdtd":
        solver = MaxwellSolver(g, dt)
    else:
        solver = PSATDMaxwellSolver(g, dt)
    for _ in range(steps):
        if solver_name == "fdtd":
            apply_periodic(g, 0)
        solver.step()
    shift = c * steps * dt
    x_e = g.axis_coords(0, "Ey")
    expected = np.sin(k * (x_e - shift))
    return float(np.max(np.abs(g.interior_view("Ey") - expected)))


def test_dispersion_table(benchmark, table):
    benchmark.pedantic(lambda: None, rounds=1)
    err_fdtd = propagate("fdtd")
    err_psatd = propagate("psatd")
    table(
        "Ablation: vacuum dispersion error after 200 steps at 8 pts/wavelength",
        ["solver", "max |E - E_exact|"],
        [["FDTD (Yee)", f"{err_fdtd:.3e}"], ["PSATD", f"{err_psatd:.3e}"]],
    )
    assert err_psatd < 1e-9
    assert err_fdtd > 1e-2  # visibly dispersive at this resolution


def test_psatd_super_cfl(benchmark, table):
    """PSATD has no Courant limit: a 4x-CFL step still advects exactly."""
    benchmark.pedantic(lambda: None, rounds=1)
    g, k = wave_grid()
    dt = 4.0 * cfl_dt(g.dx)
    solver = PSATDMaxwellSolver(g, dt)
    steps = 25
    for _ in range(steps):
        solver.step()
    shift = c * steps * dt
    x_e = g.axis_coords(0, "Ey")
    err = np.max(np.abs(g.interior_view("Ey") - np.sin(k * (x_e - shift))))
    table(
        "Ablation: PSATD at 4x the FDTD Courant limit",
        ["quantity", "value"],
        [["dt / dt_CFL", "4.0"], ["steps", steps], ["max error", f"{err:.2e}"]],
    )
    assert err < 1e-9


def test_bench_fdtd_step(benchmark):
    g = YeeGrid((64, 64), (0, 0), (1.0, 1.0), guards=2)
    solver = MaxwellSolver(g, cfl_dt(g.dx, 0.9))
    benchmark(solver.step)


def test_bench_psatd_step(benchmark):
    g = YeeGrid((64, 64), (0, 0), (1.0, 1.0), guards=2)
    solver = PSATDMaxwellSolver(g, cfl_dt(g.dx, 0.9))
    benchmark(solver.step)
