"""Ablation: MR subcycling (Sec. V.B's optional feature).

Compares a subcycled MR run (parent at the coarse CFL, fine level at
dt/ratio) against a synchronous MR run (everything at the fine CFL) on the
same physical problem: steps needed, wall-clock, and the physics drift
between the two."""

import numpy as np
import pytest

from repro.constants import plasma_wavelength
from repro.core.mr_simulation import MRSimulation
from repro.grid.maxwell import cfl_dt
from repro.grid.yee import YeeGrid
from repro.particles.injection import UniformProfile
from repro.particles.species import Species
from repro.constants import m_e, q_e


def build(subcycle: bool, n_cells=64, n0=1e24, ppc=8):
    length = plasma_wavelength(n0)
    g = YeeGrid((n_cells,), (0.0,), (length,), guards=4)
    ratio = 2
    dt = cfl_dt((length / n_cells / (1 if subcycle else ratio),), 0.9)
    sim = MRSimulation(g, dt=dt, shape_order=2, smoothing_passes=0)
    e = Species("electrons", charge=-q_e, mass=m_e, ndim=1)
    sim.add_species(e, profile=UniformProfile(n0), ppc=ppc)
    k = 2 * np.pi / length
    e.momenta[:, 0] = 1e-3 * np.sin(k * e.positions[:, 0])
    sim.add_patch((n_cells // 4,), (3 * n_cells // 4,), ratio=ratio,
                  subcycle=subcycle)
    return sim


def test_subcycling_ablation(benchmark, table):
    import time

    results = {}
    t_end = None
    for subcycle in (False, True):
        sim = build(subcycle)
        if t_end is None:
            t_end = 120 * sim.dt
        t0 = time.perf_counter()
        sim.run_until(t_end)
        wall = time.perf_counter() - t0
        results[subcycle] = {
            "steps": sim.step_count,
            "wall": wall,
            "ex": sim.grid.interior_view("Ex").copy(),
            "dt": sim.dt,
        }
    benchmark.pedantic(lambda: None, rounds=1)

    a, b = results[False], results[True]
    corr = np.corrcoef(a["ex"].ravel(), b["ex"].ravel())[0, 1]
    amp_ratio = np.max(np.abs(b["ex"])) / np.max(np.abs(a["ex"]))
    table(
        "Ablation: MR subcycling on a Langmuir oscillation",
        ["variant", "dt [s]", "steps", "wall [s]"],
        [
            ["synchronous (fine CFL)", f"{a['dt']:.3e}", a["steps"], f"{a['wall']:.2f}"],
            ["subcycled (coarse CFL)", f"{b['dt']:.3e}", b["steps"], f"{b['wall']:.2f}"],
        ],
    )
    print(f"\nfield-pattern correlation: {corr:.4f}, amplitude ratio: {amp_ratio:.3f}")
    # subcycling halves the parent step count ...
    assert b["steps"] <= a["steps"] // 2 + 1
    # ... while reproducing the same physics
    assert corr > 0.98
    assert 0.8 < amp_ratio < 1.25


def test_bench_step_subcycled(benchmark):
    sim = build(True)
    sim.step(2)
    benchmark(sim.step, 1)


def test_bench_step_synchronous(benchmark):
    sim = build(False)
    sim.step(2)
    benchmark(sim.step, 1)
