"""Checkpoint overhead vs interval for the distributed resilience layer.

Long campaigns trade two costs: checkpointing too often wastes step time,
too rarely wastes replay time after a failure.  This bench measures the
real per-step and per-checkpoint cost of the distributed simulation (disk
and in-memory restore points), reports the overhead fraction at several
intervals, and evaluates Young's approximation for the optimal interval,
``T_opt = sqrt(2 * t_ckpt * MTBF)``, at a few assumed failure rates —
the row EXPERIMENTS.md tracks.

Run:  pytest benchmarks/bench_checkpoint_overhead.py --benchmark-only -s
"""

import numpy as np
import pytest

from repro.constants import m_e, plasma_wavelength, q_e
from repro.diagnostics.io import (
    pack_distributed_state,
    save_distributed_checkpoint,
)
from repro.parallel.distributed import DistributedSimulation
from repro.particles.injection import UniformProfile
from repro.particles.species import Species

INTERVALS = (1, 3, 10, 30)


def build():
    n0 = 1e24
    length = plasma_wavelength(n0)
    sim = DistributedSimulation(
        (32, 32), (0.0, 0.0), (length, length), n_ranks=4, max_grid_size=16,
    )
    e = Species("electrons", charge=-q_e, mass=m_e, ndim=2)
    sim.add_species(
        e, profile=UniformProfile(n0), ppc=(2, 2), temperature_uth=0.05,
        rng_seed=3,
    )
    sim.step(2)  # warm caches, populate measured costs
    return sim


@pytest.fixture(scope="module")
def sim():
    return build()


def test_bench_step(benchmark, sim):
    benchmark(sim.step, 1)


def test_bench_checkpoint_memory(benchmark, sim):
    def snapshot():
        return {
            k: np.array(v, copy=True)
            for k, v in pack_distributed_state(sim).items()
        }

    state = benchmark(snapshot)
    assert "meta/step_count" in state


def test_bench_checkpoint_disk(benchmark, sim, tmp_path):
    benchmark(save_distributed_checkpoint, sim, str(tmp_path / "ckpt"))


def test_overhead_vs_interval_table(table, sim, tmp_path):
    """The EXPERIMENTS.md row: overhead fraction per checkpoint interval."""
    import timeit

    t_step = timeit.timeit(lambda: sim.step(1), number=5) / 5
    t_mem = timeit.timeit(
        lambda: {
            k: np.array(v, copy=True)
            for k, v in pack_distributed_state(sim).items()
        },
        number=5,
    ) / 5
    t_disk = timeit.timeit(
        lambda: save_distributed_checkpoint(sim, str(tmp_path / "ckpt")),
        number=5,
    ) / 5

    rows = []
    for interval in INTERVALS:
        rows.append(
            (
                interval,
                f"{100.0 * t_mem / (interval * t_step):.2f}%",
                f"{100.0 * t_disk / (interval * t_step):.2f}%",
            )
        )
    table(
        "checkpoint overhead vs interval "
        f"(t_step={t_step * 1e3:.2f} ms, t_mem={t_mem * 1e3:.2f} ms, "
        f"t_disk={t_disk * 1e3:.2f} ms)",
        ("interval [steps]", "in-memory overhead", "on-disk overhead"),
        rows,
    )

    # Young's approximation: optimal interval between checkpoints for an
    # assumed mean time between failures (expressed here in steps)
    young_rows = []
    for mtbf_steps in (1e2, 1e4, 1e6):
        t_opt = np.sqrt(2.0 * t_disk * mtbf_steps * t_step)
        young_rows.append(
            (f"{mtbf_steps:.0e}", f"{t_opt / t_step:.1f}")
        )
    table(
        "Young's optimal checkpoint interval, T_opt = sqrt(2 t_ckpt MTBF)",
        ("MTBF [steps]", "T_opt [steps]"),
        young_rows,
    )
    # sanity: overhead decreases monotonically with the interval
    overheads = [t_disk / (i * t_step) for i in INTERVALS]
    assert overheads == sorted(overheads, reverse=True)
