"""CI gate: the disabled tracer must cost < 5% of a smoke-benchmark step.

The observability contract is that instrumentation stays permanently in
the step code because a disabled tracer is near-free.  This script
verifies that claim on the uniform-plasma smoke workload:

1. measures the mean step time with the tracer disabled (the default);
2. measures the *added* per-phase dispatch cost directly — the delta
   between ``sim._phase(name)`` (the instrumented path: one enabled
   check + the legacy timer) and the seed's bare ``timers.timer(name)``
   — and scales it by the phases-per-step of the PIC cycle;
3. fails (exit 1) if that added cost exceeds 5% of a step;
4. reports the enabled-tracer overhead informationally (that one is
   allowed to cost more: it records).

Run:  PYTHONPATH=src python benchmarks/check_tracer_overhead.py
"""

import sys

import numpy as np

from repro.diagnostics.timers import now
from repro.observability import Tracer, attach_observability
from repro.scenarios.uniform_plasma import build_uniform_plasma

#: phase contexts entered per step of the single-level PIC cycle
PHASES_PER_STEP = 12
OVERHEAD_BUDGET = 0.05
SMOKE = dict(n_cells=(32, 32), ppc=2, shape_order=2, temperature_uth=0.01)


def mean_step_time(sim, steps: int = 15) -> float:
    sim.step(3)  # warm-up
    sim.timers.step_times.clear()
    sim.step(steps)
    return float(np.mean(sim.timers.step_times))


def dispatch_cost(sim, iterations: int = 20000) -> float:
    """Seconds per extra `_phase` dispatch vs. the seed's bare timer."""
    t0 = now()
    for _ in range(iterations):
        with sim._phase("overhead_probe"):
            pass
    instrumented = now() - t0
    t0 = now()
    for _ in range(iterations):
        with sim.timers.timer("overhead_probe"):
            pass
    bare = now() - t0
    return max(instrumented - bare, 0.0) / iterations


def main() -> int:
    n_cells, ppc = SMOKE["n_cells"], SMOKE["ppc"]
    sim_off, _ = build_uniform_plasma(n_cells, ppc=ppc)
    t_off = mean_step_time(sim_off)

    per_dispatch = dispatch_cost(sim_off)
    added_per_step = per_dispatch * PHASES_PER_STEP
    overhead = added_per_step / t_off

    sim_on, _ = build_uniform_plasma(n_cells, ppc=ppc)
    attach_observability(sim_on, tracer=Tracer(enabled=True))
    t_on = mean_step_time(sim_on)

    print("tracer overhead on the uniform-plasma smoke benchmark:")
    print(f"  mean step time (tracer disabled): {t_off * 1e3:9.3f} ms")
    print(f"  mean step time (tracer enabled):  {t_on * 1e3:9.3f} ms "
          f"({(t_on / t_off - 1) * 100:+.1f}%, informational)")
    print(f"  added dispatch cost per phase:    {per_dispatch * 1e9:9.1f} ns")
    print(f"  added cost per step (x{PHASES_PER_STEP} phases): "
          f"{added_per_step * 1e6:.3f} us = {overhead * 100:.4f}% of a step")
    if overhead >= OVERHEAD_BUDGET:
        print(f"FAIL: disabled-tracer overhead {overhead * 100:.2f}% "
              f">= {OVERHEAD_BUDGET * 100:.0f}% budget")
        return 1
    print(f"OK: disabled-tracer overhead is under the "
          f"{OVERHEAD_BUDGET * 100:.0f}% budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
