"""Integration tests for the mesh-refined simulation: agreement with
uniform-resolution runs, patch removal, moving-window coupling, subcycling."""

import numpy as np
import pytest

from repro.constants import c, m_e, plasma_wavelength, q_e, um
from repro.core.moving_window import MovingWindow
from repro.core.mr_simulation import MRSimulation
from repro.core.simulation import Simulation
from repro.exceptions import ConfigurationError
from repro.grid.maxwell import cfl_dt
from repro.grid.yee import YeeGrid
from repro.particles.injection import UniformProfile
from repro.particles.species import Species


def test_mr_requires_esirkepov():
    g = YeeGrid((32,), (0.0,), (32.0,), guards=4)
    sim = MRSimulation(g, deposition="direct")
    with pytest.raises(ConfigurationError):
        sim.add_patch((8,), (24,))


def make_langmuir_mr(n_cells=64, with_patch=True, subcycle=False, ppc=16):
    n0 = 1e24
    length = plasma_wavelength(n0)
    g = YeeGrid((n_cells,), (0.0,), (length,), guards=4)
    # dt must satisfy the fine CFL when not subcycling
    ratio = 2
    dt = cfl_dt((length / n_cells / ratio,), 0.9)
    if subcycle:
        dt = cfl_dt((length / n_cells,), 0.9)
    sim = MRSimulation(g, dt=dt, shape_order=2, smoothing_passes=0)
    e = Species("electrons", charge=-q_e, mass=m_e, ndim=1)
    sim.add_species(e, profile=UniformProfile(n0), ppc=ppc)
    k = 2 * np.pi / length
    e.momenta[:, 0] = 1e-3 * np.sin(k * e.positions[:, 0])
    if with_patch:
        sim.add_patch((n_cells // 4,), (3 * n_cells // 4,), ratio=ratio,
                      subcycle=subcycle)
    return sim, e


def test_mr_langmuir_matches_single_level():
    """A refinement patch over a uniform plasma must not change the
    large-scale dynamics: Ex histories agree with the no-MR run."""
    sim_mr, _ = make_langmuir_mr(with_patch=True)
    sim_ref, _ = make_langmuir_mr(with_patch=False)
    probe = (sim_ref.grid.guards + 8,)  # outside the patch
    hist_mr, hist_ref = [], []
    for _ in range(150):
        sim_mr.step()
        sim_ref.step()
        hist_mr.append(sim_mr.grid.fields["Ex"][probe])
        hist_ref.append(sim_ref.grid.fields["Ex"][probe])
    hist_mr = np.array(hist_mr)
    hist_ref = np.array(hist_ref)
    scale = np.max(np.abs(hist_ref))
    assert scale > 0
    assert np.max(np.abs(hist_mr - hist_ref)) < 0.1 * scale


def test_mr_gather_uses_aux_inside_patch():
    sim, e = make_langmuir_mr(with_patch=True)
    patch = sim.patches[0]
    # poison the aux field; interior particles must see it
    patch.aux.fields["Ez"][...] = 123.0
    e_f, _ = sim._gather(e)
    inner = patch.interior_mask(e.positions)
    assert np.any(inner)
    np.testing.assert_allclose(e_f[inner, 2], 123.0, rtol=1e-12)
    assert np.all(np.abs(e_f[~inner, 2]) < 1.0)


def test_patch_removed_at_remove_time():
    g = YeeGrid((32,), (0.0,), (32.0,), guards=4)
    ratio = 2
    dt = cfl_dt((32.0 / 32 / ratio,), 0.9)
    sim = MRSimulation(g, dt=dt, smoothing_passes=0)
    sim.add_patch((8,), (24,), remove_time=3.5 * dt)
    assert len(sim.patches) == 1
    sim.step(3)
    assert len(sim.patches) == 1
    sim.step(1)
    assert len(sim.patches) == 0
    assert len(sim.removal_log) == 1
    sim.step(2)  # keeps running fine without the patch


def test_patch_follows_moving_window_and_exits():
    g = YeeGrid((32,), (0.0,), (32.0,), guards=4)
    ratio = 2
    dt = cfl_dt((32.0 / 32 / ratio,), 0.9)
    sim = MRSimulation(g, dt=dt, boundaries="damped", smoothing_passes=0)
    patch = sim.add_patch((2,), (10,))
    sim.set_moving_window(MovingWindow(speed=c, start_time=0.0))
    lo_before = patch.region_lo[0]
    # each step shifts by c*dt/dx = 0.45 cells
    sim.step(4)
    assert sim.patches and sim.patches[0].region_lo[0] < lo_before
    sim.step(10)
    # the lab-fixed patch has fallen off the moving domain
    assert len(sim.patches) == 0


def test_subcycled_patch_matches_non_subcycled():
    """Subcycling the fine level must reproduce the same physics.

    The subcycled run advances the parent with a 2x larger step, so a
    small phase shift is expected; the field *pattern* and amplitude must
    agree."""
    sim_a, _ = make_langmuir_mr(with_patch=True, subcycle=False)
    sim_b, _ = make_langmuir_mr(with_patch=True, subcycle=True)
    t_end = 60 * sim_a.dt
    sim_a.run_until(t_end)
    sim_b.run_until(t_end)
    ex_a = sim_a.grid.interior_view("Ex")
    ex_b = sim_b.grid.interior_view("Ex")
    scale = np.max(np.abs(ex_a))
    assert scale > 0
    # same amplitude ...
    assert np.max(np.abs(ex_b)) == pytest.approx(scale, rel=0.2)
    # ... and the same standing-wave pattern (phase-insensitive)
    corr = np.corrcoef(ex_a.ravel(), ex_b.ravel())[0, 1]
    assert corr > 0.98


def test_subcycling_allows_coarse_dt():
    """With subcycling, dt set by the *coarse* CFL is legal and stable."""
    sim, e = make_langmuir_mr(with_patch=True, subcycle=True)
    assert sim.dt > cfl_dt((plasma_wavelength(1e24) / 64 / 2,), 1.0)
    sim.step(30)
    assert np.all(np.isfinite(sim.grid.fields["Ex"]))
    assert np.all(np.isfinite(sim.patches[0].fine.fields["Ex"]))


def test_total_fine_cells():
    g = YeeGrid((32, 32), (0, 0), (32.0, 32.0), guards=4)
    dt = cfl_dt((0.5, 0.5), 0.7)
    sim = MRSimulation(g, dt=dt, smoothing_passes=0)
    sim.add_patch((8, 8), (16, 16), ratio=2)
    assert sim.total_fine_cells() == 16 * 16


def test_mr_requires_yee_solver():
    g = YeeGrid((32,), (0.0,), (32.0,), guards=4)
    sim = MRSimulation(g, maxwell_solver="psatd")
    with pytest.raises(ConfigurationError):
        sim.add_patch((8,), (24,))
