"""Seeded bug: a send whose tag no receive site ever matches (COMM006).

The send goes out under ``"orphan"`` but the function only ever
receives ``"replies"`` — the orphan message can never be delivered, and
under a blocking transport the sender's buffer is pinned forever.
"""


def broadcast_state(comm, n_ranks, payload):
    comm.begin_phase("orphan", n_messages=n_ranks - 1)
    for dst in range(1, n_ranks):
        comm.send(0, dst, payload, tag="orphan")
    for dst in range(1, n_ranks):
        comm.recv(dst, 0, tag="replies")
    comm.end_phase("orphan")
