"""Seeded bug: a ring exchange that posts its recv first (COMM008).

Every rank blocks receiving from its left neighbour before anyone has
sent anything — the canonical cyclic wait-for chain.  The in-process
SimComm happens to survive it (queues never block), but the blocking
multiprocessing transport of ROADMAP item 1 deadlocks on step one.
"""


def ring_shift(comm, n_ranks, payloads):
    comm.begin_phase("ring", n_messages=n_ranks)
    for rank in range(n_ranks):
        left = (rank - 1) % n_ranks
        received = comm.recv(left, rank, tag="ring")
        comm.send(rank, (rank + 1) % n_ranks, payloads[rank], tag="ring")
        payloads[rank] = received
    comm.end_phase("ring")
