"""Seeded bug: the send buffer is mutated while in flight (COMM010).

The payload array is handed to ``send`` and then scribbled on through
an alias before the matching receive — with the zero-copy in-process
transport (and with real MPI nonblocking sends) the receiver sees the
corrupted bytes, not the ones that were "sent"."""

import numpy as np


def leaky_exchange(comm, halo_width):
    buf = np.zeros(4 * halo_width, dtype=np.float64)
    scratch = buf
    comm.begin_phase("leak", n_messages=1)
    comm.send(0, 1, buf, tag="leak")
    scratch[0] = 1.0
    received = comm.recv(0, 1, tag="leak")
    comm.end_phase("leak")
    return received
