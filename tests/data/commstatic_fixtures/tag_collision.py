"""Seeded bug: two exchange phases claiming one tag (COMM007).

The migration phase reuses the halo tag — exactly the cross-phase
namespace collision the verifier exists to rule out.  With both phases
in flight their messages are indistinguishable: a migration payload can
satisfy a halo receive.
"""

SHARED_TAG = "halo:fold"


def fold_guards(comm, pairs, payloads):
    comm.begin_phase(SHARED_TAG, n_messages=len(pairs))
    for src, dst in pairs:
        comm.send(src, dst, payloads[(src, dst)], tag=SHARED_TAG)
    for src, dst in pairs:
        comm.recv(src, dst, tag=SHARED_TAG)
    comm.end_phase(SHARED_TAG)


def migrate_state(comm, moves, state):
    comm.begin_phase(SHARED_TAG, n_messages=len(moves))
    for src, dst in moves:
        comm.send(src, dst, state[(src, dst)], tag=SHARED_TAG)
    for src, dst in moves:
        comm.recv(src, dst, tag=SHARED_TAG)
    comm.end_phase(SHARED_TAG)
