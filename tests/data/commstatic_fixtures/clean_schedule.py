"""A correct schedule the verifier must pass with zero findings.

Mirrors the shipped ``_run_exchange`` idiom — tag built from a module
constant, threaded through a parameter default, all sends posted before
any receive, payloads never touched while in flight — and exercises
the same constant-propagation path the real tree needs.
"""

import numpy as np

TAG_PREFIX = "fx"


def exchange(comm, pairs, payloads, tag=TAG_PREFIX + ":halo"):
    comm.begin_phase(tag, n_messages=len(pairs))
    for src, dst in pairs:
        comm.send(src, dst, payloads[(src, dst)], tag=tag)
    received = []
    for src, dst in pairs:
        received.append(comm.recv(src, dst, tag=tag))
    comm.end_phase(tag)
    return received


def exchange_default_pairs(comm, payloads):
    staging = np.zeros(8, dtype=np.float64)
    result = exchange(comm, [(0, 1)], payloads)
    staging[0] = 1.0  # safe: mutated only after the phase completed
    return result, staging
