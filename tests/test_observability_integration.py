"""End-to-end observability: attach_observability on the real simulation
classes, and the acceptance contracts — span hierarchy per rank, metrics
that match the communicator/load-balancer internals exactly, and a trace
that survives the export → CLI round trip."""

import io
import json

import numpy as np
import pytest

from repro.constants import m_e, plasma_wavelength, q_e
from repro.core.mr_simulation import MRSimulation
from repro.grid.maxwell import cfl_dt
from repro.grid.yee import YeeGrid
from repro.observability import (
    MetricsRegistry,
    RunReport,
    Tracer,
    attach_observability,
)
from repro.observability.cli import main as cli_main
from repro.observability.tracer import NULL_TRACER, build_tree, read_jsonl
from repro.parallel.distributed import DistributedSimulation
from repro.particles.injection import UniformProfile
from repro.particles.species import Species
from repro.scenarios.uniform_plasma import build_uniform_plasma


def make_distributed(n_ranks=2, n_cells=8, **kwargs):
    n0 = 1e24
    length = plasma_wavelength(n0)
    sim = DistributedSimulation(
        (n_cells, n_cells), (0.0, 0.0), (length, length),
        n_ranks=n_ranks, max_grid_size=n_cells // 2, cfl=0.9, shape_order=2,
        **kwargs,
    )
    proto = Species("electrons", charge=-q_e, mass=m_e, ndim=2)
    sim.add_species(proto, profile=UniformProfile(n0), ppc=(1, 1))
    return sim


def test_simulations_default_to_null_tracer():
    sim, _ = build_uniform_plasma((8, 8), ppc=1)
    assert sim.tracer is NULL_TRACER and sim.metrics is None
    sim.step(1)  # instrumented step code runs fine without a recorder
    assert sim.tracer.records == []


def test_traced_single_simulation_has_step_phase_hierarchy():
    sim, _ = build_uniform_plasma((8, 8), ppc=1)
    tracer, metrics = attach_observability(sim)
    assert sim.tracer is tracer and sim.metrics is metrics
    sim.step(3)

    children = build_tree(tracer.records)
    roots = children[-1]
    assert [r.name for r in roots] == ["step"] * 3
    assert [r.attrs["step"] for r in roots] == [0, 1, 2]
    phases = {c.name for c in children[root.sid]} if (root := roots[0]) else set()
    assert {"gather", "push", "deposit", "maxwell"} <= phases
    gather = next(c for c in children[roots[0].sid] if c.name == "gather")
    assert gather.attrs["species"] == "electrons"
    # phase spans and the legacy timers see the same intervals
    assert sim.timers.counts["maxwell"] == 3

    snap = metrics.snapshot()
    assert snap["particles.pushed"] == 3 * sim.total_particles()
    assert snap["step.seconds"]["count"] == 3


def test_traced_mr_simulation_emits_level_spans():
    n0 = 1e24
    length = plasma_wavelength(n0)
    n_cells = 32
    g = YeeGrid((n_cells,), (0.0,), (length,), guards=4)
    sim = MRSimulation(
        g, dt=cfl_dt((length / n_cells,), 0.9), shape_order=2,
        smoothing_passes=0,
    )
    e = Species("electrons", charge=-q_e, mass=m_e, ndim=1)
    sim.add_species(e, profile=UniformProfile(n0), ppc=4)
    sim.add_patch((n_cells // 4,), (3 * n_cells // 4,), ratio=2, subcycle=True)
    tracer, _ = attach_observability(sim)
    sim.step(2)

    children = build_tree(tracer.records)
    by_id = {r.sid: r for r in tracer.records}
    steps = children[-1]
    assert [r.name for r in steps] == ["step", "step"]
    # the subcycled patch advance is a direct step phase...
    sub = next(c for c in children[steps[0].sid] if c.name == "mr_subcycle")
    assert sub.attrs == {"level": 1, "patch": 0, "ratio": 2}
    # ...while restriction/fine-fields nest inside their coarse phases
    restrict = next(r for r in tracer.records if r.name == "mr_restrict")
    assert by_id[restrict.parent].name == "finalize_deposits"
    assert restrict.attrs["level"] == 1
    fine = next(r for r in tracer.records if r.name == "mr_fields")
    assert by_id[fine.parent].name == "maxwell"


def test_distributed_metrics_match_comm_and_lb_internals():
    """Acceptance: comm bytes per rank pair and the imbalance gauge equal
    the SimComm / DistributionMapping numbers exactly."""
    sim = make_distributed(n_ranks=2, dynamic_lb=True, lb_interval=3)
    tracer, metrics = attach_observability(sim, snapshot_interval=2)
    sim.step(6)

    snap = metrics.snapshot()
    for (src, dst), nbytes in sim.comm.pair_bytes.items():
        mid = f"comm.pair_bytes{{dst={dst},src={src}}}"
        assert snap[mid] == pytest.approx(float(nbytes))
    assert snap["comm.messages"] == float(sim.comm.messages_sent.sum())
    assert snap["comm.collectives"] == float(sim.comm.collective_calls)
    assert snap["particles.pushed"] == 6 * sim.total_particles()
    # halo counters mirror the pairwise exchange's honest accounting
    assert snap["halo.guard_cells"] == float(sim.halo_samples)
    assert snap["halo.bytes"] == float(sim.halo_payload_bytes)
    assert snap["halo.messages"] == float(sim.halo_messages)
    assert sim.halo_payload_bytes > 0

    costs = sim.cost_model.measured(range(len(sim.boxes)), default=0.0)
    assert snap["lb.imbalance"] == pytest.approx(
        sim.dm.imbalance(costs, exclude_ranks=sim.dead_ranks)
    )
    # snapshot_interval=2 over 6 steps -> 3 interleaved snapshots
    assert [m["step"] for m in tracer.metric_records] == [2, 4, 6]


def test_distributed_spans_carry_rank_and_box():
    sim = make_distributed(n_ranks=2)
    tracer, _ = attach_observability(sim)
    sim.step(2)

    children = build_tree(tracer.records)
    steps = children[-1]
    assert [r.name for r in steps] == ["step", "step"]
    # box spans nest inside the "particles" phase of their step
    particles = next(c for c in children[steps[0].sid] if c.name == "particles")
    boxes = [c for c in children[particles.sid] if c.name == "box"]
    assert len(boxes) == len(sim.boxes)
    for span in boxes:
        assert span.rank == sim.dm.rank_of(span.attrs["box"])
    assert len(sim.timers.step_times) == 2  # lap history now populated


def test_distributed_trace_round_trips_through_cli(tmp_path):
    """Acceptance: traced run -> JSONL -> CLI summary renders; Chrome
    export is valid trace_event JSON with one lane per rank."""
    sim = make_distributed(n_ranks=2, dynamic_lb=True, lb_interval=2)
    tracer, _ = attach_observability(sim, snapshot_interval=2)
    sim.step(4)

    jsonl = str(tmp_path / "run.jsonl")
    chrome = str(tmp_path / "run.json")
    tracer.to_jsonl(jsonl)
    tracer.to_chrome(chrome)

    spans, mrecs = read_jsonl(jsonl)
    assert len(spans) == len(tracer.records)
    assert build_tree(spans).keys() == build_tree(tracer.records).keys()

    stream = io.StringIO()
    assert cli_main([jsonl, "--tree"], stream=stream) == 0
    out = stream.getvalue()
    assert "top spans (by self time):" in out
    assert "comm bytes (src -> dst):" in out
    assert "span hierarchy" in out

    with open(chrome) as fh:
        events = json.load(fh)["traceEvents"]
    assert {e["pid"] for e in events if e["name"] == "box"} == {0, 1}


def test_run_report_from_distributed():
    sim = make_distributed(n_ranks=2)
    attach_observability(sim)
    sim.step(3)
    report = RunReport.from_distributed(sim)
    assert report.comm_matrix.shape == (2, 2)
    assert report.comm_matrix.sum() == float(sim.comm.total_bytes())
    assert report.imbalance >= 1.0
    text = report.render()
    assert "rank balance" in text and "comm bytes (src -> dst):" in text
    assert "imbalance (max/mean):" in text


def test_attach_accepts_preconfigured_recorders():
    sim = make_distributed(n_ranks=2)
    mine_t, mine_m = Tracer(enabled=True, rank=0), MetricsRegistry()
    tracer, metrics = attach_observability(sim, tracer=mine_t, metrics=mine_m)
    assert tracer is mine_t and metrics is mine_m


def test_resilience_checkpoint_metrics():
    sim = make_distributed(n_ranks=2, checkpoint_interval=50)
    _, metrics = attach_observability(sim)
    sim.step(2)
    before = metrics.snapshot()
    sim.resilience.save_checkpoint(sim)
    delta = metrics.delta(before)
    assert delta["checkpoint.saves"] == 1.0
    assert delta["checkpoint.bytes"] > 0
