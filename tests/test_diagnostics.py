"""Unit tests for the diagnostics package."""

import time

import numpy as np
import pytest

from repro.constants import MeV, c, m_e, q_e
from repro.diagnostics.beam import BeamHistory, beam_charge, beam_statistics
from repro.diagnostics.energy import EnergyDiagnostic
from repro.diagnostics.probes import DensityProbe, FieldProbe
from repro.diagnostics.spectrum import energy_spectrum, spectral_peak_and_spread
from repro.diagnostics.timers import Timers
from repro.exceptions import DiagnosticError
from repro.grid.yee import YeeGrid
from repro.particles.species import Species


def beam_species(gammas, weights=None, ndim=2):
    s = Species("beam", charge=-q_e, mass=m_e, ndim=ndim)
    gammas = np.asarray(gammas, dtype=float)
    u = np.sqrt(gammas**2 - 1.0)
    pos = np.zeros((len(gammas), ndim))
    mom = np.zeros((len(gammas), 3))
    mom[:, 0] = u
    s.add_particles(pos, mom, weights)
    return s


def test_beam_charge_threshold():
    # gamma = 3 -> ~1 MeV kinetic; gamma = 1.1 -> ~0.05 MeV
    s = beam_species([3.0, 3.0, 1.1], weights=[1e9, 2e9, 5e9])
    q = beam_charge(s, energy_threshold=0.5 * MeV)
    assert q == pytest.approx(3e9 * q_e)


def test_beam_statistics_empty():
    s = beam_species([1.0001])
    stats = beam_statistics(s, energy_threshold=10 * MeV)
    assert stats["n"] == 0 and stats["charge"] == 0.0


def test_beam_statistics_monoenergetic():
    s = beam_species([10.0] * 50, weights=np.full(50, 1e8))
    stats = beam_statistics(s, energy_threshold=1 * MeV)
    assert stats["energy_spread"] == pytest.approx(0.0, abs=1e-12)
    assert stats["mean_energy"] == pytest.approx(9.0 * m_e * c**2)
    assert stats["n"] == 50


def test_beam_emittance_uncorrelated():
    s = Species("b", ndim=2)
    rng = np.random.default_rng(42)
    n = 5000
    y = rng.normal(0, 1e-6, n)
    uy = rng.normal(0, 0.1, n)
    pos = np.zeros((n, 2))
    pos[:, 1] = y
    mom = np.zeros((n, 3))
    mom[:, 0] = 100.0  # gamma ~ 100: everyone passes the threshold
    mom[:, 1] = uy
    s.add_particles(pos, mom)
    stats = beam_statistics(s, energy_threshold=1 * MeV)
    assert stats["emittance"] == pytest.approx(1e-7, rel=0.1)


def test_beam_history_records():
    hist = BeamHistory(energy_threshold=0.5 * MeV)
    s = beam_species([5.0], weights=[1e9])
    hist.record(0.0, s)
    hist.record(1.0, s)
    assert len(hist.times) == 2
    assert hist.final_charge() == pytest.approx(1e9 * q_e)


def test_energy_spectrum_and_peak():
    rng = np.random.default_rng(3)
    gammas = 1.0 + np.abs(rng.normal(20.0, 1.0, size=4000))
    s = beam_species(gammas)
    centers, dn_de = energy_spectrum(s, bins=60)
    peak, spread = spectral_peak_and_spread(centers, dn_de)
    expected_peak = 20.0 * m_e * c**2
    assert peak == pytest.approx(expected_peak, rel=0.15)
    assert 0.0 < spread < 0.5


def test_energy_spectrum_empty_raises():
    s = Species("e", ndim=1)
    with pytest.raises(DiagnosticError):
        energy_spectrum(s)


def test_spectrum_explicit_range():
    s = beam_species([2.0, 3.0, 4.0])
    centers, dn_de = energy_spectrum(s, bins=10, e_min=0.0, e_max=5 * MeV)
    assert len(centers) == 10
    assert centers[0] > 0.0


def test_energy_diagnostic_drift():
    g = YeeGrid((8,), (0.0,), (8.0,), guards=2)
    s = beam_species([2.0], ndim=1)
    diag = EnergyDiagnostic()
    diag.record(0.0, g, [s])
    diag.record(1.0, g, [s])
    assert diag.relative_drift() == pytest.approx(0.0)
    assert len(diag.total_energy()) == 2


def test_field_probe():
    g = YeeGrid((8, 8), (0, 0), (8.0, 8.0), guards=2)
    g.interior_view("Ey")[...] = 2.0
    probe = FieldProbe(("Ey", "rho"))
    probe.record(0.5, g)
    assert probe.last("Ey").max() == 2.0
    with pytest.raises(DiagnosticError):
        FieldProbe(("Qx",))
    with pytest.raises(DiagnosticError):
        FieldProbe(("Ey",)).last("Ey")


def test_density_probe_counts_particles():
    g = YeeGrid((8, 8), (0, 0), (8.0, 8.0), guards=2)
    s = Species("e", ndim=2)
    s.add_particles([[4.0, 4.0]], weights=[10.0])
    probe = DensityProbe(order=1)
    snap = probe.record(0.0, g, s)
    # the particle sits exactly on a node: all density at one point
    assert snap.sum() * np.prod(g.dx) == pytest.approx(10.0)
    assert snap.max() == pytest.approx(10.0)


def test_timers_accumulate():
    t = Timers()
    with t.timer("a"):
        time.sleep(0.01)
    with t.timer("a"):
        pass
    t.add("b", 1.5)
    assert t.counts["a"] == 2
    assert t.totals["a"] >= 0.01
    assert t.totals["b"] == 1.5
    assert t.total() >= 1.51
    report = t.report()
    assert "a" in report and "b" in report


def test_timers_lap():
    t = Timers()
    t.reset_lap()
    t.lap()
    t.lap()
    assert len(t.step_times) == 2
    assert all(v >= 0 for v in t.step_times)
