"""Unit tests for the SoA species container."""

import numpy as np
import pytest

from repro.constants import c, m_e, q_e
from repro.exceptions import ConfigurationError
from repro.particles.species import Species


def test_empty_container():
    s = Species("e", ndim=2)
    assert len(s) == 0
    assert s.n == 0
    assert s.kinetic_energy() == 0.0


def test_add_particles_defaults():
    s = Species("e", ndim=2)
    ids = s.add_particles([[0.0, 1.0], [2.0, 3.0]])
    assert s.n == 2
    np.testing.assert_array_equal(ids, [0, 1])
    np.testing.assert_allclose(s.momenta, 0.0)
    np.testing.assert_allclose(s.weights, 1.0)


def test_ids_are_unique_across_additions():
    s = Species("e", ndim=1)
    a = s.add_particles([[0.0]])
    b = s.add_particles([[1.0], [2.0]])
    assert set(a) | set(b) == {0, 1, 2}


def test_add_wrong_shape_raises():
    s = Species("e", ndim=2)
    with pytest.raises(ConfigurationError):
        s.add_particles([[1.0, 2.0, 3.0]])
    with pytest.raises(ConfigurationError):
        s.add_particles([[1.0, 2.0]], momenta=[[1.0, 2.0]])


def test_remove_returns_removed():
    s = Species("e", ndim=1)
    s.add_particles([[float(i)] for i in range(5)])
    removed = s.remove(s.positions[:, 0] >= 3.0)
    assert s.n == 3
    assert removed.n == 2
    np.testing.assert_array_equal(removed.ids, [3, 4])


def test_extend_preserves_ids():
    a = Species("e", ndim=1)
    a.add_particles([[0.0]])
    b = Species("e", ndim=1)
    b.add_particles([[1.0], [2.0]])
    moved = b.remove(np.array([True, False]))
    a.extend(moved)
    assert a.n == 2
    assert list(a.ids) == [0, 0]  # ids are per-container counters
    with pytest.raises(ConfigurationError):
        a.extend(Species("e", ndim=2))


def test_gamma_and_velocity():
    s = Species("e", ndim=1)
    s.add_particles([[0.0]], momenta=[[3.0, 0.0, 4.0]])  # |u| = 5
    np.testing.assert_allclose(s.gamma(), np.sqrt(26.0))
    v = s.velocities()
    np.testing.assert_allclose(np.linalg.norm(v), 5.0 * c / np.sqrt(26.0))


def test_kinetic_energy_scaling_with_weight():
    s = Species("e", ndim=1)
    s.add_particles([[0.0]], momenta=[[1.0, 0.0, 0.0]], weights=[2.0])
    expected = (np.sqrt(2.0) - 1.0) * m_e * c**2 * 2.0
    assert s.kinetic_energy() == pytest.approx(expected)


def test_total_charge():
    s = Species("e", charge=-q_e, ndim=1)
    s.add_particles([[0.0], [1.0]], weights=[1e9, 2e9])
    assert s.total_charge() == pytest.approx(-3e9 * q_e)


def test_reorder_permutation():
    s = Species("e", ndim=1)
    s.add_particles([[0.0], [1.0], [2.0]])
    s.reorder(np.array([2, 0, 1]))
    np.testing.assert_allclose(s.positions[:, 0], [2.0, 0.0, 1.0])
    np.testing.assert_array_equal(s.ids, [2, 0, 1])


def test_copy_independent():
    s = Species("e", ndim=1)
    s.add_particles([[1.0]])
    t = s.copy()
    t.positions += 5.0
    assert s.positions[0, 0] == 1.0


def test_bad_construction():
    with pytest.raises(ConfigurationError):
        Species("e", ndim=4)
    with pytest.raises(ConfigurationError):
        Species("e", mass=-1.0)


# -- id-counter regressions (migration + injection) --------------------------

def test_extend_advances_id_counter_past_absorbed_ids():
    """Regression: ``extend`` used to leave ``_next_id`` untouched, so a
    rank that absorbed migrated particles and then injected fresh plasma
    handed out the ids it had just received."""
    sender = Species("e", ndim=1)
    sender.add_particles([[0.0], [1.0], [2.0]])  # ids 0, 1, 2
    receiver = Species("e", ndim=1)
    receiver.add_particles([[5.0]])  # id 0
    migrated = sender.remove(np.array([False, True, True]))  # ids 1, 2
    receiver.extend(migrated)
    new_ids = receiver.add_particles([[6.0], [7.0]])
    assert new_ids.min() >= 3
    assert len(set(receiver.ids)) == receiver.n


def test_select_inherits_id_counter():
    """Regression: ``select`` used to return a species whose counter
    restarted at 0, colliding with the copied ids on the next add."""
    s = Species("e", ndim=1)
    s.add_particles([[0.0], [1.0]])  # ids 0, 1
    sub = s.select(np.array([True, True]))
    new_ids = sub.add_particles([[2.0]])
    assert new_ids[0] == 2
    assert len(set(sub.ids)) == sub.n
