"""Protocol-checker tests: each detector demonstrated on a 4-rank SimComm."""

import numpy as np
import pytest

from repro.analysis.commcheck import check_comm
from repro.exceptions import CommunicationError, ProtocolError
from repro.parallel.comm import SimComm


def rule_ids(report):
    return [f.rule for f in report.findings]


def test_clean_run_reports_ok():
    comm = SimComm(4)
    comm.send(0, 1, np.zeros(4), tag="halo")
    comm.recv(0, 1, tag="halo")
    comm.allreduce_sum(np.ones(2))
    comm.barrier()
    report = check_comm(comm)
    assert report.ok
    assert report.n_ranks == 4
    report.raise_if_failed()  # must not raise
    assert "clean" in report.format()


def test_unreceived_message_detected():
    comm = SimComm(4)
    comm.send(0, 2, np.zeros(8), tag="particles")
    comm.send(0, 2, np.zeros(8), tag="particles")
    report = check_comm(comm)
    assert rule_ids(report) == ["COMM001"]
    assert "2 unreceived message(s)" in report.findings[0].message
    assert "src=0 dst=2 tag='particles'" in report.findings[0].message


def test_tag_mismatch_detected():
    comm = SimComm(4)
    comm.send(3, 1, np.zeros(4), tag="halo")
    with pytest.raises(CommunicationError):
        comm.recv(3, 1, tag="particles")
    comm.recv(3, 1, tag="halo")  # drain so only the mismatch remains
    report = check_comm(comm)
    assert rule_ids(report) == ["COMM002"]
    assert "tag mismatch" in report.findings[0].message
    assert "'halo'" in report.findings[0].message


def test_self_send_detected():
    comm = SimComm(4)
    comm.send(2, 2, np.zeros(4), tag="halo")
    comm.recv(2, 2, tag="halo")
    report = check_comm(comm)
    assert rule_ids(report) == ["COMM003"]
    assert "local copy" in report.findings[0].message


def test_collective_divergence_detected():
    comm = SimComm(4)
    for rank in (0, 1, 2):  # rank 3 never reaches the allreduce
        comm.allreduce_sum(np.ones(2), rank=rank)
    report = check_comm(comm)
    assert rule_ids(report) == ["COMM004"]
    assert "[1, 1, 1, 0]" in report.findings[0].message


def test_barrier_divergence_detected():
    comm = SimComm(4)
    comm.barrier()  # all ranks
    comm.barrier(rank=0)  # rank 0 hits one extra barrier
    report = check_comm(comm)
    assert rule_ids(report) == ["COMM005"]


def test_uniform_per_rank_collectives_are_clean():
    comm = SimComm(4)
    for rank in range(4):
        comm.allreduce_sum(np.ones(2), rank=rank)
        comm.barrier(rank=rank)
    assert check_comm(comm).ok


def test_raise_if_failed_raises_protocol_error():
    comm = SimComm(4)
    comm.send(0, 1, np.zeros(4), tag="x")
    report = check_comm(comm)
    with pytest.raises(ProtocolError) as excinfo:
        report.raise_if_failed()
    assert "COMM001" in str(excinfo.value)


def test_multiple_violations_reported_together():
    comm = SimComm(4)
    comm.send(1, 1, np.zeros(2), tag="a")  # self-send, also never received
    comm.allreduce_sum(np.ones(1), rank=0)
    report = check_comm(comm)
    assert set(rule_ids(report)) == {"COMM001", "COMM003", "COMM004"}


def test_clear_log_resets_the_audit_trail():
    comm = SimComm(2)
    comm.send(0, 1, np.zeros(2), tag="x")
    assert not check_comm(comm).ok
    comm.clear_log()
    assert check_comm(comm).ok
    assert check_comm(comm).n_events == 0


# -- runtime errors carry the same context as the findings ------------------

def test_recv_missing_error_names_src_dst_tag():
    comm = SimComm(4)
    with pytest.raises(CommunicationError) as excinfo:
        comm.recv(0, 1, tag="halo")
    assert "src=0 dst=1 tag='halo'" in str(excinfo.value)


def test_recv_missing_error_hints_pending_tags():
    comm = SimComm(4)
    comm.send(0, 1, np.zeros(2), tag="particles")
    with pytest.raises(CommunicationError) as excinfo:
        comm.recv(0, 1, tag="halo")
    assert "pending tags for this pair: ['particles']" in str(excinfo.value)


def test_rank_range_errors_name_operation_and_role():
    comm = SimComm(4)
    with pytest.raises(CommunicationError) as excinfo:
        comm.send(0, 9, np.zeros(1))
    assert "send: dst rank 9 out of range [0, 4)" in str(excinfo.value)
    with pytest.raises(CommunicationError) as excinfo:
        comm.recv(-1, 0)
    assert "recv: src rank -1 out of range [0, 4)" in str(excinfo.value)
    with pytest.raises(CommunicationError) as excinfo:
        comm.allreduce_sum(np.zeros(1), rank=4)
    assert "allreduce_sum: rank 4 out of range [0, 4)" in str(excinfo.value)
