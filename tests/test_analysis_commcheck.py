"""Protocol-checker tests: each detector demonstrated on a 4-rank SimComm."""

import numpy as np
import pytest

from repro.analysis.commcheck import check_all, check_comm, check_happens_before
from repro.exceptions import CommunicationError, ProtocolError
from repro.parallel.comm import SimComm


def rule_ids(report):
    return [f.rule for f in report.findings]


def test_clean_run_reports_ok():
    comm = SimComm(4)
    comm.send(0, 1, np.zeros(4), tag="halo")
    comm.recv(0, 1, tag="halo")
    comm.allreduce_sum(np.ones(2))
    comm.barrier()
    report = check_comm(comm)
    assert report.ok
    assert report.n_ranks == 4
    report.raise_if_failed()  # must not raise
    assert "clean" in report.format()


def test_unreceived_message_detected():
    comm = SimComm(4)
    comm.send(0, 2, np.zeros(8), tag="particles")
    comm.send(0, 2, np.zeros(8), tag="particles")
    report = check_comm(comm)
    assert rule_ids(report) == ["COMM001"]
    assert "2 unreceived message(s)" in report.findings[0].message
    assert "src=0 dst=2 tag='particles'" in report.findings[0].message


def test_tag_mismatch_detected():
    comm = SimComm(4)
    comm.send(3, 1, np.zeros(4), tag="halo")
    with pytest.raises(CommunicationError):
        comm.recv(3, 1, tag="particles")
    comm.recv(3, 1, tag="halo")  # drain so only the mismatch remains
    report = check_comm(comm)
    assert rule_ids(report) == ["COMM002"]
    assert "tag mismatch" in report.findings[0].message
    assert "'halo'" in report.findings[0].message


def test_self_send_detected():
    comm = SimComm(4)
    comm.send(2, 2, np.zeros(4), tag="halo")
    comm.recv(2, 2, tag="halo")
    report = check_comm(comm)
    assert rule_ids(report) == ["COMM003"]
    assert "local copy" in report.findings[0].message


def test_collective_divergence_detected():
    comm = SimComm(4)
    for rank in (0, 1, 2):  # rank 3 never reaches the allreduce
        comm.allreduce_sum(np.ones(2), rank=rank)
    report = check_comm(comm)
    assert rule_ids(report) == ["COMM004"]
    assert "[1, 1, 1, 0]" in report.findings[0].message


def test_barrier_divergence_detected():
    comm = SimComm(4)
    comm.barrier()  # all ranks
    comm.barrier(rank=0)  # rank 0 hits one extra barrier
    report = check_comm(comm)
    assert rule_ids(report) == ["COMM005"]


def test_uniform_per_rank_collectives_are_clean():
    comm = SimComm(4)
    for rank in range(4):
        comm.allreduce_sum(np.ones(2), rank=rank)
        comm.barrier(rank=rank)
    assert check_comm(comm).ok


def test_raise_if_failed_raises_protocol_error():
    comm = SimComm(4)
    comm.send(0, 1, np.zeros(4), tag="x")
    report = check_comm(comm)
    with pytest.raises(ProtocolError) as excinfo:
        report.raise_if_failed()
    assert "COMM001" in str(excinfo.value)


def test_multiple_violations_reported_together():
    comm = SimComm(4)
    comm.send(1, 1, np.zeros(2), tag="a")  # self-send, also never received
    comm.allreduce_sum(np.ones(1), rank=0)
    report = check_comm(comm)
    assert set(rule_ids(report)) == {"COMM001", "COMM003", "COMM004"}


def test_clear_log_resets_the_audit_trail():
    comm = SimComm(2)
    comm.send(0, 1, np.zeros(2), tag="x")
    assert not check_comm(comm).ok
    comm.clear_log()
    assert check_comm(comm).ok
    assert check_comm(comm).n_events == 0


# -- the happens-before replay (COMM007/COMM009/COMM010) --------------------

def clean_phase(comm, tag="halo:fold"):
    comm.begin_phase(tag, n_messages=1)
    comm.send(0, 1, np.zeros(4, dtype=np.float64), tag=tag)
    comm.recv(0, 1, tag=tag)
    comm.record_apply(tag, 0)
    comm.record_apply(tag, 1)
    comm.end_phase(tag)


def test_happens_before_clean_phase():
    comm = SimComm(4)
    clean_phase(comm)
    report = check_happens_before(comm)
    assert report.ok, report.format()
    assert check_all(comm).ok


def test_happens_before_trivially_clean_without_phase_events():
    comm = SimComm(4)
    comm.send(0, 1, np.zeros(2), tag="x")
    comm.recv(0, 1, tag="x")
    assert check_happens_before(comm).ok


def test_comm007_phase_begins_over_in_flight_messages():
    comm = SimComm(4)
    comm.begin_phase("halo:fields", n_messages=1)
    comm.send(0, 1, np.zeros(4), tag="halo:fields")
    comm.end_phase("halo:fields")  # ended with the message still flying
    comm.begin_phase("halo:fields", n_messages=1)  # overlaps the leftover
    comm.send(1, 0, np.zeros(4), tag="halo:fields")
    comm.recv(0, 1, tag="halo:fields")
    comm.recv(1, 0, tag="halo:fields")
    comm.end_phase("halo:fields")
    report = check_happens_before(comm)
    assert rule_ids(report) == ["COMM007"]
    assert "in flight" in report.findings[0].message


def test_comm007_nested_phase_on_same_tag():
    comm = SimComm(4)
    comm.begin_phase("t", n_messages=0)
    comm.begin_phase("t", n_messages=0)
    report = check_happens_before(comm)
    assert rule_ids(report) == ["COMM007"]
    assert "still open" in report.findings[0].message


def test_comm009_out_of_order_apply():
    comm = SimComm(4)
    comm.begin_phase("halo:fold", n_messages=1)
    comm.send(0, 1, np.zeros(4), tag="halo:fold")
    comm.recv(0, 1, tag="halo:fold")
    comm.record_apply("halo:fold", 1)
    comm.record_apply("halo:fold", 0)  # canonical order violated
    comm.end_phase("halo:fold")
    report = check_happens_before(comm)
    assert rule_ids(report) == ["COMM009"]
    assert "canonical order" in report.findings[0].message
    # provenance: the event index of the offending apply
    assert report.findings[0].line == comm.log[-2].seq


def test_comm010_apply_races_inflight_message():
    comm = SimComm(4)
    comm.begin_phase("halo:fold", n_messages=1)
    comm.send(0, 1, np.zeros(4), tag="halo:fold")
    comm.record_apply("halo:fold", 0)  # the send has not been received
    comm.recv(0, 1, tag="halo:fold")
    comm.end_phase("halo:fold")
    report = check_happens_before(comm)
    assert rule_ids(report) == ["COMM010"]
    assert "in flight" in report.findings[0].message


def test_comm010_reported_once_per_phase():
    comm = SimComm(4)
    comm.begin_phase("t", n_messages=1)
    comm.send(0, 1, np.zeros(4), tag="t")
    comm.record_apply("t", 0)
    comm.record_apply("t", 1)  # second racy apply: same phase, no new finding
    comm.recv(0, 1, tag="t")
    comm.end_phase("t")
    assert rule_ids(check_happens_before(comm)) == ["COMM010"]


def test_apply_outside_any_phase_is_tolerated():
    comm = SimComm(2)
    comm.record_apply("loose", 0)
    assert check_happens_before(comm).ok


def test_distinct_tags_do_not_interfere():
    comm = SimComm(4)
    comm.begin_phase("halo:fold", n_messages=1)
    comm.send(0, 1, np.zeros(4), tag="halo:fold")
    comm.begin_phase("lb:migrate", n_messages=1)  # different tag: fine
    comm.send(2, 3, np.zeros(4), tag="lb:migrate")
    comm.recv(2, 3, tag="lb:migrate")
    comm.end_phase("lb:migrate")
    comm.recv(0, 1, tag="halo:fold")
    comm.record_apply("halo:fold", 0)
    comm.end_phase("halo:fold")
    assert check_happens_before(comm).ok


# -- same-rank decompositions: local copies must not trip pair accounting ----

def test_single_rank_halo_exchange_replays_clean():
    """Regression: a single-rank decomposition short-circuits every
    overlap to a local copy — no send/recv events exist, and neither the
    protocol rules nor the happens-before accounting may expect one."""
    from repro.grid.yee import SOURCE_COMPONENTS, YeeGrid
    from repro.parallel.box import chop_domain
    from repro.parallel.halo import fold_sources_pairwise, neighbor_overlaps

    guards = 3
    boxes = chop_domain((16, 16), 8)
    grids = [
        YeeGrid(b.shape, tuple(map(float, b.lo)), tuple(map(float, b.hi)),
                guards=guards)
        for b in boxes
    ]
    overlaps = neighbor_overlaps(
        boxes, (16, 16), guards=guards, periodic_axes=(0, 1), kind="fold"
    )
    comm = SimComm(1)
    stats = fold_sources_pairwise(
        comm, grids, boxes, overlaps, [0] * len(boxes), guards=guards
    )
    assert stats.local_copies > 0 and stats.messages == 0
    kinds = [ev.kind for ev in comm.log]
    assert "send" not in kinds and "recv" not in kinds
    assert "phase_begin" in kinds and "apply" in kinds
    # the phase declared zero cross-rank messages
    begin = next(ev for ev in comm.log if ev.kind == "phase_begin")
    assert begin.detail == 0
    report = check_all(comm)
    assert report.ok, report.format()


def test_single_rank_distributed_simulation_audits_clean():
    from repro.constants import m_e, plasma_wavelength, q_e
    from repro.parallel.distributed import DistributedSimulation
    from repro.particles.injection import UniformProfile
    from repro.particles.species import Species

    n0 = 1e24
    length = plasma_wavelength(n0)
    sim = DistributedSimulation(
        (16, 16), (0.0, 0.0), (length, length), n_ranks=1, max_grid_size=8
    )
    sim.add_species(
        Species("electrons", charge=-q_e, mass=m_e, ndim=2),
        profile=UniformProfile(n0), ppc=(1, 1), rng_seed=9,
    )
    sim.step(2)
    report = check_all(sim.comm)
    assert report.ok, report.format()


def test_four_rank_distributed_run_passes_happens_before():
    from repro.constants import m_e, plasma_wavelength, q_e
    from repro.parallel.distributed import DistributedSimulation
    from repro.particles.injection import UniformProfile
    from repro.particles.species import Species

    n0 = 1e24
    length = plasma_wavelength(n0)
    sim = DistributedSimulation(
        (16, 16), (0.0, 0.0), (length, length), n_ranks=4, max_grid_size=8
    )
    sim.add_species(
        Species("electrons", charge=-q_e, mass=m_e, ndim=2),
        profile=UniformProfile(n0), ppc=(2, 2), rng_seed=3,
    )
    sim.step(3)
    assert any(ev.kind == "apply" for ev in sim.comm.log)
    report = check_all(sim.comm)
    assert report.ok, report.format()


# -- runtime errors carry the same context as the findings ------------------

def test_recv_missing_error_names_src_dst_tag():
    comm = SimComm(4)
    with pytest.raises(CommunicationError) as excinfo:
        comm.recv(0, 1, tag="halo")
    assert "src=0 dst=1 tag='halo'" in str(excinfo.value)


def test_recv_missing_error_hints_pending_tags():
    comm = SimComm(4)
    comm.send(0, 1, np.zeros(2), tag="particles")
    with pytest.raises(CommunicationError) as excinfo:
        comm.recv(0, 1, tag="halo")
    assert "pending tags for this pair: ['particles']" in str(excinfo.value)


def test_rank_range_errors_name_operation_and_role():
    comm = SimComm(4)
    with pytest.raises(CommunicationError) as excinfo:
        comm.send(0, 9, np.zeros(1))
    assert "send: dst rank 9 out of range [0, 4)" in str(excinfo.value)
    with pytest.raises(CommunicationError) as excinfo:
        comm.recv(-1, 0)
    assert "recv: src rank -1 out of range [0, 4)" in str(excinfo.value)
    with pytest.raises(CommunicationError) as excinfo:
        comm.allreduce_sum(np.zeros(1), rank=4)
    assert "allreduce_sum: rank 4 out of range [0, 4)" in str(excinfo.value)
