"""The dataflow engine: constant propagation, CFG joins, array aliasing."""

import ast

import pytest

from repro.analysis.dataflow import (
    DEFAULT_NUMPY_ALIASES,
    NONCONST,
    ArrayValue,
    FunctionAnalysis,
    ModuleAnalysis,
    build_module_env,
    fold_expr,
)


def analyze(source):
    tree = ast.parse(source)
    return ModuleAnalysis(tree)


def resolve_at(source, marker_func="f", var="x"):
    """Resolve ``var`` as read by the call to ``probe(var)`` in the source."""
    analysis = analyze(source)
    for node in ast.walk(analysis.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "probe"
        ):
            return analysis.resolve(node.args[0])
    raise AssertionError("no probe(...) call in source")


# -- expression folding ------------------------------------------------------

def test_fold_constants_and_arithmetic():
    env = {"P": "halo", "N": 4}
    lookup = env.__getitem__
    ok, value = fold_expr(ast.parse("P + ':fold'", mode="eval").body, lookup)
    assert (ok, value) == (True, "halo:fold")
    ok, value = fold_expr(ast.parse("N * 2 + 1", mode="eval").body, lookup)
    assert (ok, value) == (True, 9)
    ok, value = fold_expr(ast.parse("(P, N)", mode="eval").body, lookup)
    assert (ok, value) == (True, ("halo", 4))
    ok, value = fold_expr(ast.parse("-N", mode="eval").body, lookup)
    assert (ok, value) == (True, -4)


def test_fold_fstring_of_constants():
    lookup = {"P": "lb"}.__getitem__
    ok, value = fold_expr(ast.parse("f'{P}:migrate'", mode="eval").body, lookup)
    assert (ok, value) == (True, "lb:migrate")


def test_fold_fails_on_unknown_names_and_mixed_types():
    lookup = {"S": "a"}.__getitem__
    ok, _ = fold_expr(ast.parse("unknown + 1", mode="eval").body, lookup)
    assert not ok
    ok, _ = fold_expr(ast.parse("S + 1", mode="eval").body, lookup)
    assert not ok
    ok, _ = fold_expr(ast.parse("1 // 0", mode="eval").body, lookup)
    assert not ok


def test_fold_nonconst_poisons():
    lookup = {"x": NONCONST}.__getitem__
    ok, _ = fold_expr(ast.parse("x + 'a'", mode="eval").body, lookup)
    assert not ok


# -- module environment ------------------------------------------------------

def test_module_env_constants_and_chaining():
    env = build_module_env(ast.parse(
        "PREFIX = 'halo'\n"
        "TAG = PREFIX + ':fold'\n"
        "N = 4 * 2\n"
    ))
    assert env.constants == {"PREFIX": "halo", "TAG": "halo:fold", "N": 8}


def test_module_env_reassignment_evicts():
    env = build_module_env(ast.parse("X = 1\nX = 2\n"))
    assert "X" not in env.constants


def test_module_env_discovers_numpy_aliases():
    env = build_module_env(ast.parse("import numpy as xp\n"))
    assert "xp" in env.numpy_aliases
    assert DEFAULT_NUMPY_ALIASES <= env.numpy_aliases


# -- function-level constant propagation -------------------------------------

def test_straight_line_propagation():
    ok, value = resolve_at(
        "def f():\n"
        "    a = 'halo'\n"
        "    x = a + ':fields'\n"
        "    probe(x)\n"
    )
    assert (ok, value) == (True, "halo:fields")


def test_branch_join_equal_constants_survive():
    ok, value = resolve_at(
        "def f(c):\n"
        "    if c:\n"
        "        x = 7\n"
        "    else:\n"
        "        x = 7\n"
        "    probe(x)\n"
    )
    assert (ok, value) == (True, 7)


def test_branch_join_different_constants_are_nonconst():
    ok, _ = resolve_at(
        "def f(c):\n"
        "    x = 1\n"
        "    if c:\n"
        "        x = 2\n"
        "    probe(x)\n"
    )
    assert not ok


def test_loop_reassignment_reaches_fixpoint_as_nonconst():
    ok, _ = resolve_at(
        "def f(n):\n"
        "    x = 0\n"
        "    for i in range(n):\n"
        "        x = x + 1\n"
        "    probe(x)\n"
    )
    assert not ok


def test_constant_inside_loop_stays_constant():
    ok, value = resolve_at(
        "def f(n):\n"
        "    tag = 'ring'\n"
        "    for i in range(n):\n"
        "        probe(tag)\n"
    )
    assert (ok, value) == (True, "ring")


def test_param_default_seeds_entry_state():
    ok, value = resolve_at(
        "PREFIX = 'halo'\n"
        "def f(tag=PREFIX + ':fold'):\n"
        "    probe(tag)\n"
    )
    assert (ok, value) == (True, "halo:fold")


def test_param_without_default_is_nonconst():
    ok, _ = resolve_at("def f(tag):\n    probe(tag)\n")
    assert not ok


def test_tuple_unpacking_binds_elementwise():
    ok, value = resolve_at(
        "def f():\n"
        "    a, x = 1, 'two'\n"
        "    probe(x)\n"
    )
    assert (ok, value) == (True, "two")


def test_augassign_folds_on_constants():
    ok, value = resolve_at(
        "def f():\n"
        "    x = 'a'\n"
        "    x += 'b'\n"
        "    probe(x)\n"
    )
    assert (ok, value) == (True, "ab")


def test_return_path_does_not_leak_into_join():
    ok, value = resolve_at(
        "def f(c):\n"
        "    x = 1\n"
        "    if c:\n"
        "        x = 2\n"
        "        return x\n"
        "    probe(x)\n"
    )
    assert (ok, value) == (True, 1)


def test_try_handler_joins_conservatively():
    ok, _ = resolve_at(
        "def f():\n"
        "    x = 1\n"
        "    try:\n"
        "        x = 2\n"
        "    except ValueError:\n"
        "        pass\n"
        "    probe(x)\n"
    )
    assert not ok  # handler may run before or after the reassignment


# -- array values and aliasing ----------------------------------------------

def test_allocation_produces_array_value_with_dtype():
    analysis = analyze(
        "import numpy as np\n"
        "def f():\n"
        "    buf = np.zeros(4, dtype=np.float64)\n"
        "    alias = buf\n"
        "    probe(alias)\n"
    )
    fn = analysis.tree.body[1]
    fa = analysis.function_analysis(fn)
    probe_stmt = fn.body[2]
    state = fa.state_before(probe_stmt)
    assert isinstance(state["buf"], ArrayValue)
    assert state["buf"].dtype == "np.float64"
    assert state["alias"] == state["buf"]  # same allocation: aliased


def test_distinct_allocations_do_not_alias():
    analysis = analyze(
        "import numpy as np\n"
        "def f():\n"
        "    a = np.zeros(4, dtype=float)\n"
        "    b = np.zeros(4, dtype=float)\n"
        "    probe(a)\n"
    )
    fn = analysis.tree.body[1]
    state = analysis.function_analysis(fn).state_before(fn.body[2])
    assert state["a"] != state["b"]


def test_custom_numpy_alias_is_recognized():
    analysis = analyze(
        "import numpy as xp\n"
        "def f():\n"
        "    a = xp.empty(3, dtype=xp.float32)\n"
        "    probe(a)\n"
    )
    fn = analysis.tree.body[1]
    state = analysis.function_analysis(fn).state_before(fn.body[1])
    assert isinstance(state["a"], ArrayValue)


# -- module façade -----------------------------------------------------------

def test_module_level_expressions_resolve_against_env():
    analysis = analyze("P = 'x'\nTAG = P + ':y'\n")
    assign = analysis.tree.body[1]
    ok, value = analysis.resolve(assign.value)
    assert (ok, value) == (True, "x:y")


def test_enclosing_function_mapping():
    analysis = analyze(
        "def outer():\n"
        "    def inner():\n"
        "        x = 1\n"
        "    y = 2\n"
    )
    outer = analysis.tree.body[0]
    inner = outer.body[0]
    assert analysis.enclosing_function(inner.body[0]) is inner
    assert analysis.enclosing_function(outer.body[1]) is outer
    assert analysis.enclosing_function(outer) is None


def test_analysis_is_deterministic_and_cached():
    source = (
        "def f(c):\n"
        "    x = 'a'\n"
        "    if c:\n"
        "        x = x + 'b'\n"
        "    probe(x)\n"
    )
    analysis = analyze(source)
    fn = analysis.tree.body[0]
    assert analysis.function_analysis(fn) is analysis.function_analysis(fn)


def test_worklist_terminates_on_nested_loops():
    source = "def f(n):\n    x = 0\n"
    for depth in range(4):
        indent = "    " * (depth + 1)
        source += f"{indent}for i{depth} in range(n):\n"
    source += "    " * 5 + "x = x + 1\n"
    analysis = analyze(source)
    FunctionAnalysis(analysis.tree.body[0], analysis.env)  # must converge
