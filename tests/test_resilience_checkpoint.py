"""Checkpoint/restart round trips for every simulation class.

The resilience contract rests on one property: k steps, checkpoint,
restore into a *fresh* object, continue == uninterrupted run,
bit-identical.  These tests pin that property for the monolithic,
mesh-refined (with PML and subcycling state) and distributed
simulations, plus the validation fixes (shape mismatch is a
ConfigurationError, window state survives attach-after-restore).
"""

import numpy as np
import pytest

from repro.constants import c, m_e, plasma_wavelength, q_e, um
from repro.core.moving_window import MovingWindow
from repro.core.mr_simulation import MRSimulation
from repro.core.simulation import Simulation
from repro.diagnostics.io import (
    load_checkpoint,
    load_distributed_checkpoint,
    pack_distributed_state,
    save_checkpoint,
    save_distributed_checkpoint,
    unpack_distributed_state,
)
from repro.exceptions import ConfigurationError
from repro.grid.maxwell import cfl_dt
from repro.grid.yee import YeeGrid
from repro.parallel.distributed import DistributedSimulation
from repro.particles.injection import UniformProfile
from repro.particles.species import Species


def build_monolithic(n_cells=48):
    n0 = 1e24
    length = plasma_wavelength(n0)
    g = YeeGrid((n_cells,), (0.0,), (length,), guards=4)
    sim = Simulation(g, shape_order=2, smoothing_passes=0)
    e = Species("e", charge=-q_e, mass=m_e, ndim=1)
    sim.add_species(e, profile=UniformProfile(n0), ppc=8)
    k = 2 * np.pi / length
    e.momenta[:, 0] = 1e-3 * np.sin(k * e.positions[:, 0])
    return sim, e


def build_mr_subcycled():
    n0 = 1e24
    length = plasma_wavelength(n0)
    g = YeeGrid((48,), (0.0,), (length,), guards=4)
    dt = cfl_dt((length / 48 / 2,), 0.9)
    sim = MRSimulation(g, dt=dt, shape_order=2, smoothing_passes=0)
    e = Species("e", charge=-q_e, mass=m_e, ndim=1)
    sim.add_species(e, profile=UniformProfile(n0), ppc=8)
    k = 2 * np.pi / length
    e.momenta[:, 0] = 1e-3 * np.sin(k * e.positions[:, 0])
    sim.add_patch((12,), (36,), ratio=2, subcycle=True, n_pml=4)
    return sim, e


def build_distributed():
    n0 = 1e24
    length = plasma_wavelength(n0)
    sim = DistributedSimulation(
        (16, 16), (0.0, 0.0), (length, length), n_ranks=4, max_grid_size=8,
    )
    e = Species("electrons", charge=-q_e, mass=m_e, ndim=2)
    k = 2 * np.pi / length

    def perturb(sp):
        sp.momenta[:, 0] += 1e-3 * np.sin(k * sp.positions[:, 0])

    sim.add_species(
        e, profile=UniformProfile(n0), ppc=(2, 2), momentum_init=perturb,
        temperature_uth=0.05, rng_seed=7,
    )
    return sim


def test_monolithic_roundtrip_bitwise(tmp_path):
    path = str(tmp_path / "ckpt.npz")
    sim_a, e_a = build_monolithic()
    sim_a.step(8)
    save_checkpoint(sim_a, path)
    sim_a.step(8)

    sim_b, e_b = build_monolithic()
    load_checkpoint(sim_b, path)
    assert sim_b.step_count == 8
    sim_b.step(8)

    np.testing.assert_array_equal(sim_a.grid.fields["Ex"], sim_b.grid.fields["Ex"])
    np.testing.assert_array_equal(e_a.positions, e_b.positions)
    np.testing.assert_array_equal(e_a.momenta, e_b.momenta)
    np.testing.assert_array_equal(e_a.ids, e_b.ids)


def test_mr_subcycled_roundtrip_bitwise(tmp_path):
    """Subcycling state (frozen external fields, membership hysteresis)
    must survive the round trip, or the restarted fine push diverges."""
    path = str(tmp_path / "ckpt.npz")
    sim_a, e_a = build_mr_subcycled()
    sim_a.step(9)
    save_checkpoint(sim_a, path)
    sim_a.step(9)

    sim_b, e_b = build_mr_subcycled()
    load_checkpoint(sim_b, path)
    sim_b.step(9)

    np.testing.assert_array_equal(sim_a.grid.fields["Ex"], sim_b.grid.fields["Ex"])
    patch_a, patch_b = sim_a.patches[0], sim_b.patches[0]
    np.testing.assert_array_equal(
        patch_a.fine.fields["Ex"], patch_b.fine.fields["Ex"]
    )
    for (comp, axis), arr in patch_a.fine_solver.split.items():
        np.testing.assert_array_equal(
            arr, patch_b.fine_solver.split[(comp, axis)]
        )
    np.testing.assert_array_equal(e_a.positions, e_b.positions)
    np.testing.assert_array_equal(e_a.momenta, e_b.momenta)


def test_distributed_roundtrip_bitwise(tmp_path):
    ckpt_dir = str(tmp_path / "ckpt")
    sim_a = build_distributed()
    sim_a.step(6)
    save_distributed_checkpoint(sim_a, ckpt_dir)
    sim_a.step(6)

    sim_b = build_distributed()
    load_distributed_checkpoint(sim_b, ckpt_dir)
    assert sim_b.step_count == 6
    sim_b.step(6)

    np.testing.assert_array_equal(
        sim_a.global_field_view("Ex"), sim_b.global_field_view("Ex")
    )
    for i in range(len(sim_a.boxes)):
        sp_a = sim_a.species["electrons"].per_box[i]
        sp_b = sim_b.species["electrons"].per_box[i]
        np.testing.assert_array_equal(sp_a.positions, sp_b.positions)
        np.testing.assert_array_equal(sp_a.momenta, sp_b.momenta)
        np.testing.assert_array_equal(sp_a.ids, sp_b.ids)
    # the accounting resumes bit-for-bit too
    np.testing.assert_array_equal(sim_a.comm.bytes_sent, sim_b.comm.bytes_sent)
    np.testing.assert_array_equal(
        sim_a.comm.messages_sent, sim_b.comm.messages_sent
    )
    assert sim_a.comm.pair_bytes == sim_b.comm.pair_bytes
    assert sim_a.time == sim_b.time


def test_distributed_roundtrip_in_memory():
    """The fast path the resilience manager uses: pack/unpack, no disk."""
    sim_a = build_distributed()
    sim_a.step(4)
    state = {
        k: np.array(v, copy=True)
        for k, v in pack_distributed_state(sim_a).items()
    }
    sim_a.step(4)

    sim_b = build_distributed()
    unpack_distributed_state(sim_b, state)
    sim_b.step(4)
    np.testing.assert_array_equal(
        sim_a.global_field_view("Ex"), sim_b.global_field_view("Ex")
    )
    assert sim_a.total_particles() == sim_b.total_particles()


def test_distributed_checkpoint_restores_measured_costs(tmp_path):
    ckpt_dir = str(tmp_path / "ckpt")
    sim_a = build_distributed()
    sim_a.step(3)
    save_distributed_checkpoint(sim_a, ckpt_dir)
    costs_a = dict(sim_a.cost_model._measured)
    assert costs_a  # populated by the per-box stopwatches

    sim_b = build_distributed()
    load_distributed_checkpoint(sim_b, ckpt_dir)
    assert dict(sim_b.cost_model._measured) == costs_a


def test_shape_mismatch_is_configuration_error(tmp_path):
    """A checkpoint from a different grid must fail with a typed error
    naming the offending array — not a raw NumPy broadcast error after
    half the state was already mutated."""
    path = str(tmp_path / "ckpt.npz")
    sim, _ = build_monolithic(n_cells=48)
    save_checkpoint(sim, path)

    other, _ = build_monolithic(n_cells=32)
    before = other.grid.fields["Ex"].copy()
    with pytest.raises(ConfigurationError, match="shape"):
        load_checkpoint(other, path)
    # validation happened before any mutation
    np.testing.assert_array_equal(other.grid.fields["Ex"], before)


def test_distributed_box_count_mismatch_raises(tmp_path):
    ckpt_dir = str(tmp_path / "ckpt")
    sim = build_distributed()
    save_distributed_checkpoint(sim, ckpt_dir)
    n0 = 1e24
    length = plasma_wavelength(n0)
    other = DistributedSimulation(
        (16, 16), (0.0, 0.0), (length, length), n_ranks=4, max_grid_size=4,
    )
    other.add_species(Species("electrons", ndim=2))
    with pytest.raises(ConfigurationError, match="boxes"):
        load_distributed_checkpoint(other, ckpt_dir)
    with pytest.raises(ConfigurationError, match="no distributed checkpoint"):
        load_distributed_checkpoint(other, str(tmp_path / "missing"))


def test_window_state_applies_when_attached_after_restore(tmp_path):
    """Restore before set_moving_window must still restart exactly."""
    path = str(tmp_path / "ckpt.npz")

    def build():
        g = YeeGrid((64,), (0.0,), (64 * um,), guards=4)
        sim = Simulation(g, boundaries="damped")
        e = Species("e", ndim=1)
        sim.add_species(e, profile=UniformProfile(1e24), ppc=1,
                        continuous_injection=True)
        return sim

    sim_a = build()
    sim_a.set_moving_window(MovingWindow(speed=c, start_time=0.0))
    sim_a.step(15)
    save_checkpoint(sim_a, path)
    sim_a.step(5)

    sim_b = build()
    load_checkpoint(sim_b, path)  # no window attached yet: state parked
    assert sim_b._deferred_window_state is not None
    sim_b.set_moving_window(MovingWindow(speed=c, start_time=0.0))
    assert sim_b._deferred_window_state is None
    sim_b.step(5)
    assert sim_b.moving_window.cells_shifted == sim_a.moving_window.cells_shifted
    np.testing.assert_array_equal(
        sim_a.grid.fields["Ey"], sim_b.grid.fields["Ey"]
    )
