"""Tests for the field gather kernels (vectorized and reference)."""

import numpy as np
import pytest

from repro.grid.yee import STAGGER, YeeGrid
from repro.particles.gather import (
    gather_fields,
    gather_fields_reference,
    lattice_coords,
)


def make_grid(ndim=2, n=12):
    return YeeGrid((n,) * ndim, (0.0,) * ndim, (float(n),) * ndim, guards=3)


def test_lattice_coords_staggering():
    g = make_grid(ndim=1, n=8)
    pos = np.array([[2.0]])
    (cx,) = lattice_coords(g, pos, "rho")
    assert cx[0] == pytest.approx(2.0 + g.guards)
    (cx,) = lattice_coords(g, pos, "Ex")
    assert cx[0] == pytest.approx(2.0 + g.guards - 0.5)


@pytest.mark.parametrize("order", [1, 2, 3])
@pytest.mark.parametrize("ndim", [1, 2, 3])
def test_uniform_field_gathers_exactly(order, ndim):
    """Partition of unity: a constant field gathers as itself everywhere."""
    g = make_grid(ndim=ndim, n=8)
    for i, comp in enumerate(("Ex", "Ey", "Ez")):
        g.fields[comp][...] = float(i + 1)
    for i, comp in enumerate(("Bx", "By", "Bz")):
        g.fields[comp][...] = float(10 + i)
    rng = np.random.default_rng(5)
    pos = rng.uniform(1.0, 7.0, size=(40, ndim))
    e, b = gather_fields(g, pos, order)
    np.testing.assert_allclose(e, [[1.0, 2.0, 3.0]] * 40, rtol=1e-12)
    np.testing.assert_allclose(b, [[10.0, 11.0, 12.0]] * 40, rtol=1e-12)


@pytest.mark.parametrize("order", [1, 2, 3])
def test_linear_field_gathered_exactly(order):
    """B-splines reproduce affine fields exactly (away from edges)."""
    g = make_grid(ndim=2, n=12)
    # build Ey = 2x + 3y on its own staggered lattice over the full array
    gx = (np.arange(g.shape[0]) - g.guards + 0.5 * STAGGER["Ey"][0]) * g.dx[0]
    gy = (np.arange(g.shape[1]) - g.guards + 0.5 * STAGGER["Ey"][1]) * g.dx[1]
    g.fields["Ey"][...] = 2.0 * gx[:, None] + 3.0 * gy[None, :]
    rng = np.random.default_rng(6)
    pos = rng.uniform(3.0, 9.0, size=(30, 2))
    e, _ = gather_fields(g, pos, order)
    np.testing.assert_allclose(e[:, 1], 2.0 * pos[:, 0] + 3.0 * pos[:, 1], rtol=1e-10)


@pytest.mark.parametrize("order", [1, 2, 3])
@pytest.mark.parametrize("ndim", [1, 2])
def test_vectorized_matches_reference(order, ndim):
    """The optimized kernel must agree with the scalar baseline bit-for-bit
    (within float round-off) — the paper's optimization is performance-only."""
    g = make_grid(ndim=ndim, n=10)
    rng = np.random.default_rng(7)
    for comp in ("Ex", "Ey", "Ez", "Bx", "By", "Bz"):
        g.fields[comp][...] = rng.normal(size=g.shape)
    pos = rng.uniform(2.0, 8.0, size=(25, ndim))
    e_v, b_v = gather_fields(g, pos, order)
    e_r, b_r = gather_fields_reference(g, pos, order)
    np.testing.assert_allclose(e_v, e_r, rtol=1e-12, atol=1e-14)
    np.testing.assert_allclose(b_v, b_r, rtol=1e-12, atol=1e-14)


def test_vectorized_matches_reference_3d():
    g = make_grid(ndim=3, n=6)
    rng = np.random.default_rng(8)
    for comp in ("Ex", "Ey", "Ez", "Bx", "By", "Bz"):
        g.fields[comp][...] = rng.normal(size=g.shape)
    pos = rng.uniform(1.5, 4.5, size=(10, 3))
    e_v, b_v = gather_fields(g, pos, order=2)
    e_r, b_r = gather_fields_reference(g, pos, order=2)
    np.testing.assert_allclose(e_v, e_r, rtol=1e-12, atol=1e-14)
    np.testing.assert_allclose(b_v, b_r, rtol=1e-12, atol=1e-14)


def test_gather_localized_spike_order1():
    """An order-1 gather sees only the two bracketing samples in 1D."""
    g = make_grid(ndim=1, n=10)
    arr = g.fields["Ez"]  # nodal in 1D grid (stagger along z ignored)
    arr[...] = 0.0
    arr[g.guards + 5] = 1.0
    pos = np.array([[5.25], [4.0], [6.9]])
    e, _ = gather_fields(g, pos, order=1)
    assert e[0, 2] == pytest.approx(0.75)
    assert e[1, 2] == pytest.approx(0.0, abs=1e-15)
    assert e[2, 2] == pytest.approx(0.0, abs=1e-12)
