"""Unit tests for the staggered Yee grid container."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.grid.yee import STAGGER, YeeGrid


def make_grid(n=(8, 6), guards=2):
    lo = [0.0] * len(n)
    hi = [1.0 * v for v in n]
    return YeeGrid(n, lo, hi, guards=guards)


def test_shapes_include_guards_and_nodes():
    g = make_grid((8, 6), guards=2)
    assert g.shape == (8 + 1 + 4, 6 + 1 + 4)
    assert g.Ex.shape == g.shape
    assert g.Bz.shape == g.shape


def test_dx_from_bounds():
    g = YeeGrid((10, 4), (0.0, -2.0), (5.0, 2.0), guards=1)
    assert g.dx == (0.5, 1.0)


def test_valid_slices_nodal_vs_staggered():
    g = make_grid((8, 6))
    nodal = g.valid_slices("rho")
    assert nodal[0] == slice(2, 2 + 9)
    ex = g.valid_slices("Ex")  # staggered in x only
    assert ex[0] == slice(2, 2 + 8)
    assert ex[1] == slice(2, 2 + 7)


def test_axis_coords_staggering():
    g = YeeGrid((4,), (0.0,), (4.0,), guards=2)
    nodal = g.axis_coords(0, "rho")
    np.testing.assert_allclose(nodal, [0, 1, 2, 3, 4])
    stag = g.axis_coords(0, "Ex")
    np.testing.assert_allclose(stag, [0.5, 1.5, 2.5, 3.5])


def test_interior_view_is_a_view():
    g = make_grid()
    v = g.interior_view("Ey")
    v += 3.0
    assert g.Ey[g.valid_slices("Ey")].max() == 3.0


def test_zero_sources():
    g = make_grid()
    g.Jx += 1.0
    g.fields["rho"] += 2.0
    g.zero_sources()
    assert g.Jx.max() == 0.0
    assert g.fields["rho"].max() == 0.0


def test_copy_is_deep():
    g = make_grid()
    g.Ez += 1.0
    h = g.copy()
    h.Ez += 1.0
    assert g.Ez.max() == 1.0
    assert h.Ez.max() == 2.0


def test_field_energy_uniform_e():
    from repro.constants import eps0

    g = YeeGrid((4, 4), (0.0, 0.0), (4.0, 4.0), guards=2)
    g.interior_view("Ex")[...] = 2.0
    n_pts = np.prod([s.stop - s.start for s in g.valid_slices("Ex")])
    expected = 0.5 * eps0 * 4.0 * n_pts * 1.0  # cell volume 1
    assert g.field_energy() == pytest.approx(expected)


def test_stagger_table_is_yee():
    assert STAGGER["Ex"] == (1, 0, 0)
    assert STAGGER["Bx"] == (0, 1, 1)
    assert STAGGER["rho"] == (0, 0, 0)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(n_cells=(0, 4), lo=(0, 0), hi=(1, 1)),
        dict(n_cells=(4, 4), lo=(0, 0), hi=(0, 1)),
        dict(n_cells=(4, 4), lo=(0,), hi=(1, 1)),
        dict(n_cells=(4, 4), lo=(0, 0), hi=(1, 1), guards=0),
        dict(n_cells=(4, 4, 4, 4), lo=(0,) * 4, hi=(1,) * 4),
    ],
)
def test_bad_configuration_raises(kwargs):
    with pytest.raises(ConfigurationError):
        YeeGrid(**kwargs)


def test_getattr_unknown_raises():
    g = make_grid()
    with pytest.raises(AttributeError):
        _ = g.not_a_field
