"""Tests for the spectral Poisson solver and the Gauss-law monitor."""

import numpy as np
import pytest

from repro.constants import eps0, m_e, plasma_wavelength, q_e
from repro.core.simulation import Simulation
from repro.diagnostics.gauss import GaussLawMonitor, gauss_law_residual
from repro.grid.poisson import initialize_space_charge, solve_poisson
from repro.grid.stencils import diff_backward
from repro.grid.yee import YeeGrid
from repro.particles.injection import UniformProfile
from repro.particles.species import Species


def discrete_div_e(grid):
    div = np.zeros(grid.shape)
    for d, comp in enumerate(("Ex", "Ey", "Ez")[: grid.ndim]):
        div += diff_backward(grid.fields[comp], d, grid.dx[d])
    return div


@pytest.mark.parametrize("ndim", [1, 2, 3])
def test_poisson_satisfies_discrete_gauss_law(ndim):
    """div E (backward difference) == rho/eps0 up to the removed mean."""
    n = {1: 64, 2: 32, 3: 12}[ndim]
    g = YeeGrid((n,) * ndim, (0.0,) * ndim, (1.0,) * ndim, guards=3)
    rng = np.random.default_rng(6)
    sl = tuple(slice(g.guards, g.guards + n) for _ in range(ndim))
    rho = rng.normal(size=(n,) * ndim)
    rho -= rho.mean()  # neutral universe
    g.fields["rho"][sl] = rho
    solve_poisson(g)
    from repro.grid.boundary import apply_periodic

    for ax in range(ndim):
        apply_periodic(g, ax)
    div = discrete_div_e(g)[sl]
    np.testing.assert_allclose(div, rho / eps0, rtol=1e-9, atol=1e-9 * np.abs(rho / eps0).max())


def test_poisson_sine_charge_analytic():
    """A sinusoidal rho gives the textbook E field (continuum limit)."""
    n = 256
    length = 1.0
    g = YeeGrid((n,), (0.0,), (length,), guards=3)
    k = 2 * np.pi / length
    x = g.axis_coords(0, "rho")[:-1]
    sl = (slice(g.guards, g.guards + n),)
    rho0 = 1e-6
    g.fields["rho"][sl] = rho0 * np.sin(k * x)
    solve_poisson(g)
    x_e = g.axis_coords(0, "Ex")
    expected = -rho0 / (eps0 * k) * np.cos(k * x_e)
    measured = g.interior_view("Ex")
    # second-order discrete gradient: ~ (k dx)^2 / 24 relative error
    np.testing.assert_allclose(measured, expected, rtol=2e-3, atol=1e-9 * abs(expected).max())


def test_initialize_space_charge_slab():
    """A charged slab gets the field of Gauss's law over a neutralizing
    background: the residual is exactly the (uniform) removed k=0 mode."""
    n0 = 1e20
    g = YeeGrid((64,), (0.0,), (64.0,), guards=3)
    s = Species("e", charge=-q_e, ndim=1)
    from repro.particles.injection import SlabProfile, inject_plasma

    inject_plasma(s, g, SlabProfile(n0, 24.0, 40.0, axis=0), ppc=4)
    initialize_space_charge(g, [s])
    res = gauss_law_residual(g, [s], order=2)
    sl = (slice(g.guards, g.guards + 64),)
    background = g.fields["rho"][sl].mean() / eps0
    np.testing.assert_allclose(res, -background, rtol=1e-9)
    assert np.abs(g.interior_view("Ex")).max() > 0


def test_gauss_residual_constant_during_run():
    """THE end-to-end charge-conservation check: the Gauss residual of a
    running simulation does not drift (Esirkepov + Yee compose exactly)."""
    n0 = 1e24
    length = plasma_wavelength(n0)
    g = YeeGrid((48,), (0.0,), (length,), guards=4)
    sim = Simulation(g, shape_order=2, smoothing_passes=0)
    e = Species("e", charge=-q_e, mass=m_e, ndim=1)
    sim.add_species(e, profile=UniformProfile(n0), ppc=8)
    k = 2 * np.pi / length
    e.momenta[:, 0] = 1e-3 * np.sin(k * e.positions[:, 0])
    monitor = GaussLawMonitor(order=2)
    r0 = monitor.record(sim)
    sim.step(100)
    r1 = monitor.record(sim)
    # the initial (non-neutral deposit vs E=0) residual is frozen in time
    assert r1 == pytest.approx(r0, rel=1e-6)
    assert monitor.drift() == pytest.approx(0.0, abs=1e-6)


def test_gauss_residual_drifts_with_direct_deposition():
    """With the non-conserving direct deposition the residual *field*
    moves — the contrast that motivates Esirkepov.  (The max-norm alone
    hides the drift under the static ppc-noise pedestal, so compare the
    residual patterns directly.)"""

    def run(deposition):
        n0 = 1e24
        length = plasma_wavelength(n0)
        g = YeeGrid((48,), (0.0,), (length,), guards=4)
        sim = Simulation(
            g, shape_order=2, smoothing_passes=0, deposition=deposition
        )
        e = Species("e", charge=-q_e, mass=m_e, ndim=1)
        sim.add_species(e, profile=UniformProfile(n0), ppc=8)
        k = 2 * np.pi / length
        e.momenta[:, 0] = 1e-2 * np.sin(k * e.positions[:, 0])
        res0 = gauss_law_residual(sim.grid, [e], order=2).copy()
        sim.step(100)
        res1 = gauss_law_residual(sim.grid, [e], order=2)
        return float(np.max(np.abs(res1 - res0))), float(np.max(np.abs(res0)))

    drift_esir, scale = run("esirkepov")
    drift_direct, _ = run("direct")
    assert drift_esir < 1e-8 * scale
    assert drift_direct > 1e3 * max(drift_esir, 1e-30 * scale)
