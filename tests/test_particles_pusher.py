"""Physics tests for the Boris and Vay pushers."""

import numpy as np
import pytest

from repro.constants import c, m_e, q_e
from repro.particles.pusher import lorentz_factor, push_boris, push_positions, push_vay

Q = -q_e  # electron
M = m_e


def test_lorentz_factor():
    u = np.array([[0.0, 0.0, 0.0], [3.0, 0.0, 4.0]])
    np.testing.assert_allclose(lorentz_factor(u), [1.0, np.sqrt(26.0)])


@pytest.mark.parametrize("push", [push_boris, push_vay])
def test_pure_e_acceleration(push):
    """Constant E accelerates along E: du/dt = qE/(mc)."""
    e = np.array([[1.0e6, 0.0, 0.0]])
    b = np.zeros((1, 3))
    dt = 1.0e-12
    u = np.zeros((1, 3))
    steps = 100
    for _ in range(steps):
        u = push(u, e, b, Q, M, dt)
    expected = Q * e[0, 0] * steps * dt / (M * c)
    assert u[0, 0] == pytest.approx(expected, rel=1e-9)
    assert abs(u[0, 1]) < 1e-15 and abs(u[0, 2]) < 1e-15


@pytest.mark.parametrize("push", [push_boris, push_vay])
def test_magnetic_field_preserves_energy(push):
    """A pure magnetic field cannot change |u|."""
    rng = np.random.default_rng(3)
    u = rng.normal(size=(20, 3))
    b = np.tile([0.0, 0.0, 5.0], (20, 1))
    e = np.zeros((20, 3))
    u0_mag = np.linalg.norm(u, axis=1)
    for _ in range(50):
        u = push(u, e, b, Q, M, dt=1e-13)
    np.testing.assert_allclose(np.linalg.norm(u, axis=1), u0_mag, rtol=1e-12)


def test_boris_gyration_frequency():
    """Circular orbit at omega_c = qB/(gamma m), radius r = u c / omega_c / gamma...

    Track one gyro-period and verify the particle returns to its start."""
    b0 = 1.0  # tesla
    u0 = 0.5
    gamma = np.sqrt(1.0 + u0**2)
    omega_c = q_e * b0 / (gamma * M)
    period = 2 * np.pi / omega_c
    steps = 2000
    dt = period / steps
    u = np.array([[u0, 0.0, 0.0]])
    pos = np.zeros((1, 3))
    b = np.array([[0.0, 0.0, b0]])
    e = np.zeros((1, 3))
    for _ in range(steps):
        u = push_boris(u, e, b, Q, M, dt)
        pos = push_positions(pos, u, dt, ndim=3)
    # after one period the particle is back (Boris phase error ~ (w dt)^2/12)
    gyro_radius = u0 * c / (omega_c * gamma)
    assert np.linalg.norm(pos[0]) < 0.01 * gyro_radius


@pytest.mark.parametrize("push", [push_boris, push_vay])
def test_exb_drift_velocity(push):
    """Crossed E x B fields: drift at v_d = E/B (non-relativistic check)."""
    e_mag, b_mag = 1.0e4, 1.0
    v_d = e_mag / b_mag  # 1e4 m/s << c
    e = np.array([[0.0, e_mag, 0.0]])
    b = np.array([[0.0, 0.0, b_mag]])
    # start at the drift velocity: motion should remain a pure drift
    u = np.array([[v_d / c, 0.0, 0.0]])
    dt = 1e-12
    us = []
    for _ in range(200):
        u = push(u, e, b, Q, M, dt)
        us.append(u[0].copy())
    us = np.array(us)
    # Vay preserves the drift exactly; Boris wobbles but averages to it
    mean_vx = np.mean(us[:, 0]) * c
    assert mean_vx == pytest.approx(v_d, rel=2e-2)


def test_vay_relativistic_exb_forcefree():
    """The Vay pusher keeps a relativistic E x B drift exactly force-free
    (the property Boris lacks, per Vay 2008)."""
    b_mag = 1.0
    beta_d = 0.9
    e_mag = beta_d * c * b_mag
    gamma_d = 1.0 / np.sqrt(1.0 - beta_d**2)
    u = np.array([[gamma_d * beta_d, 0.0, 0.0]])
    e = np.array([[0.0, e_mag, 0.0]])
    b = np.array([[0.0, 0.0, b_mag]])
    dt = 1e-11
    u_vay = u.copy()
    for _ in range(100):
        u_vay = push_vay(u_vay, e, b, Q, M, dt)
    np.testing.assert_allclose(u_vay[0, 0], gamma_d * beta_d, rtol=1e-9)
    assert abs(u_vay[0, 1]) < 1e-9 * gamma_d * beta_d


@pytest.mark.parametrize("push", [push_boris, push_vay])
def test_zero_fields_free_streaming(push):
    u = np.array([[1.0, -2.0, 0.5]])
    out = push(u, np.zeros((1, 3)), np.zeros((1, 3)), Q, M, 1e-12)
    np.testing.assert_allclose(out, u, rtol=1e-14)


def test_push_positions_2d3v():
    """In 2D only the first two velocity components move the particle."""
    u = np.array([[0.6, 0.8, 100.0]])
    pos = np.zeros((1, 2))
    dt = 1.0
    out = push_positions(pos, u, dt, ndim=2)
    gamma = lorentz_factor(u)[0]
    np.testing.assert_allclose(out[0], [0.6 * c / gamma, 0.8 * c / gamma])


def test_boris_vay_agree_weakly_relativistic():
    rng = np.random.default_rng(4)
    u = 0.01 * rng.normal(size=(10, 3))
    e = 1e3 * rng.normal(size=(10, 3))
    b = 0.1 * rng.normal(size=(10, 3))
    dt = 1e-13
    ub = push_boris(u, e, b, Q, M, dt)
    uv = push_vay(u, e, b, Q, M, dt)
    np.testing.assert_allclose(ub, uv, atol=1e-9)
